"""Benchmark regenerating Section 8: reallocating CP CPUs to DP.

Runs the ext_dp_boost experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_ext_dp_boost(record):
    result = record("ext_dp_boost", scale=0.1)
    assert result.derived["iops_gain_pct"] > 10
