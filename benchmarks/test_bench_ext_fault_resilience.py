"""Benchmark regenerating the fault-storm resilience extension.

Runs ext_fault_resilience end to end at a reduced scale: the same storm
preset hits a bare deployment and one with the graceful-degradation
layer, and degradation must not lose on either SLO.
"""


def test_bench_ext_fault_resilience(record):
    result = record("ext_fault_resilience", scale=0.2)
    assert result.derived["faults_injected"] > 0
    assert result.derived["degradation_responses"] > 0
    assert result.derived["dp_p99_improvement"] > 1.0
    assert result.derived["startup_compliance_gain_pct"] >= 0
