"""Benchmark regenerating Figure 16: Nginx HTTP/HTTPS requests per second.

Runs the fig16 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_fig16(record):
    result = record("fig16", scale=0.1)
    assert abs(result.derived["avg_overhead_pct"]) < 5.0
