"""Record the DES engine fast-path baseline (BENCH_engine.json).

The engine fast path makes two measurable claims, and this script pins
both down on the current machine:

* **idle fast-forward** — replacing per-poll wakeups with one analytic
  timeout must multiply wall throughput on idle-heavy soaks while the
  summary stays byte-identical.  Measured per arm (``taichi``, whose
  batched scheduler already amortizes polls, and ``static``, the
  poll-every-tick worst case) as interleaved best-of-N fast vs stepped.
* **scheduler queue** — the calendar queue must match the binary heap's
  pop order exactly (enforced by tests); here we record its relative
  wall cost so regressions in either implementation are visible.

Usage::

    PYTHONPATH=src python benchmarks/record_engine_baseline.py \
        [--out BENCH_engine.json] [--rounds N]

The committed baseline is informational (machines differ); the enforced
gate lives in ``benchmarks/test_bench_engine.py`` and CI.
"""

import argparse
import json
import platform
import time

from repro.scenario import Scenario, run_soak
from repro.sim import EngineConfig
from repro.sim.units import MILLISECONDS

_DURATION_NS = 15 * MILLISECONDS
_DRAIN_NS = 5 * MILLISECONDS


def _soak(arm, engine):
    scenario = Scenario(arm=arm, knobs={"engine": engine})
    t0 = time.perf_counter()
    summary = run_soak(scenario, seed=0, duration_ns=_DURATION_NS,
                       drain_ns=_DRAIN_NS, label="bench-engine")
    wall = time.perf_counter() - t0
    return summary, wall


def measure_fast_forward(arm, rounds):
    """Interleaved fast-vs-stepped best-of-N for one arm."""
    fast_times, stepped_times = [], []
    fast_engine = stepped_engine = None
    identical = True
    for _ in range(rounds):
        fast_summary, wall = _soak(arm, EngineConfig(fast_forward=True))
        fast_times.append(wall)
        stepped_summary, wall = _soak(arm, EngineConfig(fast_forward=False))
        stepped_times.append(wall)
        fast_engine = fast_summary.pop("engine")
        stepped_engine = stepped_summary.pop("engine")
        identical = identical and (
            json.dumps(fast_summary, sort_keys=True, default=str)
            == json.dumps(stepped_summary, sort_keys=True, default=str))
    best_fast, best_stepped = min(fast_times), min(stepped_times)
    simulated = (fast_engine["events_processed"]
                 + fast_engine["events_skipped"])
    return {
        "arm": arm,
        "rounds": rounds,
        "summary_identical": identical,
        "events_processed_fast": fast_engine["events_processed"],
        "events_skipped_fast": fast_engine["events_skipped"],
        "fast_forward_windows": fast_engine["fast_forward_windows"],
        "skipped_ratio": fast_engine["skipped_ratio"],
        "events_processed_stepped": stepped_engine["events_processed"],
        "events_per_second_stepped": round(
            stepped_engine["events_processed"] / best_stepped),
        "effective_events_per_second_fast": round(simulated / best_fast),
        "speedup": round(best_stepped / best_fast, 2),
    }


def measure_scheduler(rounds):
    """Heap vs calendar queue wall cost on the taichi fast-path soak."""
    times = {"heap": [], "calendar": []}
    events = {}
    for _ in range(rounds):
        for name in ("heap", "calendar"):
            summary, wall = _soak("taichi", EngineConfig(scheduler=name))
            times[name].append(wall)
            events[name] = summary["engine"]["events_processed"]
    assert events["heap"] == events["calendar"], (
        "scheduler queues disagreed on the event count: "
        f"{events['heap']} heap vs {events['calendar']} calendar")
    heap_rate = events["heap"] / min(times["heap"])
    calendar_rate = events["calendar"] / min(times["calendar"])
    return {
        "rounds": rounds,
        "events_processed": events["heap"],
        "events_per_second_heap": round(heap_rate),
        "events_per_second_calendar": round(calendar_rate),
        "calendar_vs_heap": round(calendar_rate / heap_rate, 2),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)

    arms = []
    for arm in ("taichi", "static"):
        print(f"measuring fast-forward on the {arm} arm "
              f"(interleaved best-of-{args.rounds})...")
        result = measure_fast_forward(arm, args.rounds)
        arms.append(result)
        print(f"  {result['effective_events_per_second_fast'] / 1e6:.2f}M "
              f"effective ev/s fast vs "
              f"{result['events_per_second_stepped'] / 1e3:.0f}k ev/s "
              f"stepped ({result['speedup']}x, skipped ratio "
              f"{result['skipped_ratio']:.1%}, identical="
              f"{result['summary_identical']})")

    print("measuring scheduler queues (heap vs calendar)...")
    schedulers = measure_scheduler(args.rounds)
    print(f"  heap {schedulers['events_per_second_heap'] / 1e3:.0f}k ev/s, "
          f"calendar {schedulers['events_per_second_calendar'] / 1e3:.0f}k "
          f"ev/s ({schedulers['calendar_vs_heap']}x)")

    baseline = {
        "benchmark": "engine",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fast_forward": arms,
        "schedulers": schedulers,
        "gate": {"min_speedup": 3.0,
                 "enforced_by": "benchmarks/test_bench_engine.py"},
    }
    with open(args.out, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
