"""Benchmark regenerating Figure 2: baseline CP degradation with instance density.

Runs the fig2 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.  The SLO breach
itself needs full-scale storms (see EXPERIMENTS.md); at bench scale the
checks cover the monotone degradation shape.
"""


def test_bench_fig2(record):
    result = record("fig2", scale=0.5)
    assert result.rows[-1]["cp_exec_vs_x1"] > 2.5
    slo_ratios = [row["startup_vs_slo"] for row in result.rows]
    assert slo_ratios == sorted(slo_ratios)  # worsens with density
    assert slo_ratios[-1] > 0.9              # at the SLO boundary already
