"""Benchmark regenerating the Section 8 instruction-auditing demonstration.

Runs the ext_audit experiment end to end at a reduced scale and prints the
reproduced rows next to the claim it validates.
"""


def test_bench_ext_audit(record):
    result = record("ext_audit", scale=0.3)
    assert result.derived["records"] > 5
