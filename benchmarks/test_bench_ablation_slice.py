"""Benchmark regenerating the Section 4.1 time-slice ablation.

Runs the ablation_slice experiment end to end at a reduced scale and prints the
reproduced rows next to the claim it validates.
"""


def test_bench_ablation_slice(record):
    result = record("ablation_slice", scale=0.2)
    assert result.derived["adaptive_switch_overhead_pct"] < result.derived["fixed_switch_overhead_pct"]
