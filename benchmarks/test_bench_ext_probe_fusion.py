"""Benchmark regenerating the Section 9 probe-fusion optimization.

Runs the ext_probe_fusion experiment end to end at a reduced scale and prints the
reproduced rows next to the claim it validates.
"""


def test_bench_ext_probe_fusion(record):
    result = record("ext_probe_fusion", scale=0.25)
    assert result.derived["premature_rate_fused"] <= result.derived["premature_rate_plain"]
