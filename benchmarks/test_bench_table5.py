"""Benchmark regenerating Table 5: RTT across three mechanisms.

Runs the table5 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_table5(record):
    result = record("table5", scale=0.1)
    assert result.derived["taichi_avg_vs_baseline"] < 1.05
    assert result.derived["noprobe_max_vs_baseline"] > 2.0
