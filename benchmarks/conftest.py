"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table/figure through the experiment
registry at a reduced scale (the full configuration is available through
``python -m repro.experiments run <id>``).  Results are attached to the
benchmark record via ``extra_info`` so the emitted JSON doubles as the
reproduction artifact.
"""

import pytest


BENCH_SCALE = 0.1


def run_and_record(benchmark, exp_id, scale=BENCH_SCALE, seed=0):
    """Run an experiment once under the benchmark timer; attach results."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        run_experiment, args=(exp_id,), kwargs={"scale": scale, "seed": seed},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["exp_id"] = exp_id
    benchmark.extra_info["paper_ref"] = result.paper_ref
    benchmark.extra_info["derived"] = {
        key: (round(value, 4) if isinstance(value, float) else str(value))
        for key, value in result.derived.items()
    }
    print()
    print(result.to_text())
    return result


@pytest.fixture
def record(benchmark):
    def _record(exp_id, scale=BENCH_SCALE, seed=0):
        return run_and_record(benchmark, exp_id, scale=scale, seed=seed)

    return _record
