"""Benchmark regenerating Figure 13: fio IOPS across virtualization designs.

Runs the fig13 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_fig13(record):
    result = record("fig13", scale=0.1)
    by = {r["system"]: r["iops"] for r in result.rows}
    assert by["type2"] < by["taichi-vdp"] < by["baseline"] * 0.99
