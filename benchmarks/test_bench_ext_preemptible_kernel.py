"""Benchmark regenerating the Section 8 always-preemptible kernel context.

Runs the ext_preemptible_kernel experiment end to end at a reduced scale and prints the
reproduced rows next to the claim it validates.
"""


def test_bench_ext_preemptible_kernel(record):
    result = record("ext_preemptible_kernel", scale=0.3)
    assert result.derived["max_latency_improvement"] > 2.0
