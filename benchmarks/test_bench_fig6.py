"""Benchmark regenerating Figure 6: I/O preprocessing breakdown.

Runs the fig6 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_fig6(record):
    result = record("fig6", scale=0.5)
    assert result.derived["window_hides_switch"]
