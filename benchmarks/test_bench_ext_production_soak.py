"""Benchmark regenerating the Section 6.6 production soak.

Runs the ext_production_soak experiment end to end at a reduced scale and
prints both SLO scores next to the paper's deployment claim.
"""


def test_bench_ext_production_soak(record):
    result = record("ext_production_soak", scale=0.2)
    assert result.derived["dp_p999_vs_baseline"] < 1.10
    assert result.derived["startup_speedup"] > 1.0
