"""Benchmark regenerating Figure 3: CDF of data-plane CPU utilization.

Runs the fig3 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_fig3(record):
    result = record("fig3", scale=0.1)
    assert result.derived["fraction_below_32.5pct"] > 0.99
