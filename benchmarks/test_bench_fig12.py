"""Benchmark regenerating Figure 12: netperf tcp_crr across virtualization designs.

Runs the fig12 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_fig12(record):
    result = record("fig12", scale=0.1)
    by = {r["system"]: r["cps"] for r in result.rows}
    assert by["type2"] < by["taichi-vdp"] < by["baseline"] * 0.99
    assert by["taichi"] > by["baseline"] * 0.97
