"""Benchmark regenerating the Section 4.3 empty-poll-threshold ablation.

Runs the ablation_threshold experiment end to end at a reduced scale and prints the
reproduced rows next to the claim it validates.
"""


def test_bench_ablation_threshold(record):
    result = record("ablation_threshold", scale=0.2)
    assert result.derived["adaptive_harvested_ms"] > result.derived["large_harvested_ms"]
