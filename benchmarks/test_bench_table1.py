"""Benchmark regenerating Table 1: co-scheduling mechanism comparison.

Runs the table1 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_table1(record):
    result = record("table1", scale=0.2)
    assert result.derived["kernel_preemption_ms"] > 0.5
    assert result.derived["taichi_preemption_us_p50"] < 100
