"""Benchmark the DES engine itself: throughput and the fast-forward gate.

Two claims back the engine fast path, and this module gates both:

* **throughput** — raw events/sec on the fleet-node workload (the shared
  production-soak driver on a single Tai Chi board).  The scenario is
  fixed so the event count is deterministic; wall time is the only thing
  that varies, which makes the emitted events/sec a clean regression
  signal for engine-level changes.
* **fast-forward speedup** — on an idle-heavy soak (the static arm polls
  every ``poll_ns`` even when no packet is queued) the analytic idle
  fast-forward must deliver >= 3x wall speedup over the stepped
  event-per-poll mode *while producing a byte-identical summary* and a
  clean invariant verdict.  Arms are interleaved best-of-N so thermal
  drift and background noise hit both equally.
"""

import json
import time

import pytest

from repro.obs import observe
from repro.scenario import Scenario, run_soak
from repro.sim import EngineConfig
from repro.sim.units import MILLISECONDS

_ROUNDS = 3
_MIN_SPEEDUP = 3.0
_DURATION_NS = 15 * MILLISECONDS
_DRAIN_NS = 5 * MILLISECONDS


def _soak(arm, fast_forward, check_invariants=False):
    """One soak under the given engine mode; (summary, violations)."""
    scenario = Scenario(
        arm=arm,
        knobs={"engine": EngineConfig(fast_forward=fast_forward)})
    with observe(check_invariants=check_invariants) as session:
        summary = run_soak(scenario, seed=0, duration_ns=_DURATION_NS,
                           drain_ns=_DRAIN_NS, label="bench-engine")
        violations = session.violations() if check_invariants else []
    return summary, violations


def test_bench_engine_events_per_second(benchmark):
    scenario = Scenario(arm="taichi")

    def soak():
        with observe() as session:
            summary = run_soak(scenario, seed=0,
                               duration_ns=60 * MILLISECONDS,
                               drain_ns=20 * MILLISECONDS,
                               label="bench-engine")
        return summary, session.metrics.snapshot()

    summary, snapshot = benchmark.pedantic(soak, rounds=3, iterations=1)

    engines = [data for name, data in snapshot["sources"].items()
               if name.split("#")[0] == "sim.engine"]
    assert engines, "the simulator did not register an engine profile"
    events = sum(engine["events_processed"] for engine in engines)
    skipped = sum(engine["events_skipped"] for engine in engines)
    assert events > 0
    assert summary["dp_sample_count"] > 0

    # The event count is a pure function of the scenario; wall time is
    # the benchmark's measurement.  Report both, plus the effective rate
    # crediting the poll events the fast path proved it could skip.
    events_per_s = events / benchmark.stats["mean"]
    benchmark.extra_info["scenario"] = scenario.to_dict()
    benchmark.extra_info["events_processed"] = events
    benchmark.extra_info["events_skipped"] = skipped
    benchmark.extra_info["events_per_second"] = round(events_per_s)
    benchmark.extra_info["effective_events_per_second"] = round(
        (events + skipped) / benchmark.stats["mean"])
    benchmark.extra_info["engine_reported_events_per_wall_s"] = [
        round(engine["events_per_wall_s"]) for engine in engines
    ]
    print(f"\nDES throughput: {events} events ({skipped} skipped), "
          f"{events_per_s / 1e3:.0f}k events/s")


def test_bench_engine_fast_forward_gate(benchmark):
    """Fast-forward >= 3x on an idle-heavy soak, byte-identical results."""

    def measure():
        fast_times, stepped_times = [], []
        for _ in range(_ROUNDS):
            t0 = time.perf_counter()
            fast_summary, fast_violations = _soak(
                "static", True, check_invariants=True)
            fast_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            stepped_summary, stepped_violations = _soak(
                "static", False, check_invariants=True)
            stepped_times.append(time.perf_counter() - t0)
        return (fast_summary, stepped_summary, fast_violations,
                stepped_violations, min(fast_times), min(stepped_times))

    (fast_summary, stepped_summary, fast_violations, stepped_violations,
     best_fast, best_stepped) = benchmark.pedantic(measure, rounds=1,
                                                   iterations=1)

    # Correctness first: both modes must be invariant-clean and agree on
    # every summary byte outside the engine self-profile block.
    assert not fast_violations, fast_violations
    assert not stepped_violations, stepped_violations
    fast_engine = fast_summary.pop("engine")
    stepped_engine = stepped_summary.pop("engine")
    assert json.dumps(fast_summary, sort_keys=True, default=str) == \
        json.dumps(stepped_summary, sort_keys=True, default=str), \
        "fast-forward changed the simulation outcome"

    # The fast path's accounting must cover the stepped arm's work: every
    # poll it skipped analytically, the stepped arm actually simulated
    # (the small slack is window-boundary rounding and chain bookkeeping).
    assert fast_engine["events_skipped"] > 0
    assert fast_engine["fast_forward_windows"] > 0
    simulated = (fast_engine["events_processed"]
                 + fast_engine["events_skipped"])
    assert simulated == pytest.approx(stepped_engine["events_processed"],
                                      rel=0.10)

    speedup = best_stepped / best_fast
    fast_rate = simulated / best_fast
    stepped_rate = stepped_engine["events_processed"] / best_stepped
    benchmark.extra_info["fast_engine"] = fast_engine
    benchmark.extra_info["stepped_engine"] = stepped_engine
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["effective_events_per_second_fast"] = round(
        fast_rate)
    benchmark.extra_info["events_per_second_stepped"] = round(stepped_rate)
    print(f"\nfast-forward: {fast_rate / 1e6:.2f}M effective ev/s vs "
          f"{stepped_rate / 1e3:.0f}k ev/s stepped ({speedup:.1f}x, "
          f"skipped ratio {fast_engine['skipped_ratio']:.1%})")
    assert speedup >= _MIN_SPEEDUP, (
        f"idle fast-forward speedup {speedup:.2f}x is under the "
        f"{_MIN_SPEEDUP:.0f}x gate")
