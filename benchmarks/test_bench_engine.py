"""Benchmark the DES engine itself: events per second on a fixed scenario.

Unlike the figure benchmarks (which time one experiment end to end), this
one pins down raw simulator throughput on the fleet-node workload — the
shared production-soak driver on a single Tai Chi board.  The scenario is
fixed so the event count is deterministic; wall time is the only thing
that varies, which makes the emitted events/sec a clean regression signal
for engine-level changes.
"""

from repro.obs import observe
from repro.scenario import Scenario, run_soak
from repro.sim.units import MILLISECONDS


def test_bench_engine_events_per_second(benchmark):
    scenario = Scenario(arm="taichi")

    def soak():
        with observe() as session:
            summary = run_soak(scenario, seed=0,
                               duration_ns=60 * MILLISECONDS,
                               drain_ns=20 * MILLISECONDS,
                               label="bench-engine")
        return summary, session.metrics.snapshot()

    summary, snapshot = benchmark.pedantic(soak, rounds=3, iterations=1)

    engines = [data for name, data in snapshot["sources"].items()
               if name.split("#")[0] == "sim.engine"]
    assert engines, "the simulator did not register an engine profile"
    events = sum(engine["events_processed"] for engine in engines)
    assert events > 0
    assert summary["dp_sample_count"] > 0

    # The event count is a pure function of the scenario; wall time is
    # the benchmark's measurement.  Report both.
    events_per_s = events / benchmark.stats["mean"]
    benchmark.extra_info["scenario"] = scenario.to_dict()
    benchmark.extra_info["events_processed"] = events
    benchmark.extra_info["events_per_second"] = round(events_per_s)
    benchmark.extra_info["engine_reported_events_per_wall_s"] = [
        round(engine["events_per_wall_s"]) for engine in engines
    ]
    print(f"\nDES throughput: {events} events, "
          f"{events_per_s / 1e3:.0f}k events/s")
