"""Benchmark regenerating Figure 5: non-preemptible routine duration census.

Runs the fig5 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_fig5(record):
    result = record("fig5", scale=0.1)
    assert 0.92 < result.derived["fraction_1_to_5ms"] < 0.97
