"""Telemetry overhead gate: sampling must cost < 5% of soak throughput.

The telemetry bus samples on a sim-time interval, so its cost scales
with intervals, not events — a 10 ms cadence over a 60 ms soak is a
handful of ticks plus per-probe sketch inserts.  This benchmark runs the
same soak with telemetry off and on, *interleaved* (so thermal drift and
background noise hit both arms equally), takes best-of-N per arm, and
gates the ratio.  Events/sec is derived from the engine's deterministic
event count, which telemetry must not change (gauges only read state).
"""

import time

from repro.obs import observe
from repro.obs.telemetry import TelemetryConfig
from repro.scenario import Scenario, run_soak
from repro.sim.units import MILLISECONDS

_ROUNDS = 5
_MAX_OVERHEAD = 0.05


def _soak(telemetry):
    scenario = Scenario(arm="taichi")
    with observe() as session:
        summary = run_soak(scenario, seed=0,
                           duration_ns=60 * MILLISECONDS,
                           drain_ns=20 * MILLISECONDS,
                           label="bench-telemetry",
                           telemetry=telemetry)
    snapshot = session.metrics.snapshot()
    events = sum(data["events_processed"]
                 for name, data in snapshot["sources"].items()
                 if name.split("#")[0] == "sim.engine")
    return summary, events


def test_bench_telemetry_overhead(benchmark):
    config = TelemetryConfig(interval_ms=10.0)

    def measure():
        off_times, on_times = [], []
        for _ in range(_ROUNDS):
            t0 = time.perf_counter()
            summary_off, events_off = _soak(None)
            off_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            summary_on, events_on = _soak(config)
            on_times.append(time.perf_counter() - t0)
        return summary_off, summary_on, events_off, events_on, \
            min(off_times), min(on_times)

    summary_off, summary_on, events_off, events_on, best_off, best_on = \
        benchmark.pedantic(measure, rounds=1, iterations=1)

    # Telemetry is observational: the simulated world is unchanged.  The
    # engine count differs only by the bus's own interval-timer events.
    intervals = summary_on["telemetry"]["intervals"]
    assert intervals > 0
    assert events_off <= events_on <= events_off + intervals + 1
    assert summary_on["dp_sample_count"] == summary_off["dp_sample_count"]

    # Rate the same workload (off-arm event count) against each wall time.
    off_rate = events_off / best_off
    on_rate = events_off / best_on
    overhead = 1.0 - on_rate / off_rate
    benchmark.extra_info["events_processed"] = events_off
    benchmark.extra_info["events_per_second_off"] = round(off_rate)
    benchmark.extra_info["events_per_second_on"] = round(on_rate)
    benchmark.extra_info["overhead_pct"] = round(100.0 * overhead, 2)
    benchmark.extra_info["intervals"] = intervals
    print(f"\ntelemetry overhead: off {off_rate / 1e3:.0f}k ev/s, "
          f"on {on_rate / 1e3:.0f}k ev/s ({100 * overhead:+.1f}%)")
    assert overhead <= _MAX_OVERHEAD, (
        f"telemetry sampling costs {100 * overhead:.1f}% of soak "
        f"throughput (gate: {100 * _MAX_OVERHEAD:.0f}%)")
