"""Benchmark regenerating Figure 4: non-preemptible routine latency spike.

Runs the fig4 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_fig4(record):
    result = record("fig4", scale=0.5)
    assert result.derived["spike_vs_clean"] > 50
