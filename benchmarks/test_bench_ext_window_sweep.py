"""Benchmark regenerating the Observation 4 window-vs-switch sensitivity sweep.

Runs the ext_window_sweep experiment end to end at a reduced scale: latency
hiding must hold exactly while the preprocessing window covers the ~2 us
vCPU switch cost, and leak below it.
"""


def test_bench_ext_window_sweep(record):
    result = record("ext_window_sweep", scale=0.2)
    assert result.derived["worst_added_qwait_covered_us"] < 0.5
