"""Record the telemetry overhead + wire-size baseline (BENCH_telemetry.json).

Two claims back the streaming-telemetry design, and this script measures
both on the current machine:

* **sampling overhead** — a soak with a 10 ms telemetry cadence must run
  within a few percent of the same soak with telemetry off (interleaved
  best-of-N, same methodology as ``test_bench_telemetry.py``).
* **wire size** — a sketch-shipping fleet node summary must be far
  smaller than one carrying raw sample arrays; this is what lets a
  pod-scale fleet aggregate without shipping O(samples) per node.

Usage::

    PYTHONPATH=src python benchmarks/record_telemetry_baseline.py \
        [--out BENCH_telemetry.json] [--skip-pod]

The committed baseline is informational (machines differ); the enforced
gate lives in ``benchmarks/test_bench_telemetry.py`` and CI.
"""

import argparse
import dataclasses
import json
import platform
import time

from repro.obs import observe
from repro.obs.telemetry import TelemetryConfig
from repro.scenario import Scenario, run_soak
from repro.sim.units import MILLISECONDS


def _soak_events(telemetry):
    with observe() as session:
        run_soak(Scenario(arm="taichi"), seed=0,
                 duration_ns=60 * MILLISECONDS,
                 drain_ns=20 * MILLISECONDS,
                 label="bench-telemetry", telemetry=telemetry)
    snapshot = session.metrics.snapshot()
    return sum(data["events_processed"]
               for name, data in snapshot["sources"].items()
               if name.split("#")[0] == "sim.engine")


def measure_overhead(rounds=5):
    config = TelemetryConfig(interval_ms=10.0)
    off_times, on_times = [], []
    events = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        events = _soak_events(None)
        off_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        _soak_events(config)
        on_times.append(time.perf_counter() - t0)
    off_rate = events / min(off_times)
    on_rate = events / min(on_times)
    return {
        "rounds": rounds,
        "events_processed": events,
        "events_per_second_off": round(off_rate),
        "events_per_second_on": round(on_rate),
        "overhead_pct": round(100.0 * (1.0 - on_rate / off_rate), 2),
    }


def measure_wire_size(preset, n_nodes, scale):
    from repro.fleet import FleetRunner, FleetSpec

    spec = FleetSpec.preset(preset).subset(n_nodes)
    sizes = {}
    for label, raw in (("sketch", False), ("raw", True)):
        report = FleetRunner(dataclasses.replace(spec, raw_samples=raw),
                             jobs=1, scale=scale).run()
        sizes[label] = sum(len(json.dumps(node, sort_keys=True))
                           for node in report["nodes"])
    return {
        "preset": preset,
        "nodes": n_nodes,
        "scale": scale,
        "node_summary_bytes_sketch": sizes["sketch"],
        "node_summary_bytes_raw": sizes["raw"],
        "compression_ratio": round(sizes["raw"] / sizes["sketch"], 2),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_telemetry.json")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--skip-pod", action="store_true",
                        help="skip the 64-node pod wire-size run (slow)")
    args = parser.parse_args(argv)

    print("measuring soak overhead (interleaved best-of-%d)..." % args.rounds)
    overhead = measure_overhead(rounds=args.rounds)
    print(f"  off {overhead['events_per_second_off']} ev/s, "
          f"on {overhead['events_per_second_on']} ev/s "
          f"({overhead['overhead_pct']:+.1f}%)")

    wire = [measure_wire_size("rack", 8, 0.1)]
    print(f"  rack: {wire[0]['node_summary_bytes_raw']}B raw -> "
          f"{wire[0]['node_summary_bytes_sketch']}B sketch "
          f"({wire[0]['compression_ratio']}x)")
    if not args.skip_pod:
        print("measuring pod wire size (64 nodes, reduced scale)...")
        wire.append(measure_wire_size("pod", 64, 0.05))
        print(f"  pod: {wire[1]['node_summary_bytes_raw']}B raw -> "
              f"{wire[1]['node_summary_bytes_sketch']}B sketch "
              f"({wire[1]['compression_ratio']}x)")

    baseline = {
        "benchmark": "telemetry",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "overhead": overhead,
        "wire_size": wire,
        "gate": {"max_overhead_pct": 5.0,
                 "enforced_by": "benchmarks/test_bench_telemetry.py"},
    }
    with open(args.out, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
