"""Benchmark regenerating Figure 11: CP execution time vs concurrency.

Runs the fig11 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_fig11(record):
    result = record("fig11", scale=0.34)
    assert result.rows[-1]["speedup"] > 1.5
