"""Benchmark regenerating Figure 14: normalized DP performance suite.

Runs the fig14 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_fig14(record):
    result = record("fig14", scale=0.1)
    assert abs(result.derived["avg_overhead_pct"]) < 4.0
