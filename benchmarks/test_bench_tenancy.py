"""Tenancy overhead gate: accounting must cost < 5% of soak throughput.

A single tenant owning the whole board exercises every tenancy hook —
the tagged services and vCPUs, the weighted-fair pick, the grant ledger
on every donation — while changing nothing about who runs where, so the
two arms simulate comparable worlds.  Both arms pin the same storm-free
workload: the tenant arm draws from its own RNG streams
(``tenant-<id>-*`` vs ``fleet-*``), and a VM storm landing in one arm's
window but not the other's would swamp the accounting cost being gated.
The benchmark interleaves the plain soak with the one-tenant soak
(thermal drift and background noise hit both arms equally), takes
best-of-N per arm, and gates the ratio.  Each arm's rate uses its *own*
deterministic engine event count: the residual stream differences still
shift exact counts by a hair, and cross-charging one arm's events to
the other would skew the rate.
"""

import time

from repro.obs import observe
from repro.scenario import Scenario, run_soak
from repro.sim.units import MILLISECONDS

_ROUNDS = 5
_MAX_OVERHEAD = 0.05

#: The fleet-node mix minus VM storms (an effectively-infinite period):
#: startup machinery is driven by arrival luck, not by tenancy, and a
#: storm in one arm only would dominate the measured ratio.
_WORKLOAD = {"dp_utilization": 0.30, "n_monitors": 3, "rolling_tasks": 2,
             "vm_period_ms": 1e6}


def _soak(tenants):
    scenario = Scenario(arm="taichi", workload=dict(_WORKLOAD),
                        tenants=tenants)
    with observe() as session:
        summary = run_soak(scenario, seed=0,
                           duration_ns=60 * MILLISECONDS,
                           drain_ns=20 * MILLISECONDS,
                           label="bench-tenancy")
    snapshot = session.metrics.snapshot()
    events = sum(data["events_processed"]
                 for name, data in snapshot["sources"].items()
                 if name.split("#")[0] == "sim.engine")
    return summary, events


def test_bench_tenancy_overhead(benchmark):
    sole = [{"tenant_id": "sole"}]

    def measure():
        off_times, on_times = [], []
        for _ in range(_ROUNDS):
            t0 = time.perf_counter()
            summary_off, events_off = _soak(None)
            off_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            summary_on, events_on = _soak(sole)
            on_times.append(time.perf_counter() - t0)
        return summary_off, summary_on, events_off, events_on, \
            min(off_times), min(on_times)

    summary_off, summary_on, events_off, events_on, best_off, best_on = \
        benchmark.pedantic(measure, rounds=1, iterations=1)

    # The sole tenant inherits the whole board: a comparable world (the
    # tenant RNG streams shift exact counts by a hair), and every donated
    # nanosecond lands in its ledger.
    assert (abs(summary_on["dp_sample_count"]
                - summary_off["dp_sample_count"])
            <= 0.1 * summary_off["dp_sample_count"])
    assert (summary_on["tenants"]["sole"]["granted_ns"]
            == summary_on["tenancy"]["total_granted_ns"])
    assert "tenants" not in summary_off

    off_rate = events_off / best_off
    on_rate = events_on / best_on
    overhead = 1.0 - on_rate / off_rate
    benchmark.extra_info["events_per_second_off"] = round(off_rate)
    benchmark.extra_info["events_per_second_on"] = round(on_rate)
    benchmark.extra_info["overhead_pct"] = round(100.0 * overhead, 2)
    print(f"\ntenancy overhead: off {off_rate / 1e3:.0f}k ev/s, "
          f"on {on_rate / 1e3:.0f}k ev/s ({100 * overhead:+.1f}%)")
    assert overhead <= _MAX_OVERHEAD, (
        f"tenant accounting costs {100 * overhead:.1f}% of soak "
        f"throughput (gate: {100 * _MAX_OVERHEAD:.0f}%)")
