"""Benchmark regenerating Figure 15: MySQL under sysbench.

Runs the fig15 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_fig15(record):
    result = record("fig15", scale=0.1)
    assert abs(result.derived["avg_overhead_pct"]) < 5.0
