"""Span-tracking overhead gate: disabled must be free, enabled bounded.

The span tracker's disabled path is a single attribute check at each
instrumentation site plus one unconditional set-add per DP service, so a
spans-off soak must stay within 5% of the pre-span baseline.  Enabled,
the tracker hooks every trace event and runs the attribution sweep per
completed request — real work, but it must stay within a small constant
factor so spans are usable on production-length soaks.  Both arms run
interleaved (thermal drift hits them equally) with best-of-N timing, and
the enabled arm must leave the simulated world untouched: identical
event counts, identical probe samples.
"""

import time

from repro.obs import observe
from repro.scenario import Scenario, run_soak
from repro.sim.units import MILLISECONDS

_ROUNDS = 5
_MAX_ON_FACTOR = 4.0


def _soak(spans):
    scenario = Scenario(arm="taichi")
    with observe() as session:
        summary = run_soak(scenario, seed=0,
                           duration_ns=60 * MILLISECONDS,
                           drain_ns=20 * MILLISECONDS,
                           label="bench-spans", spans=spans)
    snapshot = session.metrics.snapshot()
    events = sum(data["events_processed"]
                 for name, data in snapshot["sources"].items()
                 if name.split("#")[0] == "sim.engine")
    return summary, events


def test_bench_span_overhead(benchmark):
    def measure():
        off_times, on_times = [], []
        for _ in range(_ROUNDS):
            t0 = time.perf_counter()
            summary_off, events_off = _soak(False)
            off_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            summary_on, events_on = _soak(True)
            on_times.append(time.perf_counter() - t0)
        return summary_off, summary_on, events_off, events_on, \
            min(off_times), min(on_times)

    summary_off, summary_on, events_off, events_on, best_off, best_on = \
        benchmark.pedantic(measure, rounds=1, iterations=1)

    # Spans only read state and record events: the simulated world is
    # byte-identical, so the engine processes the exact same events.
    assert events_on == events_off
    assert summary_on["dp_sample_count"] == summary_off["dp_sample_count"]
    assert summary_on["spans"]["completed"] > 0

    off_rate = events_off / best_off
    on_rate = events_off / best_on
    factor = best_on / best_off
    benchmark.extra_info["events_processed"] = events_off
    benchmark.extra_info["events_per_second_off"] = round(off_rate)
    benchmark.extra_info["events_per_second_on"] = round(on_rate)
    benchmark.extra_info["enabled_factor"] = round(factor, 2)
    print(f"\nspan overhead: off {off_rate / 1e3:.0f}k ev/s, "
          f"on {on_rate / 1e3:.0f}k ev/s ({factor:.2f}x when enabled)")
    assert factor <= _MAX_ON_FACTOR, (
        f"span tracking costs {factor:.2f}x soak wall time "
        f"(gate: {_MAX_ON_FACTOR:.1f}x)")


def test_bench_span_disabled_does_no_work():
    """The within-5%-when-disabled gate, asserted structurally.

    Two identical spans-off arms differ only by machine jitter (observed
    up to ~6% on shared runners), so a wall-clock delta gate flakes
    without measuring the code.  Instead prove the disabled path does
    zero per-event work: no tracer hook is registered, and after a real
    DP run under load the tracker holds no spans, no attribution
    intervals, and no exemplars — the only footprint is the
    unconditional per-service thread registration.
    """
    from repro.workloads.background import start_dp_background

    scenario = Scenario(arm="taichi")
    deployment = scenario.build(seed=0)
    env = deployment.env
    assert env.spans.enabled is False
    assert env.spans.observe not in env.tracer.hooks

    start_dp_background(deployment, utilization=0.4,
                        duration_ns=20 * MILLISECONDS)
    env.run(until=25 * MILLISECONDS)

    assert env.now > 0
    assert env.spans.enabled is False
    assert env.spans.observe not in env.tracer.hooks
    assert env.spans.roots_completed == 0
    assert env.spans.open_spans() == 0
    assert env.spans.reservoirs == {}
    assert env.spans.exemplars() == {}
    assert env.spans._cpu_iv == {}
    assert env.spans._tree == {}
    assert env.spans._request_seq == 0
    # DP services register their poller thread unconditionally so spans
    # may be enabled mid-run; that set is the disabled path's only state.
    assert env.spans._dp_threads
