"""Benchmark regenerating Table 2: virtualization architectures compared.

Runs the table2 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_table2(record):
    result = record("table2", scale=0.1)
    rows = {r["architecture"]: r for r in result.rows}
    taichi = next(v for k, v in rows.items() if "hybrid" in k)
    assert taichi["os_count"] == 1
