"""Benchmark regenerating the Section 9 cache-isolation optimization.

Runs the ext_cache_isolation experiment end to end at a reduced scale and prints the
reproduced rows next to the claim it validates.
"""


def test_bench_ext_cache_isolation(record):
    result = record("ext_cache_isolation", scale=0.3)
    assert result.derived["pollution_overhead_pct"] > 0
