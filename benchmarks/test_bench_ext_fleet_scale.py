"""Benchmark regenerating the fleet scale-out extension.

Runs ext_fleet_scale end to end at a reduced scale: two small fleets over
identical node ids and seeds (all-Tai Chi with the inverse adaptation vs.
all-static), scored on fleet-wide DP p99 and VM-startup SLO attainment.
Tai Chi must win both.
"""


def test_bench_ext_fleet_scale(record):
    result = record("ext_fleet_scale", scale=0.1)
    assert result.derived["fleet_dp_p99_improvement"] > 1.0
    assert (result.derived["taichi_dp_slo_pct"]
            > result.derived["static_dp_slo_pct"])
    assert (result.derived["taichi_startup_slo_pct"]
            > result.derived["static_startup_slo_pct"])
