"""Benchmark regenerating Figure 17: VM startup with/without Tai Chi.

Runs the fig17 experiment end to end at a reduced scale and prints the
reproduced rows next to the paper's reference values.
"""


def test_bench_fig17(record):
    result = record("fig17", scale=0.3)
    assert all(r["reduction"] > 1.0 for r in result.rows)
