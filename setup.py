"""Setup shim for environments without network access.

``pip install -e .`` needs the ``wheel`` package to build PEP 660 editable
wheels; this offline environment does not ship it, so ``python setup.py
develop`` (or the .pth fallback below) provides the editable install.
"""

from setuptools import setup

setup()
