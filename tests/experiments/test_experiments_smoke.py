"""Tiny-scale runs of every experiment, asserting the paper's shape.

Each test runs the real experiment pipeline at a small scale factor and
checks the *direction* of the published result (who wins, roughly how),
not absolute values.
"""

import pytest

from repro.experiments import run_experiment

SCALE = 0.1


@pytest.fixture(scope="module")
def results():
    return {}


def run_cached(results, exp_id, scale=SCALE):
    if exp_id not in results:
        results[exp_id] = run_experiment(exp_id, scale=scale, seed=0)
    return results[exp_id]


def test_fig2_cp_degrades_with_density(results):
    result = run_cached(results, "fig2", scale=0.3)
    ratios = [row["cp_exec_vs_x1"] for row in result.rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 2.5  # strong degradation at x4


def test_fig3_utilization_mostly_idle(results):
    result = run_cached(results, "fig3")
    assert result.derived["fraction_below_32.5pct"] > 0.99


def test_fig4_spike_is_three_orders_of_magnitude(results):
    result = run_cached(results, "fig4")
    assert result.derived["spike_vs_clean"] > 50


def test_fig5_band_fraction(results):
    result = run_cached(results, "fig5")
    assert 0.92 < result.derived["fraction_1_to_5ms"] < 0.97
    assert result.derived["max_duration_ms"] <= 67


def test_fig6_window_exceeds_switch_cost(results):
    result = run_cached(results, "fig6")
    assert result.derived["window_hides_switch"]
    assert result.derived["preprocessing_window_us"] == pytest.approx(3.2)


def test_fig11_taichi_wins_and_gap_grows(results):
    result = run_cached(results, "fig11", scale=0.34)
    speedups = [row["speedup"] for row in result.rows]
    assert speedups[-1] > 1.5              # clear win at 32
    assert speedups[-1] >= speedups[0]     # gap grows with concurrency


def test_fig12_ordering_baseline_taichi_vdp_type2(results):
    result = run_cached(results, "fig12")
    by_system = {row["system"]: row["cps"] for row in result.rows}
    assert by_system["taichi"] >= by_system["baseline"] * 0.97
    assert by_system["taichi-vdp"] < by_system["baseline"] * 0.97
    assert by_system["type2"] < by_system["taichi-vdp"]


def test_fig13_storage_ordering(results):
    result = run_cached(results, "fig13")
    by_system = {row["system"]: row["iops"] for row in result.rows}
    assert by_system["taichi"] >= by_system["baseline"] * 0.97
    assert by_system["type2"] < by_system["taichi-vdp"] < by_system["baseline"]


def test_table5_probe_protects_tail(results):
    result = run_cached(results, "table5")
    assert result.derived["taichi_avg_vs_baseline"] < 1.05
    assert result.derived["noprobe_max_vs_baseline"] > 2.0
    assert result.derived["noprobe_mdev_vs_baseline"] > 2.0


def test_fig14_overhead_small(results):
    result = run_cached(results, "fig14")
    assert abs(result.derived["avg_overhead_pct"]) < 4.0


def test_fig15_mysql_overhead_small(results):
    result = run_cached(results, "fig15")
    assert abs(result.derived["avg_overhead_pct"]) < 5.0


def test_fig16_nginx_overhead_small(results):
    result = run_cached(results, "fig16")
    assert abs(result.derived["avg_overhead_pct"]) < 5.0


def test_fig17_taichi_reduces_startup_everywhere(results):
    result = run_cached(results, "fig17", scale=0.3)
    assert all(row["reduction"] > 1.0 for row in result.rows)
    assert all(row["taichi_vs_slo"] < row["baseline_vs_slo"]
               for row in result.rows)


def test_table1_granularity_gap(results):
    result = run_cached(results, "table1")
    assert result.derived["kernel_preemption_ms"] > 0.5
    assert result.derived["taichi_preemption_us_p50"] < 100


def test_table2_structural_properties(results):
    result = run_cached(results, "table2")
    by_arch = {row["architecture"]: row for row in result.rows}
    taichi = next(v for k, v in by_arch.items() if "Tai Chi (hybrid)" in k)
    type2 = next(v for k, v in by_arch.items() if "Type-2" in k)
    assert taichi["os_count"] == 1
    assert type2["os_count"] == 2
    assert taichi["dp_cp_ipc"] == "Native"
    assert taichi["dp_overhead_pct"] < type2["dp_overhead_pct"]


def test_ext_dp_boost_gains(results):
    result = run_cached(results, "ext_dp_boost")
    assert result.derived["iops_gain_pct"] > 10
    assert result.derived["cps_gain_pct"] > 10
