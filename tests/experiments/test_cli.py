"""Tests for the experiments CLI."""

import os

import pytest

from repro.experiments.cli import main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("fig11", "table5", "ext_dp_boost", "ablation_slice"):
        assert exp_id in out


def test_run_single_experiment(capsys):
    assert main(["run", "fig6", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "fig6" in out
    assert "preprocessing_window_us" in out


def test_run_writes_out_file(tmp_path, capsys):
    out_path = os.path.join(tmp_path, "report.txt")
    assert main(["run", "fig3", "--scale", "0.1", "--out", out_path]) == 0
    capsys.readouterr()
    with open(out_path) as handle:
        assert "fig3" in handle.read()


def test_run_unknown_experiment_raises():
    with pytest.raises(KeyError):
        main(["run", "fig999"])


def test_validate_subset(capsys):
    assert main(["validate", "--scale", "0.1", "--only", "fig3,fig6"]) == 0
    out = capsys.readouterr().out
    assert "[OK ] fig3" in out
    assert "[OK ] fig6" in out
    assert "pass their shape checks" in out


def test_validate_writes_markdown(tmp_path, capsys):
    out_path = os.path.join(tmp_path, "EXP.md")
    assert main(["validate", "--scale", "0.1", "--only", "fig6",
                 "--out", out_path]) == 0
    out = capsys.readouterr().out
    assert "latency profile (fig4): 0 invariant violations" in out
    with open(out_path) as handle:
        text = handle.read()
    assert "# EXPERIMENTS" in text
    assert "fig6" in text
    assert "Scheduling-latency profile" in text
    assert "wakeup" in text


def test_seed_changes_are_accepted(capsys):
    assert main(["run", "fig3", "--scale", "0.1", "--seed", "7"]) == 0
    capsys.readouterr()


def test_run_with_trace_and_metrics_exports(tmp_path, capsys):
    import json

    trace_path = os.path.join(tmp_path, "t.json")
    jsonl_path = os.path.join(tmp_path, "t.jsonl")
    metrics_path = os.path.join(tmp_path, "m.json")
    assert main(["run", "fig4", "--trace", trace_path,
                 "--jsonl", jsonl_path, "--metrics", metrics_path]) == 0
    out = capsys.readouterr().out
    assert "wrote Chrome trace" in out
    assert "sim.engine" in out  # metrics summary echoed to the terminal

    with open(trace_path) as handle:
        doc = json.load(handle)
    kinds = {event["name"] for event in doc["traceEvents"]}
    assert "vcpu v0" in kinds          # vmenter/vmexit became virt slices
    assert "ipi_route" in kinds
    phases = {event["ph"] for event in doc["traceEvents"]}
    assert {"M", "X", "i", "C"} <= phases

    with open(jsonl_path) as handle:
        lines = [json.loads(line) for line in handle]
    assert any(line["kind"] == "vmenter" for line in lines)

    with open(metrics_path) as handle:
        metrics = json.load(handle)
    engine_sources = [name for name in metrics["sources"]
                      if name.split("#")[0] == "sim.engine"]
    assert engine_sources
    first = metrics["sources"][engine_sources[0]]
    assert first["events_processed"] > 0
    assert "events_per_wall_s" in first


def test_run_check_invariants_clean(capsys):
    assert main(["run", "fig4", "--scale", "0.2", "--check-invariants"]) == 0
    out = capsys.readouterr().out
    assert "all checks passed (0 violations)" in out


def test_analyze_capture_roundtrip(tmp_path, capsys):
    import json

    jsonl_path = os.path.join(tmp_path, "t.jsonl")
    json_path = os.path.join(tmp_path, "analysis.json")
    assert main(["run", "fig4", "--jsonl", jsonl_path,
                 "--check-invariants"]) == 0
    capsys.readouterr()

    assert main(["analyze", jsonl_path, "--json", json_path]) == 0
    out = capsys.readouterr().out
    assert "wakeup->sched_in latency" in out
    assert "switch cost" in out
    assert "all checks passed (0 violations)" in out

    with open(json_path) as handle:
        doc = json.load(handle)
    assert not doc["violations"]
    virt = [report for report in doc["streams"].values()
            if report["switch_cost_ns"]["count"]]
    assert virt
    # Every vmexit->vmenter transition costs vmexit_ns + vmenter_ns = 2 us.
    assert virt[0]["switch_cost_ns"]["max"] == pytest.approx(2000)


def test_run_with_faults_plan_and_analyze(tmp_path, capsys):
    from repro.faults import FaultPlan, FaultSpec
    from repro.sim import MILLISECONDS

    plan = FaultPlan(name="cli-mini", faults=[
        FaultSpec("probe_outage", at_ns=15 * MILLISECONDS,
                  duration_ns=10 * MILLISECONDS),
        FaultSpec("cpu_offline", at_ns=20 * MILLISECONDS,
                  duration_ns=5 * MILLISECONDS, params={"cpu": "cp"}),
    ])
    plan_path = os.path.join(tmp_path, "plan.json")
    plan.to_json(plan_path)
    jsonl_path = os.path.join(tmp_path, "faulted.jsonl")

    assert main(["run", "fig14", "--scale", "0.2", "--faults", plan_path,
                 "--jsonl", jsonl_path, "--check-invariants"]) == 0
    out = capsys.readouterr().out
    assert "fault injection: plan 'cli-mini'" in out
    assert "all checks passed (0 violations)" in out

    # The capture carries the fault events; analyze accounts for them and
    # the fault-aware checkers accept the perturbed stream.
    assert main(["analyze", jsonl_path]) == 0
    out = capsys.readouterr().out
    assert "faults:" in out
    assert "all checks passed (0 violations)" in out


def test_run_with_unknown_faults_spec_is_rejected():
    with pytest.raises(ValueError, match="--faults expects"):
        main(["run", "fig14", "--scale", "0.1", "--faults", "nonsense"])


def test_validate_parallel_matches_serial_order(capsys):
    assert main(["validate", "--scale", "0.1", "--jobs", "2",
                 "--only", "fig3,fig6"]) == 0
    out = capsys.readouterr().out
    # Progress streams in --only order even when run on a pool.
    assert out.index("[OK ] fig3") < out.index("[OK ] fig6")


def test_fleet_command_end_to_end(tmp_path, capsys):
    import json

    md_path = os.path.join(tmp_path, "fleet.md")
    json_path = os.path.join(tmp_path, "fleet.json")
    capture_dir = os.path.join(tmp_path, "caps")
    assert main(["fleet", "rack", "--nodes", "2", "--jobs", "2",
                 "--scale", "0.05", "--check-invariants",
                 "--out", md_path, "--json", json_path,
                 "--capture-dir", capture_dir]) == 0
    out = capsys.readouterr().out
    assert "fleet 'rack': 2 nodes" in out
    assert "dp SLO attainment" in out

    with open(md_path) as handle:
        assert "# Fleet report" in handle.read()
    with open(json_path) as handle:
        doc = json.load(handle)
    assert "timing" not in doc  # canonical report is deterministic
    assert doc["aggregate"]["fleet"]["invariants_ok"]
    captures = sorted(os.listdir(capture_dir))
    assert captures == ["rack-00.jsonl", "rack-01.jsonl"]

    # The capture directory feeds straight into the analyzer.
    analysis_path = os.path.join(tmp_path, "analysis.json")
    assert main(["analyze", capture_dir, "--json", analysis_path]) == 0
    out = capsys.readouterr().out
    assert "==== rack-00" in out
    assert "combined: 2 captures, 0 invariant violations" in out
    with open(analysis_path) as handle:
        combined = json.load(handle)
    assert set(combined) == {"rack-00", "rack-01"}
    assert not combined["rack-00"]["violations"]


def test_fleet_custom_spec_with_overrides(tmp_path, capsys):
    from repro.fleet import uniform_spec

    spec_path = os.path.join(tmp_path, "custom.json")
    uniform_spec("custom", "taichi", 3, duration_ms=40.0,
                 drain_ms=20.0).to_json(spec_path)
    assert main(["fleet", spec_path, "--nodes", "1", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "fleet 'custom': 1 nodes, seed 5" in out


def test_fleet_rejects_unknown_spec():
    with pytest.raises(ValueError, match="preset"):
        main(["fleet", "not-a-preset"])


def test_analyze_empty_directory(tmp_path, capsys):
    empty = os.path.join(tmp_path, "empty")
    os.makedirs(empty)
    assert main(["analyze", empty]) == 2
    assert "no JSONL captures found" in capsys.readouterr().err


def test_fleet_telemetry_dir_and_top(tmp_path, capsys):
    telemetry_dir = os.path.join(tmp_path, "telemetry")
    assert main(["fleet", "rack", "--nodes", "2", "--jobs", "1",
                 "--scale", "0.1", "--telemetry-dir", telemetry_dir,
                 "--telemetry-interval-ms", "5"]) == 0
    out = capsys.readouterr().out
    assert "telemetry" in out
    assert os.path.exists(os.path.join(telemetry_dir, "merged.jsonl"))
    assert os.path.exists(os.path.join(telemetry_dir, "fleet.openmetrics"))

    assert main(["top", telemetry_dir]) == 0
    top_out = capsys.readouterr().out
    assert "rack-00" in top_out
    assert "dp p99" in top_out


def test_top_reads_fleet_json(tmp_path, capsys):
    json_path = os.path.join(tmp_path, "fleet.json")
    assert main(["fleet", "rack", "--nodes", "2", "--jobs", "1",
                 "--scale", "0.1", "--json", json_path]) == 0
    capsys.readouterr()
    assert main(["top", json_path]) == 0
    assert "rack-00" in capsys.readouterr().out


def test_soak_spans_prints_worst_request(capsys):
    assert main(["soak", "taichi", "--duration-ms", "60",
                 "--drain-ms", "30", "--spans"]) == 0
    out = capsys.readouterr().out
    assert "requests traced" in out
    assert "dp worst request: pkt-" in out
    assert "dominated by" in out


def test_analyze_critical_path_and_trace_request(tmp_path, capsys):
    # One spans-on fleet capture drives analyze --critical-path (the CI
    # smoke flow) and the per-request waterfall view.
    capture_dir = os.path.join(tmp_path, "captures")
    assert main(["fleet", "rack", "--nodes", "1", "--jobs", "1",
                 "--scale", "0.1", "--spans",
                 "--capture-dir", capture_dir]) == 0
    capsys.readouterr()
    capture = os.path.join(capture_dir, "rack-00.jsonl")
    json_path = os.path.join(tmp_path, "analysis.json")

    assert main(["analyze", capture, "--critical-path",
                 "--json", json_path]) == 0
    out = capsys.readouterr().out
    assert "== channel 'dp'" in out
    assert "tail dominated by" in out
    assert "exemplar pkt-" in out

    import json as json_mod
    with open(json_path) as handle:
        payload = json_mod.load(handle)
    block = payload["critical_path"]["dp"]
    assert block["exemplars"]
    worst = block["exemplars"][0]["request"]

    assert main(["trace-request", capture, worst]) == 0
    waterfall = capsys.readouterr().out
    assert worst in waterfall
    assert "critical path:" in waterfall

    assert main(["trace-request", capture, "pkt-does-not-exist"]) == 2
    assert "not found" in capsys.readouterr().err


def test_fleet_spans_json_feeds_top_worst_requests(tmp_path, capsys):
    json_path = os.path.join(tmp_path, "fleet.json")
    assert main(["fleet", "rack", "--nodes", "2", "--jobs", "1",
                 "--scale", "0.1", "--spans", "--json", json_path]) == 0
    capsys.readouterr()
    assert main(["top", json_path]) == 0
    out = capsys.readouterr().out
    assert "worst requests" in out
    assert "dominant" in out
