"""Tests for the experiment registry and reporting."""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentResult, format_table, get_experiment
from repro.experiments.registry import register


PAPER_IDS = {
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "fig17", "table1", "table2", "table5",
    "ext_dp_boost",
}
EXTENSION_IDS = {
    "ablation_threshold", "ablation_slice", "ext_preemptible_kernel",
    "ext_audit", "ext_probe_fusion", "ext_cache_isolation",
    "ext_production_soak", "ext_window_sweep", "ext_fault_resilience",
    "ext_fleet_scale", "ext_fleet_durability", "ext_multitenant",
}


def test_every_paper_artifact_registered():
    assert PAPER_IDS <= set(EXPERIMENTS)


def test_extension_experiments_registered():
    assert set(EXPERIMENTS) == PAPER_IDS | EXTENSION_IDS


def test_entries_have_metadata():
    for entry in EXPERIMENTS.values():
        assert entry["title"]
        assert entry["paper_ref"]
        assert callable(entry["run"])


def test_get_unknown_experiment_raises():
    with pytest.raises(KeyError):
        get_experiment("fig999")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):
        register("fig2", "dup", "dup")(lambda scale, seed: None)


def test_format_table_alignment():
    rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
    text = format_table(rows)
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert len({len(line) for line in lines}) == 1  # aligned


def test_format_empty_table():
    assert format_table([]) == "(no rows)"


def test_result_to_text_contains_sections():
    result = ExperimentResult(
        exp_id="x", title="T", paper_ref="Fig X",
        rows=[{"k": 1}], paper={"ref": 2}, derived={"d": 3}, notes="n",
    )
    text = result.to_text()
    for fragment in ("== x:", "paper reference", "derived", "notes"):
        assert fragment in text
