"""Tiny-scale runs of the ablation and extension experiments."""

import pytest

from repro.experiments import run_experiment

SCALE = 0.12


@pytest.fixture(scope="module")
def results():
    return {}


def run_cached(results, exp_id, scale=SCALE):
    if exp_id not in results:
        results[exp_id] = run_experiment(exp_id, scale=scale, seed=0)
    return results[exp_id]


def test_ablation_threshold_adaptive_harvests_more_than_fixed_large(results):
    result = run_cached(results, "ablation_threshold", scale=0.2)
    derived = result.derived
    assert derived["adaptive_harvested_ms"] > derived["large_harvested_ms"]


def test_ablation_threshold_small_n_has_false_positives(results):
    result = run_cached(results, "ablation_threshold", scale=0.2)
    assert result.derived["small_false_positive_rate"] > 0.05


def test_ablation_slice_adaptive_cuts_switch_overhead(results):
    result = run_cached(results, "ablation_slice", scale=0.2)
    derived = result.derived
    assert (derived["adaptive_switch_overhead_pct"]
            < derived["fixed_switch_overhead_pct"] * 0.7)


def test_preemptible_kernel_context_bounds_rt_latency(results):
    result = run_cached(results, "ext_preemptible_kernel", scale=0.3)
    assert result.derived["max_latency_improvement"] > 2.0
    direct, wrapped = result.rows
    assert wrapped["rt_wake_max_us"] < 1_000  # sub-millisecond
    assert direct["rt_wake_max_us"] > 1_000   # ms-scale inversion


def test_audit_captures_privileged_instructions(results):
    result = run_cached(results, "ext_audit", scale=0.3)
    assert result.derived["records"] > 5
    assert 0.1 < result.derived["privileged_fraction"] < 0.9


def test_probe_fusion_reduces_premature_exits(results):
    result = run_cached(results, "ext_probe_fusion", scale=0.25)
    derived = result.derived
    assert derived["premature_rate_fused"] < derived["premature_rate_plain"]
    assert derived["premature_exits_avoided"] > 0


def test_cache_isolation_removes_pollution_overhead(results):
    result = run_cached(results, "ext_cache_isolation", scale=0.3)
    assert result.derived["pollution_overhead_pct"] > 2.0


def test_window_sweep_shows_the_observation4_crossover(results):
    result = run_cached(results, "ext_window_sweep", scale=0.2)
    derived = result.derived
    assert derived["worst_added_qwait_covered_us"] < 0.5
    assert (derived["worst_added_qwait_uncovered_us"]
            > derived["worst_added_qwait_covered_us"])


def test_production_soak_holds_both_slos(results):
    result = run_cached(results, "ext_production_soak", scale=0.2)
    assert result.derived["dp_p999_vs_baseline"] < 1.10
    assert result.derived["startup_speedup"] > 1.0
    assert (result.derived["taichi_startup_compliance_pct"]
            >= result.derived["static_startup_compliance_pct"])


def test_multitenant_isolation_holds_the_victim_slo(results):
    result = run_cached(results, "ext_multitenant", scale=0.05)
    derived = result.derived
    # Isolation-on holds the declared 300us SLO the sharing arm breaches.
    assert derived["victim_dp_p99_on_us"] <= 300.0
    assert derived["victim_dp_p99_off_us"] > 300.0
    assert derived["interference_ratio"] > 1.5
    # The isolation invariants verified clean under the storm.
    assert derived["isolation_invariant_violations"] == 0
    # Harvesting still starts neighbor VMs the static partition cannot.
    assert derived["noisy_vms_on"] > derived["noisy_vms_static"]
