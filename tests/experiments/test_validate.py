"""Tests for the validation harness."""

import os

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.report import ExperimentResult
from repro.experiments.validate import (
    EXPECTATIONS,
    Expectation,
    run_validation,
    write_experiments_md,
)


def test_every_experiment_has_an_expectation_entry():
    # table2 is allowed an empty list (purely structural), all others
    # must carry at least one shape band.
    for exp_id in EXPERIMENTS:
        assert exp_id in EXPECTATIONS, f"missing expectations for {exp_id}"
    for exp_id, expectations in EXPECTATIONS.items():
        if exp_id != "table2":
            assert expectations, f"{exp_id} has no shape checks"


def test_expectation_evaluates_derived_metrics():
    expectation = Expectation("x above 1", lambda d: d["x"] > 1)
    good = ExperimentResult("e", "t", "r", derived={"x": 2})
    bad = ExperimentResult("e", "t", "r", derived={"x": 0})
    assert expectation.evaluate(good)
    assert not expectation.evaluate(bad)


def test_expectation_missing_key_is_failure_not_crash():
    expectation = Expectation("needs y", lambda d: d["y"] > 1)
    result = ExperimentResult("e", "t", "r", derived={})
    assert expectation.evaluate(result) is False


def test_run_validation_subset_and_report(tmp_path):
    progress = []
    outcomes = run_validation(scale=0.1, seed=0, exp_ids=["fig3", "fig6"],
                              progress=progress.append)
    assert [outcome["id"] for outcome in outcomes] == ["fig3", "fig6"]
    assert all(all(ok for _, ok in outcome["checks"])
               for outcome in outcomes)
    assert len(progress) == 2

    path = os.path.join(tmp_path, "EXPERIMENTS.md")
    write_experiments_md(path, outcomes, scale=0.1, seed=0)
    with open(path) as handle:
        text = handle.read()
    assert "## fig3" in text
    assert "## fig6" in text
    assert "Shape checks" in text
    assert "- [x]" in text
