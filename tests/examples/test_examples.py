"""Smoke tests: the runnable examples execute end to end.

Each example is a self-contained script with a ``main()``; these tests run
the quicker ones in-process and sanity-check their printed reports.
"""

import importlib.util
import os
import sys


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def load_example(name):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, f"{name}.py"))
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contents():
    names = {entry for entry in os.listdir(EXAMPLES_DIR)
             if entry.endswith(".py")}
    assert {"quickstart.py", "vm_startup_storm.py", "latency_sensitive.py",
            "adaptive_tuning.py", "custom_smartnic.py", "security_audit.py",
            "vm_lifecycle.py"} <= names


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "DP packets delivered" in out
    assert "CP tasks finished    : 24" in out
    assert "vCPU slices run" in out


def test_vm_lifecycle_runs(capsys):
    load_example("vm_lifecycle").main()
    out = capsys.readouterr().out
    assert "running after" in out
    assert "Tenant network I/O: 200 packets" in out
    assert "vms=0" in out


def test_security_audit_runs(capsys):
    load_example("security_audit").main()
    out = capsys.readouterr().out
    assert "instructions recorded" in out
    assert "affinity restored" in out
    assert "hog in a vCPU context" in out
