"""Tests for the adaptive empty-poll threshold (software probe)."""

from repro.core import TaiChiConfig
from repro.core.sw_probe import SoftwareWorkloadProbe
from repro.virt import VMExitReason


class FakeScheduler:
    def __init__(self):
        self.idle_notifications = []

    def on_dp_idle(self, cpu_id):
        self.idle_notifications.append(cpu_id)


class FakeService:
    def __init__(self, name="svc", cpu_id=0):
        self.name = name
        self.cpu_id = cpu_id


def make_probe(**config_kwargs):
    config = TaiChiConfig(**config_kwargs)
    return SoftwareWorkloadProbe(config, FakeScheduler()), config


def test_initial_threshold():
    probe, config = make_probe()
    assert probe.threshold_for(FakeService()) == config.initial_threshold


def test_notify_routes_to_scheduler():
    probe, _ = make_probe()
    service = FakeService(cpu_id=5)
    probe.notify_idle(service)
    assert probe.scheduler.idle_notifications == [5]
    assert probe.notifications == 1


def test_timeslice_expiry_halves_threshold():
    probe, config = make_probe()
    service = FakeService()
    probe.adapt(service, VMExitReason.TIMESLICE_EXPIRED)
    assert probe.threshold_for(service) == config.initial_threshold // 2


def test_hw_probe_exit_doubles_threshold():
    probe, config = make_probe()
    service = FakeService()
    probe.adapt(service, VMExitReason.HW_PROBE_IRQ)
    assert probe.threshold_for(service) == config.initial_threshold * 2


def test_threshold_clamped_at_min():
    probe, config = make_probe()
    service = FakeService()
    for _ in range(30):
        probe.adapt(service, VMExitReason.TIMESLICE_EXPIRED)
    assert probe.threshold_for(service) == config.min_threshold


def test_threshold_clamped_at_max():
    probe, config = make_probe()
    service = FakeService()
    for _ in range(30):
        probe.adapt(service, VMExitReason.HW_PROBE_IRQ)
    assert probe.threshold_for(service) == config.max_threshold


def test_halt_does_not_adjust():
    probe, config = make_probe()
    service = FakeService()
    probe.adapt(service, VMExitReason.HALT)
    assert probe.threshold_for(service) == config.initial_threshold


def test_thresholds_independent_per_service():
    probe, config = make_probe()
    a, b = FakeService("a"), FakeService("b")
    probe.adapt(a, VMExitReason.HW_PROBE_IRQ)
    assert probe.threshold_for(a) == config.initial_threshold * 2
    assert probe.threshold_for(b) == config.initial_threshold
