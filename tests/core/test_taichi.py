"""Tests for the TaiChi deployment object."""

import pytest

from repro.core import TaiChi
from repro.dp import deploy_dp_services
from repro.hw import SmartNIC
from repro.sim import Environment, MILLISECONDS


def make_installed(n_vcpus=None, config=None):
    env = Environment()
    board = SmartNIC(env)
    taichi = TaiChi(board, config=config)
    taichi.install(n_vcpus=n_vcpus)
    env.run(until=2 * MILLISECONDS)  # let vCPUs boot
    return env, board, taichi


def test_install_creates_and_boots_vcpus():
    env, board, taichi = make_installed()
    assert len(taichi.vcpus) == 8
    assert all(vcpu.online for vcpu in taichi.vcpus)
    assert all(vcpu.is_virtual for vcpu in taichi.vcpus)


def test_vcpus_registered_as_native_cpus():
    env, board, taichi = make_installed()
    for vcpu in taichi.vcpus:
        assert board.kernel.cpus[vcpu.cpu_id] is vcpu
    assert len(board.kernel.cpus) == 12 + 8


def test_double_install_rejected():
    env, board, taichi = make_installed()
    with pytest.raises(RuntimeError):
        taichi.install()


def test_custom_vcpu_count():
    env, board, taichi = make_installed(n_vcpus=3)
    assert len(taichi.vcpus) == 3


def test_cp_affinity_combines_vcpus_and_cp_pcpus():
    env, board, taichi = make_installed()
    affinity = taichi.cp_affinity()
    assert set(board.cp_cpu_ids) <= affinity
    assert set(taichi.vcpu_ids()) <= affinity
    assert not set(board.dp_cpu_ids) & affinity


def test_attach_dp_service_wires_notifier():
    env, board, taichi = make_installed()
    services = deploy_dp_services(board, "net", cpu_ids=[0])
    taichi.attach_dp_service(services[0])
    assert services[0].idle_notifier is taichi.sw_probe
    assert taichi.scheduler._services_by_cpu[0] is services[0]


def test_ipi_hook_installed():
    env, board, taichi = make_installed()
    assert board.kernel.ipi._send_hook is not None


def test_stats_structure():
    env, board, taichi = make_installed()
    stats = taichi.stats()
    assert {"scheduler", "sw_probe", "ipi", "vcpus"} <= set(stats)
    assert len(stats["vcpus"]) == 8


def test_cp_task_runs_on_vcpu_without_code_changes():
    """The transparency claim: plain affinity binding is enough."""
    from repro.kernel import Compute

    env, board, taichi = make_installed()
    services = deploy_dp_services(board, "net")
    for service in services:
        taichi.attach_dp_service(service)
    thread = board.kernel.spawn(
        "legacy-cp", iter([Compute(5 * MILLISECONDS)]),
        affinity={taichi.vcpu_ids()[0]},
    )
    env.run(until=200 * MILLISECONDS)
    assert thread.done.triggered
    assert thread.last_cpu == taichi.vcpu_ids()[0]
