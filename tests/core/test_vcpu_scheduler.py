"""Tests for the vCPU scheduler: dispatch, adaptation, lock safety."""

from repro.core import TaiChi, TaiChiConfig
from repro.dp import deploy_dp_services
from repro.hw import IORequest, PacketKind, SmartNIC
from repro.kernel import Compute, KernelSection, LockAcquire, LockRelease, Sleep
from repro.sim import Environment, MICROSECONDS, MILLISECONDS, SECONDS
from repro.virt import VMExitReason


def make_system(config=None, dp_cpu_ids=None):
    env = Environment()
    board = SmartNIC(env)
    services = deploy_dp_services(board, "net", cpu_ids=dp_cpu_ids)
    taichi = TaiChi(board, config=config)
    taichi.install()
    for service in services:
        taichi.attach_dp_service(service)
    env.run(until=2 * MILLISECONDS)
    return env, board, taichi, services


def test_idle_dp_cpu_donated_to_cp_work():
    env, board, taichi, services = make_system()
    thread = board.kernel.spawn(
        "cp", iter([Compute(20 * MILLISECONDS)]),
        affinity={taichi.vcpu_ids()[0]},
    )
    env.run(until=200 * MILLISECONDS)
    assert thread.done.triggered
    assert taichi.scheduler.slices_run > 0


def test_adaptive_slice_doubles_on_expiry():
    config = TaiChiConfig(initial_slice_ns=50 * MICROSECONDS,
                          max_slice_ns=400 * MICROSECONDS)
    env, board, taichi, services = make_system(config=config)
    vcpu = taichi.vcpus[0]
    taichi.scheduler._adapt_slice(vcpu, VMExitReason.TIMESLICE_EXPIRED)
    assert taichi.scheduler.slice_for(vcpu) == 100 * MICROSECONDS
    taichi.scheduler._adapt_slice(vcpu, VMExitReason.TIMESLICE_EXPIRED)
    assert taichi.scheduler.slice_for(vcpu) == 200 * MICROSECONDS


def test_adaptive_slice_capped_and_reset():
    config = TaiChiConfig(initial_slice_ns=50 * MICROSECONDS,
                          max_slice_ns=100 * MICROSECONDS)
    env, board, taichi, services = make_system(config=config)
    vcpu = taichi.vcpus[0]
    for _ in range(5):
        taichi.scheduler._adapt_slice(vcpu, VMExitReason.TIMESLICE_EXPIRED)
    assert taichi.scheduler.slice_for(vcpu) == 100 * MICROSECONDS
    taichi.scheduler._adapt_slice(vcpu, VMExitReason.HW_PROBE_IRQ)
    assert taichi.scheduler.slice_for(vcpu) == 50 * MICROSECONDS


def test_hw_probe_irq_revokes_running_slice():
    env, board, taichi, services = make_system()
    board.kernel.spawn("cp", iter([Compute(50 * MILLISECONDS)]),
                       affinity=set(taichi.vcpu_ids()))

    def traffic(env):
        yield env.timeout(5 * MILLISECONDS)
        for _ in range(50):
            board.accelerator.submit(IORequest(
                PacketKind.NET_TX, 64, ("net", 0, 0), service_ns=1_500))
            yield env.timeout(300 * MICROSECONDS)

    env.process(traffic(env))
    env.run(until=100 * MILLISECONDS)
    exits = taichi.scheduler.exits_by_reason
    assert exits[VMExitReason.HW_PROBE_IRQ] > 0


def test_lock_holder_migrates_on_preemption():
    env, board, taichi, services = make_system()
    lock = board.kernel.spinlock("drv")

    def holder():
        yield LockAcquire(lock)
        yield KernelSection(10 * MILLISECONDS)
        yield LockRelease(lock)

    thread = board.kernel.spawn("holder", holder(),
                                affinity={taichi.vcpu_ids()[0]})

    def traffic(env):
        yield env.timeout(3 * MILLISECONDS)
        for _ in range(300):
            for queue in range(8):
                board.accelerator.submit(IORequest(
                    PacketKind.NET_TX, 64, ("net", queue, 0),
                    service_ns=1_500))
            yield env.timeout(100 * MICROSECONDS)

    env.process(traffic(env))
    env.run(until=1 * SECONDS)
    assert thread.done.triggered
    assert taichi.scheduler.lock_safe_migrations > 0


def test_no_slice_on_busy_dp_cpu():
    env, board, taichi, services = make_system()
    scheduler = taichi.scheduler
    # Saturate DP CPU 0 so it is never idle-blocked.
    assert not scheduler._cpu_is_donatable(0) or services[0].is_idle_blocked


def test_stats_report_exit_reasons():
    env, board, taichi, services = make_system()
    board.kernel.spawn("cp", iter([Compute(5 * MILLISECONDS)]),
                       affinity=set(taichi.vcpu_ids()))
    env.run(until=100 * MILLISECONDS)
    stats = taichi.scheduler.stats()
    assert stats["slices_run"] > 0
    assert "exits" in stats


def test_lock_holder_falls_back_to_cp_partition_when_dp_is_busy():
    """Forward progress for spinlock holders with zero idle DP CPUs.

    The holder's vCPU is backed on a dedicated CP pCPU (all DP CPUs are
    saturated with traffic), then native CP work preempts the slice while
    the spinlock is held.  Lock-safe migration must re-back the holder on
    another CP pCPU round-robin — not strand it behind the busy data
    plane — so the critical section completes and waiters do not spin
    forever.
    """
    env, board, taichi, services = make_system()
    scheduler = taichi.scheduler
    kernel = board.kernel
    lock = kernel.spinlock("drv")

    directed = []          # lock-safe re-dispatches name an explicit vcpu
    inner_dispatch = scheduler._try_dispatch

    def spying_dispatch(cpu_id, vcpu=None):
        granted = inner_dispatch(cpu_id, vcpu=vcpu)
        if granted and vcpu is not None:
            directed.append(cpu_id)
        return granted

    scheduler._try_dispatch = spying_dispatch

    def holder():
        yield LockAcquire(lock)
        yield KernelSection(25 * MILLISECONDS)
        yield LockRelease(lock)

    holder_thread = kernel.spawn("holder", holder(),
                                 affinity={taichi.vcpu_ids()[0]})

    def waiter():
        yield Sleep(5 * MILLISECONDS)
        yield LockAcquire(lock)
        yield LockRelease(lock)

    waiter_thread = kernel.spawn("waiter", waiter(),
                                 affinity={taichi.vcpu_ids()[1]})

    def saturate(env):
        # Every DP queue sees continuous traffic: no DP CPU ever idles
        # long enough to be donatable.
        while True:
            for queue in range(8):
                board.accelerator.submit(IORequest(
                    PacketKind.NET_TX, 64, ("net", queue, 0),
                    service_ns=1_500))
            yield env.timeout(10 * MICROSECONDS)

    def cp_pressure(env):
        # Native CP threads keep arriving, preempting donated slices on
        # the CP partition (the only partition with idle cycles left).
        yield env.timeout(5 * MILLISECONDS)
        while True:
            for cpu_id in board.cp_cpu_ids:
                kernel.spawn(f"native-{cpu_id}-{env.now}",
                             iter([Compute(2 * MILLISECONDS)]),
                             affinity={cpu_id})
            yield env.timeout(10 * MILLISECONDS)

    env.process(saturate(env))
    env.process(cp_pressure(env))
    env.run(until=300 * MILLISECONDS)

    assert holder_thread.done.triggered          # no deadlock
    assert waiter_thread.done.triggered          # the convoy drained
    assert scheduler.lock_safe_migrations > 0
    # The lock-safe fallback re-backed the holder on dedicated CP pCPUs,
    # and rotated over more than one of them (round-robin).
    cp_targets = {cpu for cpu in directed if cpu in board.cp_cpu_ids}
    assert len(cp_targets) > 1
