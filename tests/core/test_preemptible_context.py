"""Tests for the always-preemptible kernel context (Section 8)."""

from repro.baselines import TaiChiDeployment
from repro.core import PreemptibleKernelContext
from repro.kernel import Compute, KernelSection, SchedClass, Sleep
from repro.sim import Environment, MICROSECONDS, MILLISECONDS, SECONDS
from repro.kernel import Kernel


def kernel_hog(cycles=50, section_ns=5 * MILLISECONDS):
    for _ in range(cycles):
        yield KernelSection(section_ns)
        yield Compute(100 * MICROSECONDS)


def rt_probe(env, wake_latencies, period_ns=2 * MILLISECONDS, count=40):
    for _ in range(count):
        yield Sleep(period_ns)
        wake_latencies.append(env.now)  # refined below by caller


def test_direct_coscheduling_suffers_ms_latency():
    """Reference: RT next to a kernel hog on a bare pCPU."""
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    kernel.spawn("hog", kernel_hog())
    latencies = []

    def rt_body():
        for _ in range(20):
            target = env.now + 2 * MILLISECONDS
            yield Sleep(2 * MILLISECONDS)
            latencies.append(env.now - target)
            yield Compute(10 * MICROSECONDS)

    kernel.spawn("rt", rt_body(), sched_class=SchedClass.REALTIME)
    env.run(until=1 * SECONDS)
    assert max(latencies) > 1 * MILLISECONDS  # stuck behind sections


def test_wrapped_hog_keeps_rt_latency_microsecond_scale():
    """The hog in a vCPU context: RT wakeups stay fast on the CP pCPUs."""
    deployment = TaiChiDeployment(seed=8)
    deployment.warmup()
    env = deployment.env
    context = PreemptibleKernelContext(deployment.taichi)
    context.submit("hog", kernel_hog())

    latencies = []
    rt_cpu = deployment.board.cp_cpu_ids[0]

    def rt_body():
        for _ in range(40):
            target = env.now + 2 * MILLISECONDS
            yield Sleep(2 * MILLISECONDS)
            latencies.append(env.now - target)
            yield Compute(10 * MICROSECONDS)

    deployment.kernel.spawn("rt", rt_body(),
                            sched_class=SchedClass.REALTIME,
                            affinity={rt_cpu})
    env.run(until=1 * SECONDS)
    assert latencies
    # vCPU slices on the CP pCPU are revocable mid-section: wakeup latency
    # stays bounded by the slice mechanics, far below the 5 ms sections.
    assert max(latencies) < 1 * MILLISECONDS
    # The hog still makes progress on harvested cycles.
    hog = context.submitted[0]
    assert hog.total_runtime_ns > 0


def test_submit_confines_to_vcpus():
    deployment = TaiChiDeployment(seed=8)
    deployment.warmup()
    context = PreemptibleKernelContext(deployment.taichi)
    thread = context.submit("hog", kernel_hog(cycles=2))
    assert thread.affinity == set(deployment.taichi.vcpu_ids())


def test_wrap_affinity_retargets_existing_thread():
    deployment = TaiChiDeployment(seed=8)
    deployment.warmup()
    context = PreemptibleKernelContext(deployment.taichi)
    thread = deployment.kernel.spawn(
        "existing", kernel_hog(cycles=2),
        affinity=set(deployment.board.cp_cpu_ids))
    context.wrap_affinity(thread)
    assert thread.affinity == set(deployment.taichi.vcpu_ids())
