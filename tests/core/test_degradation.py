"""Tests for the graceful-degradation layer (repro.core.degradation)."""

import pytest

from repro.core import DegradationConfig, TaiChi
from repro.dp import deploy_dp_services
from repro.hw import SmartNIC
from repro.kernel import Compute, IPIVector
from repro.sim import Environment, MICROSECONDS, MILLISECONDS
from repro.virt import VMExitReason


def make_system(degradation_config=None, repartition=None):
    env = Environment()
    board = SmartNIC(env)
    services = deploy_dp_services(board, "net")
    taichi = TaiChi(board)
    taichi.install()
    for service in services:
        taichi.attach_dp_service(service)
    manager = taichi.enable_degradation(config=degradation_config,
                                        repartition=repartition)
    env.run(until=2 * MILLISECONDS)
    return env, board, taichi, manager


class StubService:
    """A fake DP service that is permanently breaching its tail SLO."""

    is_idle_blocked = False

    def __init__(self, cpu_id, wait_ns=1 * MILLISECONDS, samples=32):
        self.cpu_id = cpu_id
        self.waits = [wait_ns] * samples
        self.resets = 0

    def recent_queue_wait_ns(self):
        return list(self.waits)

    def reset_queue_wait_window(self):
        self.resets += 1


# -- wiring --------------------------------------------------------------------


def test_enable_degradation_wires_manager_and_stats():
    env, board, taichi, manager = make_system()
    assert manager.installed
    assert taichi.degradation is manager
    stats = taichi.stats()["degradation"]
    assert stats["ipi_retries"] == 0
    assert stats["probe_degraded"] is False


def test_enable_degradation_twice_is_rejected():
    env, board, taichi, manager = make_system()
    with pytest.raises(RuntimeError, match="already enabled"):
        taichi.enable_degradation()


def test_degradation_requires_installed_framework():
    env = Environment()
    board = SmartNIC(env)
    taichi = TaiChi(board)
    with pytest.raises(RuntimeError, match="install Tai Chi"):
        taichi.enable_degradation()


# -- grant watchdog ------------------------------------------------------------


def test_watchdog_requeues_stranded_reservation():
    config = DegradationConfig(watchdog_interval_ns=100 * MICROSECONDS,
                               reserve_timeout_ns=50 * MICROSECONDS)
    env, board, taichi, manager = make_system(config)
    scheduler = taichi.scheduler
    vcpu = taichi.vcpus[0]
    # Strand a reservation by hand: the softirq that should consume it
    # will never run (the exact state a dead donor CPU leaves behind).
    scheduler._reserved[vcpu] = env.now
    env.run(until=env.now + 1 * MILLISECONDS)
    assert manager.watchdog_requeues >= 1
    assert vcpu not in scheduler._reserved


def test_watchdog_force_revokes_overaged_grants():
    config = DegradationConfig(watchdog_interval_ns=50 * MICROSECONDS,
                               grant_timeout_ns=20 * MICROSECONDS)
    env, board, taichi, manager = make_system(config)
    board.kernel.spawn("cp", iter([Compute(20 * MILLISECONDS)]),
                       affinity=set(taichi.vcpu_ids()))
    env.run(until=env.now + 50 * MILLISECONDS)
    assert manager.watchdog_revokes > 0
    assert taichi.scheduler.exits_by_reason[VMExitReason.EXTERNAL] > 0


# -- IPI retry -----------------------------------------------------------------


def test_ipi_retry_recovers_a_transient_drop():
    env, board, taichi, manager = make_system()
    kernel = board.kernel
    drops = {"left": 2}

    def flaky(dst_cpu, vector, payload):
        if drops["left"] > 0:
            drops["left"] -= 1
            return ("drop",)
        return None

    kernel.ipi.set_fault_hook(flaky)
    dst = kernel.cpus[board.cp_cpu_ids[0]]
    assert kernel.ipi.deliver(dst, IPIVector.RESCHED) is False
    env.run(until=env.now + 2 * MILLISECONDS)
    assert manager.ipi_retries == 2        # one dropped retry, one delivered
    assert manager.ipi_retry_delivered == 1
    assert manager.ipi_retry_exhausted == 0


def test_ipi_retry_gives_up_after_bounded_attempts():
    config = DegradationConfig(ipi_retry_limit=3,
                               ipi_retry_backoff_ns=10 * MICROSECONDS)
    env, board, taichi, manager = make_system(config)
    kernel = board.kernel
    kernel.ipi.set_fault_hook(lambda *args: ("drop",))
    dst = kernel.cpus[board.cp_cpu_ids[0]]
    assert kernel.ipi.deliver(dst, IPIVector.RESCHED) is False
    env.run(until=env.now + 2 * MILLISECONDS)
    assert manager.ipi_retries == 3
    assert manager.ipi_retry_exhausted == 1
    assert manager.ipi_retry_delivered == 0


# -- SLO guard -----------------------------------------------------------------


def test_slo_guard_blocks_donation_on_sustained_breach():
    config = DegradationConfig(slo_interval_ns=1 * MILLISECONDS,
                               slo_sustain=2,
                               slo_hold_ns=10 * MILLISECONDS)
    env, board, taichi, manager = make_system(config)
    scheduler = taichi.scheduler
    stub = StubService(cpu_id=100)
    scheduler._services_by_cpu[stub.cpu_id] = stub
    env.run(until=env.now + 5 * MILLISECONDS)
    assert manager.slo_interventions >= 1
    assert stub.resets >= 1
    assert scheduler.donation_blocks >= 1
    assert scheduler._donation_blocked_until[stub.cpu_id] > env.now


def test_slo_guard_ignores_thin_sample_windows():
    config = DegradationConfig(slo_interval_ns=1 * MILLISECONDS,
                               slo_sustain=1)
    env, board, taichi, manager = make_system(config)
    stub = StubService(cpu_id=100, samples=4)   # < slo_min_samples
    taichi.scheduler._services_by_cpu[stub.cpu_id] = stub
    env.run(until=env.now + 5 * MILLISECONDS)
    assert manager.slo_interventions == 0


def test_slo_guard_escalates_to_repartition_once():
    calls = []
    config = DegradationConfig(slo_interval_ns=1 * MILLISECONDS,
                               slo_sustain=1,
                               slo_escalate_fraction=0.05)
    env, board, taichi, manager = make_system(
        config, repartition=lambda: calls.append(1))
    stub = StubService(cpu_id=100)
    taichi.scheduler._services_by_cpu[stub.cpu_id] = stub
    env.run(until=env.now + 6 * MILLISECONDS)
    assert manager.repartitions == 1
    assert calls == [1]                    # one-shot, despite ongoing breach


# -- probe-health monitor ------------------------------------------------------


def test_dark_probe_is_demoted_then_promoted_after_cooldown():
    config = DegradationConfig(probe_interval_ns=1 * MILLISECONDS,
                               probe_cooldown_ns=2 * MILLISECONDS,
                               probe_min_exits=2)
    env, board, taichi, manager = make_system(config)
    scheduler = taichi.scheduler
    probe = board.hw_probe
    # Traffic flows and slices expire, yet the probe fires no IRQs: dark.
    probe.packets_inspected += 100
    scheduler.exits_by_reason[VMExitReason.TIMESLICE_EXPIRED] += 5
    env.run(until=env.now + int(1.5 * MILLISECONDS))
    assert manager.probe_demotions == 1
    assert scheduler.probe_degraded
    assert scheduler.degraded_max_slice_ns == config.degraded_max_slice_ns
    env.run(until=env.now + 3 * MILLISECONDS)
    assert manager.probe_promotions == 1
    assert not scheduler.probe_degraded


def test_lying_probe_is_demoted_on_false_positive_rate():
    config = DegradationConfig(probe_interval_ns=1 * MILLISECONDS,
                               probe_cooldown_ns=20 * MILLISECONDS,
                               probe_min_exits=2)
    env, board, taichi, manager = make_system(config)
    scheduler = taichi.scheduler
    scheduler.exits_by_reason[VMExitReason.HW_PROBE_IRQ] += 4
    scheduler.premature_exits += 4
    env.run(until=env.now + int(1.5 * MILLISECONDS))
    assert manager.probe_demotions == 1
    assert scheduler.probe_degraded


def test_healthy_probe_is_left_alone():
    config = DegradationConfig(probe_interval_ns=1 * MILLISECONDS)
    env, board, taichi, manager = make_system(config)
    env.run(until=env.now + 5 * MILLISECONDS)
    assert manager.probe_demotions == 0
    assert not taichi.scheduler.probe_degraded
