"""Tests for the unified IPI orchestrator routing rules."""

from repro.core import TaiChi
from repro.hw import SmartNIC
from repro.kernel import IPIVector
from repro.sim import Environment, MILLISECONDS
from repro.virt import BackingGrant


def make():
    env = Environment()
    board = SmartNIC(env)
    taichi = TaiChi(board)
    taichi.install(n_vcpus=2)
    env.run(until=2 * MILLISECONDS)
    return env, board, taichi


def test_boot_ipis_routed_to_vcpus():
    env, board, taichi = make()
    # install() boots the vCPUs through the orchestrator's routing.
    assert taichi.orchestrator.routed_to_vcpu >= 4  # INIT+STARTUP per vCPU
    assert all(vcpu.online for vcpu in taichi.vcpus)


def test_pcpu_to_pcpu_uses_default_path():
    env, board, taichi = make()
    before = board.kernel.ipi.hooked_count
    src = board.kernel.cpus[0]
    dst = board.kernel.cpus[1]
    board.kernel.ipi.send(src, dst, IPIVector.RESCHED)
    env.run(until=env.now + 1 * MILLISECONDS)
    # Hook saw it but fell through (returned False): not counted as hooked.
    assert board.kernel.ipi.hooked_count == before
    assert taichi.orchestrator.routed_to_pcpu >= 1


def test_ipi_to_sleeping_vcpu_wakes_it():
    env, board, taichi = make()
    vcpu = taichi.vcpus[0]
    before = taichi.orchestrator.vcpu_wakeups
    board.kernel.ipi.send(board.kernel.cpus[0], vcpu, IPIVector.RESCHED)
    env.run(until=env.now + 1 * MILLISECONDS)
    assert taichi.orchestrator.vcpu_wakeups == before + 1


def test_ipi_to_running_vcpu_posted():
    env, board, taichi = make()
    vcpu = taichi.vcpus[0]
    grant = BackingGrant(env, board.kernel.cpus[0], vcpu, 10 * MILLISECONDS)
    vcpu.set_backing(grant)
    before = taichi.orchestrator.vcpu_wakeups
    board.kernel.ipi.send(board.kernel.cpus[0], vcpu, IPIVector.RESCHED)
    env.run(until=env.now + 1 * MILLISECONDS)
    # Running vCPU: injected, not woken.
    assert taichi.orchestrator.vcpu_wakeups == before
    assert taichi.orchestrator.routed_to_vcpu > 0


def test_source_vcpu_ipi_charges_exit():
    env, board, taichi = make()
    vcpu = taichi.vcpus[0]
    grant = BackingGrant(env, board.kernel.cpus[0], vcpu, 10 * MILLISECONDS)
    vcpu.set_backing(grant)
    board.kernel.ipi.send(vcpu, board.kernel.cpus[1], IPIVector.RESCHED)
    env.run(until=env.now + 1 * MILLISECONDS)
    assert taichi.orchestrator.source_exits == 1


def test_stats_keys():
    env, board, taichi = make()
    stats = taichi.orchestrator.stats()
    assert {"routed_to_vcpu", "routed_to_pcpu", "source_exits",
            "vcpu_wakeups"} == set(stats)
