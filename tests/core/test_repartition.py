"""Tests for dynamic CP/DP repartitioning (Section 8)."""

import pytest

from repro.baselines import StaticPartitionDeployment, TaiChiDeployment
from repro.core import DynamicRepartitioner
from repro.hw import IORequest, PacketKind
from repro.sim import MILLISECONDS


def make():
    deployment = TaiChiDeployment(seed=4)
    deployment.warmup()
    return deployment, DynamicRepartitioner(deployment)


def test_requires_taichi_deployment():
    with pytest.raises(ValueError):
        DynamicRepartitioner(StaticPartitionDeployment(seed=4))


def test_cp_to_dp_grows_data_plane():
    deployment, repartitioner = make()
    new_services = repartitioner.cp_to_dp(2)
    assert len(new_services) == 2
    assert len(deployment.services) == 10
    assert len(repartitioner.cp_cpus) == 2
    # Moved CPUs no longer appear in CP affinity.
    moved = {service.cpu_id for service in new_services}
    assert not moved & deployment.cp_affinity


def test_cannot_drain_cp_partition():
    deployment, repartitioner = make()
    with pytest.raises(ValueError):
        repartitioner.cp_to_dp(4)


def test_new_services_process_traffic():
    deployment, repartitioner = make()
    new_service = repartitioner.cp_to_dp(1)[0]
    done = deployment.env.event()
    deployment.board.accelerator.submit(IORequest(
        PacketKind.NET_TX, 64, new_service.queue_ids[0],
        service_ns=1_500, done=done))
    deployment.run(deployment.env.now + 5 * MILLISECONDS)
    assert done.triggered
    assert new_service.packets_processed == 1


def test_new_services_are_taichi_integrated():
    deployment, repartitioner = make()
    new_service = repartitioner.cp_to_dp(1)[0]
    assert new_service.idle_notifier is deployment.taichi.sw_probe
    assert deployment.taichi.scheduler._services_by_cpu[new_service.cpu_id] \
        is new_service


def test_dp_to_cp_returns_cpu_and_reroutes_queues():
    deployment, repartitioner = make()
    retired = deployment.services[-1]
    retired_queues = list(retired.queue_ids)
    freed = repartitioner.dp_to_cp(1)
    assert freed == [retired.cpu_id]
    assert len(deployment.services) == 7
    assert retired.cpu_id in deployment.cp_affinity
    survivor = deployment.services[0]
    for queue_id in retired_queues:
        assert queue_id in survivor.queue_ids

    # Traffic to the adopted queue reaches the survivor.
    done = deployment.env.event()
    deployment.board.accelerator.submit(IORequest(
        PacketKind.NET_TX, 64, retired_queues[0], service_ns=1_500,
        done=done))
    deployment.run(deployment.env.now + 5 * MILLISECONDS)
    assert done.triggered


def test_round_trip_restores_partition_sizes():
    deployment, repartitioner = make()
    repartitioner.cp_to_dp(1)
    repartitioner.dp_to_cp(1)
    assert len(repartitioner.cp_cpus) == 4
    assert len(repartitioner.dp_cpus) == 8
    assert len(repartitioner.moves) == 2
