"""Tests for Tai Chi configuration validation."""

import pytest

from repro.core import TaiChiConfig
from repro.sim import MICROSECONDS


def test_defaults_match_paper():
    config = TaiChiConfig()
    assert config.initial_slice_ns == 50 * MICROSECONDS
    assert config.n_vcpus == 8
    assert config.hw_probe_enabled
    assert config.costs.switch_total_ns == 2_000  # the ~2 us switch


def test_invalid_slice_rejected():
    with pytest.raises(ValueError):
        TaiChiConfig(initial_slice_ns=0)
    with pytest.raises(ValueError):
        TaiChiConfig(initial_slice_ns=100, max_slice_ns=50)


def test_invalid_thresholds_rejected():
    with pytest.raises(ValueError):
        TaiChiConfig(min_threshold=100, initial_threshold=50)
    with pytest.raises(ValueError):
        TaiChiConfig(initial_threshold=10_000, max_threshold=100)
