"""Tests for on-demand instruction-level auditing (Section 8)."""

import pytest

from repro.baselines import TaiChiDeployment
from repro.core import InstructionAuditor
from repro.kernel import Compute, KernelSection, Sleep, Syscall
from repro.sim import MICROSECONDS, MILLISECONDS, SECONDS


def make(interceptor=None):
    deployment = TaiChiDeployment(seed=6)
    deployment.warmup()
    auditor = InstructionAuditor(deployment.taichi, interceptor=interceptor)
    return deployment, auditor


def target_body(cycles=5):
    for _ in range(cycles):
        yield Compute(200 * MICROSECONDS)
        yield Syscall(100 * MICROSECONDS, name="cfg")
        yield KernelSection(150 * MICROSECONDS)
        yield Sleep(100 * MICROSECONDS)


def test_audit_migrates_thread_to_vcpu():
    deployment, auditor = make()
    thread = deployment.kernel.spawn("target", target_body(),
                                     affinity=set(deployment.board.cp_cpu_ids))
    session = auditor.begin(thread)
    deployment.run(deployment.env.now + 50 * MILLISECONDS)
    assert thread.affinity == {session.vcpu_id}
    assert thread.last_cpu == session.vcpu_id


def test_audit_records_instructions_with_privilege_flags():
    deployment, auditor = make()
    thread = deployment.kernel.spawn("target", target_body(cycles=3),
                                     affinity=set(deployment.board.cp_cpu_ids))
    auditor.begin(thread)
    deployment.env.run(until=deployment.env.any_of(
        [thread.done, deployment.env.timeout(2 * SECONDS)]))
    session = auditor.end(thread)
    assert session.records
    kinds = {record.kind for record in session.records}
    assert {"Compute", "Syscall", "KernelSection"} <= kinds
    # Syscalls and kernel sections are privileged; computes are not.
    for record in session.records:
        assert record.privileged == (record.kind != "Compute"
                                     and record.kind != "Sleep")


def test_end_restores_affinity():
    deployment, auditor = make()
    original = set(deployment.board.cp_cpu_ids)
    thread = deployment.kernel.spawn("target", target_body(cycles=20),
                                     affinity=set(original))
    auditor.begin(thread)
    deployment.run(deployment.env.now + 20 * MILLISECONDS)
    session = auditor.end(thread)
    assert thread.affinity == original
    assert not session.active
    assert session.summary()["instructions"] > 0


def test_interceptor_sees_privileged_instructions():
    intercepted = []

    def interceptor(thread, instruction):
        intercepted.append(type(instruction).__name__)
        return True

    deployment, auditor = make(interceptor=interceptor)
    thread = deployment.kernel.spawn("target", target_body(cycles=2),
                                     affinity=set(deployment.board.cp_cpu_ids))
    auditor.begin(thread)
    deployment.env.run(until=deployment.env.any_of(
        [thread.done, deployment.env.timeout(2 * SECONDS)]))
    session = auditor.end(thread)
    assert intercepted
    assert all(kind != "Compute" for kind in intercepted)
    assert len(session.intercepted) == len(intercepted)


def test_double_begin_rejected():
    deployment, auditor = make()
    thread = deployment.kernel.spawn("target", target_body(),
                                     affinity=set(deployment.board.cp_cpu_ids))
    auditor.begin(thread)
    with pytest.raises(ValueError):
        auditor.begin(thread)


def test_end_unknown_thread_rejected():
    deployment, auditor = make()
    thread = deployment.kernel.spawn("target", target_body(),
                                     affinity=set(deployment.board.cp_cpu_ids))
    with pytest.raises(KeyError):
        auditor.end(thread)


def test_unaudited_threads_not_recorded():
    deployment, auditor = make()
    vcpu_ids = set(deployment.taichi.vcpu_ids())
    audited = deployment.kernel.spawn("audited", target_body(cycles=2),
                                      affinity=set(deployment.board.cp_cpu_ids))
    bystander = deployment.kernel.spawn("bystander", target_body(cycles=2),
                                        affinity=vcpu_ids)
    session = auditor.begin(audited)
    deployment.env.run(until=deployment.env.any_of(
        [deployment.env.all_of([audited.done, bystander.done]),
         deployment.env.timeout(2 * SECONDS)]))
    assert all(record.thread_name == "audited" for record in session.records)
