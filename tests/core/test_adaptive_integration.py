"""Integration behaviour of the two adaptive loops."""

from repro.baselines import TaiChiDeployment
from repro.core import TaiChiConfig
from repro.cp.task import CPTaskParams, spawn_synth_cp
from repro.hw import IORequest, PacketKind
from repro.sim import MICROSECONDS, MILLISECONDS


def saturated_cp(deployment):
    rng = deployment.rng.stream("adaptive-cp")
    return spawn_synth_cp(
        deployment.kernel, deployment.env, rng, 12,
        deployment.cp_affinity,
        params=CPTaskParams(total_ns=200 * MILLISECONDS),
    )


def test_slices_grow_during_quiet_periods():
    deployment = TaiChiDeployment(seed=17)
    deployment.warmup()
    saturated_cp(deployment)
    deployment.run(deployment.env.now + 200 * MILLISECONDS)
    scheduler = deployment.taichi.scheduler
    config = deployment.taichi.config
    slices = [scheduler.slice_for(vcpu) for vcpu in deployment.taichi.vcpus]
    assert max(slices) == config.max_slice_ns


def test_thresholds_shrink_during_quiet_periods():
    deployment = TaiChiDeployment(seed=17)
    deployment.warmup()
    saturated_cp(deployment)
    deployment.run(deployment.env.now + 200 * MILLISECONDS)
    probe = deployment.taichi.sw_probe
    thresholds = list(probe.stats()["thresholds"].values())
    assert min(thresholds) == deployment.taichi.config.min_threshold


def test_traffic_resets_slices_and_raises_thresholds():
    deployment = TaiChiDeployment(seed=17)
    deployment.warmup()
    saturated_cp(deployment)
    deployment.run(deployment.env.now + 100 * MILLISECONDS)
    env = deployment.env
    board = deployment.board

    def burst():
        stream = deployment.rng.stream("adaptive-burst")
        for _ in range(3000):
            queue = int(stream.integers(0, 8))
            board.accelerator.submit(IORequest(
                PacketKind.NET_TX, 128, ("net", queue, 0), service_ns=1_800))
            yield env.timeout(int(stream.exponential(30 * MICROSECONDS)))

    proc = env.process(burst(), name="burst")
    env.run(until=proc)
    scheduler = deployment.taichi.scheduler
    config = deployment.taichi.config
    slices = [scheduler.slice_for(vcpu) for vcpu in deployment.taichi.vcpus]
    thresholds = list(
        deployment.taichi.sw_probe.stats()["thresholds"].values())
    # Probe IRQs fired and reset slices (they may re-grow once the burst
    # drains, so assert the reset footprint, not the final value).
    from repro.virt import VMExitReason

    assert scheduler.exits_by_reason[VMExitReason.HW_PROBE_IRQ] > 0
    assert min(slices) < config.max_slice_ns
    assert max(thresholds) > config.min_threshold


def test_fixed_configs_do_not_adapt():
    config = TaiChiConfig(adaptive_slice=False, adaptive_threshold=False)
    deployment = TaiChiDeployment(seed=17, taichi_config=config)
    deployment.warmup()
    saturated_cp(deployment)
    deployment.run(deployment.env.now + 100 * MILLISECONDS)
    scheduler = deployment.taichi.scheduler
    assert all(scheduler.slice_for(vcpu) == config.initial_slice_ns
               for vcpu in deployment.taichi.vcpus)
    thresholds = deployment.taichi.sw_probe.stats()["thresholds"].values()
    assert all(value == config.initial_threshold for value in thresholds)
