"""FaultPlan validation, scaling, JSON round-trips, and presets."""

import pytest

from repro.faults import FaultPlan, FaultSpec, load_plan
from repro.faults.plan import PRESETS
from repro.sim import MICROSECONDS, MILLISECONDS


def test_unknown_kind_is_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("power_cut", at_ns=0, duration_ns=1)


def test_unknown_parameter_is_rejected():
    with pytest.raises(ValueError, match="does not take parameters"):
        FaultSpec("ipi_drop", at_ns=0, duration_ns=1,
                  params={"probability": 0.5})


def test_repeat_requires_period():
    with pytest.raises(ValueError, match="period_ns"):
        FaultSpec("ipi_drop", at_ns=0, duration_ns=1, repeat=3)


def test_window_kinds_require_duration():
    with pytest.raises(ValueError, match="needs a duration_ns"):
        FaultSpec("probe_outage", at_ns=0)
    # Instant kinds are fine without one.
    FaultSpec("dp_stall", at_ns=0, params={"stall_ns": 1000})


def test_occurrences_expand_repeats():
    spec = FaultSpec("ipi_drop", at_ns=100, duration_ns=10,
                     repeat=3, period_ns=50)
    assert spec.occurrences() == [100, 150, 200]


def test_scaled_shrinks_times_but_not_magnitudes():
    plan = FaultPlan(name="t", faults=[
        FaultSpec("ipi_drop", at_ns=400 * MILLISECONDS,
                  duration_ns=200 * MILLISECONDS, params={"prob": 0.7}),
    ])
    half = plan.scaled(0.5)
    spec = half.faults[0]
    assert spec.at_ns == 200 * MILLISECONDS
    assert spec.duration_ns == 100 * MILLISECONDS
    assert spec.params["prob"] == 0.7


def test_scaled_floors_keep_tiny_plans_meaningful():
    plan = FaultPlan(name="t", faults=[
        FaultSpec("ipi_drop", at_ns=100 * MILLISECONDS,
                  duration_ns=50 * MILLISECONDS, repeat=2,
                  period_ns=60 * MILLISECONDS),
        FaultSpec("dp_stall", at_ns=500 * MILLISECONDS,
                  params={"stall_ns": 2 * MILLISECONDS}),
    ])
    tiny = plan.scaled(0.001)
    window, stall = tiny.faults
    assert window.at_ns == 3 * MILLISECONDS        # warmup floor
    assert window.duration_ns == 1 * MILLISECONDS  # duration floor
    assert window.period_ns == 1 * MILLISECONDS
    assert stall.duration_ns == 0                  # instant kind stays instant
    assert stall.params["stall_ns"] == 100 * MICROSECONDS


def test_scaled_rejects_nonpositive_factor():
    with pytest.raises(ValueError, match="positive"):
        FaultPlan(name="t", faults=[]).scaled(0)


def test_json_round_trip(tmp_path):
    plan = FaultPlan.preset("storm")
    path = tmp_path / "storm.json"
    plan.to_json(path)
    loaded = FaultPlan.from_json(path)
    assert loaded.name == plan.name
    assert loaded.to_dict() == plan.to_dict()


def test_presets_all_construct_and_validate():
    for name in PRESETS:
        plan = FaultPlan.preset(name)
        assert len(plan) > 0
        assert plan.name == name


def test_unknown_preset_is_rejected():
    with pytest.raises(ValueError, match="unknown fault preset"):
        FaultPlan.preset("meteor_strike")


def test_load_plan_resolves_presets_and_files(tmp_path):
    assert load_plan("ipi_storm").name == "ipi_storm"
    path = tmp_path / "plan.json"
    FaultPlan.preset("probe_outage").to_json(path)
    assert load_plan(str(path)).name == "probe_outage"
    with pytest.raises(ValueError, match="--faults expects"):
        load_plan("not-a-preset")
