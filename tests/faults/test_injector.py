"""FaultInjector effects, determinism, and injected/cleared pairing."""

import pytest

from repro.baselines import TaiChiDeployment
from repro.faults import FaultInjector, FaultPlan, FaultSpec, active_fault_plan
from repro.kernel import IPIVector
from repro.obs import observe
from repro.sim import MICROSECONDS, MILLISECONDS
from repro.workloads.background import start_cp_background, start_dp_background


def deploy(plan=None, seed=0):
    deployment = TaiChiDeployment(seed=seed)
    if plan is not None:
        deployment.fault_injector = FaultInjector(deployment, plan).arm()
    return deployment


def window(kind, at_ms, duration_ms, **params):
    return FaultSpec(kind, at_ns=at_ms * MILLISECONDS,
                     duration_ns=duration_ms * MILLISECONDS, params=params)


# -- session activation --------------------------------------------------------


def test_active_plan_arms_injector_on_deployment_build():
    plan = FaultPlan(name="t", faults=[window("probe_outage", 5, 5)])
    with active_fault_plan(plan):
        deployment = TaiChiDeployment(seed=0)
    assert deployment.fault_injector is not None
    assert deployment.fault_injector.plan is plan


def test_no_active_plan_means_no_injector():
    assert TaiChiDeployment(seed=0).fault_injector is None


def test_nested_none_suppresses_injection():
    plan = FaultPlan(name="t", faults=[window("probe_outage", 5, 5)])
    with active_fault_plan(plan), active_fault_plan(None):
        assert TaiChiDeployment(seed=0).fault_injector is None


# -- per-kind effects ----------------------------------------------------------


def test_cpu_offline_window_round_trips():
    plan = FaultPlan(name="t", faults=[window("cpu_offline", 1, 5, cpu="cp")])
    deployment = deploy(plan)
    target = deployment.board.cp_cpu_ids[-1]
    deployment.run(3 * MILLISECONDS)
    assert not deployment.kernel.cpus[target].online
    deployment.run(20 * MILLISECONDS)   # revert issues boot IPIs
    assert deployment.kernel.cpus[target].online


def test_cpu_offline_indexed_target():
    plan = FaultPlan(name="t",
                     faults=[window("cpu_offline", 1, 5, cpu="cp:0")])
    deployment = deploy(plan)
    target = deployment.board.cp_cpu_ids[0]
    deployment.run(3 * MILLISECONDS)
    assert not deployment.kernel.cpus[target].online


def test_cpu_offline_never_targets_a_dp_service_cpu():
    dp_cpu = 0
    plan = FaultPlan(name="t",
                     faults=[window("cpu_offline", 1, 5, cpu=dp_cpu)])
    deployment = deploy(plan)
    deployment.run(3 * MILLISECONDS)
    assert deployment.kernel.cpus[dp_cpu].online
    assert deployment.fault_injector.injected == 0


def test_vcpu_cost_spike_scales_and_reverts():
    plan = FaultPlan(name="t",
                     faults=[window("vcpu_cost_spike", 1, 2, factor=4.0)])
    deployment = deploy(plan)
    costs = deployment.taichi.config.costs
    base_enter, base_exit = costs.vmenter_ns, costs.vmexit_ns
    deployment.run(2 * MILLISECONDS)
    assert costs.vmenter_ns == base_enter * 4
    assert costs.vmexit_ns == base_exit * 4
    deployment.run(4 * MILLISECONDS)
    assert costs.vmenter_ns == base_enter
    assert costs.vmexit_ns == base_exit


def test_accel_stall_pushes_pipeline_horizon():
    plan = FaultPlan(name="t", faults=[window("accel_stall", 1, 2)])
    deployment = deploy(plan)
    deployment.run(2 * MILLISECONDS)
    assert deployment.board.accelerator.stall_until_ns == 3 * MILLISECONDS


def test_dp_stall_is_instant_and_hits_named_service():
    plan = FaultPlan(name="t", faults=[
        FaultSpec("dp_stall", at_ns=1 * MILLISECONDS,
                  params={"stall_ns": 500 * MICROSECONDS, "service": 1}),
    ])
    deployment = deploy(plan)
    deployment.run(2 * MILLISECONDS)
    injector = deployment.fault_injector
    assert deployment.services[1].stalls_injected == 1
    assert injector.injected == injector.cleared == 1


def test_probe_outage_toggles_probe_enable_bit():
    plan = FaultPlan(name="t", faults=[window("probe_outage", 1, 3)])
    deployment = deploy(plan)
    probe = deployment.board.hw_probe
    assert probe.enabled
    deployment.run(2 * MILLISECONDS)
    assert not probe.enabled
    deployment.run(5 * MILLISECONDS)
    assert probe.enabled


def test_ipi_drop_with_certain_probability_loses_delivery():
    plan = FaultPlan(name="t", faults=[window("ipi_drop", 1, 10, prob=1.0)])
    deployment = deploy(plan)
    deployment.run(2 * MILLISECONDS)
    kernel = deployment.kernel
    dst = kernel.cpus[deployment.board.cp_cpu_ids[0]]
    assert kernel.ipi.deliver(dst, IPIVector.RESCHED) is False
    assert kernel.ipi.dropped_fault == 1


def test_ipi_delay_stretches_delivery_latency():
    plan = FaultPlan(name="t", faults=[
        window("ipi_delay", 1, 10, prob=1.0,
               delay_ns=100 * MICROSECONDS)])
    deployment = deploy(plan)
    deployment.run(2 * MILLISECONDS)
    kernel = deployment.kernel
    dst = kernel.cpus[deployment.board.cp_cpu_ids[0]]
    before = kernel.ipi.delivered_count
    assert kernel.ipi.deliver(dst, IPIVector.RESCHED) is True
    deployment.run(deployment.env.now + 50 * MICROSECONDS)
    assert kernel.ipi.delivered_count == before   # still in flight
    deployment.run(deployment.env.now + 60 * MICROSECONDS)
    assert kernel.ipi.delivered_count == before + 1


# -- a short storm: pairing, invariants, determinism ---------------------------


def _storm_run(seed):
    plan = FaultPlan(name="mini", faults=[
        window("ipi_drop", 5, 15, prob=0.4),
        window("probe_flaky", 8, 10,
               spurious_period_ns=20 * MICROSECONDS, suppress_prob=0.3),
        window("cpu_offline", 6, 8, cpu="cp"),
        window("vcpu_cost_spike", 10, 10, factor=6.0),
    ])
    with observe(check_invariants=True) as session, active_fault_plan(plan):
        deployment = TaiChiDeployment(seed=seed)
        start_dp_background(deployment, utilization=0.2)
        start_cp_background(deployment, n_monitors=2, rolling_tasks=2)
        deployment.warmup()
        deployment.run(40 * MILLISECONDS)
        events = [
            (event.ts_ns, event.cpu_id, event.kind,
             tuple(sorted(event.detail.items())))
            for event in session.events()
            if event.kind.startswith("fault.")
        ]
        violations = session.violations()
    return deployment.fault_injector, events, violations


@pytest.fixture(scope="module")
def storm():
    return _storm_run(seed=3)


def test_storm_injects_and_clears_every_fault(storm):
    injector, events, _ = storm
    assert injector.injected > 0
    assert injector.injected == injector.cleared
    injected = [dict(detail)["fault"] for _, _, kind, detail in events
                if kind == "fault.injected"]
    cleared = [dict(detail)["fault"] for _, _, kind, detail in events
               if kind == "fault.cleared"]
    assert sorted(injected) == sorted(cleared)
    assert len(set(injected)) == len(injected)


def test_storm_run_passes_invariant_checks(storm):
    _, events, violations = storm
    assert events                        # faults actually fired
    assert violations == []


def test_identical_seeds_reproduce_identical_fault_traces(storm):
    _, first, _ = storm
    _, second, _ = _storm_run(seed=3)
    assert first == second


def test_different_seed_changes_the_fault_trace(storm):
    _, first, _ = storm
    _, other, _ = _storm_run(seed=11)
    assert first != other
