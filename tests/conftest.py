"""Shared fixtures for the test suite."""

import pytest

from repro.kernel import Kernel
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def kernel(env):
    kern = Kernel(env)
    for cpu_id in range(2):
        kern.add_cpu(cpu_id)
    return kern


@pytest.fixture
def rng():
    return RandomStreams(seed=1234).stream("test")
