"""Tests for FIFO stores."""

import pytest

from repro.sim import Environment, Store


def test_put_then_get_immediate():
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env):
        item = yield store.get()
        received.append(item)

    store.put("x")
    env.process(consumer(env))
    env.run()
    assert received == ["x"]


def test_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env):
        item = yield store.get()
        received.append((item, env.now))

    def producer(env):
        yield env.timeout(50)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert received == [("late", 50)]


def test_fifo_ordering_of_items_and_getters():
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env, tag):
        item = yield store.get()
        received.append((tag, item))

    env.process(consumer(env, "first"))
    env.process(consumer(env, "second"))
    for item in ("a", "b"):
        store.put(item)
    env.run()
    assert received == [("first", "a"), ("second", "b")]


def test_capacity_blocks_putters():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("one")
        log.append(("put-one", env.now))
        yield store.put("two")
        log.append(("put-two", env.now))

    def consumer(env):
        yield env.timeout(30)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("put-one", 0), ("got", "one", 30), ("put-two", 30)]


def test_invalid_capacity_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_try_get_nonblocking():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put("item")
    env.run()
    assert store.try_get() == "item"
    assert store.try_get() is None


def test_get_batch_respects_limit_and_order():
    env = Environment()
    store = Store(env)
    for index in range(5):
        store.put(index)
    env.run()
    assert store.get_batch(3) == [0, 1, 2]
    assert store.get_batch(10) == [3, 4]
    assert store.get_batch(1) == []


def test_when_nonempty_fires_without_consuming():
    env = Environment()
    store = Store(env)
    seen = []

    def watcher(env):
        count = yield store.when_nonempty()
        seen.append((count, len(store)))

    env.process(watcher(env))

    def producer(env):
        yield env.timeout(5)
        yield store.put("thing")

    env.process(producer(env))
    env.run()
    assert seen == [(1, 1)]  # item still in the store


def test_when_nonempty_immediate_if_items_present():
    env = Environment()
    store = Store(env)
    store.put("x")
    env.run()
    event = store.when_nonempty()
    assert event.triggered


def test_cancel_nonempty_unsubscribes_watcher():
    env = Environment()
    store = Store(env)
    event = store.when_nonempty()
    store.cancel_nonempty(event)
    store.put("x")
    env.run()
    # The cancelled watcher never fires even though the store filled.
    assert not event.triggered
    assert store._nonempty_watchers == []


def test_cancel_nonempty_tolerates_already_fired_watcher():
    env = Environment()
    store = Store(env)
    event = store.when_nonempty()
    store.put("x")
    env.run()
    assert event.triggered
    store.cancel_nonempty(event)  # no-op, no raise
    store.cancel_nonempty(event)  # idempotent
