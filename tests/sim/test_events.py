"""Tests for event primitives."""

import pytest

from repro.sim import Environment, SimulationError
from repro.sim.events import AllOf, AnyOf


def test_event_lifecycle_flags():
    env = Environment()
    event = env.event()
    assert not event.triggered and not event.processed
    event.succeed("v")
    assert event.triggered and not event.processed
    env.run()
    assert event.processed
    assert event.value == "v"


def test_event_value_unavailable_before_trigger():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_double_succeed_rejected():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_failed_event_propagates_into_process():
    env = Environment()
    event = env.event()
    caught = []

    def proc(env):
        try:
            yield event
        except ValueError as exc:
            caught.append(exc)

    env.process(proc(env))
    event.fail(ValueError("nope"))
    env.run()
    assert len(caught) == 1


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_all_of_waits_for_every_event():
    env = Environment()
    t1, t2 = env.timeout(5, value="a"), env.timeout(9, value="b")
    done = {}

    def proc(env):
        result = yield AllOf(env, [t1, t2])
        done["at"] = env.now
        done["values"] = [result[t1], result[t2]]

    env.process(proc(env))
    env.run()
    assert done["at"] == 9
    assert done["values"] == ["a", "b"]


def test_any_of_fires_on_first_event():
    env = Environment()
    t1, t2 = env.timeout(5, value="fast"), env.timeout(9, value="slow")
    done = {}

    def proc(env):
        result = yield AnyOf(env, [t1, t2])
        done["at"] = env.now
        done["has_fast"] = t1 in result

    env.process(proc(env))
    env.run()
    assert done["at"] == 5
    assert done["has_fast"]


def test_all_of_empty_list_fires_immediately():
    env = Environment()
    done = []

    def proc(env):
        yield AllOf(env, [])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0]


def test_condition_with_already_processed_event():
    env = Environment()
    timeout = env.timeout(1, value="x")
    env.run()
    done = {}

    def proc(env):
        result = yield AnyOf(env, [timeout])
        done["value"] = result[timeout]

    env.process(proc(env))
    env.run()
    assert done["value"] == "x"


def test_trigger_from_untriggered_source_rejected():
    env = Environment()
    source, target = env.event(), env.event()
    with pytest.raises(SimulationError, match="untriggered source"):
        target.trigger(source)


def test_trigger_copies_outcome_from_source():
    env = Environment()
    source, target = env.event(), env.event()
    source.succeed("payload")
    target.trigger(source)
    assert target.triggered
    env.run()
    assert target.value == "payload"


def test_condition_prunes_callbacks_once_triggered():
    env = Environment()
    fast, slow = env.timeout(5), env.timeout(9)
    done = []

    def proc(env):
        yield AnyOf(env, [fast, slow])
        done.append(env.now)

    env.process(proc(env))
    env.run(until=6)
    assert done == [5]
    # The condition fired on ``fast``; its check must no longer sit on
    # the pending member, so the loser carries no stale callbacks.
    assert slow.callbacks == []
    env.run()


def test_condition_on_processed_event_leaves_no_callbacks():
    env = Environment()
    first, second = env.event(), env.event()
    first.succeed()
    env.run()
    condition = AnyOf(env, [first, second])
    assert condition.triggered
    # Already decided at construction: the second member must never have
    # been subscribed to (or must have been pruned immediately).
    assert second.callbacks == []


def test_events_reject_adhoc_attributes():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    for obj in (env.event(), env.timeout(1),
                AnyOf(env, [env.event()]),
                env.process(proc(env))):
        with pytest.raises(AttributeError):
            obj.scratch = 1
