"""Tests for processes and interrupts."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return 99

    process = env.process(proc(env))
    env.run()
    assert process.value == 99
    assert not process.is_alive


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_yielding_non_event_fails_the_process():
    env = Environment()

    def proc(env):
        yield 42

    process = env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()
    assert not process.is_alive


def test_interrupt_delivers_cause():
    env = Environment()
    seen = {}

    def victim(env):
        try:
            yield env.timeout(1_000)
        except Interrupt as interrupt:
            seen["cause"] = interrupt.cause
            seen["at"] = env.now

    def attacker(env, target):
        yield env.timeout(10)
        target.interrupt("reason")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert seen == {"cause": "reason", "at": 10}


def test_interrupted_process_can_keep_waiting():
    env = Environment()
    log = []

    def victim(env):
        deadline = env.timeout(100)
        try:
            yield deadline
        except Interrupt:
            log.append(("interrupted", env.now))
            yield deadline  # resume waiting on the same event
        log.append(("done", env.now))

    def attacker(env, target):
        yield env.timeout(40)
        target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [("interrupted", 40), ("done", 100)]


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    def late(env, target):
        yield env.timeout(10)
        with pytest.raises(SimulationError):
            target.interrupt()

    target = env.process(quick(env))
    env.process(late(env, target))
    env.run()


def test_process_cannot_interrupt_itself():
    env = Environment()

    def selfish(env):
        me = env.active_process
        with pytest.raises(SimulationError):
            me.interrupt()
        yield env.timeout(1)

    env.process(selfish(env))
    env.run()


def test_process_waits_on_another_process():
    env = Environment()
    order = []

    def inner(env):
        yield env.timeout(5)
        order.append("inner")
        return "result"

    def outer(env):
        value = yield env.process(inner(env))
        order.append(("outer", value))

    env.process(outer(env))
    env.run()
    assert order == ["inner", ("outer", "result")]


def test_exception_in_process_propagates_to_waiter():
    env = Environment()
    caught = []

    def failing(env):
        yield env.timeout(1)
        raise KeyError("inner-failure")

    def waiter(env):
        try:
            yield env.process(failing(env))
        except KeyError as exc:
            caught.append(exc)

    env.process(waiter(env))
    env.run()
    assert len(caught) == 1
