"""Tests for seeded random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(seed=7).stream("x").random(5)
    b = RandomStreams(seed=7).stream("x").random(5)
    assert list(a) == list(b)


def test_different_names_independent():
    streams = RandomStreams(seed=7)
    a = streams.stream("a").random(5)
    b = streams.stream("b").random(5)
    assert list(a) != list(b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("x").random(5)
    b = RandomStreams(seed=2).stream("x").random(5)
    assert list(a) != list(b)


def test_stream_is_cached():
    streams = RandomStreams(seed=3)
    assert streams.stream("q") is streams.stream("q")


def test_adding_streams_does_not_perturb_existing():
    first = RandomStreams(seed=9)
    first.stream("other")  # extra stream created before "x" is used
    with_extra = first.stream("x").random(5)
    clean = RandomStreams(seed=9).stream("x").random(5)
    assert list(with_extra) == list(clean)


def test_spawn_derives_deterministic_child():
    a = RandomStreams(seed=5).spawn("child").stream("s").random(3)
    b = RandomStreams(seed=5).spawn("child").stream("s").random(3)
    assert list(a) == list(b)
