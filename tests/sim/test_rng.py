"""Tests for seeded random streams."""

from repro.sim import RandomStreams, derive_seed


def test_same_seed_same_stream():
    a = RandomStreams(seed=7).stream("x").random(5)
    b = RandomStreams(seed=7).stream("x").random(5)
    assert list(a) == list(b)


def test_different_names_independent():
    streams = RandomStreams(seed=7)
    a = streams.stream("a").random(5)
    b = streams.stream("b").random(5)
    assert list(a) != list(b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("x").random(5)
    b = RandomStreams(seed=2).stream("x").random(5)
    assert list(a) != list(b)


def test_stream_is_cached():
    streams = RandomStreams(seed=3)
    assert streams.stream("q") is streams.stream("q")


def test_adding_streams_does_not_perturb_existing():
    first = RandomStreams(seed=9)
    first.stream("other")  # extra stream created before "x" is used
    with_extra = first.stream("x").random(5)
    clean = RandomStreams(seed=9).stream("x").random(5)
    assert list(with_extra) == list(clean)


def test_spawn_derives_deterministic_child():
    a = RandomStreams(seed=5).spawn("child").stream("s").random(3)
    b = RandomStreams(seed=5).spawn("child").stream("s").random(3)
    assert list(a) == list(b)


def test_derive_seed_is_stable():
    # Frozen values: if this test ever fails, derive_seed changed and every
    # archived fleet report's per-node seeds silently shifted.
    assert derive_seed(0) == 0
    assert derive_seed(0, "fleet-node", "rack-00") == 7334826658570108999
    assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")


def test_derive_seed_path_sensitivity():
    assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")
    assert derive_seed(0, "a") != derive_seed(1, "a")
    assert derive_seed(0, "ab") != derive_seed(0, "a", "b")


def test_derive_seed_stringifies_components():
    assert derive_seed(3, 42, "x") == derive_seed(3, "42", "x")


def test_derive_seed_matches_spawn():
    derived = RandomStreams(seed=derive_seed(11, "shard")).stream("s").random(4)
    spawned = RandomStreams(seed=11).spawn("shard").stream("s").random(4)
    assert list(derived) == list(spawned)


def test_derive_seed_in_range():
    for path in ([], ["x"], ["deep", "er", 3]):
        value = derive_seed(12345, *path)
        assert 0 <= value < 2**63
