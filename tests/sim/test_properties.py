"""Property-based tests on the simulation engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Store


@given(delays=st.lists(st.integers(min_value=0, max_value=10_000),
                       min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []
    for delay in delays:
        env.timeout(delay).callbacks.append(
            lambda event, d=delay: fired.append((env.now, d))
        )
    env.run()
    times = [time for time, _ in fired]
    assert times == sorted(times)
    assert sorted(d for _, d in fired) == sorted(delays)
    assert env.now == max(delays)


@given(items=st.lists(st.integers(), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    def producer(env):
        for item in items:
            yield env.timeout(1)
            yield store.put(item)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert received == items


@given(
    delays=st.lists(st.integers(min_value=1, max_value=1000),
                    min_size=1, max_size=20),
    interrupt_at=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=40, deadline=None)
def test_interrupted_waits_account_full_duration(delays, interrupt_at):
    """A process that re-waits after interrupts finishes at the exact sum."""
    env = Environment()
    done = {}

    def worker(env):
        from repro.sim import Interrupt

        for delay in delays:
            target = env.timeout(delay)
            while not target.processed:
                try:
                    yield target
                except Interrupt:
                    continue
        done["at"] = env.now

    def interrupter(env, victim):
        yield env.timeout(interrupt_at)
        if victim.is_alive:
            victim.interrupt("poke")

    worker_proc = env.process(worker(env))
    env.process(interrupter(env, worker_proc))
    env.run()
    assert done["at"] == sum(delays)
