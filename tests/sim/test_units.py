"""Tests for time-unit helpers."""

from repro.sim.units import (
    MICROSECONDS,
    MILLISECONDS,
    NANOSECONDS,
    SECONDS,
    ns_to_ms,
    ns_to_s,
    ns_to_us,
    s_to_ns,
)


def test_unit_ratios():
    assert MICROSECONDS == 1_000 * NANOSECONDS
    assert MILLISECONDS == 1_000 * MICROSECONDS
    assert SECONDS == 1_000 * MILLISECONDS


def test_round_trip_conversion():
    assert s_to_ns(1.5) == 1_500_000_000
    assert ns_to_s(s_to_ns(0.25)) == 0.25


def test_fractional_seconds_rounded():
    assert s_to_ns(1e-9) == 1
    assert s_to_ns(1.49e-9) == 1


def test_derived_conversions():
    assert ns_to_us(2_500) == 2.5
    assert ns_to_ms(3_000_000) == 3.0
