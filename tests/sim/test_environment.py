"""Tests for the simulation environment and run loop."""

import pytest

from repro.sim import Environment, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=500)
    assert env.now == 500


def test_run_until_time_advances_clock_exactly():
    env = Environment()
    env.timeout(10_000)
    env.run(until=3_000)
    assert env.now == 3_000


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=100)
    with pytest.raises(ValueError):
        env.run(until=50)


def test_run_drains_all_events_without_until():
    env = Environment()
    fired = []
    for delay in (5, 1, 3):
        env.timeout(delay).callbacks.append(lambda e, d=delay: fired.append(d))
    env.run()
    assert fired == [1, 3, 5]
    assert env.now == 5


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(7)
        return "payload"

    result = env.run(until=env.process(proc(env)))
    assert result == "payload"
    assert env.now == 7


def test_run_until_already_processed_event():
    env = Environment()
    timeout = env.timeout(1)
    env.run()
    assert env.run(until=timeout) is timeout.value


def test_step_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_events_at_same_time_preserve_insertion_order():
    env = Environment()
    order = []
    for tag in "abc":
        env.timeout(10).callbacks.append(lambda e, t=tag: order.append(t))
    env.run()
    assert order == ["a", "b", "c"]


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(42)
    assert env.peek() == 42


def test_peek_empty_queue_returns_none():
    assert Environment().peek() is None


def test_unhandled_process_failure_crashes_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("boom")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_engine_config_rejects_unknown_scheduler():
    from repro.sim import EngineConfig

    with pytest.raises(ValueError, match="scheduler"):
        EngineConfig(scheduler="fibonacci")


def test_profile_reports_engine_configuration_and_skips():
    from repro.sim import EngineConfig

    env = Environment(config=EngineConfig(fast_forward=True,
                                          scheduler="calendar"))
    env.timeout(5)
    env.run()
    env.note_fast_forward(30)
    env.note_fast_forward(0)  # empty windows are not counted
    profile = env.profile()
    assert profile["scheduler"] == "calendar"
    assert profile["fast_forward"] is True
    assert profile["events_skipped"] == 30
    assert profile["fast_forward_windows"] == 1
    processed = profile["events_processed"]
    assert profile["skipped_ratio"] == pytest.approx(
        30 / (processed + 30), abs=1e-4)
