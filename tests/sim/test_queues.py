"""Scheduler queues: the calendar queue must match the heap exactly.

Entries are ``(time, priority, eid, event)`` tuples with unique eids, so
the pop order is total — any correct priority queue yields the identical
sequence.  These tests drive both implementations through the same
randomized workloads and assert element-for-element agreement, plus the
calendar queue's resize paths explicitly.
"""

import random

import pytest

from repro.sim import Environment
from repro.sim.queues import SCHEDULERS, CalendarQueue, HeapQueue, make_queue


def _drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


def test_registry_and_factory():
    assert set(SCHEDULERS) == {"heap", "calendar"}
    assert isinstance(make_queue("heap"), HeapQueue)
    assert isinstance(make_queue("calendar"), CalendarQueue)
    with pytest.raises(ValueError, match="scheduler"):
        make_queue("fibonacci")


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_basic_ordering(name):
    queue = make_queue(name)
    entries = [(30, 1, 2, "c"), (10, 1, 0, "a"), (20, 1, 1, "b")]
    for entry in entries:
        queue.push(entry)
    assert len(queue) == 3
    assert queue.peek() == (10, 1, 0, "a")
    assert _drain(queue) == sorted(entries)
    assert not queue
    with pytest.raises(IndexError):
        queue.pop()


@pytest.mark.parametrize("seed", range(20))
def test_calendar_matches_heap_on_random_workloads(seed):
    rng = random.Random(seed)
    heap, calendar = HeapQueue(), CalendarQueue()
    eid = 0
    for _ in range(5000):
        if heap and rng.random() < 0.4:
            assert calendar.pop() == heap.pop()
        else:
            entry = (rng.randrange(10**9), rng.randrange(3), eid, object())
            eid += 1
            heap.push(entry)
            calendar.push(entry)
    while heap:
        assert calendar.pop() == heap.pop()
    assert not calendar


def test_calendar_same_instant_burst_preserves_eid_order():
    # A pathological calendar-queue workload: every entry lands in one
    # bucket slot, so ordering falls entirely to the per-slot min scan.
    heap, calendar = HeapQueue(), CalendarQueue()
    for eid in range(1000):
        entry = (42, 1, eid, object())
        heap.push(entry)
        calendar.push(entry)
    for eid in range(1000):
        entry = calendar.pop()
        assert entry == heap.pop()
        assert entry[2] == eid


def test_calendar_grow_and_shrink_resize_paths():
    calendar = CalendarQueue(width=1, n_buckets=16)
    heap = HeapQueue()
    # Push far past 2x occupancy to force growth, with a wide time span
    # so the recomputed width actually changes.
    for eid in range(500):
        entry = (eid * 997, 0, eid, None)
        calendar.push(entry)
        heap.push(entry)
    assert len(calendar._buckets) > 16
    # Drain below n/8 occupancy to force the shrink path, checking order
    # the whole way down.
    while heap:
        assert calendar.pop() == heap.pop()
    assert len(calendar._buckets) < 500
    assert len(calendar) == 0


def test_calendar_reanchors_on_earlier_push():
    calendar = CalendarQueue()
    calendar.push((10**6, 0, 0, None))
    assert calendar.pop() == (10**6, 0, 0, None)
    # The slot cursor now sits at 10**6; an earlier push must re-anchor
    # it backward rather than being missed for a full wheel cycle.
    calendar.push((5, 0, 1, None))
    assert calendar.peek() == (5, 0, 1, None)
    assert calendar.pop() == (5, 0, 1, None)


@pytest.mark.parametrize("seed", range(5))
def test_environment_runs_identically_on_both_queues(seed):
    from repro.sim import EngineConfig

    def simulate(scheduler):
        rng = random.Random(seed)
        env = Environment(config=EngineConfig(scheduler=scheduler))
        log = []

        def worker(env, name):
            for _ in range(50):
                yield env.timeout(rng.randrange(1, 1000))
                log.append((env.now, name))

        for name in range(8):
            env.process(worker(env, name))
        env.run()
        return log

    assert simulate("heap") == simulate("calendar")
