"""Tests for the metrics registry."""

import pytest

from repro.obs import MetricsRegistry


def test_counter_get_or_create_and_inc():
    registry = MetricsRegistry()
    counter = registry.counter("dp.idle_yields")
    counter.inc()
    counter.inc(4)
    assert registry.counter("dp.idle_yields") is counter
    assert registry.snapshot()["counters"]["dp.idle_yields"] == 5


def test_gauge_set_and_set_max():
    registry = MetricsRegistry()
    gauge = registry.gauge("engine.heap_peak")
    gauge.set(10)
    gauge.set_max(7)
    assert gauge.value == 10
    gauge.set_max(42)
    assert registry.snapshot()["gauges"]["engine.heap_peak"] == 42


def test_histogram_percentiles_and_summary():
    registry = MetricsRegistry()
    hist = registry.histogram("latency")
    for value in range(1, 101):
        hist.record(value)
    assert hist.count == 100
    assert hist.percentile(50) == pytest.approx(50, abs=2)
    summary = registry.snapshot()["histograms"]["latency"]
    assert summary["count"] == 100


def test_cross_type_reregistration_rejected():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")
    with pytest.raises(ValueError):
        registry.histogram("x")


def test_sources_collected_lazily_and_deduped():
    registry = MetricsRegistry()
    calls = []

    def source():
        calls.append(1)
        return {"steals": 3}

    assert registry.add_source("kernel.os", source) == "kernel.os"
    assert registry.add_source("kernel.os", source) == "kernel.os#2"
    assert calls == []  # nothing collected yet
    snap = registry.snapshot()
    assert snap["sources"]["kernel.os"] == {"steals": 3}
    assert snap["sources"]["kernel.os#2"] == {"steals": 3}
    assert len(calls) == 2


def test_to_text_includes_instruments_and_engine_sources():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.add_source("sim.engine", lambda: {"events_processed": 9})
    registry.add_source("kernel.os", lambda: {"steals": 1})
    text = registry.to_text()
    assert "c: 2" in text
    assert "sim.engine.events_processed: 9" in text
    assert "steals" not in text  # non-engine sources stay out of the summary
