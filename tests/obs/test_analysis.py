"""Trace analysis: profiles from synthetic streams and JSONL round-trips."""

import json

import pytest

from repro.metrics.timeline import TimelineEvent
from repro.obs import (
    Tracer,
    analyze_events,
    analyze_streams,
    format_analysis,
    load_jsonl,
    write_analysis_json,
    write_jsonl,
)


def ev(ts, cpu, kind, **detail):
    return TimelineEvent(ts, cpu, kind, detail)


def synthetic_stream():
    return [
        ev(0, 0, "enqueue", thread="t0"),
        ev(0, 0, "rq_depth", depth=1),
        ev(1_000, 0, "sched_in", thread="t0", rq=1),
        ev(1_000, 0, "vmenter", vcpu="v0", slice_ns=30_000),
        ev(31_000, 0, "vmexit", vcpu="v0", reason="slice_expired",
           enter_cost_ns=800, exit_cost_ns=1200, premature=False),
        ev(31_000, 0, "ipi_send", dst=1, vector="resched", routed=False),
        ev(31_500, 1, "ipi_deliver", vector="resched"),
        ev(32_000, 0, "vmenter", vcpu="v0", slice_ns=30_000),
        ev(35_000, 0, "vmexit", vcpu="v0", reason="hw_probe_irq",
           enter_cost_ns=800, exit_cost_ns=1200, premature=True),
        ev(36_000, 0, "sched_out", thread="t0", outcome="preempt",
           ran_ns=35_000),
        ev(40_000, 0, "dp_idle_yield", service="dp0", threshold=10),
    ]


def test_analyze_events_profiles_the_stream():
    report = analyze_events(synthetic_stream())
    assert report["events"] == 11
    assert report["span_ns"] == 40_000

    wake = report["wakeup_to_sched_in_ns"]
    assert wake["count"] == 1
    assert wake["p99"] == pytest.approx(1_000)
    assert report["wakeup_to_sched_in_by_thread"]["t0"]["max"] == 1_000

    assert report["cpu_occupancy"][0]["busy_ns"] == 35_000
    assert report["vcpu_occupancy"]["v0"]["slices"] == 2
    assert report["vcpu_occupancy"]["v0"]["backed_ns"] == 33_000

    switch = report["switch_cost_ns"]
    assert switch["count"] == 2
    assert switch["max"] == pytest.approx(2_000)
    by_reason = report["switch_by_reason"]
    assert by_reason["slice_expired"]["count"] == 1
    assert by_reason["hw_probe_irq"]["premature"] == 1

    ipi = report["ipi_latency_ns"]
    assert ipi["count"] == 1
    assert ipi["max"] == pytest.approx(500)
    assert ipi["unmatched_sends"] == 0

    window = report["preprocessing_window"]
    assert window == {"probe_exits": 1, "hits": 0, "misses": 1,
                      "hit_rate": 0.0}
    assert report["dp_idle_yields"] == {"total": 1,
                                        "by_service": {"dp0": 1}}


def test_analyze_events_empty_stream():
    report = analyze_events([])
    assert report["events"] == 0
    assert report["span_ns"] == 0
    assert report["wakeup_to_sched_in_ns"] == {"count": 0}


def test_open_slices_charge_occupancy_until_stream_end():
    report = analyze_events([
        ev(0, 0, "sched_in", thread="t0", rq=0),
        ev(0, 0, "vmenter", vcpu="v0", slice_ns=30_000),
        ev(10_000, 1, "enqueue", thread="t1"),
    ])
    assert report["cpu_occupancy"][0]["busy_ns"] == 10_000
    assert report["vcpu_occupancy"]["v0"]["backed_ns"] == 10_000


def test_jsonl_round_trip_preserves_profile_and_meta(tmp_path):
    path = str(tmp_path / "capture.jsonl")
    tracer = Tracer(enabled=True)
    for event in synthetic_stream():
        tracer.record(event.ts_ns, event.cpu_id, event.kind, **event.detail)
    write_jsonl(path, [("sim", tracer)])

    streams = load_jsonl(path)
    assert len(streams) == 1
    label, events, meta = streams[0]
    assert label == "sim"
    assert len(events) == 11
    assert meta["dropped"] == 0
    assert meta["mode"] == "ring"

    direct = analyze_events(list(tracer))
    loaded = analyze_events(events)
    assert loaded["switch_cost_ns"] == direct["switch_cost_ns"]
    assert loaded["ipi_latency_ns"] == direct["ipi_latency_ns"]


def test_truncated_capture_warns(tmp_path):
    path = str(tmp_path / "capture.jsonl")
    tracer = Tracer(cap=4, ring=True, enabled=True)
    for event in synthetic_stream():
        tracer.record(event.ts_ns, event.cpu_id, event.kind, **event.detail)
    assert tracer.dropped > 0
    write_jsonl(path, [("sim", tracer)])

    analysis = analyze_streams(path, check_invariants=False)
    assert len(analysis["warnings"]) == 1
    assert "dropped (ring mode)" in analysis["warnings"][0]
    assert "truncated" in analysis["warnings"][0]
    text = format_analysis(analysis)
    assert text.startswith("WARNING:")


def test_analyze_streams_flags_corruption_and_serializes(tmp_path):
    corrupt = [
        ev(0, 0, "vmenter", vcpu="v0", slice_ns=30_000),
        ev(10, 0, "vmenter", vcpu="v0", slice_ns=30_000),
    ]
    analysis = analyze_streams([("bad", corrupt, {})])
    assert len(analysis["violations"]) == 1
    label, violation = analysis["violations"][0]
    assert label == "bad"
    assert violation.checker == "slice_pair_nesting"
    assert "INVARIANT VIOLATIONS: 1" in format_analysis(analysis)

    out = str(tmp_path / "analysis.json")
    write_analysis_json(out, analysis)
    with open(out) as handle:
        doc = json.load(handle)
    assert doc["violations"][0]["stream"] == "bad"
    assert doc["violations"][0]["checker"] == "slice_pair_nesting"
    assert doc["streams"]["bad"]["events"] == 2


def test_format_analysis_reports_clean_streams():
    analysis = analyze_streams([("sim", synthetic_stream(), {})])
    assert analysis["violations"] == []
    text = format_analysis(analysis)
    assert "wakeup->sched_in latency" in text
    assert "vmexit switch cost" in text
    assert "preprocessing window" in text
    assert "all checks passed (0 violations)" in text
