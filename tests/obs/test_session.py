"""Tests for observability sessions and the instrumented simulator spine."""

from repro.obs import current, observe
from repro.sim import Environment


def test_no_session_by_default():
    assert current() is None
    env = Environment()
    assert not env.tracer.enabled
    assert env.metrics is not Environment().metrics


def test_session_adopts_every_new_environment():
    with observe(trace=True) as session:
        assert current() is session
        env_a = Environment()
        env_b = Environment()
        assert env_a.tracer.enabled and env_b.tracer.enabled
        assert env_a.metrics is session.metrics
        assert env_b.metrics is session.metrics
        assert len(session.streams) == 2
    assert current() is None


def test_observe_is_reentrant():
    with observe() as outer:
        with observe() as inner:
            assert current() is inner
        assert current() is outer


def test_engine_self_profiling_source():
    with observe() as session:
        env = Environment()

        def ticker():
            for _ in range(10):
                yield env.timeout(100)

        env.process(ticker())
        env.run()
        snap = session.metrics.snapshot()
        engine = snap["sources"]["sim.engine"]
    assert engine["events_processed"] >= 10
    assert engine["heap_peak"] >= 1
    assert engine["sim_time_ns"] == 1_000
    assert engine["wall_time_s"] > 0
    assert engine["events_per_wall_s"] > 0


def test_fig4_emits_vm_transitions_through_the_spine():
    # Integration: the fig4 experiment's Tai Chi scenario must push
    # vmenter/vmexit pairs and IPI events through a session's streams.
    from repro.experiments.registry import run_experiment

    with observe(trace=True) as session:
        result = run_experiment("fig4")
        vmenter = session.events(kind="vmenter")
        vmexit = session.events(kind="vmexit")
        ipis = session.events(kind="ipi_send")
    assert result.derived["spike_vs_clean"] > 100
    assert vmenter and vmexit
    assert {e.detail["vcpu"] for e in vmenter} <= {f"v{i}" for i in range(8)}
    assert ipis  # vCPU boot INIT/STARTUP at minimum
