"""Invariant checkers against clean and deliberately corrupted streams."""

from repro.metrics.timeline import TimelineEvent
from repro.obs import InvariantEngine, check_events, default_checkers, observe
from repro.obs.invariants import (
    FaultRecoveryChecker,
    IdleYieldThreshold,
    IpiDeliveryBound,
    MonotonicTimestamps,
    RunQueueDepthConsistency,
    SingleCpuPerThread,
    SlicePairNesting,
)


def ev(ts, cpu, kind, **detail):
    return TimelineEvent(ts, cpu, kind, detail)


def names(violations):
    return [violation.checker for violation in violations]


# -- corrupted streams ---------------------------------------------------------


def test_lost_ipi_deliver_is_flagged():
    events = [
        ev(0, 0, "ipi_send", dst=1, vector="resched", routed=False),
        ev(500, 1, "ipi_deliver", vector="resched"),
        ev(1_000, 0, "ipi_send", dst=1, vector="resched", routed=False),
        # ... the matching ipi_deliver was lost ...
        ev(5_000_000, 1, "sched_in", thread="t0", rq=1),
    ]
    violations = check_events(events, checkers=[IpiDeliveryBound()])
    assert len(violations) == 1
    assert violations[0].checker == "ipi_delivery_bound"
    assert "never delivered" in violations[0].message
    assert violations[0].event.ts_ns == 1_000


def test_slow_ipi_deliver_is_flagged():
    events = [
        ev(0, 0, "ipi_send", dst=1, vector="resched", routed=False),
        ev(2_000_000, 1, "ipi_deliver", vector="resched"),
    ]
    violations = check_events(events, checkers=[IpiDeliveryBound()])
    assert len(violations) == 1
    assert "delivered" in violations[0].message


def test_deliver_without_send_is_legal_device_irq_path():
    events = [ev(100, 2, "ipi_deliver", vector="hw_probe")]
    assert check_events(events, checkers=[IpiDeliveryBound()]) == []


def test_unpaired_vmexit_is_flagged():
    events = [
        ev(0, 0, "vmenter", vcpu="v0", slice_ns=30_000),
        ev(30_000, 0, "vmexit", vcpu="v0", reason="slice_expired"),
        ev(31_000, 0, "vmexit", vcpu="v0", reason="slice_expired"),
    ]
    violations = check_events(events, checkers=[SlicePairNesting()])
    assert len(violations) == 1
    assert "unpaired vmexit" in violations[0].message


def test_nested_vmenter_and_identity_mismatch_are_flagged():
    nested = check_events([
        ev(0, 0, "vmenter", vcpu="v0"),
        ev(10, 0, "vmenter", vcpu="v1"),
    ], checkers=[SlicePairNesting()])
    assert len(nested) == 1
    assert "nested vmenter" in nested[0].message

    mismatch = check_events([
        ev(0, 0, "vmenter", vcpu="v0"),
        ev(10, 0, "vmexit", vcpu="v1", reason="slice_expired"),
    ], checkers=[SlicePairNesting()])
    assert len(mismatch) == 1
    assert "v1" in mismatch[0].message and "v0" in mismatch[0].message


def test_slice_open_at_stream_end_is_legal():
    events = [
        ev(0, 0, "sched_in", thread="t0", rq=0),
        ev(10, 0, "vmenter", vcpu="v0"),
    ]
    assert check_events(events, checkers=[SlicePairNesting()]) == []


def test_overlapping_sched_in_on_two_cpus_is_flagged():
    events = [
        ev(0, 0, "sched_in", thread="t0", rq=0),
        ev(100, 1, "sched_in", thread="t0", rq=1),
    ]
    violations = check_events(events, checkers=[SingleCpuPerThread()])
    assert len(violations) == 1
    assert "cpu 1" in violations[0].message  # names both CPUs involved
    assert "cpu 0" in violations[0].message


def test_thread_may_migrate_after_sched_out():
    events = [
        ev(0, 0, "sched_in", thread="t0", rq=0),
        ev(100, 0, "sched_out", thread="t0", outcome="preempt", ran_ns=100),
        ev(200, 1, "sched_in", thread="t0", rq=1),
    ]
    assert check_events(events, checkers=[SingleCpuPerThread()]) == []


def test_backwards_timestamp_is_flagged():
    events = [ev(100, 0, "enqueue", thread="t0"), ev(50, 0, "enqueue",
                                                     thread="t1")]
    violations = check_events(events, checkers=[MonotonicTimestamps()])
    assert names(violations) == ["monotonic_timestamps"]


def test_premature_idle_yield_is_flagged():
    events = [
        ev(0, 3, "vmexit", vcpu="dp0", reason="dp_idle"),
        # threshold 10 needs 10 * 200 ns of empty polling; 400 ns is too soon
        ev(400, 3, "dp_idle_yield", service="dp0", threshold=10),
    ]
    violations = check_events(events, checkers=[IdleYieldThreshold()])
    assert len(violations) == 1
    assert "2000 ns" in violations[0].message


def test_idle_yield_after_budget_is_legal():
    events = [
        ev(0, 3, "vmexit", vcpu="dp0", reason="dp_idle"),
        ev(2_000, 3, "dp_idle_yield", service="dp0", threshold=10),
    ]
    assert check_events(events, checkers=[IdleYieldThreshold()]) == []


def test_rq_depth_zero_after_enqueue_is_flagged():
    events = [
        ev(0, 0, "enqueue", thread="t0"),
        ev(0, 0, "rq_depth", depth=0),
    ]
    violations = check_events(events, checkers=[RunQueueDepthConsistency()])
    assert len(violations) == 1
    assert "enqueue" in violations[0].message

    negative = check_events([ev(0, 0, "rq_depth", depth=-1)],
                            checkers=[RunQueueDepthConsistency()])
    assert len(negative) == 1


# -- fault-aware streams -------------------------------------------------------


def test_injected_drop_before_send_is_forgiven():
    # The fault hook runs (and records the drop) before ``ipi_send`` is
    # traced, so the drop legitimately precedes its own send.
    events = [
        ev(0, 1, "fault.ipi_drop", dst=1, vector="resched"),
        ev(0, 0, "ipi_send", dst=1, vector="resched", routed=False),
    ]
    assert check_events(events, checkers=[IpiDeliveryBound()]) == []


def test_offline_drop_after_send_is_forgiven():
    events = [
        ev(0, 0, "ipi_send", dst=1, vector="resched", routed=False),
        ev(500, 1, "ipi.dropped", vector="resched", reason="offline"),
    ]
    assert check_events(events, checkers=[IpiDeliveryBound()]) == []


def test_drop_credit_is_consumed_once():
    # One drop forgives one send; a second undelivered send still flags.
    events = [
        ev(0, 1, "fault.ipi_drop", dst=1, vector="resched"),
        ev(0, 0, "ipi_send", dst=1, vector="resched", routed=False),
        ev(100, 0, "ipi_send", dst=1, vector="resched", routed=False),
        ev(5_000_000, 1, "sched_in", thread="t0", rq=1),
    ]
    violations = check_events(events, checkers=[IpiDeliveryBound()])
    assert len(violations) == 1
    assert violations[0].event.ts_ns == 100


def test_injected_delay_extends_the_delivery_bound():
    events = [
        ev(0, 0, "ipi_send", dst=1, vector="resched", routed=False),
        ev(0, 1, "fault.ipi_delay", dst=1, vector="resched",
           extra_ns=2_000_000),
        ev(2_500_000, 1, "ipi_deliver", vector="resched"),
    ]
    assert check_events(events, checkers=[IpiDeliveryBound()]) == []
    # Without the delay annotation the same stream is a violation.
    undelayed = [events[0], events[2]]
    assert len(check_events(undelayed, checkers=[IpiDeliveryBound()])) == 1


def test_paired_fault_inject_and_clear_is_clean():
    events = [
        ev(0, "-", "fault.injected", fault="ipi_drop-0.0",
           fault_kind="ipi_drop", until_ns=1_000),
        ev(1_000, "-", "fault.cleared", fault="ipi_drop-0.0",
           fault_kind="ipi_drop"),
    ]
    assert check_events(events, checkers=[FaultRecoveryChecker()]) == []


def test_double_injection_without_clear_is_flagged():
    events = [
        ev(0, "-", "fault.injected", fault="f1", fault_kind="ipi_drop",
           until_ns=1_000),
        ev(500, "-", "fault.injected", fault="f1", fault_kind="ipi_drop",
           until_ns=1_500),
    ]
    violations = check_events(events, checkers=[FaultRecoveryChecker()])
    assert any("injected twice" in v.message for v in violations)


def test_clear_without_injection_is_flagged():
    events = [ev(0, "-", "fault.cleared", fault="ghost",
                 fault_kind="ipi_drop")]
    violations = check_events(events, checkers=[FaultRecoveryChecker()])
    assert len(violations) == 1
    assert "never injected" in violations[0].message


def test_fault_never_cleared_is_flagged_after_its_window():
    events = [
        ev(0, "-", "fault.injected", fault="f1", fault_kind="probe_outage",
           until_ns=1_000),
        ev(5_000, 0, "enqueue", thread="t0"),
    ]
    violations = check_events(events, checkers=[FaultRecoveryChecker()])
    assert len(violations) == 1
    assert "never cleared" in violations[0].message


def test_fault_open_at_capture_end_is_legal():
    # The capture stopped inside the fault window: not a violation.
    events = [
        ev(0, "-", "fault.injected", fault="f1", fault_kind="probe_outage",
           until_ns=10_000),
        ev(5_000, 0, "enqueue", thread="t0"),
    ]
    assert check_events(events, checkers=[FaultRecoveryChecker()]) == []


# -- engine plumbing -----------------------------------------------------------


def test_engine_attaches_context_and_is_idempotent():
    engine = InvariantEngine(context_events=2)
    engine.observe(ev(0, 0, "enqueue", thread="a"))
    engine.observe(ev(10, 0, "enqueue", thread="b"))
    engine.observe(ev(5, 0, "enqueue", thread="c"))  # goes backwards
    first = engine.finish()
    assert len(first) == 1
    assert [event.detail["thread"] for event in first[0].context] == ["a", "b"]
    assert engine.finish() is first


def test_engine_caps_violations():
    engine = InvariantEngine(checkers=[MonotonicTimestamps()],
                             max_violations=3)
    engine.observe(ev(100, 0, "enqueue", thread="t"))
    for _ in range(10):
        engine.observe(ev(1, 0, "enqueue", thread="t"))
    assert len(engine.finish()) == 3
    assert engine.overflowed == 7


def test_default_checkers_cover_catalog():
    assert {checker.name for checker in default_checkers()} == {
        "monotonic_timestamps", "ipi_delivery_bound", "slice_pair_nesting",
        "single_cpu_per_thread", "idle_yield_threshold", "runqueue_depth",
        "fault_recovery", "alert_pairing", "span_pairing",
        "tenant_fair_share", "tenant_grant_conservation",
    }


# -- clean end-to-end run ------------------------------------------------------


def test_clean_fig4_run_has_zero_violations():
    from repro.experiments import run_experiment

    with observe(check_invariants=True) as session:
        run_experiment("fig4", scale=0.2, seed=0)
        violations = session.violations()
    assert session.invariant_engines          # checkers actually attached
    assert session.events()                   # hook force-enabled the tracers
    assert violations == []
