"""Tests for the gated tracer."""

from repro.obs import Tracer


def test_disabled_tracer_records_nothing():
    tracer = Tracer()
    assert not tracer.enabled
    tracer.record(10, 0, "sched_in", thread="a")
    assert len(tracer) == 0
    assert tracer.dropped == 0


def test_enable_disable_toggle_capture():
    tracer = Tracer()
    assert tracer.enable() is tracer
    tracer.record(10, 0, "sched_in", thread="a")
    tracer.disable()
    tracer.record(20, 0, "sched_out", thread="a")
    assert len(tracer) == 1
    assert tracer.events[0].kind == "sched_in"


def test_enabled_tracer_is_a_timeline():
    tracer = Tracer(enabled=True)
    tracer.record(10, 0, "enqueue", thread="a")
    tracer.record(20, 1, "enqueue", thread="b")
    assert len(tracer.filter(cpu_id=1)) == 1
    assert tracer.filter(kind="enqueue")[0].detail["thread"] == "a"


def test_ring_mode_evicts_oldest():
    tracer = Tracer(cap=3, ring=True, enabled=True)
    for ts in range(5):
        tracer.record(ts, 0, "x", n=ts)
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert [event.ts_ns for event in tracer] == [2, 3, 4]


def test_instrumentation_sites_pay_only_the_guard(kernel):
    # The spine's contract: with the default (disabled) env tracer, a full
    # simulation leaves the trace empty.
    from repro.kernel import Compute

    kernel.spawn("worker", iter([Compute(1_000)]))
    kernel.env.run()
    assert len(kernel.env.tracer) == 0
    assert kernel.env.tracer.dropped == 0
