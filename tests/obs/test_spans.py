"""Causal request tracing: attribution exactness, exemplars, pairing.

The load-bearing contract tested here is the exact partition: every
completed root span's ``parts`` timeline sums to its end-to-end duration
ns-exactly — including under fault injection, where delayed IPI delivery
must surface as a wider ``ipi_deliver`` segment, never as an
unexplained gap.
"""

import json

import pytest

from repro.metrics.timeline import TimelineEvent
from repro.obs import check_events, observe, write_jsonl
from repro.obs.analysis import (
    critical_path_from_streams,
    find_request_tree,
    load_jsonl,
)
from repro.obs.invariants import SpanPairingChecker
from repro.obs.spans import (
    ExemplarReservoir,
    SpanTracker,
    build_span_trees,
    dominant_segment,
    format_critical_path,
    format_waterfall,
    merge_parts,
    segment_totals,
)
from repro.obs.tracer import Tracer
from repro.scenario import Scenario, run_soak
from repro.sim.units import MILLISECONDS


class _Env:
    """A minimal environment stand-in: a clock and a tracer."""

    def __init__(self):
        self.now = 0
        self.tracer = Tracer(enabled=True)


def _tracker():
    env = _Env()
    tracker = SpanTracker(env)
    tracker.enable()
    return env, tracker


def _parts_sum(parts):
    return sum(hi - lo for _name, lo, hi in parts)


def _assert_exact(record):
    assert _parts_sum(record["parts"]) == record["duration_ns"]
    assert sum(record["segments"].values()) == record["duration_ns"]


# -- primitives ----------------------------------------------------------------


def test_merge_parts_coalesces_and_drops_empty():
    parts = merge_parts([["a", 0, 10], ["a", 10, 20], ["b", 20, 20],
                         ["b", 20, 30], ["a", 30, 40]])
    assert parts == [["a", 0, 20], ["b", 20, 30], ["a", 30, 40]]
    assert segment_totals(parts) == {"a": 30, "b": 10}


def test_dominant_segment_breaks_ties_deterministically():
    assert dominant_segment({"b": 10, "a": 10}) == ("a", 50.0)
    assert dominant_segment({}) == (None, 0.0)


def test_exemplar_reservoir_is_bounded_and_worst_first():
    reservoir = ExemplarReservoir(k=3)
    for i, duration in enumerate([50, 300, 100, 200, 400, 10]):
        reservoir.offer({"request": f"pkt-{i}", "duration_ns": duration})
    assert reservoir.offered == 6
    assert len(reservoir) == 3
    assert reservoir.worst_ids() == ["pkt-4", "pkt-1", "pkt-3"]


def test_exemplar_reservoir_ties_break_on_request_id():
    reservoir = ExemplarReservoir(k=2)
    for request in ("pkt-9", "pkt-2", "pkt-5"):
        reservoir.offer({"request": request, "duration_ns": 100})
    assert reservoir.worst_ids() == ["pkt-2", "pkt-5"]


# -- flat-stream attribution ---------------------------------------------------


def test_attribute_vcpu_slice_splits_body_and_switch_tail():
    env, tracker = _tracker()
    env.tracer.record(200, 1, "vmenter", vcpu="vm0.vcpu0")
    env.tracer.record(1200, 1, "vmexit", vcpu="vm0.vcpu0",
                      exit_cost_ns=300)
    parts = tracker.attribute(1, 0, 2000, "queue_wait")
    assert parts == [["queue_wait", 0, 200],
                     ["vcpu_occupied", 200, 900],
                     ["vmexit_switch", 900, 1200],
                     ["queue_wait", 1200, 2000]]
    assert _parts_sum(parts) == 2000


def test_attribute_delayed_ipi_is_a_segment_not_a_gap():
    # A fault-delayed IPI: sent at t=100, delivered 5us later.  The whole
    # in-flight window must be claimed by ipi_deliver.
    env, tracker = _tracker()
    env.tracer.record(100, "-", "ipi_send", dst=0, vector="resched",
                      routed=False)
    env.tracer.record(5100, 0, "ipi_deliver", vector="resched")
    parts = tracker.attribute(0, 0, 6000, "sched_delay")
    assert parts == [["sched_delay", 0, 100],
                     ["ipi_deliver", 100, 5100],
                     ["sched_delay", 5100, 6000]]
    assert _parts_sum(parts) == 6000


def test_attribute_dropped_ipi_consumes_pending_send():
    env, tracker = _tracker()
    env.tracer.record(100, "-", "ipi_send", dst=0, vector="resched",
                      routed=False)
    env.tracer.record(150, 0, "fault.ipi_drop", vector="resched")
    # A later delivery must not pair with the dropped send.
    env.tracer.record(900, 0, "ipi_deliver", vector="resched")
    parts = tracker.attribute(0, 0, 1000, "sched_delay")
    assert parts == [["sched_delay", 0, 1000]]


def test_attribute_probe_irq_window_counts_as_ipi():
    env, tracker = _tracker()
    env.tracer.record(100, 0, "hwprobe_irq", latency_ns=400)
    parts = tracker.attribute(0, 0, 1000, "queue_wait")
    assert parts == [["queue_wait", 0, 100],
                     ["ipi_deliver", 100, 500],
                     ["queue_wait", 500, 1000]]


def test_attribute_overlap_deeper_activity_wins():
    # DP service time [0, 1000) with an IPI in flight [200, 400): the
    # IPI is deeper, so it claims its window.
    env, tracker = _tracker()
    tracker.register_dp_thread("dp-net0")
    env.tracer.record(0, 0, "sched_in", thread="dp-net0")
    env.tracer.record(200, "-", "ipi_send", dst=0, vector="resched",
                      routed=False)
    env.tracer.record(400, 0, "ipi_deliver", vector="resched")
    env.tracer.record(1000, 0, "sched_out", thread="dp-net0")
    parts = tracker.attribute(0, 0, 1000, "sched_delay")
    assert parts == [["queued_behind", 0, 200],
                     ["ipi_deliver", 200, 400],
                     ["queued_behind", 400, 1000]]
    assert _parts_sum(parts) == 1000


def test_attribute_clips_open_intervals_to_window_end():
    env, tracker = _tracker()
    env.tracer.record(300, 2, "vmenter", vcpu="vm1.vcpu0")  # never exits
    parts = tracker.attribute(2, 0, 1000, "queue_wait")
    assert parts == [["queue_wait", 0, 300], ["vcpu_occupied", 300, 1000]]


def test_attribute_empty_window_is_empty():
    _env, tracker = _tracker()
    assert tracker.attribute(0, 500, 500, "x") == []
    assert tracker.attribute(0, 500, 400, "x") == []


def test_interval_pruning_keeps_memory_bounded():
    env, tracker = _tracker()
    for i in range(3000):
        env.now = i * 100
        env.tracer.record(i * 100, 0, "hwprobe_irq", latency_ns=10)
    # No open spans: old intervals are pruned against env.now.
    assert len(tracker._cpu_iv[0]) <= 600


# -- span emission and reconstruction ------------------------------------------


def test_span_events_reconstruct_into_a_tree():
    env, tracker = _tracker()
    root = tracker.begin("dp_request", channel="dp", cpu_id=0)
    env.now = 50
    child = tracker.begin("stage", parent=root)
    env.now = 80
    tracker.end(child)
    env.now = 100
    record = tracker.end_root(root, [["wait", 0, 60], ["serve", 60, 100]])
    _assert_exact(record)
    assert record["dominant"] == "wait"

    events = list(env.tracer)
    assert check_events(events, checkers=[SpanPairingChecker()]) == []
    trees = build_span_trees(events)
    tree = trees[record["request"]]
    assert tree["complete"]
    assert tree["channel"] == "dp"
    assert tree["duration_ns"] == 100
    assert [s["name"] for s in tree["spans"]] == ["dp_request", "stage"]
    assert _parts_sum(tree["parts"]) == 100


def test_open_span_at_stream_end_is_legal_and_incomplete():
    env, tracker = _tracker()
    tracker.begin("dp_request", channel="dp", cpu_id=0)
    events = list(env.tracer)
    assert check_events(events, checkers=[SpanPairingChecker()]) == []
    (tree,) = build_span_trees(events).values()
    assert not tree["complete"]
    assert tracker.open_spans() == 1


def _ev(ts, kind, **detail):
    return TimelineEvent(ts, "-", kind, detail)


def test_span_pairing_checker_flags_violations():
    def violations(events):
        return check_events(events, checkers=[SpanPairingChecker()])

    begin = _ev(0, "span.begin", span="r#0", request="r", name="root")
    assert violations([begin, begin])  # begun twice
    assert violations([_ev(0, "span.begin", span="c#1", request="r",
                           name="child", parent="nope")])  # parent not open
    assert violations([
        begin,
        _ev(1, "span.begin", span="x#1", request="other", name="child",
            parent="r#0"),
    ])  # request mismatch across the tree
    assert violations([_ev(5, "span.end", span="ghost", request="r",
                           name="root")])  # end without begin
    assert violations([
        begin,
        _ev(1, "span.begin", span="r#1", request="r", name="child",
            parent="r#0"),
        _ev(2, "span.end", span="r#0", request="r", name="root"),
    ])  # parent ended while child open
    assert violations([
        begin,
        _ev(1, "span.begin", span="r#1", request="r", name="child",
            parent="r#0"),
        _ev(2, "span.end", span="r#1", request="r", name="child"),
        _ev(3, "span.end", span="r#0", request="r", name="root"),
    ]) == []


# -- end-to-end through the soak driver ----------------------------------------


def _soak_summary(arm="taichi", faults=None, spans=True, seed=0,
                  duration_ms=120, check_invariants=False):
    scenario = Scenario(arm=arm, faults=faults)
    with observe(trace=True, check_invariants=check_invariants,
                 spans=spans) as session:
        summary = run_soak(scenario, seed=seed,
                           duration_ns=duration_ms * MILLISECONDS,
                           drain_ns=60 * MILLISECONDS, label="spans-test",
                           spans=spans)
    return summary, session


def test_soak_exemplars_sum_exactly_for_both_channels():
    summary, _session = _soak_summary(duration_ms=300)
    exemplars = summary["exemplars"]
    assert set(exemplars) >= {"dp", "vm"}
    for channel, records in exemplars.items():
        assert records, f"channel {channel} kept no exemplars"
        for record in records:
            _assert_exact(record)
            assert record["end_ns"] - record["begin_ns"] == \
                record["duration_ns"]
    assert summary["spans"]["completed"] > 0


def test_soak_exact_under_ipi_fault_injection():
    summary, session = _soak_summary(faults="ipi_storm", duration_ms=300,
                                     check_invariants=True)
    assert summary["faults"]["injected"] > 0
    for records in summary["exemplars"].values():
        for record in records:
            _assert_exact(record)
    assert session.violations() == []


def test_spans_do_not_perturb_the_simulation():
    # The determinism contract: spans only read state and record events,
    # so the summary minus the span-only keys is byte-identical.
    with_spans, _ = _soak_summary(spans=True)
    without, _ = _soak_summary(spans=False)
    assert "exemplars" not in without and "spans" not in without
    stripped = {key: value for key, value in with_spans.items()
                if key not in ("exemplars", "spans")}
    assert json.dumps(stripped, sort_keys=True, default=str) == \
        json.dumps(without, sort_keys=True, default=str)


def test_capture_round_trip_critical_path_and_waterfall(tmp_path):
    summary, session = _soak_summary()
    path = tmp_path / "spans.jsonl"
    write_jsonl(str(path), session.streams)

    streams = load_jsonl(str(path))
    trees, report = critical_path_from_streams(streams)
    assert "dp" in report
    block = report["dp"]
    assert block["complete"] == summary["spans"]["completed"]
    assert block["tail_dominant"] is not None
    total_pct = sum(seg["share_pct"] for seg in block["segments"].values())
    assert total_pct == pytest.approx(100.0, abs=0.5)
    # Reconstructed trees carry the same exactness guarantee.
    for exemplar in block["exemplars"]:
        tree = trees[exemplar["request"]]
        assert _parts_sum(tree["parts"]) == tree["duration_ns"]

    text = format_critical_path(report)
    assert "tail dominated by" in text
    worst = block["exemplars"][0]["request"]
    assert worst in text
    waterfall = format_waterfall(find_request_tree(str(path), worst))
    assert worst in waterfall and "critical path:" in waterfall


def test_format_critical_path_empty_capture():
    assert "no spans" in format_critical_path({})
