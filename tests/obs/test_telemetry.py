"""TelemetryBus: interval snapshots, subscribers, exporters, soak wiring."""

import json

import pytest

from repro.metrics.sketch import QuantileSketch
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import (
    RingSeries,
    TelemetryBus,
    TelemetryConfig,
    TelemetryJsonlWriter,
    TelemetrySnapshot,
    load_telemetry_jsonl,
    openmetrics_text,
    parse_openmetrics,
    snapshot_openmetrics,
)


def _bus(**kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("interval_ns", 10_000_000)
    return TelemetryBus(**kwargs)


# -- tick mechanics ------------------------------------------------------------


def test_tick_emits_counter_deltas():
    bus = _bus()
    counter = bus.registry.counter("dp.idle_yields")
    counter.inc(5)
    first = bus.tick(10_000_000)
    assert first.counters["dp.idle_yields"].total == 5
    assert first.counters["dp.idle_yields"].delta == 5
    counter.inc(2)
    second = bus.tick(20_000_000)
    assert second.counters["dp.idle_yields"].total == 7
    assert second.counters["dp.idle_yields"].delta == 2
    assert second.seq == 1
    assert (second.t_start_ns, second.t_end_ns) == (10_000_000, 20_000_000)


def test_sketch_channels_drain_interval_deltas_keep_cumulative():
    bus = _bus()
    bus.observe("dp_rx_wait_us", 100.0)
    bus.observe("dp_rx_wait_us", 200.0)
    first = bus.tick(10_000_000)
    assert first.sketches["dp_rx_wait_us"].count == 2
    bus.observe("dp_rx_wait_us", 300.0)
    second = bus.tick(20_000_000)
    assert second.sketches["dp_rx_wait_us"].count == 1
    assert bus.channel("dp_rx_wait_us").cumulative.count == 3


def test_gauge_fns_sampled_every_tick():
    bus = _bus()
    state = {"depth": 3}
    bus.add_gauge("rq_depth", lambda: state["depth"])
    assert bus.tick(1).gauges["rq_depth"].value == 3
    state["depth"] = 9
    assert bus.tick(2).gauges["rq_depth"].value == 9


def test_collectors_run_before_sampling():
    bus = _bus()
    bus.add_collector(lambda now: bus.observe("lat", 50.0))
    snapshot = bus.tick(1)
    assert snapshot.sketches["lat"].count == 1


def test_subscribers_run_in_subscription_order():
    bus = _bus()
    order = []
    bus.subscribe(lambda snap: order.append("first"))

    class Sub:
        def on_snapshot(self, snap):
            order.append("second")

    bus.subscribe(Sub())
    bus.tick(1)
    assert order == ["first", "second"]
    with pytest.raises(TypeError, match="subscriber"):
        bus.subscribe(42)


def test_close_emits_final_partial_interval_once():
    bus = _bus()
    ring = bus.subscribe(RingSeries())
    bus.tick(10_000_000)
    bus.observe("lat", 1.0)
    bus.close(15_000_000)
    bus.close(15_000_000)  # idempotent
    assert len(ring) == 2
    assert ring.last().t_end_ns == 15_000_000


def test_signals_flatten_namespace():
    bus = _bus()
    bus.registry.counter("kernel.steals").inc(4)
    bus.add_gauge("probe_health", lambda: 1.0)
    bus.observe("dp_rx_wait_us", 100.0)
    signals = bus.tick(1).signals()
    assert signals["kernel.steals_delta"] == 4
    assert signals["kernel.steals_total"] == 4
    assert signals["probe_health"] == 1.0
    assert signals["dp_rx_wait_us_count"] == 1
    assert signals["dp_rx_wait_us_p99"] == pytest.approx(100.0, rel=0.02)


def test_snapshot_dict_round_trip():
    bus = _bus(node_id="n3")
    bus.registry.counter("c").inc()
    bus.add_gauge("g", lambda: 2.5)
    bus.observe("lat", 10.0)
    snapshot = bus.tick(5_000_000)
    restored = TelemetrySnapshot.from_dict(
        json.loads(json.dumps(snapshot.to_dict())))
    assert restored.to_dict() == snapshot.to_dict()
    assert restored.node_id == "n3"
    assert isinstance(restored.sketches["lat"], QuantileSketch)


def test_config_validation():
    with pytest.raises(ValueError, match="interval_ms"):
        TelemetryConfig(interval_ms=0)
    with pytest.raises(ValueError, match="ring_cap"):
        TelemetryConfig(ring_cap=0)
    with pytest.raises(ValueError, match="interval_ns"):
        TelemetryBus(interval_ns=0)


# -- subscribers ---------------------------------------------------------------


def test_ring_series_drops_oldest_and_counts():
    bus = _bus()
    ring = bus.subscribe(RingSeries(cap=3))
    for index in range(5):
        bus.tick((index + 1) * 1_000)
    assert len(ring) == 3
    assert ring.total == 5
    assert ring.dropped == 2
    assert [snap.seq for snap in ring] == [2, 3, 4]


def test_ring_series_signal_extraction():
    bus = _bus()
    ring = bus.subscribe(RingSeries())
    state = {"v": 1.0}
    bus.add_gauge("g", lambda: state["v"])
    bus.tick(1_000)
    state["v"] = 2.0
    bus.tick(2_000)
    assert ring.series("g") == [(1_000, 1.0), (2_000, 2.0)]


def test_jsonl_writer_head_meta_and_round_trip(tmp_path):
    path = str(tmp_path / "node.telemetry.jsonl")
    bus = _bus(node_id="n0")
    bus.subscribe(TelemetryJsonlWriter(path, node_id="n0"))
    bus.registry.counter("c").inc(3)
    bus.observe("lat", 25.0)
    bus.tick(10_000_000)
    bus.close(20_000_000)

    with open(path) as handle:
        head = json.loads(handle.readline())
    assert head["kind"] == "telemetry_meta"
    assert head["args"]["snapshots"] == 2
    assert head["args"]["dropped"] == 0
    assert head["args"]["stream_type"] == "telemetry"

    node_id, snapshots, meta = load_telemetry_jsonl(path)
    assert node_id == "n0"
    assert len(snapshots) == 2
    assert snapshots[0].counters["c"].delta == 3
    assert meta["snapshots"] == 2


def test_jsonl_writer_ring_cap_counts_drops(tmp_path):
    path = str(tmp_path / "t.jsonl")
    writer = TelemetryJsonlWriter(path, cap=2)
    bus = _bus()
    bus.subscribe(writer)
    for index in range(5):
        bus.tick((index + 1) * 1_000)
    writer.finish()
    _, snapshots, meta = load_telemetry_jsonl(path)
    assert meta["dropped"] == 3
    assert [snap.seq for snap in snapshots] == [3, 4]


def test_analyze_warns_on_truncated_telemetry(tmp_path):
    from repro.obs.analysis import analyze_capture

    path = str(tmp_path / "t.jsonl")
    writer = TelemetryJsonlWriter(path, cap=2)
    bus = _bus()
    bus.subscribe(writer)
    for index in range(4):
        bus.tick((index + 1) * 1_000)
    writer.finish()
    analysis = analyze_capture(path)
    assert any("telemetry snapshots" in warning
               for warning in analysis["warnings"])
    assert not analysis["violations"]


# -- OpenMetrics ---------------------------------------------------------------


def test_openmetrics_text_families_and_eof():
    sketch = QuantileSketch().extend([10.0, 20.0, 30.0])
    text = openmetrics_text(
        counters={"dp.idle_yields": 12},
        gauges={"rq_depth": 4},
        sketches={"dp_rx_wait_us": sketch},
        labels={"node": "n0"},
    )
    assert text.endswith("# EOF\n")
    assert "# TYPE taichi_dp_idle_yields_total counter" in text
    assert 'taichi_dp_idle_yields_total{node="n0"} 12' in text
    assert "# TYPE taichi_rq_depth gauge" in text
    assert "# TYPE taichi_dp_rx_wait_us summary" in text
    assert 'quantile="0.99"' in text
    assert 'taichi_dp_rx_wait_us_count{node="n0"} 3' in text

    samples = parse_openmetrics(text)
    assert samples["taichi_dp_idle_yields_total"] == [({"node": "n0"}, 12.0)]
    quantiles = {labels["quantile"]: value
                 for labels, value in samples["taichi_dp_rx_wait_us"]}
    assert set(quantiles) == {"0.5", "0.9", "0.99"}


def test_parse_openmetrics_rejects_malformed():
    with pytest.raises(ValueError, match="EOF"):
        parse_openmetrics("taichi_x 1\n")
    with pytest.raises(ValueError, match="malformed"):
        parse_openmetrics("not a metric line at all!\n# EOF")


def test_snapshot_openmetrics_uses_totals():
    bus = _bus(node_id="n1")
    counter = bus.registry.counter("c")
    counter.inc(5)
    bus.tick(1_000)
    counter.inc(1)
    snapshot = bus.tick(2_000)
    samples = parse_openmetrics(snapshot_openmetrics(snapshot))
    assert samples["taichi_c_total"] == [({"node": "n1"}, 6.0)]


# -- soak integration ----------------------------------------------------------


def test_soak_telemetry_does_not_change_results():
    from repro.scenario.soak import run_soak
    from repro.scenario.spec import Scenario
    from repro.sim.units import MILLISECONDS

    scenario = Scenario(arm="taichi")
    plain = run_soak(scenario, seed=2, duration_ns=40 * MILLISECONDS,
                     drain_ns=20 * MILLISECONDS)
    sampled = run_soak(scenario, seed=2, duration_ns=40 * MILLISECONDS,
                       drain_ns=20 * MILLISECONDS,
                       telemetry=TelemetryConfig(interval_ms=5.0))
    telemetry = sampled.pop("telemetry")
    assert telemetry["intervals"] > 0
    # The engine self-profile honestly counts the bus's tick events, so a
    # sampled run processes a few more; everything else is byte-identical.
    plain_engine = plain.pop("engine")
    sampled_engine = sampled.pop("engine")
    assert sampled_engine["events_processed"] >= plain_engine[
        "events_processed"]
    assert json.dumps(plain, sort_keys=True) == json.dumps(sampled,
                                                           sort_keys=True)


def test_soak_ships_sketches_matching_samples():
    from repro.metrics.sketch import QuantileSketch
    from repro.scenario.soak import run_soak
    from repro.scenario.spec import Scenario
    from repro.sim.units import MILLISECONDS

    summary = run_soak(Scenario(arm="taichi"), seed=4,
                       duration_ns=40 * MILLISECONDS,
                       drain_ns=20 * MILLISECONDS)
    sketch = QuantileSketch.from_dict(summary["dp_sketch"])
    assert sketch.count == summary["dp_slo_total"]
    exact = summary["dp_latency_us"]
    # Same distribution within the sketch's error bound (both sides see
    # every sample at this size — under the reservoir cap).
    assert sketch.percentile(50) == pytest.approx(exact["p50"], rel=0.05)
    startup = QuantileSketch.from_dict(summary["startup_sketch"])
    assert startup.count == summary["vms_started"]
