"""SLO alerting: hysteresis, paired trace events, scenario round-trip."""

import pytest

from repro.obs.alerts import (
    DEFAULT_ALERT_RULES,
    AlertRule,
    SLOMonitor,
    normalize_alert_rules,
)
from repro.obs.invariants import AlertPairingChecker
from repro.obs import check_events
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import TelemetryBus
from repro.obs.tracer import Tracer


def _driven_monitor(rules, signal="probe_health", tracer=None):
    """A bus + monitor whose single gauge the test controls directly."""
    bus = TelemetryBus(registry=MetricsRegistry(), interval_ns=1_000)
    monitor = bus.subscribe(SLOMonitor(rules=rules, tracer=tracer))
    state = {"value": 1.0}
    bus.add_gauge(signal, lambda: state["value"])
    return bus, monitor, state


# -- rule schema ---------------------------------------------------------------


def test_rule_validation():
    with pytest.raises(ValueError, match="op"):
        AlertRule(name="r", signal="s", threshold=1.0, op="between")
    with pytest.raises(ValueError, match="hold"):
        AlertRule(name="r", signal="s", threshold=1.0, hold=0)
    with pytest.raises(ValueError, match="severity"):
        AlertRule(name="r", signal="s", threshold=1.0, severity="loud")
    with pytest.raises(ValueError, match="unknown keys"):
        AlertRule.from_dict({"name": "r", "signal": "s", "threshold": 1.0,
                             "window": 5})
    with pytest.raises(ValueError, match="duplicate"):
        normalize_alert_rules([
            {"name": "r", "signal": "a", "threshold": 1.0},
            {"name": "r", "signal": "b", "threshold": 2.0},
        ])


def test_rule_dict_round_trip_is_sparse():
    rule = AlertRule(name="p99_high", signal="dp_rx_wait_us_p99",
                     threshold=300.0, severity="critical", min_count=8)
    data = rule.to_dict()
    assert "op" not in data and "hold" not in data  # defaults omitted
    assert data["severity"] == "critical"
    assert AlertRule.from_dict(data) == rule


def test_count_signal_derivation():
    assert AlertRule(name="r", signal="dp_rx_wait_us_p99",
                     threshold=1.0).count_signal() == "dp_rx_wait_us_count"
    assert AlertRule(name="r", signal="lat_p99.9",
                     threshold=1.0).count_signal() == "lat_count"
    assert AlertRule(name="r", signal="lat_mean",
                     threshold=1.0).count_signal() == "lat_count"
    assert AlertRule(name="r", signal="probe_health",
                     threshold=1.0).count_signal() is None


# -- hysteresis ----------------------------------------------------------------


def test_alert_needs_hold_consecutive_breaches():
    rules = [AlertRule(name="degraded", signal="probe_health",
                       threshold=1.0, op="lt", hold=2, clear_hold=2)]
    bus, monitor, state = _driven_monitor(rules)
    state["value"] = 0.0
    bus.tick(1_000)
    assert monitor.active == {}        # one breach < hold
    state["value"] = 1.0
    bus.tick(2_000)                    # healthy interval resets the streak
    state["value"] = 0.0
    bus.tick(3_000)
    assert monitor.active == {}
    bus.tick(4_000)                    # second consecutive breach
    assert "degraded" in monitor.active
    assert monitor.raised_total == 1


def test_alert_clears_after_clear_hold_and_tracks_peak():
    rules = [AlertRule(name="hot", signal="load", threshold=10.0,
                       hold=1, clear_hold=2)]
    bus, monitor, state = _driven_monitor(rules, signal="load")
    state["value"] = 15.0
    bus.tick(1_000)
    assert "hot" in monitor.active
    state["value"] = 40.0
    bus.tick(2_000)                    # deeper breach updates peak
    state["value"] = 5.0
    bus.tick(3_000)
    assert "hot" in monitor.active     # one healthy interval < clear_hold
    bus.tick(4_000)
    assert monitor.active == {}
    assert monitor.cleared_total == 1
    closed = monitor.history[0]
    assert closed["peak"] == 40.0
    assert closed["duration_ns"] == 3_000
    assert closed["raised_ns"] == 1_000


def test_missing_signal_freezes_streaks():
    rules = [AlertRule(name="hot", signal="absent", threshold=1.0, hold=2)]
    bus = TelemetryBus(registry=MetricsRegistry(), interval_ns=1_000)
    monitor = bus.subscribe(SLOMonitor(rules=rules))
    for index in range(5):
        bus.tick((index + 1) * 1_000)
    assert monitor.active == {}
    assert monitor.raised_total == 0


def test_min_count_guards_sparse_sketch_intervals():
    rules = [AlertRule(name="p99_high", signal="lat_p99", threshold=100.0,
                       hold=1, min_count=4)]
    bus = TelemetryBus(registry=MetricsRegistry(), interval_ns=1_000)
    monitor = bus.subscribe(SLOMonitor(rules=rules))
    bus.observe("lat", 500.0)          # one sample breaching hard
    bus.tick(1_000)
    assert monitor.active == {}        # suppressed: count 1 < min_count 4
    for _ in range(4):
        bus.observe("lat", 500.0)
    bus.tick(2_000)
    assert "p99_high" in monitor.active


def test_snapshot_carries_active_alert_names():
    rules = [AlertRule(name="degraded", signal="probe_health",
                       threshold=1.0, op="lt", hold=1)]
    bus, monitor, state = _driven_monitor(rules)
    state["value"] = 0.0
    snapshot = bus.tick(1_000)
    assert snapshot.alerts == ["degraded"]


# -- paired trace events -------------------------------------------------------


def test_transitions_emit_paired_events_passing_invariants():
    tracer = Tracer(enabled=True)
    rules = [AlertRule(name="degraded", signal="probe_health",
                       threshold=1.0, op="lt", hold=1, clear_hold=1)]
    bus, monitor, state = _driven_monitor(rules, tracer=tracer)
    state["value"] = 0.0
    bus.tick(1_000)
    state["value"] = 1.0
    bus.tick(2_000)

    kinds = [event.kind for event in tracer.events]
    assert kinds == ["alert.raised", "alert.cleared"]
    raised, cleared = tracer.events
    assert raised.cpu_id == "-"
    assert raised.detail["alert"] == "degraded"
    assert raised.detail["node"] == "node"
    assert cleared.detail["duration_ns"] == 1_000
    assert check_events(tracer.events,
                        checkers=[AlertPairingChecker()]) == []


def test_pairing_checker_flags_corrupted_streams():
    tracer = Tracer(enabled=True)
    tracer.record(0, "-", "alert.raised", alert="a", node="n0")
    tracer.record(10, "-", "alert.raised", alert="a", node="n0")
    double = check_events(tracer.events, checkers=[AlertPairingChecker()])
    assert len(double) == 1
    assert "raised twice" in double[0].message

    orphan = Tracer(enabled=True)
    orphan.record(0, "-", "alert.cleared", alert="ghost", node="n0")
    violations = check_events(orphan.events,
                              checkers=[AlertPairingChecker()])
    assert len(violations) == 1
    assert "never raised" in violations[0].message


def test_alert_active_at_stream_end_is_legal():
    tracer = Tracer(enabled=True)
    tracer.record(0, "-", "alert.raised", alert="a", node="n0")
    assert check_events(tracer.events,
                        checkers=[AlertPairingChecker()]) == []


def test_same_alert_name_on_two_nodes_is_independent():
    tracer = Tracer(enabled=True)
    tracer.record(0, "-", "alert.raised", alert="a", node="n0")
    tracer.record(5, "-", "alert.raised", alert="a", node="n1")
    tracer.record(10, "-", "alert.cleared", alert="a", node="n0")
    assert check_events(tracer.events,
                        checkers=[AlertPairingChecker()]) == []


# -- scenario + soak integration -----------------------------------------------


def test_scenario_alert_rules_round_trip():
    from repro.scenario.spec import Scenario

    scenario = Scenario(arm="taichi", alerts=[
        {"name": "p99_high", "signal": "dp_rx_wait_us_p99",
         "threshold": 250.0, "min_count": 4},
    ])
    assert scenario.alerts[0] == AlertRule(
        name="p99_high", signal="dp_rx_wait_us_p99", threshold=250.0,
        min_count=4)
    restored = Scenario.from_dict(scenario.to_dict())
    assert restored.alerts == scenario.alerts
    with pytest.raises(ValueError, match="alerts"):
        Scenario(arm="taichi", alerts="dp_rx_wait_us_p99>250")


def test_faulted_soak_raises_and_clears_probe_alert():
    from repro.scenario.soak import run_soak
    from repro.scenario.spec import Scenario
    from repro.sim.units import MILLISECONDS

    scenario = Scenario(
        arm="taichi", faults="probe_outage", degradation=True,
        alerts=[{"name": "probe_degraded", "signal": "probe_health",
                 "threshold": 1.0, "op": "lt", "hold": 1,
                 "severity": "critical"}])
    summary = run_soak(scenario, seed=3, duration_ns=120 * MILLISECONDS,
                       drain_ns=20 * MILLISECONDS)
    alerts = summary["telemetry"]["alerts"]
    assert alerts["raised"] >= 1
    # The outage window ends inside the run, so the alert pairs up.
    assert alerts["cleared"] >= 1
    assert alerts["history"][0]["alert"] == "probe_degraded"
    assert alerts["history"][0]["duration_ns"] > 0


def test_default_rules_cover_paper_slos():
    names = {rule.name for rule in DEFAULT_ALERT_RULES}
    assert names == {"dp_rx_wait_p99_high", "startup_slo_attainment_low",
                     "probe_degraded"}
    monitor = SLOMonitor()          # defaults apply when rules omitted
    assert len(monitor.rules) == 3


# -- exemplar linkage + end-of-run closure -------------------------------------


class _FakeExemplars:
    def worst_ids(self, channel):
        return {"dp": ["pkt-7", "pkt-3"], "vm": ["vm2"]}.get(channel, [])


def test_channel_for_signal_mapping():
    from repro.obs.alerts import channel_for_signal

    assert channel_for_signal("dp_rx_wait_us_p99") == "dp"
    assert channel_for_signal("startup_slo_attainment_pct") == "vm"
    assert channel_for_signal("vm_startup_ms_p99") == "vm"
    assert channel_for_signal("probe_health") is None


def test_raised_alert_references_worst_exemplars():
    tracer = Tracer(enabled=True)
    rules = [AlertRule(name="p99_high", signal="dp_rx_wait_us_p99",
                       threshold=100.0, hold=1)]
    bus = TelemetryBus(registry=MetricsRegistry(), interval_ns=1_000)
    monitor = bus.subscribe(SLOMonitor(
        rules=rules, tracer=tracer, exemplar_provider=_FakeExemplars()))
    for _ in range(8):
        bus.observe("dp_rx_wait_us", 500.0)
    bus.tick(1_000)
    assert "p99_high" in monitor.active
    (raised,) = tracer.events
    assert raised.detail["exemplars"] == ["pkt-7", "pkt-3"]


def test_raised_alert_without_channel_has_no_exemplars():
    tracer = Tracer(enabled=True)
    rules = [AlertRule(name="degraded", signal="probe_health",
                       threshold=1.0, op="lt", hold=1)]
    bus, monitor, state = _driven_monitor(rules, tracer=tracer)
    monitor.exemplar_provider = _FakeExemplars()
    state["value"] = 0.0
    bus.tick(1_000)
    (raised,) = tracer.events
    assert "exemplars" not in raised.detail


def test_finish_emits_synthetic_clears_for_open_alerts():
    tracer = Tracer(enabled=True)
    rules = [AlertRule(name="degraded", signal="probe_health",
                       threshold=1.0, op="lt", hold=1)]
    bus, monitor, state = _driven_monitor(rules, tracer=tracer)
    state["value"] = 0.0
    bus.tick(1_000)
    assert "degraded" in monitor.active

    monitor.finish(now_ns=5_000)
    monitor.finish(now_ns=9_000)       # idempotent: no second clear
    kinds = [event.kind for event in tracer.events]
    assert kinds == ["alert.raised", "alert.cleared"]
    cleared = tracer.events[-1]
    assert cleared.detail["end_of_run"] is True
    assert cleared.detail["duration_ns"] == 4_000
    assert cleared.ts_ns == 5_000
    # The trace stream pairs up, but the summary still reports the
    # incident as open.
    assert check_events(tracer.events,
                        checkers=[AlertPairingChecker()]) == []
    assert monitor.summary()["active"] == ["degraded"]
    assert monitor.cleared_total == 0
    assert monitor.end_of_run_cleared == 1


def test_bus_close_finishes_subscribed_monitor():
    tracer = Tracer(enabled=True)
    rules = [AlertRule(name="degraded", signal="probe_health",
                       threshold=1.0, op="lt", hold=1)]
    bus, monitor, state = _driven_monitor(rules, tracer=tracer)
    state["value"] = 0.0
    bus.tick(1_000)
    bus.close(2_000)
    kinds = [event.kind for event in tracer.events]
    assert kinds.count("alert.cleared") == 1
    assert tracer.events[-1].detail["end_of_run"] is True
