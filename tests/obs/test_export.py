"""Tests for the Chrome-trace / JSONL / metrics exporters."""

import json

from repro.obs import (
    MetricsRegistry, Tracer, chrome_trace, write_chrome_trace, write_jsonl,
    write_metrics_json,
)


def make_tracer():
    tracer = Tracer(enabled=True)
    tracer.record(1_000, 0, "sched_in", thread="alpha")
    tracer.record(5_000, 0, "sched_out", thread="alpha", outcome="blocked")
    tracer.record(6_000, 0, "vmenter", vcpu="v0", slice_ns=50_000)
    tracer.record(9_000, 0, "vmexit", vcpu="v0", reason="halt")
    tracer.record(2_000, 1, "rq_depth", depth=3)
    tracer.record(7_000, 1, "ipi_send", dst=0, vector="resched", routed=False)
    return tracer


def test_slice_pairing_and_categories():
    doc = chrome_trace(make_tracer())
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert {s["cat"] for s in slices} == {"kernel", "virt"}
    sched = next(s for s in slices if s["cat"] == "kernel")
    assert sched["name"] == "alpha"
    assert sched["ts"] == 1.0 and sched["dur"] == 4.0  # microseconds
    vm = next(s for s in slices if s["cat"] == "virt")
    assert vm["args"]["slice_ns"] == 50_000
    assert vm["args"]["reason"] == "halt"


def test_counter_and_instant_events():
    doc = chrome_trace(make_tracer())
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters[0]["args"] == {"depth": 3}
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert any(e["name"] == "ipi_send" and e["cat"] == "ipi" for e in instants)


def test_unmatched_end_degrades_to_instant():
    tracer = Tracer(enabled=True)
    tracer.record(5_000, 0, "vmexit", vcpu="v0", reason="halt")
    doc = chrome_trace(tracer)
    events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    assert len(events) == 1
    assert events[0]["ph"] == "i" and events[0]["name"] == "vmexit"


def test_open_slice_closed_at_trace_end():
    tracer = Tracer(enabled=True)
    tracer.record(1_000, 0, "vmenter", vcpu="v0")
    tracer.record(8_000, 1, "rq_depth", depth=1)
    doc = chrome_trace(tracer)
    vm = next(e for e in doc["traceEvents"] if e["ph"] == "X")
    assert vm["args"]["open_at_trace_end"] is True
    assert vm["ts"] + vm["dur"] == 8.0  # clipped at the last event seen


def test_multi_stream_pids_and_drop_count():
    first = make_tracer()
    second = Tracer(cap=1, ring=True, enabled=True)
    second.record(1, 0, "enqueue", thread="a")
    second.record(2, 0, "enqueue", thread="b")
    doc = chrome_trace([("naive", first), ("taichi", second)])
    assert {e["pid"] for e in doc["traceEvents"]} == {0, 1}
    names = [e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"]
    assert names == ["naive", "taichi"]
    assert doc["otherData"]["dropped_events"] == 1


def test_chrome_trace_round_trips_json(tmp_path):
    path = write_chrome_trace(tmp_path / "t.json", make_tracer())
    with open(path) as handle:
        doc = json.loads(handle.read())
    assert doc["displayTimeUnit"] == "ns"
    assert doc["traceEvents"]


def test_jsonl_one_object_per_event_plus_meta(tmp_path):
    tracer = make_tracer()
    path = write_jsonl(tmp_path / "t.jsonl", tracer)
    with open(path) as handle:
        lines = [json.loads(line) for line in handle]
    assert len(lines) == len(tracer) + 1  # trace_meta header line
    assert lines[0] == {"pid": 0, "stream": "trace", "kind": "trace_meta",
                        "args": {"events": len(tracer), "dropped": 0,
                                 "cap": 1_000_000, "mode": "ring"}}
    assert lines[1] == {"pid": 0, "stream": "trace", "ts_ns": 1_000,
                        "cpu": 0, "kind": "sched_in",
                        "args": {"thread": "alpha"}}


def test_jsonl_meta_reports_drops_per_stream(tmp_path):
    lossy = Tracer(cap=1, ring=True, enabled=True)
    lossy.record(1, 0, "enqueue", thread="a")
    lossy.record(2, 0, "enqueue", thread="b")
    path = write_jsonl(tmp_path / "t.jsonl", [("full", make_tracer()),
                                              ("lossy", lossy)])
    with open(path) as handle:
        metas = {line["stream"]: line["args"]
                 for line in map(json.loads, handle)
                 if line["kind"] == "trace_meta"}
    assert metas["full"]["dropped"] == 0
    assert metas["lossy"] == {"events": 1, "dropped": 1, "cap": 1,
                              "mode": "ring"}


def test_metrics_json_handles_enum_keys(tmp_path):
    import enum

    class Reason(enum.Enum):
        HALT = "halt"

    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.add_source("s", lambda: {"reason": Reason.HALT, "obj": object()})
    path = write_metrics_json(tmp_path / "m.json", registry)
    with open(path) as handle:
        doc = json.load(handle)
    assert doc["counters"]["c"] == 1
    assert doc["sources"]["s"]["reason"] == "halt"


# -- span export ---------------------------------------------------------------


def make_span_tracer():
    tracer = Tracer(enabled=True)
    tracer.record(1_000, 0, "span.begin", span="pkt-1#0", request="pkt-1",
                  name="dp_request", channel="dp")
    tracer.record(1_500, 0, "span.begin", span="pkt-1#1", request="pkt-1",
                  name="stage", parent="pkt-1#0")
    tracer.record(2_000, 0, "span.end", span="pkt-1#1", request="pkt-1",
                  name="stage")
    tracer.record(4_000, 2, "span.end", span="pkt-1#0", request="pkt-1",
                  name="dp_request", duration_ns=3_000,
                  parts=[["accel_preprocess", 1_000, 2_000],
                         ["queued_behind", 2_000, 4_000]])
    return tracer


def test_span_pairs_become_async_events():
    doc = chrome_trace(make_span_tracer())
    begins = [e for e in doc["traceEvents"]
              if e["ph"] == "b" and e["cat"] == "span"]
    ends = [e for e in doc["traceEvents"]
            if e["ph"] == "e" and e["cat"] == "span"]
    # 2 spans + 2 critical-path parts, all keyed by the request id.
    assert len(begins) == 4 and len(ends) == 4
    assert {e["id"] for e in begins} == {"pkt-1"}
    root_end = next(e for e in ends if e["name"] == "dp_request")
    assert "parts" not in root_end["args"]          # parts become windows
    assert root_end["args"]["duration_ns"] == 3_000
    part_names = {e["name"] for e in begins} - {"dp_request", "stage"}
    assert part_names == {"accel_preprocess", "queued_behind"}


def test_root_span_emits_flow_arrow_between_cpus():
    doc = chrome_trace(make_span_tracer())
    flows = [e for e in doc["traceEvents"] if e.get("cat") == "span.flow"]
    assert [e["ph"] for e in flows] == ["s", "f"]
    start, finish = flows
    assert start["id"] == finish["id"] == "flow:pkt-1"
    assert start["tid"] != finish["tid"]            # cpu 0 -> cpu 2
    assert finish["bp"] == "e"
    # Child spans do not get flow arrows.
    assert len(flows) == 2


def test_other_data_streams_carry_trace_meta():
    tracer = make_tracer()
    doc = chrome_trace([("alpha", tracer), ("beta", make_span_tracer())])
    streams = doc["otherData"]["streams"]
    assert [s["stream"] for s in streams] == ["alpha", "beta"]
    assert streams[0]["pid"] == 0 and streams[1]["pid"] == 1
    for stream in streams:
        assert stream["events"] > 0
        assert "dropped" in stream
    assert doc["otherData"]["dropped_events"] == 0


def test_span_export_round_trips_json(tmp_path):
    path = tmp_path / "spans.trace.json"
    write_chrome_trace(str(path), make_span_tracer())
    doc = json.loads(path.read_text())
    assert any(e.get("cat") == "span" for e in doc["traceEvents"])
