"""Tests for the ASCII scheduling-trace renderer."""

import pytest

from repro.metrics import Timeline, occupancy_spans, render_gantt


def make_timeline():
    timeline = Timeline()
    timeline.record(0, 0, "sched_in", thread="alpha")
    timeline.record(500, 0, "sched_out", thread="alpha", outcome="blocked")
    timeline.record(600, 0, "vmenter", vcpu="v0")
    timeline.record(900, 0, "vmexit", vcpu="v0", reason="halt")
    timeline.record(100, 1, "sched_in", thread="beta")
    timeline.record(1000, 1, "sched_out", thread="beta", outcome="exited")
    return timeline


def test_occupancy_spans_pairs_events():
    spans = occupancy_spans(make_timeline())
    assert spans[0] == [(0, 500, "a"), (600, 900, "v")]
    assert spans[1] == [(100, 1000, "b")]


def test_open_span_clipped_at_horizon():
    timeline = Timeline()
    timeline.record(100, 0, "sched_in", thread="x")
    spans = occupancy_spans(timeline, start_ns=0, end_ns=1000)
    assert spans[0] == [(100, 1000, "x")]


def test_open_span_survives_without_end_ns():
    # Regression: spans still open at the last event used to vanish
    # entirely when no end_ns horizon was given.
    timeline = Timeline()
    timeline.record(100, 0, "sched_in", thread="x")
    timeline.record(900, 1, "vmenter", vcpu="v0")
    spans = occupancy_spans(timeline)
    assert spans[0] == [(100, 900, "x")]
    assert spans[1] == [(900, 900, "v")]


def test_straddling_open_clamped_without_start_ns():
    # Regression: an open preceding the window was only handled when
    # start_ns was explicitly set.
    timeline = Timeline()
    timeline.record(100, 0, "sched_in", thread="x")
    timeline.record(700, 0, "sched_out", thread="x")
    assert occupancy_spans(timeline)[0] == [(100, 700, "x")]
    assert occupancy_spans(timeline, start_ns=300)[0] == [(300, 700, "x")]


def test_render_notes_dropped_events():
    timeline = Timeline(cap=4, ring=True)
    for ts in range(0, 800, 100):
        timeline.record(ts, 0, "sched_in", thread="x")
    text = render_gantt(timeline, 0, 1000, width=50)
    assert "4 events dropped" in text
    assert "dropped" not in render_gantt(make_timeline(), 0, 1000, width=50)


def test_render_has_one_row_per_cpu():
    text = render_gantt(make_timeline(), 0, 1000, width=50)
    lines = text.splitlines()
    assert any(line.startswith("cpu 0") for line in lines)
    assert any(line.startswith("cpu 1") for line in lines)


def test_render_marks_threads_vcpus_and_idle():
    text = render_gantt(make_timeline(), 0, 1000, width=50)
    row0 = next(line for line in text.splitlines() if line.startswith("cpu 0"))
    assert "a" in row0
    assert "v" in row0
    assert "." in row0


def test_render_rejects_empty_window():
    with pytest.raises(ValueError):
        render_gantt(make_timeline(), 100, 100)


def test_executor_emits_trace_events():
    from repro.kernel import Compute, Kernel
    from repro.sim import Environment

    timeline = Timeline()
    env = Environment()
    kernel = Kernel(env, tracer=timeline)
    kernel.add_cpu(0)
    kernel.spawn("worker", iter([Compute(1000)]))
    env.run()
    kinds = [event.kind for event in timeline]
    assert "sched_in" in kinds
    assert "sched_out" in kinds
