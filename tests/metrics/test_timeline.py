"""Tests for timeline capture."""

from repro.metrics import Timeline


def test_record_and_filter():
    timeline = Timeline()
    timeline.record(10, 0, "enqueue", thread="a")
    timeline.record(20, 1, "enqueue", thread="b")
    timeline.record(30, 0, "dequeue", thread="a")
    assert len(timeline) == 3
    assert len(timeline.filter(kind="enqueue")) == 2
    assert len(timeline.filter(cpu_id=0)) == 2
    assert len(timeline.filter(kind="enqueue", cpu_id=0)) == 1


def test_cap_drops_excess():
    timeline = Timeline(cap=2)
    for ts in range(5):
        timeline.record(ts, 0, "x")
    assert len(timeline) == 2
    assert timeline.dropped == 3
    # Drop-new mode keeps the *oldest* events.
    assert [event.ts_ns for event in timeline] == [0, 1]


def test_ring_mode_keeps_newest():
    timeline = Timeline(cap=2, ring=True)
    for ts in range(5):
        timeline.record(ts, 0, "x")
    assert len(timeline) == 2
    assert timeline.dropped == 3
    assert [event.ts_ns for event in timeline] == [3, 4]


def test_summary_reports_drops_and_mode():
    timeline = Timeline(cap=2, ring=True)
    for ts in range(3):
        timeline.record(ts, 0, "x")
    assert timeline.summary() == {"events": 2, "dropped": 1, "cap": 2,
                                  "mode": "ring"}
    assert Timeline(cap=5).summary()["mode"] == "drop-new"


def test_spans_pairing():
    timeline = Timeline()
    timeline.record(10, 0, "start")
    timeline.record(25, 0, "end")
    timeline.record(30, 1, "start")
    timeline.record(40, 1, "end")
    assert timeline.spans("start", "end") == [(10, 25), (30, 40)]
    assert timeline.spans("start", "end", cpu_id=1) == [(30, 40)]


def test_event_str():
    timeline = Timeline()
    timeline.record(10, 0, "kind", detail_a=1)
    assert "kind" in str(timeline.events[0])
