"""Tests for the metrics utilities."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    Cdf, Histogram, LatencyRecorder, RateMeter, WelfordStats, percentile,
    percentiles, summarize,
)


def test_welford_matches_numpy():
    values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    stats = WelfordStats()
    for value in values:
        stats.add(value)
    assert stats.count == len(values)
    assert stats.mean == pytest.approx(np.mean(values))
    assert stats.variance == pytest.approx(np.var(values))
    assert stats.min == min(values)
    assert stats.max == max(values)


def test_welford_merge_equals_single_pass():
    rng = np.random.default_rng(0)
    a_values = rng.normal(size=100)
    b_values = rng.normal(loc=3.0, size=50)
    merged = WelfordStats()
    for value in list(a_values) + list(b_values):
        merged.add(value)
    a = WelfordStats()
    for value in a_values:
        a.add(value)
    b = WelfordStats()
    for value in b_values:
        b.add(value)
    a.merge(b)
    assert a.count == merged.count
    assert a.mean == pytest.approx(merged.mean)
    assert a.variance == pytest.approx(merged.variance)


def test_empty_welford_safe():
    stats = WelfordStats()
    assert stats.mean == 0.0
    assert stats.variance == 0.0


def test_percentile_interpolation():
    assert percentile([1, 2, 3, 4], 50) == 2.5
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentiles_returns_labeled_quantiles():
    values = list(range(1, 101))
    result = percentiles(values, qs=(50, 90, 99))
    assert set(result) == {"p50", "p90", "p99"}
    assert result["p50"] == pytest.approx(np.percentile(values, 50))
    assert result["p99"] == pytest.approx(np.percentile(values, 99))
    with pytest.raises(ValueError):
        percentiles([])


def test_percentiles_fractional_quantile_label():
    assert set(percentiles([1, 2, 3], qs=(99.9,))) == {"p99.9"}


def test_percentile_empty_with_default_returns_it():
    # Aggregation paths that may see zero-sample classes pass default=
    # instead of crashing; no default keeps the historical raise.
    assert percentile([], 50, default=None) is None
    assert percentile([], 99, default=0.0) == 0.0
    assert percentile([7.0], 50, default=None) == 7.0


def test_percentiles_empty_with_default_labels_every_quantile():
    result = percentiles([], qs=(50, 99.9), default=None)
    assert result == {"p50": None, "p99.9": None}


def test_latency_recorder_percentile_default():
    from repro.metrics.stats import LatencyRecorder

    recorder = LatencyRecorder()
    assert recorder.percentile(99, default=None) is None
    with pytest.raises(ValueError):
        recorder.percentile(99)


def test_summarize_full_summary():
    values = [5, 1, 9, 3]
    summary = summarize(values, qs=(50,))
    assert summary["count"] == 4
    assert summary["min"] == 1.0
    assert summary["max"] == 9.0
    assert summary["mean"] == pytest.approx(4.5)
    assert summary["p50"] == pytest.approx(4.0)


def test_summarize_empty_is_safe():
    assert summarize([]) == {"count": 0}
    assert summarize(iter(())) == {"count": 0}


def test_latency_recorder_summary():
    recorder = LatencyRecorder(cap=1000)
    for value in range(1, 101):
        recorder.record(value)
    summary = recorder.summary()
    assert summary["count"] == 100
    assert summary["min"] == 1
    assert summary["max"] == 100
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["mdev"] > 0


def test_latency_recorder_reservoir_respects_cap():
    recorder = LatencyRecorder(cap=100)
    for value in range(1000):
        recorder.record(value)
    assert len(recorder.samples) == 100
    assert recorder.count == 1000
    assert recorder.max == 999


def test_histogram_bucketing():
    histogram = Histogram([10, 20, 30])
    for value in (5, 15, 25, 35, 10):
        histogram.add(value)
    assert histogram.counts == [1, 2, 1, 1]
    assert histogram.total == 5
    assert len(histogram.bucket_labels()) == 4


def test_cdf_fraction_and_quantile():
    cdf = Cdf(range(1, 101))
    assert cdf.fraction_below(50) == 0.50
    assert cdf.quantile(0.99) == pytest.approx(np.quantile(range(1, 101), 0.99))
    assert cdf.points(5)[-1][1] == 1.0


def test_empty_cdf():
    cdf = Cdf()
    assert cdf.fraction_below(10) == 0.0
    assert cdf.points() == []


def test_rate_meter():
    meter = RateMeter()
    meter.start(0)
    for t_ns in (100, 200, 300):
        meter.add(t_ns, nbytes=10)
    assert meter.count == 3
    assert meter.per_second(1_000_000_000) == pytest.approx(3.0)
    assert meter.bytes_per_second(1_000_000_000) == pytest.approx(30.0)


def test_rate_meter_zero_duration():
    meter = RateMeter()
    assert meter.per_second() == 0.0


@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_welford_agrees_with_numpy_property(values):
    stats = WelfordStats()
    for value in values:
        stats.add(value)
    assert stats.mean == pytest.approx(float(np.mean(values)), abs=1e-6, rel=1e-9)
    assert math.isclose(stats.variance, float(np.var(values)),
                        rel_tol=1e-6, abs_tol=1e-5)
