"""QuantileSketch: accuracy bound, merge algebra, JSON byte-stability."""

import json

import numpy as np
import pytest

from repro.metrics.sketch import (
    CounterSample,
    GaugeSample,
    QuantileSketch,
    is_sketch_dict,
    merge_sketch_dicts,
)

_QS = (50, 90, 99, 99.9)


def _lower_order_stat(values, q):
    """The order statistic the sketch tracks: sorted[floor(q/100*(n-1))]."""
    data = sorted(values)
    return data[int(q / 100.0 * (len(data) - 1))]


def _assert_within_alpha(sketch, values, alpha):
    for q in _QS:
        estimate = sketch.percentile(q)
        exact = _lower_order_stat(values, q)
        assert abs(estimate - exact) <= alpha * exact + 1e-9, (
            f"p{q}: estimate {estimate} vs order stat {exact} "
            f"(alpha={alpha})")


# -- accuracy ------------------------------------------------------------------


def _distributions(rng):
    return {
        "bimodal": np.concatenate([
            rng.normal(20.0, 2.0, 4_000).clip(min=0.1),
            rng.normal(2_000.0, 150.0, 1_000).clip(min=0.1),
        ]),
        "heavy_tail": rng.pareto(1.5, 5_000) * 10.0 + 0.5,
        "constant": np.full(1_000, 42.0),
        "uniform": rng.uniform(0.01, 1e6, 5_000),
    }


@pytest.mark.parametrize("alpha", [0.01, 0.05])
def test_relative_error_bound(alpha):
    rng = np.random.default_rng(7)
    for name, values in _distributions(rng).items():
        sketch = QuantileSketch(alpha).extend(values)
        _assert_within_alpha(sketch, values, alpha)


def test_constant_distribution_is_near_exact():
    sketch = QuantileSketch().extend([42.0] * 100)
    for q in _QS:
        assert sketch.percentile(q) == pytest.approx(42.0, rel=0.01)
    assert sketch.min == sketch.max == 42.0


def test_zeros_get_their_own_bucket():
    sketch = QuantileSketch().extend([0.0] * 90 + [100.0] * 10)
    assert sketch.zero_count == 90
    assert sketch.percentile(50) == 0.0
    assert sketch.percentile(99) == pytest.approx(100.0, rel=0.02)


def test_percentile_clamped_to_min_max():
    sketch = QuantileSketch().extend([5.0, 500.0])
    assert sketch.percentile(0) >= sketch.min
    assert sketch.percentile(100) <= sketch.max


def test_empty_sketch_reports_null_not_raise():
    sketch = QuantileSketch()
    assert sketch.percentile(99) is None
    assert sketch.percentiles() == {"p50": None, "p90": None, "p99": None}
    assert sketch.summary() == {"count": 0}
    assert sketch.mean == 0.0


def test_rejects_bad_inputs():
    with pytest.raises(ValueError, match="alpha"):
        QuantileSketch(alpha=1.5)
    sketch = QuantileSketch()
    with pytest.raises(ValueError, match="non-negative"):
        sketch.add(-1.0)
    sketch.add(1.0)
    with pytest.raises(ValueError, match="q must be"):
        sketch.percentile(101)


# -- merge algebra -------------------------------------------------------------


def _random_sketches(rng, n=4, alpha=0.01):
    out = []
    for _ in range(n):
        values = rng.exponential(100.0, int(rng.integers(50, 400)))
        out.append(QuantileSketch(alpha).extend(values))
    return out


def test_merge_equals_extend_of_concatenation():
    rng = np.random.default_rng(3)
    a_values = rng.exponential(50.0, 500)
    b_values = rng.exponential(500.0, 300)
    merged = QuantileSketch().extend(a_values).merge(
        QuantileSketch().extend(b_values))
    pooled = np.concatenate([a_values, b_values])
    assert merged.count == 800
    _assert_within_alpha(merged, pooled, 0.01)


def test_merge_associative_on_buckets():
    rng = np.random.default_rng(11)
    a, b, c = _random_sketches(rng, n=3)
    left = QuantileSketch.merged([QuantileSketch.merged([a, b]), c])
    right = QuantileSketch.merged([a, QuantileSketch.merged([b, c])])
    assert left.buckets == right.buckets
    assert left.count == right.count
    assert left.sum == pytest.approx(right.sum, rel=1e-12)


def test_merge_commutative_on_buckets_deterministic_in_order():
    rng = np.random.default_rng(13)
    sketches = _random_sketches(rng, n=4)
    forward = QuantileSketch.merged(sketches)
    reverse = QuantileSketch.merged(list(reversed(sketches)))
    # Bucket counts commute exactly ...
    assert forward.buckets == reverse.buckets
    for q in _QS:
        assert forward.percentile(q) == reverse.percentile(q)
    # ... and merging in a fixed (spec) order is byte-deterministic.
    again = QuantileSketch.merged(sketches)
    assert again.to_json() == forward.to_json()


def test_merge_rejects_mismatched_alpha_and_type():
    with pytest.raises(ValueError, match="alpha"):
        QuantileSketch(0.01).merge(QuantileSketch(0.02))
    with pytest.raises(TypeError):
        QuantileSketch().merge([1, 2, 3])


def test_merge_with_empty_is_identity():
    sketch = QuantileSketch().extend([1.0, 2.0, 3.0])
    before = sketch.to_json()
    sketch.merge(QuantileSketch())
    assert sketch.to_json() == before


# -- JSON round-trip -----------------------------------------------------------


def test_json_round_trip_byte_stable():
    rng = np.random.default_rng(5)
    sketch = QuantileSketch().extend(rng.exponential(200.0, 1_000))
    text = sketch.to_json()
    restored = QuantileSketch.from_dict(json.loads(text))
    assert restored == sketch
    assert restored.to_json() == text
    # A second independent build over the same values serializes the
    # same bytes (fixed bucket layout, deterministic float sum).
    rng2 = np.random.default_rng(5)
    rebuilt = QuantileSketch().extend(rng2.exponential(200.0, 1_000))
    assert rebuilt.to_json() == text


def test_from_dict_rejects_foreign_payloads():
    with pytest.raises(ValueError, match="not a serialized"):
        QuantileSketch.from_dict({"type": "histogram"})
    assert not is_sketch_dict({"type": "histogram"})
    assert not is_sketch_dict("ddsketch")
    assert is_sketch_dict(QuantileSketch().to_dict())


def test_merge_sketch_dicts_in_spec_order():
    rng = np.random.default_rng(17)
    sketches = _random_sketches(rng, n=3)
    dicts = [sketch.to_dict() for sketch in sketches]
    merged = merge_sketch_dicts(dicts)
    direct = QuantileSketch.merged(sketches)
    assert merged.to_json() == direct.to_json()


# -- snapshot sample types -----------------------------------------------------


def test_counter_and_gauge_samples_round_trip():
    counter = CounterSample("dp.idle_yields", total=120, delta=7)
    assert CounterSample.from_dict("dp.idle_yields",
                                   counter.to_dict()) == counter
    gauge = GaugeSample("rq_depth", 3.0)
    assert GaugeSample.from_dict("rq_depth", gauge.to_dict()) == gauge
