"""Tests for the CPU executor: preemption, sections, sleeps, locks."""

from repro.kernel import (
    Compute,
    Exit,
    Kernel,
    KernelSection,
    LockAcquire,
    LockRelease,
    SchedClass,
    Sleep,
    Syscall,
    WaitEvent,
    YieldCPU,
)
from repro.sim import Environment, MICROSECONDS, MILLISECONDS


def single_cpu_kernel():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    return env, kernel


def test_thread_runs_to_completion():
    env, kernel = single_cpu_kernel()
    thread = kernel.spawn("t", iter([Compute(1000), Exit("ok")]))
    env.run()
    assert thread.exit_value == "ok"
    assert thread.done.triggered


def test_compute_time_is_charged():
    env, kernel = single_cpu_kernel()

    def body():
        yield Compute(100 * MICROSECONDS)

    thread = kernel.spawn("t", body())
    env.run(until=thread.done)
    # Context switch + compute.
    expected = kernel.params.context_switch_ns + 100 * MICROSECONDS
    assert env.now == expected
    assert thread.total_runtime_ns >= 100 * MICROSECONDS


def test_syscall_charges_entry_body_exit():
    env, kernel = single_cpu_kernel()

    def body():
        yield Syscall(10_000, entry_ns=300, exit_ns=300)

    thread = kernel.spawn("t", body())
    env.run(until=thread.done)
    assert env.now == kernel.params.context_switch_ns + 10_600


def test_sleep_releases_cpu_to_other_thread():
    env, kernel = single_cpu_kernel()
    log = []

    def sleeper():
        yield Sleep(1 * MILLISECONDS)
        log.append(("sleeper-back", env.now))

    def worker():
        yield Compute(200 * MICROSECONDS)
        log.append(("worker-done", env.now))

    kernel.spawn("sleeper", sleeper())
    kernel.spawn("worker", worker())
    env.run()
    assert log[0][0] == "worker-done"
    assert log[0][1] < 1 * MILLISECONDS


def test_wait_event_resumes_with_value():
    env, kernel = single_cpu_kernel()
    event = env.event()
    got = []

    def body():
        value = yield WaitEvent(event)
        got.append(value)

    kernel.spawn("t", body())

    def trigger(env):
        yield env.timeout(500)
        event.succeed("payload")

    env.process(trigger(env))
    env.run()
    assert got == ["payload"]


def test_rt_preempts_fair_in_preemptible_compute():
    env, kernel = single_cpu_kernel()
    timeline = {}

    def cp_body():
        yield Compute(10 * MILLISECONDS)
        timeline["cp_done"] = env.now

    def rt_body():
        yield Sleep(1 * MILLISECONDS)
        timeline["rt_ran"] = env.now
        yield Compute(10 * MICROSECONDS)

    kernel.spawn("cp", cp_body())
    kernel.spawn("rt", rt_body(), sched_class=SchedClass.REALTIME)
    env.run()
    # RT should run within a few microseconds of its 1 ms wakeup.
    assert timeline["rt_ran"] - 1 * MILLISECONDS < 20 * MICROSECONDS
    assert timeline["cp_done"] > timeline["rt_ran"]


def test_rt_blocked_by_nonpreemptible_section():
    env, kernel = single_cpu_kernel()
    timeline = {}

    def cp_body():
        yield KernelSection(10 * MILLISECONDS)

    def rt_body():
        yield Sleep(1 * MILLISECONDS)
        timeline["rt_ran"] = env.now
        yield Compute(10 * MICROSECONDS)

    kernel.spawn("cp", cp_body())
    kernel.spawn("rt", rt_body(), sched_class=SchedClass.REALTIME)
    env.run()
    # RT cannot run until the section completes: latency is ms-scale
    # (woke at 1 ms, ran only after the ~10 ms section finished).
    assert timeline["rt_ran"] - 1 * MILLISECONDS > 8 * MILLISECONDS


def test_fair_threads_share_cpu_via_slices():
    env, kernel = single_cpu_kernel()
    done = {}

    def body(name):
        yield Compute(5 * MILLISECONDS)
        done[name] = env.now

    kernel.spawn("a", body("a"))
    kernel.spawn("b", body("b"))
    env.run()
    # With 1 ms slices both finish within ~10 ms, interleaved: the second
    # finisher completes close after the first (not 5 ms later as strict
    # FIFO would).
    finish_times = sorted(done.values())
    assert finish_times[1] - finish_times[0] < 2 * MILLISECONDS


def test_yield_cpu_rotates_to_other_thread():
    env, kernel = single_cpu_kernel()
    order = []

    def body(name, n):
        for _ in range(n):
            yield Compute(10 * MICROSECONDS)
            order.append(name)
            yield YieldCPU()

    kernel.spawn("a", body("a", 3))
    kernel.spawn("b", body("b", 3))
    env.run()
    assert order[:4] == ["a", "b", "a", "b"]


def test_spinlock_contention_hands_off_in_order():
    env, kernel = single_cpu_kernel()
    kernel.add_cpu(1)
    lock = kernel.spinlock("l")
    order = []

    def body(name, hold_ns):
        yield LockAcquire(lock)
        yield KernelSection(hold_ns)
        yield LockRelease(lock)
        order.append((name, env.now))

    kernel.spawn("first", body("first", 1 * MILLISECONDS), affinity={0})
    kernel.spawn("second", body("second", 1 * MILLISECONDS), affinity={1})
    env.run()
    assert [name for name, _ in order] == ["first", "second"]
    assert lock.contentions == 1
    assert not lock.locked


def test_exit_value_via_stop_iteration():
    env, kernel = single_cpu_kernel()

    def body():
        yield Compute(100)
        return "returned"

    thread = kernel.spawn("t", body())
    env.run()
    assert thread.exit_value == "returned"


def test_nonpreemptible_time_recorded():
    env, kernel = single_cpu_kernel()

    def body():
        yield KernelSection(2 * MILLISECONDS)

    kernel.spawn("t", body())
    env.run()
    assert kernel.cpus[0].nonpreemptible_ns >= 2 * MILLISECONDS
    assert kernel.nonpreemptible.count == 1


def test_work_tax_scales_instruction_cost():
    env, kernel = single_cpu_kernel()
    kernel.cpus[0].work_tax = 2.0

    def body():
        yield Compute(1 * MILLISECONDS)

    thread = kernel.spawn("t", body())
    env.run(until=thread.done)
    assert env.now == kernel.params.context_switch_ns + 2 * MILLISECONDS
