"""Tests for instruction objects."""

import pytest

from repro.kernel import (
    Compute,
    Exit,
    KernelSection,
    Sleep,
    Syscall,
    YieldCPU,
)


def test_compute_stores_duration():
    assert Compute(500).ns == 500


def test_compute_rejects_negative():
    with pytest.raises(ValueError):
        Compute(-1)


def test_kernel_section_has_reason():
    section = KernelSection(1000, reason="spinlock")
    assert section.ns == 1000
    assert section.reason == "spinlock"


def test_kernel_section_rejects_negative():
    with pytest.raises(ValueError):
        KernelSection(-5)


def test_syscall_components():
    syscall = Syscall(10_000, name="ioctl", entry_ns=200, exit_ns=300)
    assert syscall.body_ns == 10_000
    assert syscall.entry_ns == 200
    assert syscall.exit_ns == 300
    assert syscall.name == "ioctl"


def test_sleep_rejects_negative():
    with pytest.raises(ValueError):
        Sleep(-1)


def test_exit_carries_value():
    assert Exit("done").value == "done"


def test_repr_is_informative():
    assert "500" in repr(Compute(500))
    assert "YieldCPU" in repr(YieldCPU())
