"""Tests for affinity changes, work stealing, and idle callbacks."""

from repro.kernel import Compute, Kernel, SchedClass
from repro.sim import Environment, MICROSECONDS, MILLISECONDS, SECONDS


def test_set_affinity_replaces_queued_thread():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    kernel.add_cpu(1)
    # Occupy CPU 0 so the victim stays queued there.
    kernel.spawn("hog", iter([Compute(10 * MILLISECONDS)]), affinity={0})
    victim = kernel.spawn("victim", iter([Compute(1 * MILLISECONDS)]),
                          affinity={0})
    env.run(until=100 * MICROSECONDS)
    kernel.set_affinity(victim, {1})
    env.run(until=5 * MILLISECONDS)
    assert victim.done.triggered
    assert victim.last_cpu == 1


def test_set_affinity_migrates_running_thread():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    kernel.add_cpu(1)

    def body():
        for _ in range(20):
            yield Compute(500 * MICROSECONDS)

    thread = kernel.spawn("runner", body(), affinity={0})
    env.run(until=1 * MILLISECONDS)
    assert thread.cpu.cpu_id == 0
    kernel.set_affinity(thread, {1})
    env.run(until=3 * MILLISECONDS)
    assert thread.last_cpu == 1


def test_steal_work_from_congested_cpu():
    from repro.kernel import KThread

    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    kernel.add_cpu(1)
    # Stack four threads directly on CPU 0's queue; idle CPU 1 must pull.
    threads = []
    for index in range(4):
        thread = KThread(f"t{index}", iter([Compute(2 * MILLISECONDS)]),
                         affinity={0, 1})
        thread.done = env.event()
        kernel.threads[thread.tid] = thread
        kernel.cpus[0].enqueue(thread)
        threads.append(thread)
    env.run(until=1 * SECONDS)
    assert all(thread.done.triggered for thread in threads)
    assert {thread.last_cpu for thread in threads} == {0, 1}
    assert kernel.steals >= 1


def test_steal_respects_affinity():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    kernel.add_cpu(1)
    threads = [
        kernel.spawn(f"t{i}", iter([Compute(2 * MILLISECONDS)]),
                     affinity={0})
        for i in range(3)
    ]
    env.run(until=1 * SECONDS)
    assert all(thread.last_cpu == 0 for thread in threads)


def test_steal_never_takes_realtime_threads():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    kernel.add_cpu(1)
    kernel.spawn("hog", iter([Compute(5 * MILLISECONDS)]), affinity={0, 1})
    rt = kernel.spawn("rt", iter([Compute(2 * MILLISECONDS)]),
                      affinity={0, 1}, sched_class=SchedClass.REALTIME)
    fair = kernel.spawn("fair", iter([Compute(2 * MILLISECONDS)]),
                        affinity={0, 1})
    env.run(until=1 * SECONDS)
    assert rt.done.triggered and fair.done.triggered


def test_idle_callback_invoked():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    calls = []
    kernel.idle_callbacks.append(lambda cpu: calls.append(cpu.cpu_id) or False)
    kernel.spawn("t", iter([Compute(100 * MICROSECONDS)]))
    env.run(until=1 * MILLISECONDS)
    assert 0 in calls


def test_placement_penalizes_unbacked_vcpus():
    from repro.virt import VirtualCPU

    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    vcpu = kernel.add_cpu("v0", online=False, cpu_cls=VirtualCPU)
    kernel.boot_cpu("v0")
    env.run(until=1 * MILLISECONDS)
    thread = kernel.spawn("t", iter([Compute(100 * MICROSECONDS)]),
                          affinity={0, "v0"})
    env.run(until=3 * MILLISECONDS)
    # Idle pCPU 0 beats the unbacked vCPU despite equal queue lengths.
    assert thread.last_cpu == 0
