"""Tests for the IPI controller and its interception hook."""

from repro.kernel import IPIVector, Kernel
from repro.sim import Environment, MILLISECONDS


def test_resched_ipi_wakes_idle_cpu():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    kernel.ipi.send(None, cpu, IPIVector.RESCHED)
    env.run(until=1 * MILLISECONDS)
    assert kernel.ipi.delivered_count == 1


def test_send_hook_intercepts_and_suppresses_delivery():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    seen = []

    def hook(src, dst, vector, payload):
        seen.append((src, dst.cpu_id, vector))
        return True  # handled; suppress physical delivery

    kernel.ipi.set_send_hook(hook)
    kernel.ipi.send(None, cpu, IPIVector.RESCHED)
    env.run(until=1 * MILLISECONDS)
    assert seen == [(None, 0, IPIVector.RESCHED)]
    assert kernel.ipi.delivered_count == 0
    assert kernel.ipi.hooked_count == 1


def test_hook_returning_false_falls_through():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    kernel.ipi.set_send_hook(lambda *args: False)
    kernel.ipi.send(None, cpu, IPIVector.RESCHED)
    env.run(until=1 * MILLISECONDS)
    assert kernel.ipi.delivered_count == 1


def test_clear_send_hook():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    kernel.ipi.set_send_hook(lambda *args: True)
    kernel.ipi.clear_send_hook()
    kernel.ipi.send(None, cpu, IPIVector.RESCHED)
    env.run(until=1 * MILLISECONDS)
    assert kernel.ipi.delivered_count == 1


def test_call_function_payload_invoked_on_target():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    called = []
    kernel.ipi.send(None, cpu, IPIVector.CALL_FUNCTION,
                    payload=lambda target: called.append(target.cpu_id))
    env.run(until=1 * MILLISECONDS)
    assert called == [0]


def test_custom_handler_overrides_default():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    hits = []
    kernel.ipi.register_handler(IPIVector.TAICHI_PREEMPT,
                                lambda target, payload: hits.append(payload))
    kernel.ipi.send(None, cpu, IPIVector.TAICHI_PREEMPT, payload="go")
    env.run(until=1 * MILLISECONDS)
    assert hits == ["go"]


def test_delivery_has_latency():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    at = []
    kernel.ipi.register_handler(IPIVector.TAICHI_PREEMPT,
                                lambda target, payload: at.append(env.now))
    kernel.ipi.send(None, cpu, IPIVector.TAICHI_PREEMPT)
    env.run(until=1 * MILLISECONDS)
    assert at == [kernel.ipi.latency_ns]
