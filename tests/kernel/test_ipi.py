"""Tests for the IPI controller and its interception hook."""

from repro.kernel import IPIVector, Kernel
from repro.obs import observe
from repro.sim import Environment, MILLISECONDS


def test_resched_ipi_wakes_idle_cpu():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    kernel.ipi.send(None, cpu, IPIVector.RESCHED)
    env.run(until=1 * MILLISECONDS)
    assert kernel.ipi.delivered_count == 1


def test_send_hook_intercepts_and_suppresses_delivery():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    seen = []

    def hook(src, dst, vector, payload):
        seen.append((src, dst.cpu_id, vector))
        return True  # handled; suppress physical delivery

    kernel.ipi.set_send_hook(hook)
    kernel.ipi.send(None, cpu, IPIVector.RESCHED)
    env.run(until=1 * MILLISECONDS)
    assert seen == [(None, 0, IPIVector.RESCHED)]
    assert kernel.ipi.delivered_count == 0
    assert kernel.ipi.hooked_count == 1


def test_hook_returning_false_falls_through():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    kernel.ipi.set_send_hook(lambda *args: False)
    kernel.ipi.send(None, cpu, IPIVector.RESCHED)
    env.run(until=1 * MILLISECONDS)
    assert kernel.ipi.delivered_count == 1


def test_clear_send_hook():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    kernel.ipi.set_send_hook(lambda *args: True)
    kernel.ipi.clear_send_hook()
    kernel.ipi.send(None, cpu, IPIVector.RESCHED)
    env.run(until=1 * MILLISECONDS)
    assert kernel.ipi.delivered_count == 1


def test_call_function_payload_invoked_on_target():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    called = []
    kernel.ipi.send(None, cpu, IPIVector.CALL_FUNCTION,
                    payload=lambda target: called.append(target.cpu_id))
    env.run(until=1 * MILLISECONDS)
    assert called == [0]


def test_custom_handler_overrides_default():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    hits = []
    kernel.ipi.register_handler(IPIVector.TAICHI_PREEMPT,
                                lambda target, payload: hits.append(payload))
    kernel.ipi.send(None, cpu, IPIVector.TAICHI_PREEMPT, payload="go")
    env.run(until=1 * MILLISECONDS)
    assert hits == ["go"]


def test_delivery_has_latency():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    at = []
    kernel.ipi.register_handler(IPIVector.TAICHI_PREEMPT,
                                lambda target, payload: at.append(env.now))
    kernel.ipi.send(None, cpu, IPIVector.TAICHI_PREEMPT)
    env.run(until=1 * MILLISECONDS)
    assert at == [kernel.ipi.latency_ns]


# -- offline destinations ------------------------------------------------------


def test_ipi_to_offline_cpu_is_dropped_not_delivered():
    with observe(trace=True) as session:
        env = Environment()
        kernel = Kernel(env)
        kernel.add_cpu(0)
        dead = kernel.add_cpu(1, online=False)
        hits = []
        kernel.ipi.register_handler(IPIVector.RESCHED,
                                    lambda target, payload: hits.append(target))
        kernel.ipi.send(None, dead, IPIVector.RESCHED)
        env.run(until=1 * MILLISECONDS)
        dropped = session.events(kind="ipi.dropped")
    assert hits == []                      # the handler never ran
    assert kernel.ipi.delivered_count == 0
    assert kernel.ipi.dropped_offline == 1
    assert env.metrics.counter("kernel.ipi.dropped").value == 1
    assert len(dropped) == 1
    assert dropped[0].cpu_id == 1
    assert dropped[0].detail == {"vector": "resched", "reason": "offline"}


def test_boot_ipis_still_reach_an_offline_cpu():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    dead = kernel.add_cpu(1, online=False)
    kernel.boot_cpu(1)
    env.run(until=5 * MILLISECONDS)
    assert dead.online
    assert kernel.ipi.dropped_offline == 0


def test_offline_drop_does_not_notify_drop_listeners():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    dead = kernel.add_cpu(1, online=False)
    reported = []
    kernel.ipi.add_drop_listener(
        lambda dst, vector, payload, latency_ns: reported.append(dst.cpu_id))
    # Offline destination: legitimately down, retrying would be wrong.
    kernel.ipi.send(None, dead, IPIVector.RESCHED)
    env.run(until=1 * MILLISECONDS)
    assert reported == []
    # Fault drop: transient interconnect loss, listeners must hear it.
    kernel.ipi.set_fault_hook(lambda *args: ("drop",))
    kernel.ipi.deliver(cpu, IPIVector.RESCHED)
    assert reported == [0]
