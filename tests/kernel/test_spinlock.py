"""Tests for spinlock semantics."""

import pytest

from repro.kernel import Kernel, KThread
from repro.sim import Environment


def make(env=None):
    env = env or Environment()
    kernel = Kernel(env)
    return kernel, kernel.spinlock("test")


def thread(name):
    return KThread(name, iter(()))


def test_try_acquire_free_lock():
    kernel, lock = make()
    owner = thread("t")
    assert lock.try_acquire(owner)
    assert lock.locked
    assert lock.owner is owner
    assert lock in owner.locks_held


def test_try_acquire_held_lock_fails():
    kernel, lock = make()
    assert lock.try_acquire(thread("a"))
    assert not lock.try_acquire(thread("b"))


def test_release_hands_off_to_waiter():
    kernel, lock = make()
    first, second = thread("a"), thread("b")
    lock.try_acquire(first)
    handoff = lock.add_waiter(second)
    lock.release(first)
    assert lock.owner is second
    assert lock in second.locks_held
    assert lock not in first.locks_held
    assert handoff.triggered


def test_release_without_waiters_frees_lock():
    kernel, lock = make()
    owner = thread("a")
    lock.try_acquire(owner)
    lock.release(owner)
    assert not lock.locked


def test_release_by_non_owner_rejected():
    kernel, lock = make()
    lock.try_acquire(thread("a"))
    with pytest.raises(RuntimeError):
        lock.release(thread("b"))


def test_waiters_fifo():
    kernel, lock = make()
    first, w1, w2 = thread("a"), thread("b"), thread("c")
    lock.try_acquire(first)
    lock.add_waiter(w1)
    lock.add_waiter(w2)
    lock.release(first)
    assert lock.owner is w1
    lock.release(w1)
    assert lock.owner is w2


def test_contention_statistics():
    kernel, lock = make()
    first, second = thread("a"), thread("b")
    lock.try_acquire(first)
    lock.add_waiter(second)
    lock.release(first)
    assert lock.acquisitions == 2
    assert lock.contentions == 1
