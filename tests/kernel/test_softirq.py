"""Tests for the softirq subsystem."""

from repro.kernel import Compute, Kernel, SoftirqVector
from repro.sim import Environment, MICROSECONDS, MILLISECONDS


def test_softirq_runs_on_idle_cpu():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    hits = []
    kernel.softirq.register(SoftirqVector.TASKLET,
                            lambda target, payload: hits.append(payload))
    kernel.softirq.raise_softirq(cpu, SoftirqVector.TASKLET, payload=1)
    env.run(until=1 * MILLISECONDS)
    assert hits == [1]


def test_generator_handler_consumes_cpu_time():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    finished = []

    def handler(target, payload):
        yield from target.consume(50 * MICROSECONDS)
        finished.append(env.now)

    kernel.softirq.register(SoftirqVector.TASKLET, handler)
    kernel.softirq.raise_softirq(cpu, SoftirqVector.TASKLET)
    env.run(until=1 * MILLISECONDS)
    assert finished and finished[0] >= 50 * MICROSECONDS


def test_softirq_runs_between_instructions_of_current_thread():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    order = []
    kernel.softirq.register(SoftirqVector.TASKLET,
                            lambda target, payload: order.append("softirq"))

    def body():
        yield Compute(100 * MICROSECONDS)
        kernel.softirq.raise_softirq(cpu, SoftirqVector.TASKLET)
        yield Compute(100 * MICROSECONDS)
        order.append("second-compute-done")
        yield Compute(100 * MICROSECONDS)

    kernel.spawn("t", body())
    env.run()
    assert order.index("softirq") < order.index("second-compute-done")


def test_unregistered_vector_is_dropped():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    kernel.softirq.raise_softirq(cpu, SoftirqVector.NET_RX)
    env.run(until=1 * MILLISECONDS)
    assert kernel.softirq.raised_count == 1
    assert kernel.softirq.executed_count == 0


def test_pending_flag():
    env = Environment()
    kernel = Kernel(env)
    cpu = kernel.add_cpu(0)
    kernel.softirq.register(SoftirqVector.TASKLET, lambda t, p: None)
    assert not kernel.softirq.pending(cpu)
    kernel.softirq.raise_softirq(cpu, SoftirqVector.TASKLET)
    assert kernel.softirq.pending(cpu)
    env.run(until=1 * MILLISECONDS)
    assert not kernel.softirq.pending(cpu)
