"""Tests for the kernel façade: placement, wake, hotplug."""

import pytest

from repro.kernel import CPU, Compute, Kernel, Sleep
from repro.sim import Environment, MILLISECONDS


def test_add_cpu_rejects_duplicates():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    with pytest.raises(ValueError):
        kernel.add_cpu(0)


def test_spawn_requires_satisfiable_affinity():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    with pytest.raises(RuntimeError):
        kernel.spawn("t", iter(()), affinity={"nonexistent"})


def test_threads_balance_across_idle_cpus():
    env = Environment()
    kernel = Kernel(env)
    for cpu_id in range(4):
        kernel.add_cpu(cpu_id)
    threads = [
        kernel.spawn(f"t{i}", iter([Compute(1 * MILLISECONDS)]))
        for i in range(4)
    ]
    env.run()
    used = {thread.last_cpu for thread in threads}
    assert len(used) == 4  # one per CPU


def test_affinity_respected():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    kernel.add_cpu(1)

    def body():
        yield Compute(100)
        yield Sleep(1000)
        yield Compute(100)

    thread = kernel.spawn("pinned", body(), affinity={1})
    env.run()
    assert thread.last_cpu == 1


def test_wake_prefers_last_cpu_when_idle():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    kernel.add_cpu(1)

    def body():
        yield Compute(100)
        yield Sleep(5 * MILLISECONDS)
        yield Compute(100)

    thread = kernel.spawn("t", body())
    env.run()
    assert thread.last_cpu is not None


def test_offline_cpu_boots_through_ipis():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    offline = kernel.add_cpu("extra", online=False)
    assert not offline.online
    kernel.boot_cpu("extra")
    env.run(until=1 * MILLISECONDS)
    assert offline.online


def test_thread_runs_on_hotplugged_cpu():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    kernel.add_cpu("extra", online=False)
    kernel.boot_cpu("extra")
    env.run(until=1 * MILLISECONDS)
    thread = kernel.spawn("t", iter([Compute(1000)]), affinity={"extra"})
    env.run()
    assert thread.last_cpu == "extra"
    assert thread.done.triggered


def test_finished_threads_counter():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    for index in range(3):
        kernel.spawn(f"t{index}", iter([Compute(100)]))
    env.run()
    assert kernel.finished_threads == 3
    assert not kernel.threads  # all reaped
