"""Property-based tests of scheduler invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Compute, Kernel, KernelSection, SchedClass, Sleep
from repro.sim import Environment, MICROSECONDS, MILLISECONDS, SECONDS


@given(
    workloads=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=2_000),   # compute us
            st.integers(min_value=0, max_value=1_000),   # section us
            st.integers(min_value=0, max_value=500),     # sleep us
        ),
        min_size=1, max_size=12,
    ),
    n_cpus=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_no_thread_is_ever_lost(workloads, n_cpus):
    """Every spawned thread eventually exits, whatever the mix."""
    env = Environment()
    kernel = Kernel(env)
    for cpu_id in range(n_cpus):
        kernel.add_cpu(cpu_id)

    def body(compute_us, section_us, sleep_us):
        yield Compute(compute_us * MICROSECONDS)
        if section_us:
            yield KernelSection(section_us * MICROSECONDS)
        if sleep_us:
            yield Sleep(sleep_us * MICROSECONDS)
        yield Compute(10 * MICROSECONDS)

    threads = [
        kernel.spawn(f"t{index}", body(*shape))
        for index, shape in enumerate(workloads)
    ]
    env.run(until=10 * SECONDS)
    assert all(thread.done.triggered for thread in threads)
    assert kernel.finished_threads == len(workloads)


@given(
    durations=st.lists(st.integers(min_value=10, max_value=5_000),
                       min_size=2, max_size=8),
)
@settings(max_examples=30, deadline=None)
def test_single_cpu_total_time_conserved(durations):
    """On one CPU, total busy time >= sum of all compute demands."""
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    threads = [
        kernel.spawn(f"t{index}", iter([Compute(d * MICROSECONDS)]))
        for index, d in enumerate(durations)
    ]
    env.run(until=60 * SECONDS)
    assert all(thread.done.triggered for thread in threads)
    total_demand = sum(durations) * MICROSECONDS
    busy = kernel.cpus[0].busy_ns
    # Busy time covers all demand plus context switches, bounded above by
    # demand + switch costs.
    assert busy >= total_demand
    overhead_budget = (len(durations) + 5) * 10 * kernel.params.context_switch_ns
    assert busy <= total_demand + overhead_budget


@given(
    n_rt=st.integers(min_value=1, max_value=3),
    n_fair=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=20, deadline=None)
def test_realtime_always_finishes_before_equal_length_fair(n_rt, n_fair):
    """RT threads spawned together with FAIR ones never finish last."""
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    finish = {}

    def body(name):
        yield Compute(1 * MILLISECONDS)
        finish[name] = env.now

    for index in range(n_fair):
        kernel.spawn(f"fair{index}", body(f"fair{index}"))
    for index in range(n_rt):
        kernel.spawn(f"rt{index}", body(f"rt{index}"),
                     sched_class=SchedClass.REALTIME)
    env.run(until=10 * SECONDS)
    last_rt = max(v for k, v in finish.items() if k.startswith("rt"))
    first_fair_exit = min(v for k, v in finish.items() if k.startswith("fair"))
    assert last_rt <= first_fair_exit + 2 * MILLISECONDS
