"""Tests for run queues and scheduling classes."""

from repro.kernel import KThread, RunQueue, SchedClass


def make_thread(name, sched_class=SchedClass.FAIR, vruntime=0.0, weight=1.0):
    thread = KThread(name, iter(()), sched_class=sched_class,
                     nice_weight=weight)
    thread.vruntime = vruntime
    return thread


def test_realtime_beats_fair():
    queue = RunQueue(0)
    fair = make_thread("fair")
    rt = make_thread("rt", SchedClass.REALTIME)
    queue.enqueue(fair)
    queue.enqueue(rt)
    assert queue.pick_next() is rt
    assert queue.pick_next() is fair


def test_realtime_is_fifo():
    queue = RunQueue(0)
    first = make_thread("a", SchedClass.REALTIME)
    second = make_thread("b", SchedClass.REALTIME)
    queue.enqueue(first)
    queue.enqueue(second)
    assert queue.pick_next() is first
    assert queue.pick_next() is second


def test_fair_picks_minimum_vruntime():
    queue = RunQueue(0)
    slow = make_thread("slow", vruntime=100.0)
    fresh = make_thread("fresh", vruntime=5.0)
    queue.enqueue(slow)
    queue.enqueue(fresh)
    assert queue.pick_next() is fresh


def test_new_arrival_floored_at_min_vruntime():
    queue = RunQueue(0)
    queue.min_vruntime = 50.0
    thread = make_thread("new", vruntime=0.0)
    queue.enqueue(thread)
    assert thread.vruntime == 50.0


def test_charge_scales_with_weight():
    queue = RunQueue(0)
    heavy = make_thread("heavy", weight=2.0)
    light = make_thread("light", weight=1.0)
    queue.charge(heavy, 1000)
    queue.charge(light, 1000)
    assert heavy.vruntime == 500.0
    assert light.vruntime == 1000.0
    assert heavy.total_runtime_ns == light.total_runtime_ns == 1000


def test_dequeue_removes_specific_thread():
    queue = RunQueue(0)
    thread = make_thread("x")
    queue.enqueue(thread)
    assert queue.dequeue(thread)
    assert not queue.dequeue(thread)
    assert queue.is_empty


def test_peek_class():
    queue = RunQueue(0)
    assert queue.peek_class() is None
    queue.enqueue(make_thread("f"))
    assert queue.peek_class() is SchedClass.FAIR
    queue.enqueue(make_thread("r", SchedClass.REALTIME))
    assert queue.peek_class() is SchedClass.REALTIME


def test_len_and_has_realtime():
    queue = RunQueue(0)
    assert len(queue) == 0 and not queue.has_realtime
    queue.enqueue(make_thread("r", SchedClass.REALTIME))
    assert len(queue) == 1 and queue.has_realtime
