"""Edge cases of the CPU executor."""


from repro.kernel import (
    Compute,
    Exit,
    Kernel,
    KernelSection,
    LockAcquire,
    LockRelease,
    SchedClass,
    Sleep,
    Syscall,
    WaitEvent,
    YieldCPU,
)
from repro.sim import Environment, MICROSECONDS, MILLISECONDS, SECONDS


def one_cpu():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    return env, kernel


def test_zero_length_compute_completes():
    env, kernel = one_cpu()
    thread = kernel.spawn("t", iter([Compute(0), Exit("ok")]))
    env.run()
    assert thread.exit_value == "ok"


def test_empty_body_exits_immediately():
    env, kernel = one_cpu()
    thread = kernel.spawn("t", iter(()))
    env.run()
    assert thread.done.triggered
    assert kernel.finished_threads == 1


def test_exit_instruction_skips_rest_of_body():
    env, kernel = one_cpu()

    def body():
        yield Exit("early")
        yield Compute(10 * SECONDS)  # must never run

    thread = kernel.spawn("t", body())
    env.run()
    assert thread.exit_value == "early"
    assert env.now < 1 * MILLISECONDS


def test_back_to_back_sleeps():
    env, kernel = one_cpu()

    def body():
        for _ in range(5):
            yield Sleep(1 * MILLISECONDS)

    thread = kernel.spawn("t", body())
    env.run()
    assert thread.done.triggered
    assert env.now >= 5 * MILLISECONDS


def test_wait_on_already_triggered_event():
    env, kernel = one_cpu()
    event = env.event()
    event.succeed("ready")
    env.run()
    got = []

    def body():
        value = yield WaitEvent(event)
        got.append(value)

    kernel.spawn("t", body())
    env.run()
    assert got == ["ready"]


def test_yield_cpu_with_empty_queue_continues():
    env, kernel = one_cpu()
    order = []

    def body():
        yield Compute(100)
        yield YieldCPU()
        order.append("after-yield")

    kernel.spawn("t", body())
    env.run()
    assert order == ["after-yield"]


def test_lock_released_before_exit_leaves_lock_free():
    env, kernel = one_cpu()
    lock = kernel.spinlock("l")

    def body():
        yield LockAcquire(lock)
        yield KernelSection(100 * MICROSECONDS)
        yield LockRelease(lock)

    kernel.spawn("t", body())
    env.run()
    assert not lock.locked


def test_nested_syscalls_accumulate():
    env, kernel = one_cpu()

    def body():
        for _ in range(3):
            yield Syscall(1_000, entry_ns=100, exit_ns=100)

    thread = kernel.spawn("t", body())
    env.run()
    assert thread.total_runtime_ns >= 3 * 1_200


def test_preempted_compute_resumes_exactly():
    """Total executed time of a preempted thread equals its demand."""
    env, kernel = one_cpu()

    def fair_body():
        yield Compute(10 * MILLISECONDS)

    def rt_burst():
        for _ in range(5):
            yield Sleep(1 * MILLISECONDS)
            yield Compute(100 * MICROSECONDS)

    fair = kernel.spawn("fair", fair_body())
    kernel.spawn("rt", rt_burst(), sched_class=SchedClass.REALTIME)
    env.run()
    assert fair.done.triggered
    # 10 ms of compute, regardless of the five preemptions.
    assert fair.total_runtime_ns >= 10 * MILLISECONDS
    assert fair.total_runtime_ns <= 10 * MILLISECONDS + 200 * MICROSECONDS


def test_two_rt_threads_fifo_no_mutual_preemption():
    env, kernel = one_cpu()
    finish = {}

    def body(name):
        yield Compute(2 * MILLISECONDS)
        finish[name] = env.now

    kernel.spawn("rt-a", body("a"), sched_class=SchedClass.REALTIME)
    kernel.spawn("rt-b", body("b"), sched_class=SchedClass.REALTIME)
    env.run()
    # FIFO: a runs to completion before b starts, so b ends ~2ms later.
    assert finish["b"] - finish["a"] >= 2 * MILLISECONDS - 100 * MICROSECONDS


def test_fair_weights_bias_share():
    env, kernel = one_cpu()
    finish = {}

    def body(name):
        yield Compute(4 * MILLISECONDS)
        finish[name] = env.now

    kernel.spawn("heavy", body("heavy"), nice_weight=4.0)
    kernel.spawn("light", body("light"), nice_weight=1.0)
    env.run()
    assert finish["heavy"] < finish["light"]


def test_busy_idle_accounting_sums_to_wall_time():
    env, kernel = one_cpu()
    kernel.spawn("t", iter([Compute(3 * MILLISECONDS)]))
    kernel.spawn("late", iter([Sleep(8 * MILLISECONDS), Compute(1000)]))
    env.run()
    cpu = kernel.cpus[0]
    total = cpu.busy_ns + cpu.idle_ns
    # Accounting may lag at boundaries but never exceeds wall time.
    assert total <= env.now
    assert cpu.busy_ns >= 3 * MILLISECONDS


def test_syscall_work_tax_applied():
    env, kernel = one_cpu()
    kernel.cpus[0].work_tax = 1.5

    def body():
        yield Syscall(10_000, entry_ns=0, exit_ns=0)

    thread = kernel.spawn("t", body())
    env.run(until=thread.done)
    assert env.now == kernel.params.context_switch_ns + 15_000
