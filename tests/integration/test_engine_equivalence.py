"""Fast-forward trace-equivalence regressions.

The analytic idle fast-forward replaces chains of per-poll wakeups with
one budget timeout, claiming the simulated world cannot tell the
difference.  These tests hold it to that across three very different
workloads — the figure-12 network scenario, a multi-tenant soak, and a
fault-storm soak — by running each twice (fast-forward on vs off) and
asserting:

* the summaries are byte-identical outside the ``engine`` self-profile
  block (every latency sample, fault verdict, and tenant ledger agrees);
* both runs are invariant-clean;
* the fast arm's accounting covers the stepped arm's work —
  ``processed + skipped`` lands within a window-boundary rounding slack
  of the stepped arm's ``processed``.
"""

import json

import pytest

from repro.obs import observe
from repro.scenario import Scenario, build, run_soak
from repro.sim import EngineConfig
from repro.sim.units import MILLISECONDS
from repro.workloads import run_tcp_crr
from repro.workloads.background import start_cp_background

TENANTS = [
    {"tenant_id": "gold", "traffic": "steady",
     "workload": {"dp_utilization": 0.4, "n_monitors": 3,
                  "rolling_tasks": 3}},
    {"tenant_id": "bronze", "traffic": "spiky",
     "workload": {"dp_utilization": 0.4, "n_monitors": 3,
                  "rolling_tasks": 3}},
]


def _soak_pair(check_accounting=True, **scenario_kwargs):
    """Run the scenario fast and stepped; return both engine blocks."""
    engines = {}
    summaries = {}
    base_knobs = scenario_kwargs.pop("knobs", {})
    for mode, fast in (("fast", True), ("stepped", False)):
        knobs = dict(base_knobs)
        knobs["engine"] = EngineConfig(fast_forward=fast)
        scenario = Scenario(knobs=knobs, **scenario_kwargs)
        with observe(check_invariants=True) as session:
            summary = run_soak(scenario, seed=3,
                               duration_ns=30 * MILLISECONDS,
                               drain_ns=15 * MILLISECONDS,
                               fault_scale=0.4, label="equiv")
            assert session.violations() == []
        engines[mode] = summary.pop("engine")
        summaries[mode] = json.dumps(summary, sort_keys=True, default=str)
    assert summaries["fast"] == summaries["stepped"], \
        "fast-forward changed the simulation outcome"
    assert engines["fast"]["fast_forward"] is True
    assert engines["fast"]["events_skipped"] > 0
    if check_accounting:
        simulated = (engines["fast"]["events_processed"]
                     + engines["fast"]["events_skipped"])
        assert simulated == pytest.approx(
            engines["stepped"]["events_processed"], rel=0.10)
    return engines


def test_fig12_network_scenario_equivalence():
    # The figure-12 workload off the soak path: closed-loop tcp_crr on a
    # built deployment, with CP hum in the background.
    results = {}
    for fast in (True, False):
        deployment = build("taichi", seed=0,
                           engine=EngineConfig(fast_forward=fast))
        start_cp_background(deployment, n_monitors=4, rolling_tasks=2)
        deployment.warmup()
        result = run_tcp_crr(deployment, 10 * MILLISECONDS,
                             n_connections=64)
        results[fast] = json.dumps(result, sort_keys=True, default=str)
        profile = deployment.env.profile()
        assert profile["fast_forward"] is fast
        if fast:
            # tcp_crr keeps the DP busy; idle windows still appear in
            # the lulls and must be accounted.
            assert profile["fast_forward_windows"] > 0
    assert results[True] == results[False]


def test_multi_tenant_soak_equivalence():
    engines = _soak_pair(arm="taichi", tenants=TENANTS, traffic="bursty")
    assert engines["fast"]["skipped_ratio"] > 0.2


def test_fault_storm_soak_equivalence():
    # Degradation mode arms the containment layer; the storm preset hits
    # every seam, so equivalence here covers the fault machinery too.
    engines = _soak_pair(arm="taichi", faults="storm", degradation=True)
    assert engines["fast"]["events_skipped"] > 0
