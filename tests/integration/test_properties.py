"""Property-based invariants of the full Tai Chi system under random load."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import TaiChiDeployment
from repro.cp.task import CPTaskParams, spawn_synth_cp
from repro.hw import IORequest, PacketKind
from repro.sim import MICROSECONDS, MILLISECONDS, SECONDS


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_cp=st.integers(min_value=1, max_value=12),
    traffic_gap_us=st.integers(min_value=10, max_value=400),
)
@settings(max_examples=10, deadline=None)
def test_system_invariants_under_random_mixes(seed, n_cp, traffic_gap_us):
    """Whatever the mix: no lost CP work, no double backing, sane stats."""
    deployment = TaiChiDeployment(seed=seed)
    env = deployment.env
    board = deployment.board
    deployment.warmup()

    # Random open-loop traffic.
    def traffic():
        rng = deployment.rng.stream("prop-traffic")
        deadline = env.now + 150 * MILLISECONDS
        while env.now < deadline:
            queue = int(rng.integers(0, 8))
            board.accelerator.submit(IORequest(
                PacketKind.NET_TX, 256, ("net", queue, 0), service_ns=1_500))
            yield env.timeout(
                max(int(rng.exponential(traffic_gap_us * MICROSECONDS)), 1))

    env.process(traffic(), name="traffic")

    times = []
    rng = deployment.rng.stream("prop-cp")
    threads = spawn_synth_cp(
        deployment.kernel, env, rng, n_cp, deployment.cp_affinity,
        params=CPTaskParams(total_ns=8 * MILLISECONDS),
        recorder=times.append,
    )
    env.run(until=env.any_of([env.all_of([t.done for t in threads]),
                              env.timeout(20 * SECONDS)]))

    # Invariant 1: every CP task completed (no starvation, no lost work).
    assert len(times) == n_cp

    # Invariant 2: no vCPU left backed or reserved once the system drains.
    scheduler = deployment.taichi.scheduler
    deployment.run(env.now + 10 * MILLISECONDS)
    assert not scheduler._reserved
    for vcpu in deployment.taichi.vcpus:
        # A vCPU may be mid-slice for background monitors, but its backing
        # must be a live grant registered in `active`.
        if vcpu.is_backed:
            assert vcpu.backing in scheduler.active.values()

    # Invariant 3: accounting is consistent.
    stats = scheduler.stats()
    assert stats["slices_run"] >= sum(stats["exits"].values())
    for vcpu in deployment.taichi.vcpus:
        assert vcpu.busy_ns >= 0
        assert vcpu.frozen_ns >= 0

    # Invariant 4: every submitted packet is processed, queued, inside the
    # accelerator pipeline, or on a DP core right now (each service can be
    # mid-way through at most one packet when the run stops).
    submitted = board.accelerator.packets_processed
    processed = sum(s.packets_processed for s in deployment.services)
    queued = sum(len(store) for s in deployment.services
                 for store in s.rx_stores)
    in_flight = sum(board.accelerator.queue_inflight(q)
                    for s in deployment.services for q in s.queue_ids)
    accounted = processed + queued + in_flight
    assert accounted <= submitted
    assert submitted - accounted <= len(deployment.services)


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=8, deadline=None)
def test_deterministic_replay(seed):
    """Identical seeds produce bit-identical runs."""

    def run_once():
        deployment = TaiChiDeployment(seed=seed)
        env = deployment.env
        rng = deployment.rng.stream("replay-cp")
        times = []
        spawn_synth_cp(deployment.kernel, env, rng, 4,
                       deployment.cp_affinity,
                       params=CPTaskParams(total_ns=5 * MILLISECONDS),
                       recorder=times.append)
        deployment.run(80 * MILLISECONDS)
        return (tuple(times), deployment.taichi.scheduler.slices_run,
                deployment.dp_processing_ns())

    assert run_once() == run_once()
