"""End-to-end integration tests of the paper's headline claims."""


from repro.baselines import (
    NaiveCoscheduleDeployment,
    StaticPartitionDeployment,
    TaiChiDeployment,
    TaiChiNoHwProbeDeployment,
)
from repro.core import TaiChiConfig
from repro.cp.task import CPTaskParams, spawn_synth_cp
from repro.hw import IORequest, PacketKind
from repro.kernel import Compute, KernelSection, LockAcquire, LockRelease
from repro.sim import MICROSECONDS, MILLISECONDS, SECONDS
from repro.workloads import run_ping
from repro.workloads.background import start_cp_background


def test_taichi_accelerates_cp_without_hurting_dp_latency():
    """The core trade-off: faster CP, near-baseline DP."""
    def measure(deployment):
        start_cp_background(deployment, n_monitors=2, rolling_tasks=2)
        rng = deployment.rng.stream("it")
        times = []
        deployment.warmup()
        threads = spawn_synth_cp(
            deployment.kernel, deployment.env, rng, 16,
            deployment.cp_affinity, recorder=times.append,
        )
        ping = run_ping(deployment, 400 * MILLISECONDS)
        deployment.env.run(until=deployment.env.any_of(
            [deployment.env.all_of([t.done for t in threads]),
             deployment.env.timeout(5 * SECONDS)]))
        return sum(times) / len(times), ping

    static_cp, static_ping = measure(StaticPartitionDeployment(seed=11))
    taichi_cp, taichi_ping = measure(TaiChiDeployment(seed=11))

    assert taichi_cp < static_cp * 0.75          # substantial CP speedup
    assert taichi_ping["avg_ns"] < static_ping["avg_ns"] * 1.05  # DP SLO held


def test_hw_probe_is_what_protects_dp_tail_latency():
    """Ablation: removing the probe inflates max RTT and mdev."""
    def measure(deployment):
        start_cp_background(deployment, n_monitors=4, rolling_tasks=3)
        deployment.warmup()
        return run_ping(deployment, 300 * MILLISECONDS)

    config = TaiChiConfig(max_slice_ns=100 * MICROSECONDS)
    with_probe = measure(TaiChiDeployment(seed=12, taichi_config=config))
    without = measure(TaiChiNoHwProbeDeployment(seed=12))
    assert without["max_ns"] > with_probe["max_ns"] * 2
    assert without["mdev_ns"] > with_probe["mdev_ns"] * 2


def test_naive_coscheduling_spikes_dp_latency():
    """Figure 4's motivation measured end to end."""
    deployment = NaiveCoscheduleDeployment(seed=13)
    rng = deployment.rng.stream("cp")
    # CP tasks with heavy non-preemptible phases on all CPUs incl. DP.
    spawn_synth_cp(deployment.kernel, deployment.env, rng, 12,
                   deployment.cp_affinity,
                   params=CPTaskParams(sleep_fraction=0.5))
    ping = run_ping(deployment, 300 * MILLISECONDS)
    # ms-scale worst case vs the us-scale clean path.
    assert ping["max_ns"] > 300 * MICROSECONDS


def test_lock_holder_preemption_makes_progress():
    """The Section 4.1 deadlock scenario resolves via migration."""
    deployment = TaiChiDeployment(seed=14)
    board = deployment.board
    env = deployment.env
    deployment.warmup()
    lock = board.kernel.spinlock("drv")
    finished = []

    def holder():
        yield LockAcquire(lock)
        yield KernelSection(3 * MILLISECONDS)
        yield LockRelease(lock)
        finished.append("holder")

    def spinner(index):
        yield Compute(50 * MICROSECONDS)
        yield LockAcquire(lock)
        yield Compute(20 * MICROSECONDS)
        yield LockRelease(lock)
        finished.append(f"spinner{index}")

    vcpu_id = deployment.taichi.vcpu_ids()[0]
    board.kernel.spawn("holder", holder(), affinity={vcpu_id})
    for index in range(4):
        board.kernel.spawn(f"spin{index}", spinner(index),
                           affinity=set(board.cp_cpu_ids))

    def traffic():
        for _ in range(500):
            for queue in range(8):
                board.accelerator.submit(IORequest(
                    PacketKind.NET_TX, 64, ("net", queue, 0),
                    service_ns=1_500))
            yield env.timeout(50 * MICROSECONDS)

    env.process(traffic(), name="traffic")
    env.run(until=2 * SECONDS)
    assert len(finished) == 5
    assert finished[0] == "holder"


def test_vcpu_work_survives_bursty_traffic():
    """CP tasks complete despite constant preemption churn."""
    deployment = TaiChiDeployment(seed=15)
    board = deployment.board
    env = deployment.env
    deployment.warmup()
    rng = deployment.rng.stream("cp")
    times = []
    threads = spawn_synth_cp(board.kernel, env, rng, 24,
                             deployment.cp_affinity, recorder=times.append)

    def traffic():
        stream = deployment.rng.stream("burst")
        for _ in range(200):
            for _ in range(20):
                queue = int(stream.integers(0, 8))
                board.accelerator.submit(IORequest(
                    PacketKind.NET_TX, 64, ("net", queue, 0),
                    service_ns=1_500))
            yield env.timeout(int(stream.exponential(2 * MILLISECONDS)))

    env.process(traffic(), name="traffic")
    env.run(until=env.any_of([env.all_of([t.done for t in threads]),
                              env.timeout(10 * SECONDS)]))
    assert len(times) == 24


def test_dp_throughput_identical_under_full_load():
    """When DP is saturated there is nothing to donate: zero overhead."""
    from repro.workloads import run_tcp_crr

    static = StaticPartitionDeployment(seed=16)
    static.warmup()
    base = run_tcp_crr(static, 20 * MILLISECONDS, n_connections=256)

    taichi = TaiChiDeployment(seed=16)
    start_cp_background(taichi, n_monitors=4, rolling_tasks=4)
    taichi.warmup()
    ours = run_tcp_crr(taichi, 20 * MILLISECONDS, n_connections=256)
    assert ours["cps"] >= base["cps"] * 0.97
