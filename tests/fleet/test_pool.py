"""pool_imap / pool_outcomes: ordering, error wrapping, containment."""

import time

import pytest

from repro.fleet import Outcome, PoolTaskError, pool_imap, pool_map, pool_outcomes
from repro.fleet.durability import RetryPolicy, is_failure_envelope


# Workers must be module-level for the process-pool pickle contract.

def _square(payload):
    return payload * payload


def _sleep_inverse(payload):
    # Later payloads finish first: completion order is the reverse of
    # input order, so in-order delivery is actually exercised.
    index, count = payload
    time.sleep(0.05 * (count - index))
    return index


def _boom_on_two(payload):
    if payload == 2:
        raise ValueError("payload two is cursed")
    return payload


def _envelope_below(payload):
    # Containment-style worker: returns a failure envelope on its first
    # attempts instead of raising (the fleet node contract).
    value, threshold = payload["value"], payload["threshold"]
    if payload["attempt"] < threshold:
        return {"__fleet_failure__": True, "node_id": str(value),
                "attempt": payload["attempt"], "kind": "exception",
                "error": "not yet", "traceback": []}
    return f"ok-{value}"


def _prepare(payload, attempt, parallel):
    return {**payload, "attempt": attempt, "parallel": parallel}


def test_serial_and_parallel_agree():
    payloads = list(range(6))
    expected = [_square(p) for p in payloads]
    assert pool_map(_square, payloads, jobs=1) == expected
    assert pool_map(_square, payloads, jobs=3) == expected


def test_more_jobs_than_payloads():
    # The pool must clamp workers to the payload count, not reject.
    assert pool_map(_square, [1, 2, 3], jobs=16) == [1, 4, 9]


def test_empty_payload_list():
    assert pool_map(_square, [], jobs=4) == []
    assert list(pool_imap(_square, [], jobs=1)) == []


def test_input_order_despite_reverse_completion():
    count = 4
    payloads = [(index, count) for index in range(count)]
    assert pool_map(_sleep_inverse, payloads, jobs=count) == list(range(count))


@pytest.mark.parametrize("jobs", [1, 3])
def test_worker_error_wrapped_with_index_and_label(jobs):
    with pytest.raises(PoolTaskError) as excinfo:
        pool_map(_boom_on_two, [0, 1, 2, 3], jobs=jobs,
                 label=lambda payload: f"node-{payload}")
    err = excinfo.value
    assert err.index == 2
    assert err.label == "node-2"
    assert isinstance(err.cause, ValueError)
    assert "node-2" in str(err) and "payload 2" in str(err)


def test_worker_error_without_label_names_index():
    with pytest.raises(PoolTaskError, match="payload 1"):
        pool_map(_boom_on_two, [0, 2], jobs=1)


# -- pool_outcomes -------------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_outcomes_contain_failures(jobs):
    outcomes = pool_outcomes(_boom_on_two, [0, 1, 2, 3], jobs=jobs,
                             label=lambda payload: f"n{payload}")
    assert [outcome.ok for outcome in outcomes] == [True, True, False, True]
    failed = outcomes[2]
    assert isinstance(failed, Outcome)
    assert failed.label == "n2"
    assert failed.failure["kind"] == "exception"
    assert "cursed" in failed.failure["error"]
    assert failed.attempts == 1


@pytest.mark.parametrize("jobs", [1, 2])
def test_outcomes_retry_recovers_transients(jobs):
    # threshold=2: the first attempt returns an envelope, the second
    # succeeds — attempt numbers are delivered by prepare(), so the
    # worker is stateless and the behavior is jobs-independent.
    payloads = [{"value": value, "threshold": 2 if value == 1 else 1}
                for value in range(3)]
    outcomes = pool_outcomes(_envelope_below, payloads, jobs=jobs,
                             retry=RetryPolicy(max_attempts=3),
                             prepare=_prepare, classify=is_failure_envelope)
    assert [outcome.value for outcome in outcomes] == [
        "ok-0", "ok-1", "ok-2"]
    assert [outcome.attempts for outcome in outcomes] == [1, 2, 1]


def test_outcomes_exhausted_retries_keep_last_envelope():
    payloads = [{"value": 7, "threshold": 99}]
    outcomes = pool_outcomes(_envelope_below, payloads, jobs=1,
                             retry=RetryPolicy(max_attempts=2),
                             prepare=_prepare, classify=is_failure_envelope)
    outcome = outcomes[0]
    assert not outcome.ok
    assert outcome.attempts == 2
    assert outcome.failure["attempt"] == 2  # the envelope of the last try


def test_outcomes_on_outcome_fires_once_per_payload():
    seen = []
    pool_outcomes(_square, [1, 2, 3], jobs=1,
                  on_outcome=lambda outcome: seen.append(outcome.index))
    assert sorted(seen) == [0, 1, 2]


def test_outcomes_empty_payloads():
    assert pool_outcomes(_square, [], jobs=4) == []
