"""FleetRunner: determinism across --jobs, captures, floors, node scoring."""

import json
import os

import pytest

from repro.fleet import (
    FleetRunner,
    FleetSpec,
    canonical_report,
    fleet_markdown,
    format_fleet_text,
    run_node,
    uniform_spec,
    write_fleet_json,
)
from repro.fleet.node import node_seed
from repro.sim.rng import derive_seed


def _tiny_spec(n_nodes=2, **kwargs):
    kwargs.setdefault("duration_ms", 40.0)
    kwargs.setdefault("drain_ms", 20.0)
    return uniform_spec("tiny", "taichi", n_nodes, **kwargs)


def _canonical_json(report):
    return json.dumps(canonical_report(report), sort_keys=True)


def test_jobs_levels_are_byte_identical():
    # The subsystem's core contract: same spec + seed -> the same canonical
    # JSON report no matter how the nodes were scheduled across processes.
    spec = FleetSpec.preset("rack").subset(3)
    serial = FleetRunner(spec, jobs=1, scale=0.1).run()
    parallel = FleetRunner(spec, jobs=4, scale=0.1).run()
    assert _canonical_json(serial) == _canonical_json(parallel)
    # timing is the one intentional difference and stays out of the JSON.
    assert serial["timing"]["jobs"] == 1
    assert parallel["timing"]["jobs"] == 4


def test_node_seeds_derived_from_root():
    spec = _tiny_spec()
    report = FleetRunner(spec, jobs=1, scale=0.5).run()
    for node in report["nodes"]:
        assert node["seed"] == derive_seed(spec.seed, "fleet-node",
                                           node["node_id"])
    assert node_seed(0, "node-00") != node_seed(1, "node-00")


def test_seed_changes_results():
    spec = _tiny_spec()
    a = FleetRunner(spec, jobs=1, scale=0.5).run()
    b = FleetRunner(spec.with_seed(1), jobs=1, scale=0.5).run()
    assert _canonical_json(a) != _canonical_json(b)


def test_duration_floors():
    spec = _tiny_spec()
    payloads = FleetRunner(spec, jobs=1, scale=1e-6).payloads()
    assert payloads[0]["duration_ns"] == 30_000_000
    assert payloads[0]["drain_ns"] == 20_000_000


def test_rejects_bad_scale():
    with pytest.raises(ValueError, match="scale must be positive"):
        FleetRunner(_tiny_spec(), scale=0)


def test_capture_dir_feeds_analyzer(tmp_path):
    from repro.obs.analysis import analyze_capture

    capture_dir = os.path.join(tmp_path, "caps")
    spec = _tiny_spec()
    report = FleetRunner(spec, jobs=1, scale=1.0,
                         capture_dir=capture_dir,
                         check_invariants=True).run()
    assert report["aggregate"]["fleet"]["invariants_ok"]
    for node in report["nodes"]:
        path = os.path.join(capture_dir, f"{node['node_id']}.jsonl")
        assert node["capture_path"] == path
        analysis = analyze_capture(path)
        assert not analysis["violations"]
        assert any(stream["events"]
                   for stream in analysis["streams"].values())


def test_faulted_node_reports_injections():
    # rack-05 rides out a probe outage behind the degradation layer.
    rack = FleetSpec.preset("rack")
    node = next(n for n in rack.nodes if n.faults is not None)
    payload = {
        "node": node.to_dict(),
        "root_seed": 0,
        "duration_ns": 40_000_000,
        "drain_ns": 20_000_000,
        "dp_slo_us": 300.0,
        "fault_scale": 0.1,
    }
    summary = run_node(payload)
    assert summary["faults"]["injected"] > 0


def test_summary_has_no_wall_clock():
    summary = run_node({
        "node": {"node_id": "n0"},
        "root_seed": 0,
        "duration_ns": 30_000_000,
        "drain_ns": 20_000_000,
        "dp_slo_us": 300.0,
    })
    flat = json.dumps(summary)
    assert "wall_time" not in flat
    assert summary["metrics"]["engine_events"] > 0


def test_reports_render(tmp_path):
    report = FleetRunner(_tiny_spec(), jobs=1, scale=1.0).run()
    text = format_fleet_text(report)
    assert "fleet-wide" in text
    assert "node-00" in text
    md = fleet_markdown(report)
    assert md.startswith("# Fleet report")
    json_path = os.path.join(tmp_path, "fleet.json")
    write_fleet_json(json_path, report)
    with open(json_path) as handle:
        doc = json.load(handle)
    assert "timing" not in doc
    assert doc["aggregate"]["fleet"]["nodes"] == 2


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="parallel speedup needs >1 CPU")
def test_parallel_is_faster_on_multicore():
    spec = _tiny_spec(n_nodes=4, duration_ms=120.0, drain_ms=40.0)
    serial = FleetRunner(spec, jobs=1).run()
    parallel = FleetRunner(spec, jobs=4).run()
    assert parallel["timing"]["wall_s"] < serial["timing"]["wall_s"] * 0.9


# -- telemetry + sketch shipping -----------------------------------------------


def test_nodes_ship_sketches_not_raw_arrays_by_default():
    report = FleetRunner(_tiny_spec(), jobs=1, scale=0.5).run()
    for node in report["nodes"]:
        assert "dp_sketch" in node
        assert "startup_sketch" in node
        assert "dp_samples_us" not in node
        assert "startup_samples_ms" not in node
    assert "dp_sketch" in report["aggregate"]["fleet"]


def test_raw_samples_flag_restores_arrays():
    import dataclasses

    spec = dataclasses.replace(_tiny_spec(), raw_samples=True)
    report = FleetRunner(spec, jobs=1, scale=0.5).run()
    for node in report["nodes"]:
        assert "dp_samples_us" in node
        assert "dp_sketch" in node     # sketches ship either way


def test_fleet_quantiles_bracket_raw_order_statistics():
    # The acceptance bound: each merged-sketch quantile must land within
    # the documented relative error of the pooled raw order statistics.
    import dataclasses
    import math

    from repro.metrics.sketch import DEFAULT_ALPHA

    spec = dataclasses.replace(FleetSpec.preset("rack").subset(3),
                               raw_samples=True)
    report = FleetRunner(spec, jobs=1, scale=0.1).run()
    pool = sorted(value for node in report["nodes"]
                  for value in node["dp_samples_us"])
    assert pool
    fleet = report["aggregate"]["fleet"]["dp_latency_us"]
    for q in (50, 90, 99):
        rank = q / 100.0 * (len(pool) - 1)
        lower = pool[math.floor(rank)]
        upper = pool[math.ceil(rank)]
        estimate = fleet[f"p{q}"]
        assert lower * (1 - DEFAULT_ALPHA) - 1e-9 <= estimate
        assert estimate <= upper * (1 + DEFAULT_ALPHA) + 1e-9


def test_jobs_byte_identical_with_telemetry_dirs(tmp_path):
    # Telemetry export must not perturb determinism, and host paths must
    # stay out of the canonical report.
    spec = FleetSpec.preset("rack").subset(3)
    serial = FleetRunner(spec, jobs=1, scale=0.1,
                         telemetry_dir=os.path.join(tmp_path, "t1")).run()
    parallel = FleetRunner(spec, jobs=4, scale=0.1,
                           telemetry_dir=os.path.join(tmp_path, "t2")).run()
    assert _canonical_json(serial) == _canonical_json(parallel)


def test_telemetry_dir_writes_per_node_and_merged(tmp_path):
    from repro.fleet import load_fleet_telemetry, load_merged_series
    from repro.obs.telemetry import parse_openmetrics

    telemetry_dir = os.path.join(tmp_path, "telemetry")
    report = FleetRunner(_tiny_spec(), jobs=1, scale=0.5,
                         telemetry_dir=telemetry_dir).run()
    assert report["telemetry_dir"] == telemetry_dir

    by_node = load_fleet_telemetry(telemetry_dir)
    assert sorted(by_node) == [node["node_id"] for node in report["nodes"]]
    for snapshots, meta in by_node.values():
        assert snapshots
        assert meta["stream_type"] == "telemetry"

    merged = load_merged_series(telemetry_dir)
    assert merged
    first = merged[0]
    assert first["stream"] == "fleet"
    assert "rq_depth" in first["gauges"]
    assert first["gauges"]["rq_depth"]["nodes"] == 2

    with open(os.path.join(telemetry_dir, "fleet.openmetrics")) as handle:
        samples = parse_openmetrics(handle.read())
    assert any(name.startswith("taichi_") for name in samples)


def test_top_renders_fleet_health(tmp_path):
    from repro.fleet import render_top

    telemetry_dir = os.path.join(tmp_path, "telemetry")
    spec = _tiny_spec()
    FleetRunner(spec, jobs=1, scale=0.5, telemetry_dir=telemetry_dir).run()
    text = render_top(telemetry_dir)
    for node in spec.nodes:
        assert node.node_id in text
    assert "dp p99" in text

    # Also renders straight from a fleet JSON report.
    json_path = os.path.join(tmp_path, "fleet.json")
    report = FleetRunner(spec, jobs=1, scale=0.5).run()
    write_fleet_json(json_path, report)
    assert spec.nodes[0].node_id in render_top(json_path)


# -- causal spans across the fleet ---------------------------------------------


def test_spans_fleet_byte_identical_across_jobs():
    spec = _tiny_spec(n_nodes=2)
    spec.spans = True
    serial = FleetRunner(spec, jobs=1, scale=1.0).run()
    parallel = FleetRunner(spec, jobs=2, scale=1.0).run()
    assert _canonical_json(serial) == _canonical_json(parallel)


def test_spans_fleet_pools_worst_requests():
    spec = _tiny_spec(n_nodes=2)
    spec.spans = True
    report = FleetRunner(spec, jobs=1, scale=1.0).run()

    for node in report["nodes"]:
        assert "exemplars" in node
        assert node["spans"]["completed"] > 0
    worst = report["aggregate"]["worst_requests"]
    assert "dp" in worst
    node_ids = {node.node_id for node in spec.nodes}
    durations = [entry["duration_ns"] for entry in worst["dp"]]
    assert durations == sorted(durations, reverse=True)
    for entry in worst["dp"]:
        assert entry["node_id"] in node_ids
        assert entry["dominant"] in entry["segments"]
        assert sum(entry["segments"].values()) == entry["duration_ns"]


def test_spans_off_fleet_report_has_no_span_keys():
    spec = _tiny_spec(n_nodes=1)
    report = FleetRunner(spec, jobs=1, scale=1.0).run()
    assert "worst_requests" not in report["aggregate"]
    assert "exemplars" not in report["nodes"][0]
    assert "spans" not in report["spec"]


def test_top_renders_worst_requests_from_fleet_json(tmp_path):
    # Satellite contract: `top` against a fleet --json report alone (no
    # --telemetry-dir anywhere) renders the pooled worst-request table.
    from repro.fleet import render_top

    spec = _tiny_spec(n_nodes=2)
    spec.spans = True
    report = FleetRunner(spec, jobs=1, scale=1.0).run()
    json_path = os.path.join(tmp_path, "fleet.json")
    write_fleet_json(json_path, report)
    text = render_top(json_path)
    assert "worst requests" in text
    worst = report["aggregate"]["worst_requests"]["dp"][0]
    assert worst["request"] in text
    assert worst["node_id"] in text


def test_payloads_are_pure(tmp_path):
    # Building payloads must not create capture/telemetry dirs; only
    # run() touches the filesystem.
    capture_dir = str(tmp_path / "captures")
    telemetry_dir = str(tmp_path / "telemetry")
    runner = FleetRunner(_tiny_spec(), scale=0.5, capture_dir=capture_dir,
                         telemetry_dir=telemetry_dir)
    payloads = runner.payloads()
    assert payloads[0]["capture_path"].startswith(capture_dir)
    assert not os.path.exists(capture_dir)
    assert not os.path.exists(telemetry_dir)
    runner.run()
    assert os.path.isdir(capture_dir)
    assert os.path.isdir(telemetry_dir)
