"""Durability layer: retry policy, chaos, degraded runs, checkpoint/resume."""

import dataclasses
import json
import os

import pytest

from repro.fleet import (
    CheckpointError,
    FleetCheckpoint,
    FleetRunFailed,
    FleetRunner,
    InjectedWorkerFault,
    RetryPolicy,
    canonical_report,
    format_fleet_text,
    render_top,
    uniform_spec,
    verify_fleet_report,
    write_fleet_json,
)
from repro.fleet.durability import (
    checkpoint_entry,
    failure_envelope,
    is_failure_envelope,
    maybe_inject_chaos,
    normalize_chaos,
    payload_fingerprint,
    retry_with,
)


def _tiny_spec(n_nodes=3, **kwargs):
    kwargs.setdefault("duration_ms", 40.0)
    kwargs.setdefault("drain_ms", 20.0)
    return uniform_spec("tiny", "taichi", n_nodes, **kwargs)


def _with(spec, **kwargs):
    return dataclasses.replace(spec, nodes=list(spec.nodes), **kwargs)


def _canonical_json(report):
    return json.dumps(canonical_report(report), sort_keys=True)


# -- RetryPolicy ---------------------------------------------------------------


def test_retry_policy_defaults_mean_no_retry():
    policy = RetryPolicy()
    assert policy.max_attempts == 1
    assert policy.delay_s(1) == 0.0
    assert policy.delay_s(5) == 0.0
    assert policy.timeout_for(1) is None


def test_retry_policy_backoff_and_timeout_schedules():
    policy = RetryPolicy(max_attempts=4, backoff_s=0.5,
                         backoff_multiplier=3.0, timeout_s=2.0,
                         timeout_multiplier=2.0)
    assert policy.delay_s(1) == 0.0          # first attempt never waits
    assert policy.delay_s(2) == 0.5
    assert policy.delay_s(3) == 1.5
    assert policy.delay_s(4) == 4.5
    assert policy.timeout_for(1) == 2.0
    assert policy.timeout_for(3) == 8.0


@pytest.mark.parametrize("bad", [
    {"max_attempts": 0},
    {"backoff_s": -1.0},
    {"backoff_multiplier": 0.5},
    {"timeout_s": 0.0},
    {"timeout_multiplier": 0.9},
])
def test_retry_policy_validation(bad):
    with pytest.raises(ValueError):
        RetryPolicy(**bad)


def test_retry_policy_round_trips_sparsely():
    assert RetryPolicy().to_dict() == {"max_attempts": 1}
    policy = RetryPolicy(max_attempts=3, backoff_s=0.1, timeout_s=5.0)
    assert RetryPolicy.from_value(policy.to_dict()) == policy
    assert RetryPolicy.from_value(None) == RetryPolicy()
    assert RetryPolicy.from_value(policy) is policy
    with pytest.raises(ValueError, match="retry must be"):
        RetryPolicy.from_value("twice")


def test_retry_with_overrides():
    base = RetryPolicy(max_attempts=2, backoff_s=0.2)
    bumped = retry_with(base, max_attempts=5, timeout_s=1.0)
    assert bumped.max_attempts == 5
    assert bumped.backoff_s == 0.2
    assert bumped.timeout_s == 1.0
    assert retry_with(base) is base


# -- Envelopes and chaos -------------------------------------------------------


def test_failure_envelope_shape():
    try:
        raise ValueError("kaboom")
    except ValueError as exc:
        envelope = failure_envelope("node-07", 2, exc)
    assert is_failure_envelope(envelope)
    assert envelope["node_id"] == "node-07"
    assert envelope["attempt"] == 2
    assert envelope["kind"] == "exception"
    assert envelope["error"] == "ValueError('kaboom')"
    assert any("kaboom" in line for line in envelope["traceback"])
    assert not is_failure_envelope({"node_id": "x"})
    assert not is_failure_envelope("nope")


def test_normalize_chaos_forms():
    assert normalize_chaos(None) is None
    out = normalize_chaos({"b": 2, "a": {"fail_attempts": -1,
                                         "kind": "crash"}})
    assert list(out) == ["a", "b"]  # canonical sorted order
    assert out["a"] == {"fail_attempts": -1, "kind": "crash"}
    assert out["b"] == {"fail_attempts": 2, "kind": "exception"}
    with pytest.raises(ValueError, match="must be a dict"):
        normalize_chaos(["a"])
    with pytest.raises(ValueError, match="int or a dict"):
        normalize_chaos({"a": "always"})
    with pytest.raises(ValueError, match="kind"):
        normalize_chaos({"a": {"kind": "meteor"}})


def test_maybe_inject_chaos_counts_attempts():
    entry = normalize_chaos({"n": 2})["n"]
    with pytest.raises(InjectedWorkerFault):
        maybe_inject_chaos(entry, "n", 1)
    with pytest.raises(InjectedWorkerFault):
        maybe_inject_chaos(entry, "n", 2)
    maybe_inject_chaos(entry, "n", 3)       # past the budget: quiet
    maybe_inject_chaos(None, "n", 1)        # no entry: quiet
    forever = normalize_chaos({"n": -1})["n"]
    with pytest.raises(InjectedWorkerFault):
        maybe_inject_chaos(forever, "n", 99)


def test_crash_kind_degrades_to_exception_serially():
    entry = normalize_chaos({"n": {"fail_attempts": -1, "kind": "crash"}})["n"]
    # parallel=False must never os._exit the calling process.
    with pytest.raises(InjectedWorkerFault):
        maybe_inject_chaos(entry, "n", 1, parallel=False)


# -- Degraded fleet runs -------------------------------------------------------


def _degraded_spec(n_nodes=3):
    spec = _tiny_spec(n_nodes)
    # node-01 fails forever; node-02 fails once and recovers on retry.
    return _with(spec, chaos={"node-01": -1, "node-02": 1},
                 retry={"max_attempts": 2})


def test_degraded_run_contains_failures():
    report = FleetRunner(_degraded_spec(), scale=0.5,
                         allow_failures=True).run()
    aggregate = report["aggregate"]
    assert aggregate["degraded"] is True
    assert aggregate["coverage"] == {"expected": 3, "completed": 2,
                                     "fraction": 2 / 3}
    (failure,) = aggregate["failed_nodes"]
    assert failure["node_id"] == "node-01"
    assert failure["kind"] == "exception"
    assert failure["attempts"] == 2
    assert "InjectedWorkerFault" in failure["error"]
    assert failure["traceback"]
    assert [node["node_id"] for node in report["nodes"]] == [
        "node-00", "node-02"]
    assert report["timing"]["retried"] == {"node-02": 2}
    assert verify_fleet_report(report) == []


def test_degraded_run_raises_without_allow_failures():
    with pytest.raises(FleetRunFailed, match="node-01") as excinfo:
        FleetRunner(_degraded_spec(), scale=0.5).run()
    # The degraded report still rode along for rendering/salvage.
    report = excinfo.value.report
    assert report["aggregate"]["degraded"] is True
    assert excinfo.value.failures[0]["node_id"] == "node-01"
    assert "--allow-failures" in str(excinfo.value)


def test_degraded_run_byte_identical_across_jobs():
    spec = _degraded_spec()
    serial = FleetRunner(spec, jobs=1, scale=0.5, allow_failures=True).run()
    parallel = FleetRunner(spec, jobs=3, scale=0.5,
                           allow_failures=True).run()
    assert _canonical_json(serial) == _canonical_json(parallel)


def test_retry_success_is_byte_identical_to_first_try():
    base = _tiny_spec()
    clean = FleetRunner(base, scale=0.5).run()
    chaotic = FleetRunner(
        _with(base, chaos={"node-02": 1}, retry={"max_attempts": 2}),
        scale=0.5).run()
    clean_node = [node for node in clean["nodes"]
                  if node["node_id"] == "node-02"]
    retried_node = [node for node in chaotic["nodes"]
                    if node["node_id"] == "node-02"]
    assert json.dumps(retried_node, sort_keys=True) == json.dumps(
        clean_node, sort_keys=True)
    assert chaotic["timing"]["retried"] == {"node-02": 2}


def test_healthy_report_has_no_degraded_keys():
    # Backward compatibility: durability must not change healthy output.
    report = FleetRunner(_tiny_spec(2), scale=0.5).run()
    aggregate = report["aggregate"]
    assert "degraded" not in aggregate
    assert "coverage" not in aggregate
    assert "failed_nodes" not in aggregate
    assert verify_fleet_report(report) == []


def test_degraded_report_renders(tmp_path):
    report = FleetRunner(_degraded_spec(), scale=0.5,
                         allow_failures=True).run()
    text = format_fleet_text(report)
    assert "DEGRADED: 1 of 3 nodes failed" in text
    assert "node-01" in text
    assert "1 node(s) retried" in text
    path = write_fleet_json(str(tmp_path / "fleet.json"), report)
    top = render_top(path)
    assert "failed nodes: 1" in top
    assert "coverage 66.7%" in top
    assert "all nodes healthy" not in top


def test_verify_fleet_report_detects_tampering():
    report = FleetRunner(_degraded_spec(), scale=0.5,
                         allow_failures=True).run()
    assert verify_fleet_report(report) == []
    broken = json.loads(json.dumps(report))
    broken["aggregate"]["coverage"]["completed"] = 3
    assert any("coverage" in problem
               for problem in verify_fleet_report(broken))
    broken = json.loads(json.dumps(report))
    broken["aggregate"]["failed_nodes"][0]["node_id"] = "node-00"
    assert any("both failed and survived" in problem
               for problem in verify_fleet_report(broken))
    broken = json.loads(json.dumps(report))
    del broken["aggregate"]["degraded"]
    assert any("degraded flag" in problem
               for problem in verify_fleet_report(broken))


# -- Checkpoint / resume -------------------------------------------------------


def test_checkpoint_journal_is_atomic_per_node(tmp_path):
    checkpoint = FleetCheckpoint(str(tmp_path / "ckpt"))
    entry = checkpoint_entry("node-00", "abcd", summary={"node_id":
                                                         "node-00"})
    path = checkpoint.journal(entry)
    assert path.endswith("node-00.node.json")
    assert not os.path.exists(path + ".tmp")
    assert checkpoint.load() == {"node-00": entry}
    with pytest.raises(ValueError, match="exactly one"):
        checkpoint_entry("node-00", "abcd")
    with pytest.raises(ValueError, match="exactly one"):
        checkpoint_entry("node-00", "abcd", summary={}, failure={})


def test_resume_is_byte_identical_to_uninterrupted(tmp_path):
    spec = _tiny_spec(4)
    uninterrupted = FleetRunner(spec, scale=0.5).run()
    checkpoint_dir = str(tmp_path / "ckpt")
    # Emulate an interruption: a prefix subset journals two nodes, then
    # the full spec resumes from that journal.
    FleetRunner(spec.subset(2), scale=0.5,
                checkpoint_dir=checkpoint_dir).run()
    resumed = FleetRunner(spec, scale=0.5, checkpoint_dir=checkpoint_dir,
                          resume=True).run()
    assert _canonical_json(resumed) == _canonical_json(uninterrupted)
    assert resumed["timing"]["resumed_nodes"] == ["node-00", "node-01"]


def test_resume_preserves_journaled_failures(tmp_path):
    spec = _degraded_spec()
    uninterrupted = FleetRunner(spec, scale=0.5, allow_failures=True).run()
    checkpoint_dir = str(tmp_path / "ckpt")
    FleetRunner(spec.subset(2), scale=0.5, checkpoint_dir=checkpoint_dir,
                allow_failures=True).run()
    resumed = FleetRunner(spec, scale=0.5, checkpoint_dir=checkpoint_dir,
                          resume=True, allow_failures=True).run()
    assert _canonical_json(resumed) == _canonical_json(uninterrupted)
    # node-01's terminal failure came back from the journal, not a re-run.
    assert "node-01" in resumed["timing"]["resumed_nodes"]
    assert resumed["aggregate"]["failed_nodes"][0]["node_id"] == "node-01"


def test_nonempty_checkpoint_dir_requires_resume(tmp_path):
    spec = _tiny_spec(2)
    checkpoint_dir = str(tmp_path / "ckpt")
    FleetRunner(spec, scale=0.5, checkpoint_dir=checkpoint_dir).run()
    with pytest.raises(CheckpointError, match="--resume"):
        FleetRunner(spec, scale=0.5, checkpoint_dir=checkpoint_dir).run()


def test_resume_rejects_fingerprint_mismatch(tmp_path):
    spec = _tiny_spec(2)
    checkpoint_dir = str(tmp_path / "ckpt")
    FleetRunner(spec, scale=0.5, checkpoint_dir=checkpoint_dir).run()
    with pytest.raises(CheckpointError, match="different spec"):
        FleetRunner(spec.with_seed(99), scale=0.5,
                    checkpoint_dir=checkpoint_dir, resume=True).run()
    # A different scale changes duration_ns, hence the fingerprint too.
    with pytest.raises(CheckpointError, match="different spec"):
        FleetRunner(spec, scale=0.25, checkpoint_dir=checkpoint_dir,
                    resume=True).run()


def test_resume_ignores_unknown_journal_entries(tmp_path):
    # A journal from a *larger* spec resumes cleanly into a subset run:
    # extra entries are ignored, matching ones are reused.
    spec = _tiny_spec(3)
    checkpoint_dir = str(tmp_path / "ckpt")
    FleetRunner(spec, scale=0.5, checkpoint_dir=checkpoint_dir).run()
    subset = FleetRunner(spec.subset(2), scale=0.5,
                         checkpoint_dir=checkpoint_dir, resume=True).run()
    direct = FleetRunner(spec.subset(2), scale=0.5).run()
    assert _canonical_json(subset) == _canonical_json(direct)


def test_fingerprint_ignores_host_paths():
    spec = _tiny_spec(1)
    plain = FleetRunner(spec, scale=0.5).payloads()[0]
    captured = FleetRunner(spec, scale=0.5,
                           capture_dir="/tmp/elsewhere").payloads()[0]
    assert payload_fingerprint(plain) == payload_fingerprint(captured)
    reseeded = FleetRunner(spec.with_seed(7), scale=0.5).payloads()[0]
    assert payload_fingerprint(plain) != payload_fingerprint(reseeded)


# -- Spec round-trip -----------------------------------------------------------


def test_spec_round_trips_retry_and_chaos(tmp_path):
    spec = _with(_tiny_spec(2), chaos={"node-01": 1},
                 retry={"max_attempts": 3, "backoff_s": 0.1})
    data = spec.to_dict()
    assert data["retry"] == {"max_attempts": 3, "backoff_s": 0.1,
                             "backoff_multiplier": 2.0}
    assert data["chaos"] == {"node-01": {"fail_attempts": 1,
                                         "kind": "exception"}}
    path = tmp_path / "spec.json"
    spec.to_json(str(path))
    from repro.fleet import FleetSpec

    loaded = FleetSpec.from_json(str(path))
    assert loaded.retry == RetryPolicy(max_attempts=3, backoff_s=0.1)
    assert loaded.chaos == spec.chaos
    # Healthy specs stay sparse: no retry/chaos keys at all.
    assert "retry" not in _tiny_spec().to_dict()
    assert "chaos" not in _tiny_spec().to_dict()
