"""Tests for FleetSpec / NodeSpec / presets."""

import pytest

from repro.faults import FaultPlan
from repro.fleet import (
    FleetSpec,
    NodeSpec,
    PRESETS,
    WorkloadMix,
    load_fleet_spec,
    uniform_spec,
)


def test_nodespec_defaults():
    node = NodeSpec(node_id="n0")
    assert node.deployment == "taichi"
    assert node.traffic == "bursty"
    assert isinstance(node.workload, WorkloadMix)
    assert node.fault_plan() is None


def test_nodespec_rejects_unknown_deployment():
    with pytest.raises(ValueError, match="unknown deployment class"):
        NodeSpec(node_id="n0", deployment="bogus")


def test_nodespec_rejects_unknown_traffic():
    with pytest.raises(ValueError, match="unknown traffic profile"):
        NodeSpec(node_id="n0", traffic="tsunami")


def test_nodespec_rejects_unknown_fault_preset():
    with pytest.raises(ValueError, match="unknown fault preset"):
        NodeSpec(node_id="n0", faults="bogus_storm")


def test_nodespec_boost_and_degradation_need_taichi():
    with pytest.raises(ValueError, match="dp_boost requires"):
        NodeSpec(node_id="n0", deployment="static", dp_boost=2)
    with pytest.raises(ValueError, match="degradation requires"):
        NodeSpec(node_id="n0", deployment="static", degradation=True)
    # Fine on any Tai Chi-family class.
    NodeSpec(node_id="n0", deployment="taichi-vdp", dp_boost=1,
             degradation=True)


def test_nodespec_fault_preset_resolves():
    node = NodeSpec(node_id="n0", faults="probe_outage")
    plan = node.fault_plan()
    assert isinstance(plan, FaultPlan)
    assert plan.faults


def test_workload_mix_validation():
    with pytest.raises(ValueError, match="dp_utilization"):
        WorkloadMix(dp_utilization=1.5)
    with pytest.raises(ValueError, match="vm_batch_min"):
        WorkloadMix(vm_batch_min=9, vm_batch_max=4)


def test_fleet_rejects_duplicate_node_ids():
    with pytest.raises(ValueError, match="duplicate node_id"):
        FleetSpec(name="f", nodes=[NodeSpec(node_id="a"),
                                   NodeSpec(node_id="a")])


def test_fleet_rejects_empty():
    with pytest.raises(ValueError, match="at least one node"):
        FleetSpec(name="f", nodes=[])


def test_fleet_json_roundtrip(tmp_path):
    spec = FleetSpec.preset("rack")
    path = tmp_path / "rack.json"
    spec.to_json(path)
    loaded = FleetSpec.from_json(path)
    assert loaded.to_dict() == spec.to_dict()
    # Faults survive the trip as resolvable plans.
    faulted = [node for node in loaded.nodes if node.faults is not None]
    assert faulted and isinstance(faulted[0].fault_plan(), FaultPlan)


def test_fleet_dict_roundtrip_with_inline_fault_plan():
    plan = FaultPlan.preset("probe_outage")
    spec = FleetSpec(name="f", nodes=[
        NodeSpec(node_id="a", faults=plan.to_dict(), degradation=True),
    ])
    again = FleetSpec.from_dict(spec.to_dict())
    assert again.nodes[0].fault_plan().to_dict() == plan.to_dict()


def test_presets_shapes():
    rack = FleetSpec.preset("rack")
    assert len(rack) == 8
    classes = {node.deployment for node in rack.nodes}
    assert classes == {"taichi", "static"}
    pod = FleetSpec.preset("pod")
    assert len(pod) == 64
    assert sum(node.deployment == "static" for node in pod.nodes) == 16


def test_preset_unknown():
    with pytest.raises(ValueError, match="unknown fleet preset"):
        FleetSpec.preset("galaxy")


def test_subset_and_with_seed():
    rack = FleetSpec.preset("rack")
    small = rack.subset(3)
    assert [node.node_id for node in small.nodes] == \
        [node.node_id for node in rack.nodes[:3]]
    assert rack.with_seed(9).seed == 9
    assert rack.seed == 0  # original untouched
    with pytest.raises(ValueError, match="--nodes must be"):
        rack.subset(99)


def test_uniform_spec_same_node_ids_across_arms():
    a = uniform_spec("arm-a", "taichi", 4, dp_boost=2)
    b = uniform_spec("arm-b", "static", 4)
    assert [n.node_id for n in a.nodes] == [n.node_id for n in b.nodes]


def test_load_fleet_spec_dispatch(tmp_path):
    assert load_fleet_spec("rack").name == "rack"
    path = tmp_path / "custom.json"
    uniform_spec("custom", "taichi", 2).to_json(path)
    assert load_fleet_spec(str(path)).name == "custom"
    with pytest.raises(ValueError, match="preset"):
        load_fleet_spec("not-a-preset")
    assert set(PRESETS) == {"rack", "pod"}


def test_telemetry_fields_round_trip():
    spec = uniform_spec("t", "taichi", 2)
    assert spec.raw_samples is False          # sketches ship by default
    assert spec.telemetry_interval_ms == 10.0
    assert "raw_samples" not in spec.to_dict()
    assert "telemetry_interval_ms" not in spec.to_dict()

    tuned = FleetSpec(name="t", nodes=[NodeSpec(node_id="a")],
                      raw_samples=True, telemetry_interval_ms=2.5)
    data = tuned.to_dict()
    assert data["raw_samples"] is True
    assert data["telemetry_interval_ms"] == 2.5
    again = FleetSpec.from_dict(data)
    assert again.raw_samples is True
    assert again.telemetry_interval_ms == 2.5
    with pytest.raises(ValueError, match="telemetry_interval_ms"):
        FleetSpec(name="t", nodes=[NodeSpec(node_id="a")],
                  telemetry_interval_ms=0)


def test_spans_flag_round_trips_sparsely():
    from repro.fleet.spec import FleetSpec, NodeSpec

    spec = FleetSpec(name="s", nodes=[NodeSpec("n0")])
    assert "spans" not in spec.to_dict()          # default stays sparse
    spec.spans = True
    data = spec.to_dict()
    assert data["spans"] is True
    restored = FleetSpec.from_dict(data)
    assert restored.spans is True
