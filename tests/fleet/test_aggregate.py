"""Aggregation math: fleet blocks must equal stats over the pooled samples."""

from repro.fleet import aggregate_fleet, aggregate_nodes, worst_nodes
from repro.fleet.node import attainment_pct
from repro.metrics.stats import summarize


def _node(node_id, deployment, dp_samples, startups, dp_slo=100.0,
          startup_slo=250.0, overdue=0, violations=0):
    dp_within = sum(1 for v in dp_samples if v <= dp_slo)
    startup_within = sum(1 for v in startups if v <= startup_slo)
    total = len(startups) + overdue
    return {
        "node_id": node_id,
        "deployment": deployment,
        "traffic": "bursty",
        "dp_samples_us": list(dp_samples),
        "dp_latency_us": summarize(dp_samples, qs=(50, 90, 99, 99.9)),
        "dp_within_slo": dp_within,
        "startup_samples_ms": sorted(startups),
        "startup_ms": summarize(startups, qs=(50, 90, 99)),
        "startup_within_slo": startup_within,
        "startup_slo_total": total,
        "startup_slo_attainment_pct": attainment_pct(startup_within, total),
        "vms_started": len(startups),
        "vms_requested": len(startups) + overdue,
        "faults": {"injected": 0, "cleared": 0},
        "invariants": {"checked": True, "violations": violations,
                       "ok": violations == 0},
    }


def test_attainment_pct_vacuous_is_100():
    assert attainment_pct(0, 0) == 100.0
    assert attainment_pct(3, 4) == 75.0


def test_aggregate_equals_pooled_raw_samples():
    a = _node("a", "taichi", [10.0, 20.0, 300.0], [100.0, 200.0])
    b = _node("b", "static", [50.0, 400.0], [300.0], overdue=2)
    block = aggregate_nodes([a, b])
    pooled_dp = [10.0, 20.0, 300.0, 50.0, 400.0]
    assert block["dp_latency_us"] == summarize(pooled_dp, qs=(50, 90, 99, 99.9))
    # 3 of 5 pooled samples within the 100us SLO.
    assert block["dp_slo_attainment_pct"] == 100.0 * 3 / 5
    # startups: within = 2 (a) + 0 (b); total = 2 + (1 + 2 overdue) = 5.
    assert block["startup_slo_attainment_pct"] == 100.0 * 2 / 5
    assert block["startup_ms"] == summarize([100.0, 200.0, 300.0],
                                            qs=(50, 90, 99))
    assert block["vms_started"] == 3
    assert block["vms_requested"] == 5
    assert block["invariants_ok"]


def test_aggregate_is_not_mean_of_percentiles():
    # One sharp node + one awful node: the fleet p99 must track the awful
    # node's tail, not the average of the two p99s.
    sharp = _node("sharp", "taichi", [10.0] * 99 + [20.0], [])
    awful = _node("awful", "static", [10.0] * 50 + [5000.0] * 50, [])
    block = aggregate_nodes([sharp, awful])
    mean_of_p99s = (sharp["dp_latency_us"]["p99"]
                    + awful["dp_latency_us"]["p99"]) / 2
    assert block["dp_latency_us"]["p99"] > mean_of_p99s


def test_worst_nodes_and_classes():
    a = _node("a", "taichi", [10.0], [100.0])
    b = _node("b", "static", [900.0], [400.0])
    c = _node("c", "static", [20.0], [])  # no startups: not a candidate
    report = aggregate_fleet([a, b, c])
    assert report["worst_nodes"]["dp_p99"]["node_id"] == "b"
    assert report["worst_nodes"]["startup_attainment"]["node_id"] == "b"
    assert set(report["classes"]) == {"static", "taichi"}
    assert report["classes"]["static"]["nodes"] == 2
    assert report["fleet"]["nodes"] == 3


def test_worst_nodes_empty_inputs():
    empty = _node("e", "taichi", [], [])
    assert worst_nodes([empty]) == {}


def test_violations_roll_up():
    good = _node("g", "taichi", [1.0], [])
    bad = _node("x", "taichi", [1.0], [], violations=3)
    block = aggregate_nodes([good, bad])
    assert block["invariant_violations"] == 3
    assert not block["invariants_ok"]
