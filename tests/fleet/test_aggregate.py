"""Aggregation math: fleet blocks must equal stats over the pooled samples."""

from repro.fleet import aggregate_fleet, aggregate_nodes, worst_nodes
from repro.fleet.node import attainment_pct
from repro.metrics.stats import summarize


def _node(node_id, deployment, dp_samples, startups, dp_slo=100.0,
          startup_slo=250.0, overdue=0, violations=0):
    dp_within = sum(1 for v in dp_samples if v <= dp_slo)
    startup_within = sum(1 for v in startups if v <= startup_slo)
    total = len(startups) + overdue
    return {
        "node_id": node_id,
        "deployment": deployment,
        "traffic": "bursty",
        "dp_samples_us": list(dp_samples),
        "dp_latency_us": summarize(dp_samples, qs=(50, 90, 99, 99.9)),
        "dp_within_slo": dp_within,
        "startup_samples_ms": sorted(startups),
        "startup_ms": summarize(startups, qs=(50, 90, 99)),
        "startup_within_slo": startup_within,
        "startup_slo_total": total,
        "startup_slo_attainment_pct": attainment_pct(startup_within, total),
        "vms_started": len(startups),
        "vms_requested": len(startups) + overdue,
        "faults": {"injected": 0, "cleared": 0},
        "invariants": {"checked": True, "violations": violations,
                       "ok": violations == 0},
    }


def test_attainment_pct_vacuous_is_100():
    assert attainment_pct(0, 0) == 100.0
    assert attainment_pct(3, 4) == 75.0


def test_aggregate_equals_pooled_raw_samples():
    a = _node("a", "taichi", [10.0, 20.0, 300.0], [100.0, 200.0])
    b = _node("b", "static", [50.0, 400.0], [300.0], overdue=2)
    block = aggregate_nodes([a, b])
    pooled_dp = [10.0, 20.0, 300.0, 50.0, 400.0]
    assert block["dp_latency_us"] == summarize(pooled_dp, qs=(50, 90, 99, 99.9))
    # 3 of 5 pooled samples within the 100us SLO.
    assert block["dp_slo_attainment_pct"] == 100.0 * 3 / 5
    # startups: within = 2 (a) + 0 (b); total = 2 + (1 + 2 overdue) = 5.
    assert block["startup_slo_attainment_pct"] == 100.0 * 2 / 5
    assert block["startup_ms"] == summarize([100.0, 200.0, 300.0],
                                            qs=(50, 90, 99))
    assert block["vms_started"] == 3
    assert block["vms_requested"] == 5
    assert block["invariants_ok"]


def test_aggregate_is_not_mean_of_percentiles():
    # One sharp node + one awful node: the fleet p99 must track the awful
    # node's tail, not the average of the two p99s.
    sharp = _node("sharp", "taichi", [10.0] * 99 + [20.0], [])
    awful = _node("awful", "static", [10.0] * 50 + [5000.0] * 50, [])
    block = aggregate_nodes([sharp, awful])
    mean_of_p99s = (sharp["dp_latency_us"]["p99"]
                    + awful["dp_latency_us"]["p99"]) / 2
    assert block["dp_latency_us"]["p99"] > mean_of_p99s


def test_worst_nodes_and_classes():
    a = _node("a", "taichi", [10.0], [100.0])
    b = _node("b", "static", [900.0], [400.0])
    c = _node("c", "static", [20.0], [])  # no startups: not a candidate
    report = aggregate_fleet([a, b, c])
    assert report["worst_nodes"]["dp_p99"]["node_id"] == "b"
    assert report["worst_nodes"]["startup_attainment"]["node_id"] == "b"
    assert set(report["classes"]) == {"static", "taichi"}
    assert report["classes"]["static"]["nodes"] == 2
    assert report["fleet"]["nodes"] == 3


def test_worst_nodes_empty_inputs():
    empty = _node("e", "taichi", [], [])
    assert worst_nodes([empty]) == {}


def test_violations_roll_up():
    good = _node("g", "taichi", [1.0], [])
    bad = _node("x", "taichi", [1.0], [], violations=3)
    block = aggregate_nodes([good, bad])
    assert block["invariant_violations"] == 3
    assert not block["invariants_ok"]


# -- sketch aggregation path ---------------------------------------------------


def _sketched(node, alpha=0.01):
    """Attach the sketches a real sketch-shipping node carries."""
    from repro.metrics.sketch import QuantileSketch

    node = dict(node)
    node["dp_sketch"] = QuantileSketch(alpha).extend(
        node["dp_samples_us"]).to_dict()
    node["dp_slo_total"] = len(node["dp_samples_us"])
    node["startup_sketch"] = QuantileSketch(alpha).extend(
        sorted(node["startup_samples_ms"])).to_dict()
    del node["dp_samples_us"]
    del node["startup_samples_ms"]
    return node


def test_sketch_path_matches_raw_within_alpha():
    import numpy as np

    rng = np.random.default_rng(9)
    raw_nodes = [
        _node("a", "taichi", list(rng.exponential(80.0, 400)),
              list(rng.normal(200.0, 20.0, 50).clip(min=1.0))),
        _node("b", "static", list(rng.exponential(400.0, 300)),
              list(rng.normal(350.0, 40.0, 30).clip(min=1.0))),
    ]
    raw_block = aggregate_nodes(raw_nodes)
    sketch_block = aggregate_nodes([_sketched(n) for n in raw_nodes])

    assert "dp_sketch" in sketch_block and "startup_sketch" in sketch_block
    assert sketch_block["dp_latency_us"]["count"] == \
        raw_block["dp_latency_us"]["count"]
    # Attainment pools exact counts on both paths.
    assert sketch_block["dp_slo_attainment_pct"] == \
        raw_block["dp_slo_attainment_pct"]
    assert sketch_block["startup_slo_attainment_pct"] == \
        raw_block["startup_slo_attainment_pct"]
    # Percentiles agree within the sketch's relative-error bound (a
    # little slack for the raw path's linear interpolation).
    for key, qs in (("dp_latency_us", ("p50", "p99")),
                    ("startup_ms", ("p50", "p99"))):
        for q in qs:
            exact = raw_block[key][q]
            assert abs(sketch_block[key][q] - exact) <= 0.03 * exact


def test_sketch_merge_order_is_spec_order():
    import json

    from repro.metrics.sketch import QuantileSketch, merge_sketch_dicts

    nodes = [_sketched(_node(f"n{i}", "taichi",
                             [10.0 * (i + 1), 250.0 / (i + 1)], []))
             for i in range(3)]
    block = aggregate_nodes(nodes)
    expected = merge_sketch_dicts([n["dp_sketch"] for n in nodes])
    assert json.dumps(block["dp_sketch"], sort_keys=True) == \
        json.dumps(expected.to_dict(), sort_keys=True)


def test_mixed_nodes_fall_back_to_raw_path():
    # One hand-built summary without sketches forces the exact raw pool.
    with_sketch = _sketched(_node("a", "taichi", [10.0, 20.0], [100.0]))
    without = _node("b", "static", [50.0], [300.0])
    block = aggregate_nodes([with_sketch, without])
    assert "dp_sketch" not in block
    # The raw pool only sees node b's samples (node a shipped none), so
    # the count reflects the samples actually present.
    assert block["dp_latency_us"]["count"] == 1


def test_zero_sample_class_reports_count_zero():
    idle = _sketched(_node("idle", "taichi", [], []))
    block = aggregate_nodes([idle])
    assert block["dp_latency_us"] == {"count": 0}
    assert block["startup_ms"] == {"count": 0}
    assert block["dp_slo_attainment_pct"] == 100.0   # vacuous
    assert block["startup_slo_attainment_pct"] == 100.0


def test_failures_produce_degraded_block():
    a = _node("a", "taichi", [10.0, 20.0], [100.0])
    failure = {"node_id": "b", "kind": "exception", "attempts": 2,
               "error": "ValueError('x')", "traceback": []}
    out = aggregate_fleet([a], failures=[failure], expected_nodes=2)
    assert out["degraded"] is True
    assert out["coverage"] == {"expected": 2, "completed": 1,
                               "fraction": 0.5}
    assert out["failed_nodes"] == [failure]
    # SLOs are scored over the survivors only.
    assert out["fleet"]["nodes"] == 1


def test_failed_nodes_sorted_by_node_id():
    a = _node("a", "taichi", [10.0], [100.0])
    failures = [
        {"node_id": "z", "kind": "crash", "attempts": 1, "error": "e",
         "traceback": []},
        {"node_id": "b", "kind": "exception", "attempts": 3, "error": "e",
         "traceback": []},
    ]
    out = aggregate_fleet([a], failures=failures, expected_nodes=3)
    assert [f["node_id"] for f in out["failed_nodes"]] == ["b", "z"]
    assert out["coverage"]["fraction"] == 1 / 3


def test_no_failures_no_degraded_keys():
    a = _node("a", "taichi", [10.0], [100.0])
    out = aggregate_fleet([a], failures=[], expected_nodes=1)
    assert "degraded" not in out
    assert "coverage" not in out
    assert "failed_nodes" not in out
