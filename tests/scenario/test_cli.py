"""CLI surface of the scenario layer: run --arm and the soak subcommand."""

import json
import os

import pytest

from repro.experiments.cli import main
from repro.scenario import Scenario
from repro.scenario.session import current_arms


def test_run_with_arm_override(capsys):
    assert main(["run", "fig12", "--scale", "0.05",
                 "--arm", "baseline,taichi"]) == 0
    out = capsys.readouterr().out
    assert "arm override: baseline, taichi" in out
    assert "baseline" in out
    assert "taichi" in out
    # fig12's default third/fourth arms were overridden away: taichi-vdp
    # survives only in the static paper-reference block, not as a
    # measured row or derived metric.
    assert out.count("taichi-vdp") == 1
    # The override does not leak past the CLI invocation.
    assert current_arms() is None


def test_run_rejects_unknown_arm():
    with pytest.raises(ValueError, match="unknown arm"):
        main(["run", "fig12", "--scale", "0.05", "--arm", "warpdrive"])


def test_soak_with_arm_name(capsys):
    assert main(["soak", "taichi", "--scale", "0.1", "--duration-ms", "300",
                 "--drain-ms", "100"]) == 0
    out = capsys.readouterr().out
    assert "scenario: arm=taichi" in out
    assert "dp probes:" in out
    assert "vm startups:" in out


def test_soak_from_scenario_json(tmp_path, capsys):
    scenario_path = os.path.join(tmp_path, "scenario.json")
    Scenario(arm="baseline", traffic="steady").to_json(scenario_path)
    summary_path = os.path.join(tmp_path, "summary.json")
    assert main(["soak", scenario_path, "--scale", "0.1",
                 "--duration-ms", "300", "--drain-ms", "100",
                 "--json", summary_path]) == 0
    out = capsys.readouterr().out
    assert "scenario: arm=baseline traffic=steady" in out
    with open(summary_path) as handle:
        summary = json.load(handle)
    assert summary["deployment"] == "baseline"
    assert summary["dp_sample_count"] > 0


def test_soak_faulted_scenario_reports_faults(tmp_path, capsys):
    scenario_path = os.path.join(tmp_path, "faulted.json")
    Scenario(arm="taichi", faults="probe_outage",
             degradation=True).to_json(scenario_path)
    assert main(["soak", scenario_path, "--duration-ms", "40",
                 "--drain-ms", "15"]) == 0
    out = capsys.readouterr().out
    assert "faults=probe_outage" in out
    assert "injected" in out
