"""The arm registry: every arm builds, knobs validate, errors help."""

import pytest

from repro.baselines import DEPLOYMENTS, build_deployment
from repro.core import TaiChiConfig
from repro.scenario import ARMS, arm_names, build, build_arm, get_arm, is_arm


def test_every_registered_arm_builds_with_defaults():
    for name, arm in ARMS.items():
        deployment = build_arm(name)
        assert isinstance(deployment, arm.cls), name
        assert deployment.services, name


def test_registry_covers_all_deployment_classes():
    assert {arm.cls for arm in ARMS.values()} == set(DEPLOYMENTS.values())


def test_baseline_alias_resolves_to_static():
    assert get_arm("baseline") is get_arm("static")
    assert is_arm("baseline")
    deployment = build("baseline")
    assert isinstance(deployment, DEPLOYMENTS["static"])


def test_arm_names_include_aliases():
    names = arm_names()
    assert "baseline" in names
    assert "static" in names
    assert arm_names(include_aliases=False) == sorted(ARMS)


def test_unknown_arm_lists_choices():
    with pytest.raises(ValueError, match="unknown arm 'warp'") as exc:
        build_arm("warp")
    assert "taichi" in str(exc.value)


def test_unknown_knob_reports_arm_and_accepted_set():
    with pytest.raises(ValueError, match="arm 'static' does not accept") as exc:
        build_arm("static", taichi_config=TaiChiConfig())
    message = str(exc.value)
    assert "taichi_config" in message
    assert "accepted knobs" in message
    assert "dp_kind" in message


def test_build_deployment_goes_through_the_registry():
    deployment = build_deployment("taichi")
    assert isinstance(deployment, DEPLOYMENTS["taichi"])
    with pytest.raises(ValueError, match="does not accept knob"):
        build_deployment("naive", guest_tax=0.5)


def test_dp_boost_repartitions_after_warmup():
    plain = build("taichi")
    boosted = build("taichi", dp_boost=2)
    assert len(boosted.services) == len(plain.services) + 2
    # The extra services run on CPUs harvested from the CP partition.
    moved = ({service.cpu_id for service in boosted.services}
             - {service.cpu_id for service in plain.services})
    assert moved <= set(plain.board.cp_cpu_ids)


def test_dp_boost_rejected_on_non_taichi_arms():
    with pytest.raises(ValueError, match="does not accept knob"):
        build("baseline", dp_boost=2)


def test_degradation_knob_installs_the_layer():
    deployment = build("taichi", degradation=True)
    assert deployment.taichi.degradation is not None
    assert build("taichi").taichi.degradation is None


def test_dict_knobs_are_coerced_to_dataclasses():
    deployment = build("taichi", taichi_config={"adaptive_threshold": False})
    assert deployment.taichi.config.adaptive_threshold is False
    deployment = build(
        "baseline",
        board_config={"accelerator": {"preprocess_ns": 2_700,
                                      "transfer_ns": 500}})
    assert deployment.board.config.accelerator.preprocess_ns == 2_700
