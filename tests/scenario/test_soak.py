"""The shared soak driver: summary shape and determinism."""

from repro.scenario import Scenario, arm_override, arms_under_test, run_soak
from repro.scenario.session import current_arms, parse_arm_list
from repro.sim.units import MILLISECONDS

import pytest


def _small_soak(**kwargs):
    scenario = Scenario(**kwargs)
    return run_soak(scenario, seed=11, duration_ns=30 * MILLISECONDS,
                    drain_ns=15 * MILLISECONDS, label="soak-test")


def test_summary_shape():
    summary = _small_soak(arm="taichi")
    assert summary["node_id"] == "soak-test"
    assert summary["deployment"] == "taichi"
    assert summary["dp_sample_count"] > 0
    assert set(summary["dp_latency_us"]) >= {"count", "p50", "p99", "p99.9"}
    assert 0.0 <= summary["dp_slo_attainment_pct"] <= 100.0
    assert 0.0 <= summary["startup_slo_attainment_pct"] <= 100.0
    assert summary["faults"] == {"injected": 0, "cleared": 0}


def test_soak_is_deterministic():
    assert _small_soak(arm="taichi") == _small_soak(arm="taichi")


def test_faulted_soak_reports_injections():
    # The probe_outage preset fires at 50 ms; compress it into the 30 ms
    # soak window the same way the fleet runner scales plans with --scale.
    scenario = Scenario(arm="taichi", faults="probe_outage",
                        degradation=True)
    summary = run_soak(scenario, seed=11, duration_ns=30 * MILLISECONDS,
                       drain_ns=15 * MILLISECONDS, fault_scale=0.4,
                       label="soak-test")
    assert summary["faults"]["injected"] > 0


def test_every_traffic_profile_runs():
    for traffic in ("steady", "bursty", "spiky"):
        summary = _small_soak(arm="baseline", traffic=traffic)
        assert summary["traffic"] == traffic


# -- The --arm override plumbing ----------------------------------------------------

def test_arms_under_test_defaults_without_override():
    assert current_arms() is None
    assert arms_under_test(("baseline", "taichi")) == ("baseline", "taichi")


def test_arm_override_scopes_and_restores():
    with arm_override(["taichi-vdp"]):
        assert arms_under_test(("baseline", "taichi")) == ("taichi-vdp",)
        with arm_override(None):  # None clears the override for its scope
            assert current_arms() is None
        assert current_arms() == ("taichi-vdp",)
    assert current_arms() is None


def test_arm_override_validates_names():
    with pytest.raises(ValueError, match="unknown arm"):
        with arm_override(["baseline", "nope"]):
            pass


def test_parse_arm_list():
    assert parse_arm_list("baseline, taichi") == ("baseline", "taichi")
    with pytest.raises(ValueError, match="unknown arm"):
        parse_arm_list("baseline,bogus")
    with pytest.raises(ValueError, match="at least one"):
        parse_arm_list(" , ")


def test_spans_off_summary_has_no_span_keys():
    summary = run_soak(Scenario(arm="taichi"), seed=0,
                       duration_ns=40 * MILLISECONDS,
                       drain_ns=20 * MILLISECONDS)
    assert "exemplars" not in summary
    assert "spans" not in summary


def test_spans_on_summary_carries_bounded_exemplars():
    summary = run_soak(Scenario(arm="taichi"), seed=0,
                       duration_ns=80 * MILLISECONDS,
                       drain_ns=40 * MILLISECONDS, spans=True,
                       exemplar_k=2)
    assert summary["spans"]["completed"] > 0
    exemplars = summary["exemplars"]
    assert "dp" in exemplars
    for channel, records in exemplars.items():
        assert 1 <= len(records) <= 2          # bounded at K
        for record in records:
            assert sum(hi - lo for _n, lo, hi in record["parts"]) == \
                record["duration_ns"]
            assert record["dominant"] in record["segments"]


def test_alert_raised_references_live_exemplars():
    from repro.obs import observe

    scenario = Scenario(arm="taichi", alerts=[
        {"name": "dp_touchy", "signal": "dp_rx_wait_us_p99",
         "threshold": 0.000001, "hold": 1},
    ])
    with observe(trace=True) as session:
        summary = run_soak(scenario, seed=0,
                           duration_ns=80 * MILLISECONDS,
                           drain_ns=40 * MILLISECONDS, label="alert-spans",
                           spans=True)
    assert summary["telemetry"]["alerts"]["raised"] >= 1
    raised = [event for _label, tracer in session.streams
              for event in tracer if event.kind == "alert.raised"]
    assert raised
    exemplar_ids = raised[0].detail["exemplars"]
    assert exemplar_ids
    assert all(request.startswith("pkt-") for request in exemplar_ids)
