"""Scenario validation, JSON round-trip, and construction."""

import os

import pytest

from repro.baselines import DEPLOYMENTS
from repro.core import TaiChiConfig
from repro.faults import FaultPlan
from repro.scenario import Scenario, WorkloadMix, load_scenario


def test_defaults_are_a_valid_taichi_scenario():
    scenario = Scenario()
    assert scenario.arm == "taichi"
    assert scenario.traffic == "bursty"
    deployment = scenario.build(seed=3)
    assert isinstance(deployment, DEPLOYMENTS["taichi"])
    assert deployment.fault_injector is None


def test_unknown_arm_message_matches_fleet_contract():
    with pytest.raises(ValueError, match="unknown deployment class 'vapor'"):
        Scenario(arm="vapor")


def test_unknown_traffic_profile_rejected():
    with pytest.raises(ValueError, match="unknown traffic profile 'chaos'"):
        Scenario(traffic="chaos")


def test_unknown_fault_preset_rejected():
    with pytest.raises(ValueError, match="unknown fault preset 'meteor'"):
        Scenario(faults="meteor")


def test_post_knobs_require_taichi_family():
    with pytest.raises(ValueError,
                       match="dp_boost requires a Tai Chi deployment class"):
        Scenario(arm="baseline", dp_boost=1)
    with pytest.raises(ValueError,
                       match="degradation requires a Tai Chi deployment"):
        Scenario(arm="type2", degradation=True)


def test_unknown_knob_rejected_at_spec_time():
    with pytest.raises(ValueError, match="does not accept knob"):
        Scenario(arm="naive", knobs={"taichi_config": {}})


def test_workload_dict_is_coerced():
    scenario = Scenario(workload={"dp_utilization": 0.5})
    assert isinstance(scenario.workload, WorkloadMix)
    assert scenario.workload.dp_utilization == 0.5


def test_json_round_trip_with_knobs_faults_and_boost(tmp_path):
    scenario = Scenario(
        arm="taichi", traffic="spiky",
        workload=WorkloadMix(dp_utilization=0.4, vm_batch_max=12),
        knobs={"taichi_config": TaiChiConfig(adaptive_threshold=False),
               "dp_kind": "storage"},
        dp_boost=1, degradation=True, faults="storm")
    path = os.path.join(tmp_path, "scenario.json")
    scenario.to_json(path)
    revived = Scenario.from_json(path)
    assert revived.to_dict() == scenario.to_dict()
    assert revived.traffic == "spiky"
    assert revived.dp_boost == 1
    assert revived.degradation is True
    # Dict knobs revive into real dataclasses at build time.
    deployment = revived.build(seed=1)
    assert deployment.taichi.config.adaptive_threshold is False
    assert deployment.dp_kind == "storage"
    assert deployment.taichi.degradation is not None


def test_build_arms_fault_injector_when_faults_present():
    scenario = Scenario(arm="taichi", faults="probe_outage")
    deployment = scenario.build(seed=2)
    assert deployment.fault_injector is not None
    plan = scenario.fault_plan(scale=0.5)
    assert isinstance(plan, FaultPlan)
    assert plan.faults


def test_fault_plan_none_without_faults():
    assert Scenario().fault_plan() is None


def test_load_scenario_resolves_all_spellings(tmp_path):
    assert load_scenario("baseline").arm == "baseline"
    assert load_scenario({"arm": "naive"}).arm == "naive"
    scenario = Scenario(arm="taichi-vdp")
    assert load_scenario(scenario) is scenario
    path = os.path.join(tmp_path, "s.json")
    scenario.to_json(path)
    assert load_scenario(path).arm == "taichi-vdp"
    with pytest.raises(ValueError, match="expected an arm name"):
        load_scenario("no-such-thing")
