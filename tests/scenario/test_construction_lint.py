"""Lint: all deployment construction flows through the arm registry.

The scenario layer is only a single source of truth if nothing sidesteps
it.  Outside the registry itself (``repro/scenario/``) and the class
definitions (``repro/baselines/``), no module under ``src/repro`` may
call a ``*Deployment(...)`` constructor directly — experiments, fleet,
and any future driver must go through ``repro.scenario.build``.
"""

import os
import re

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.normpath(os.path.join(_HERE, "..", "..", "src", "repro"))

#: Directories allowed to name deployment classes in call position.
_ALLOWED = ("scenario", "baselines")

_DIRECT_CALL = re.compile(r"\b[A-Za-z_]*Deployment\(")

#: Directories allowed to construct a TenancyManager directly — everyone
#: else reaches multi-tenant behavior through ``Scenario.tenants``.
_TENANCY_ALLOWED = ("tenancy",)

_TENANCY_CALL = re.compile(r"\bTenancyManager\(")


def _scan(pattern, allowed):
    offenders = []
    for root, _dirs, files in os.walk(_SRC):
        rel = os.path.relpath(root, _SRC)
        if rel.split(os.sep)[0] in allowed:
            continue
        for name in files:
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            with open(path) as handle:
                for lineno, line in enumerate(handle, 1):
                    if pattern.search(line):
                        offenders.append(
                            f"{os.path.relpath(path, _SRC)}:{lineno}: "
                            f"{line.strip()}")
    return offenders


def test_no_direct_deployment_construction_outside_the_registry():
    offenders = _scan(_DIRECT_CALL, _ALLOWED)
    assert not offenders, (
        "direct deployment construction outside repro/scenario and "
        "repro/baselines — use repro.scenario.build():\n"
        + "\n".join(offenders))


def test_no_direct_tenancy_manager_construction_outside_tenancy():
    offenders = _scan(_TENANCY_CALL, _TENANCY_ALLOWED)
    assert not offenders, (
        "direct TenancyManager construction outside repro/tenancy — "
        "declare Scenario.tenants and let the soak driver install it:\n"
        + "\n".join(offenders))
