"""Tests for the hardware workload probe state machine."""

from repro.hw import CpuIoState, HardwareWorkloadProbe
from repro.sim import Environment


def test_default_state_is_p():
    probe = HardwareWorkloadProbe(Environment())
    assert probe.get_state(0) is CpuIoState.P_STATE


def test_state_transitions():
    probe = HardwareWorkloadProbe(Environment())
    probe.set_state(0, CpuIoState.V_STATE)
    assert probe.get_state(0) is CpuIoState.V_STATE
    probe.set_state(0, CpuIoState.P_STATE)
    assert probe.get_state(0) is CpuIoState.P_STATE


def test_disabled_probe_never_fires():
    env = Environment()
    probe = HardwareWorkloadProbe(env, enabled=False)
    fired = []
    probe.set_irq_handler(fired.append)
    probe.set_state(0, CpuIoState.V_STATE)
    assert probe.on_packet(0) is False
    env.run()
    assert not fired


def test_no_handler_no_fire():
    env = Environment()
    probe = HardwareWorkloadProbe(env)
    probe.set_state(0, CpuIoState.V_STATE)
    assert probe.on_packet(0) is False


def test_irq_delivered_after_latency():
    env = Environment()
    probe = HardwareWorkloadProbe(env, irq_latency_ns=300)
    at = []
    probe.set_irq_handler(lambda cpu: at.append(env.now))
    probe.set_state(0, CpuIoState.V_STATE)
    assert probe.on_packet(0) is True
    env.run()
    assert at == [300]


def test_counts():
    env = Environment()
    probe = HardwareWorkloadProbe(env)
    probe.set_irq_handler(lambda cpu: None)
    probe.set_state(0, CpuIoState.V_STATE)
    probe.on_packet(0)
    probe.on_packet(1)  # P-state: masked
    assert probe.packets_inspected == 2
    assert probe.irqs_fired == 1
