"""Tests for the accelerator pipeline and its probe hooks."""

import pytest

from repro.hw import Accelerator, AcceleratorParams, CpuIoState, HardwareWorkloadProbe, IORequest, PacketKind
from repro.sim import Environment, Store


def make(probe=None, params=None):
    env = Environment()
    accel = Accelerator(env, params=params, probe=probe)
    store = Store(env)
    accel.attach_queue("q0", store, dst_cpu_id=0)
    return env, accel, store


def request(queue_id="q0", service_ns=1000):
    return IORequest(PacketKind.NET_TX, 64, queue_id, service_ns=service_ns)


def test_packet_deposited_after_window():
    env, accel, store = make()
    req = request()
    accel.submit(req)
    env.run()
    assert len(store) == 1
    assert req.t_rx_ready == accel.window_ns
    assert req.t_submit == 0
    assert req.t_accel_start == 0


def test_unknown_queue_rejected():
    env, accel, store = make()
    with pytest.raises(KeyError):
        accel.submit(request(queue_id="missing"))


def test_probe_inspected_before_preprocessing():
    probe_env = Environment()
    probe = HardwareWorkloadProbe(probe_env)
    env = probe_env
    accel = Accelerator(env, probe=probe)
    store = Store(env)
    accel.attach_queue("q0", store, dst_cpu_id=3)
    accel.submit(request())
    env.run()
    # Inspected at submit and again at deposit.
    assert probe.packets_inspected == 2


def test_probe_fires_irq_for_v_state_target():
    env = Environment()
    probe = HardwareWorkloadProbe(env)
    fired = []
    probe.set_irq_handler(fired.append)
    probe.set_state(3, CpuIoState.V_STATE)
    accel = Accelerator(env, probe=probe)
    store = Store(env)
    accel.attach_queue("q0", store, dst_cpu_id=3)
    accel.submit(request())
    env.run()
    assert fired and fired[0] == 3
    assert probe.irqs_fired >= 1


def test_probe_masked_in_p_state():
    env = Environment()
    probe = HardwareWorkloadProbe(env)
    fired = []
    probe.set_irq_handler(fired.append)
    probe.set_state(3, CpuIoState.P_STATE)
    accel = Accelerator(env, probe=probe)
    store = Store(env)
    accel.attach_queue("q0", store, dst_cpu_id=3)
    accel.submit(request())
    env.run()
    assert not fired


def test_pipeline_serialization_under_burst():
    params = AcceleratorParams(pipelines=1)
    env, accel, store = make(params=params)
    first, second = request(), request()
    accel.submit(first)
    accel.submit(second)
    env.run()
    # With one engine the second packet starts preprocessing after the first.
    assert second.t_accel_start == first.t_accel_start + params.preprocess_ns


def test_retarget_queue():
    env, accel, store = make()
    accel.retarget_queue("q0", dst_cpu_id=7)
    assert accel.queue_owner("q0") == 7


def test_window_matches_figure6():
    env, accel, store = make()
    assert accel.window_ns == 3_200  # 2.7 us + 0.5 us
