"""Tests for SmartNIC board assembly."""

import pytest

from repro.hw import BoardConfig, SmartNIC
from repro.sim import Environment


def test_default_board_matches_table4():
    board = SmartNIC(Environment())
    assert board.config.total_cpus == 12
    assert len(board.dp_cpu_ids) == 8
    assert len(board.cp_cpu_ids) == 4
    assert board.config.nic_bandwidth_gbps == 200.0


def test_partition_ids_disjoint_and_complete():
    board = SmartNIC(Environment())
    assert set(board.dp_cpu_ids) | set(board.cp_cpu_ids) == set(range(12))
    assert not set(board.dp_cpu_ids) & set(board.cp_cpu_ids)


def test_inconsistent_partition_rejected():
    with pytest.raises(ValueError):
        BoardConfig(total_cpus=12, dp_cpus=8, cp_cpus=5)


def test_custom_partition():
    config = BoardConfig(total_cpus=12, dp_cpus=10, cp_cpus=2)
    board = SmartNIC(Environment(), config=config)
    assert len(board.dp_cpu_ids) == 10


def test_make_rx_queue_registers_with_accelerator():
    board = SmartNIC(Environment())
    store = board.make_rx_queue("q", dst_cpu_id=0)
    assert board.accelerator.queue_store("q") is store
    assert board.accelerator.queue_owner("q") == 0


def test_all_cpus_online():
    board = SmartNIC(Environment())
    assert all(cpu.online for cpu in board.kernel.cpus.values())


def test_packet_kind_and_request_latency_accessors():
    from repro.hw import IORequest, PacketKind

    req = IORequest(PacketKind.NET_TX, 64, "q", service_ns=100)
    assert req.total_latency_ns is None
    req.t_submit = 10
    req.complete(110)
    assert req.total_latency_ns == 100
