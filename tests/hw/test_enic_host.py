"""Tests for eNIC devices and the host-node VM lifecycle."""

import pytest

from repro.baselines import StaticPartitionDeployment, TaiChiDeployment
from repro.hw import DeviceState, ENic, HostNode, PacketKind, VMSpec
from repro.sim import MILLISECONDS, SECONDS


def make_deployment():
    deployment = StaticPartitionDeployment(seed=20)
    deployment.warmup()
    return deployment


def test_enic_attach_creates_queues_on_service_cpu():
    deployment = make_deployment()
    service = deployment.services[0]
    device = ENic(deployment.board, vm_id=1, kind="net", n_queues=2)
    queue_ids = device.attach(service)
    assert device.state is DeviceState.READY
    assert len(queue_ids) == 2
    for queue_id in queue_ids:
        assert deployment.board.accelerator.queue_owner(queue_id) \
            == service.cpu_id
        assert queue_id in service.queue_ids


def test_enic_rejects_unknown_kind():
    deployment = make_deployment()
    with pytest.raises(ValueError):
        ENic(deployment.board, vm_id=1, kind="gpu")


def test_enic_submit_requires_ready_state():
    deployment = make_deployment()
    device = ENic(deployment.board, vm_id=1)
    with pytest.raises(RuntimeError):
        device.submit(64, service_ns=1_000)


def test_enic_traffic_flows_through_dp():
    deployment = make_deployment()
    device = ENic(deployment.board, vm_id=1, kind="net")
    device.attach(deployment.services[0])
    done = deployment.env.event()
    device.submit(256, service_ns=1_500, done=done)
    deployment.run(deployment.env.now + 5 * MILLISECONDS)
    assert done.triggered
    assert done.value.total_latency_ns > 0


def test_blk_device_defaults_to_storage_submit():
    deployment = StaticPartitionDeployment(seed=20, dp_kind="storage")
    deployment.warmup()
    device = ENic(deployment.board, vm_id=1, kind="blk")
    device.attach(deployment.services[0])
    done = deployment.env.event()
    request = device.submit(4096, service_ns=2_000, done=done)
    assert request.kind is PacketKind.STORAGE_SUBMIT
    deployment.run(deployment.env.now + 10 * MILLISECONDS)
    assert done.triggered


def test_host_create_vm_materializes_devices_during_cp_work():
    deployment = make_deployment()
    host = HostNode(deployment)
    vm = host.create_vm(VMSpec(n_vnics=1, n_vblks=4))
    assert not vm.running
    deployment.env.run(until=vm.request.done)
    assert vm.running
    assert len(vm.devices) == 5
    assert len(vm.vnics) == 1 and len(vm.vblks) == 4
    assert all(device.state is DeviceState.READY for device in vm.devices)
    assert vm.startup_time_ns() > 0


def test_vm_traffic_through_freshly_created_vnic():
    """The full Figure 1c loop: CP creates the path, DP then serves it."""
    deployment = TaiChiDeployment(seed=20)
    deployment.warmup()
    host = HostNode(deployment)
    vm = host.create_vm()
    deployment.env.run(until=vm.request.done)
    vnic = vm.vnics[0]
    done = deployment.env.event()
    vnic.submit(512, service_ns=1_500, done=done)
    deployment.run(deployment.env.now + 5 * MILLISECONDS)
    assert done.triggered


def test_devices_spread_across_services():
    deployment = make_deployment()
    host = HostNode(deployment)
    vm = host.create_vm(VMSpec(n_vnics=4, n_vblks=4))
    deployment.env.run(until=vm.request.done)
    owners = {device.service.cpu_id for device in vm.devices}
    assert len(owners) > 1


def test_destroy_vm_detaches_devices():
    deployment = make_deployment()
    host = HostNode(deployment)
    vm = host.create_vm()
    deployment.env.run(until=vm.request.done)
    host.destroy_vm(vm)
    assert vm not in host.vms
    assert all(device.state is DeviceState.REMOVED for device in vm.devices)
