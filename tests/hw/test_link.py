"""Tests for latency/bandwidth links."""

import pytest

from repro.hw import Link
from repro.sim import Environment


def test_transfer_time_includes_serialization_and_latency():
    env = Environment()
    link = Link(env, "l", bandwidth_gbps=8.0, latency_ns=1_000)
    # 1000 bytes at 8 Gb/s = 1000 ns serialization.
    deliver_at = link.transfer(1000)
    assert deliver_at == 1000 + 1000


def test_back_to_back_transfers_serialize():
    env = Environment()
    link = Link(env, "l", bandwidth_gbps=8.0, latency_ns=0)
    first = link.transfer(1000)
    second = link.transfer(1000)
    assert second == first + 1000


def test_delivery_callback_fires_at_delivery_time():
    env = Environment()
    link = Link(env, "l", bandwidth_gbps=8.0, latency_ns=500)
    seen = []
    link.transfer(1000, on_delivered=lambda: seen.append(env.now))
    env.run()
    assert seen == [1500]


def test_zero_bandwidth_rejected():
    with pytest.raises(ValueError):
        Link(Environment(), "l", bandwidth_gbps=0, latency_ns=0)


def test_statistics():
    env = Environment()
    link = Link(env, "l", bandwidth_gbps=8.0, latency_ns=0)
    link.transfer(500)
    link.transfer(500)
    assert link.transfers == 2
    assert link.bytes_moved == 1000


def test_jitter_adds_nonnegative_delay():
    import numpy as np

    env = Environment()
    link = Link(env, "l", bandwidth_gbps=8.0, latency_ns=100,
                jitter_rng=np.random.default_rng(0), jitter_ns=50)
    deliveries = [link.transfer(8) for _ in range(20)]
    base = 8 * 8 / 8.0  # serialization
    assert all(d >= base + 100 for d in deliveries)
