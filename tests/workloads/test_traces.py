"""Calibration tests for the synthetic production traces."""

from repro.sim import MILLISECONDS
from repro.workloads import (
    generate_dp_utilization_trace,
    generate_nonpreemptible_census,
)


def test_utilization_cdf_calibrated_to_figure3():
    cdf = generate_dp_utilization_trace(n_samples=200_000, seed=0)
    fraction = cdf.fraction_below(0.325)
    assert 0.994 <= fraction <= 0.999  # paper: 99.68%


def test_utilization_values_in_unit_range():
    cdf = generate_dp_utilization_trace(n_samples=10_000, seed=1)
    assert all(0.0 <= value <= 1.0 for value in cdf.samples)


def test_utilization_has_burst_tail():
    cdf = generate_dp_utilization_trace(n_samples=200_000, seed=2)
    assert max(cdf.samples) > 0.5  # peak episodes exist


def test_census_band_fraction_matches_figure5():
    histogram, long_tail = generate_nonpreemptible_census(
        n_routines=200_000, seed=0)
    in_band = sum(1 for v in long_tail
                  if 1 * MILLISECONDS <= v < 5 * MILLISECONDS)
    fraction = in_band / len(long_tail)
    assert 0.93 <= fraction <= 0.96  # paper: 94.5%


def test_census_max_capped_at_67ms():
    _, long_tail = generate_nonpreemptible_census(n_routines=100_000, seed=1)
    assert max(long_tail) <= 67 * MILLISECONDS


def test_census_histogram_totals():
    histogram, long_tail = generate_nonpreemptible_census(
        n_routines=50_000, seed=2)
    assert histogram.total == 50_000
    assert sum(histogram.counts) == 50_000
    assert len(long_tail) < 50_000


def test_reproducible_with_seed():
    a = generate_dp_utilization_trace(n_samples=1_000, seed=7).samples
    b = generate_dp_utilization_trace(n_samples=1_000, seed=7).samples
    assert a == b
