"""Tests for the shared traffic generators."""

import pytest

from repro.baselines import StaticPartitionDeployment
from repro.sim import MILLISECONDS
from repro.workloads.traffic import (
    ClosedLoopClients,
    OpenLoopSource,
    StorageClients,
    service_queue_ids,
)


@pytest.fixture
def deployment():
    dep = StaticPartitionDeployment(seed=9)
    dep.warmup()
    return dep


def test_service_queue_ids_one_per_service(deployment):
    queues = service_queue_ids(deployment)
    assert len(queues) == len(deployment.services)
    assert len(set(queues)) == len(queues)


def test_open_loop_rate_approximately_honored(deployment):
    source = OpenLoopSource(deployment, rate_pps=100_000, size_bytes=256,
                            service_ns=1_000)
    source.start(50 * MILLISECONDS)
    deployment.run(deployment.env.now + 55 * MILLISECONDS)
    sent_rate = source.sent.per_second(50 * MILLISECONDS)
    assert 80_000 < sent_rate < 120_000


def test_open_loop_latency_recorded(deployment):
    source = OpenLoopSource(deployment, rate_pps=10_000, size_bytes=256,
                            service_ns=1_000)
    source.start(20 * MILLISECONDS)
    deployment.run(deployment.env.now + 25 * MILLISECONDS)
    assert source.latency.count > 50
    assert source.latency.mean > 3_200  # at least the accelerator window


def test_open_loop_without_latency_measurement(deployment):
    source = OpenLoopSource(deployment, rate_pps=10_000, size_bytes=256,
                            service_ns=1_000, measure_latency=False)
    source.start(10 * MILLISECONDS)
    deployment.run(deployment.env.now + 12 * MILLISECONDS)
    assert source.latency.count == 0
    assert source.sent.count > 0


def test_closed_loop_transaction_accounting(deployment):
    clients = ClosedLoopClients(deployment, n_clients=8, packets_per_txn=2,
                                size_bytes=128, service_ns=1_000)
    clients.start(20 * MILLISECONDS)
    deployment.run(deployment.env.now + 20 * MILLISECONDS)
    assert clients.transactions.count > 0
    assert clients.packets.count >= clients.transactions.count * 2
    assert clients.txn_latency.count == clients.transactions.count


def test_closed_loop_think_time_lowers_rate(deployment):
    fast = ClosedLoopClients(deployment, n_clients=4, packets_per_txn=1,
                             size_bytes=64, service_ns=1_000)
    fast.start(20 * MILLISECONDS)
    deployment.run(deployment.env.now + 20 * MILLISECONDS)

    slow_dep = StaticPartitionDeployment(seed=9)
    slow_dep.warmup()
    slow = ClosedLoopClients(slow_dep, n_clients=4, packets_per_txn=1,
                             size_bytes=64, service_ns=1_000,
                             think_ns=500_000)
    slow.start(20 * MILLISECONDS)
    slow_dep.run(slow_dep.env.now + 20 * MILLISECONDS)
    assert slow.transactions.count < fast.transactions.count


def test_storage_clients_keep_iodepth_in_flight():
    deployment = StaticPartitionDeployment(seed=9, dp_kind="storage")
    deployment.warmup()
    clients = StorageClients(deployment, n_jobs=2, iodepth=4,
                             block_bytes=4096, service_ns=2_000)
    clients.start(20 * MILLISECONDS)
    deployment.run(deployment.env.now + 20 * MILLISECONDS)
    assert clients.completed.count > 8
    assert clients.io_latency.count == clients.completed.count
