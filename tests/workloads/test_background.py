"""Tests for the background load generators."""


from repro.baselines import StaticPartitionDeployment, TaiChiDeployment
from repro.sim import MILLISECONDS, SECONDS
from repro.workloads.background import start_cp_background, start_dp_background


def test_dp_background_hits_target_utilization():
    deployment = StaticPartitionDeployment(seed=1)
    start_dp_background(deployment, utilization=0.30)
    deployment.run(500 * MILLISECONDS)
    utils = [service.utilization(deployment.env.now)
             for service in deployment.services]
    average = sum(utils) / len(utils)
    assert 0.20 < average < 0.42  # bursty, but centered near the target


def test_dp_background_scales_with_target():
    def measure(target):
        deployment = StaticPartitionDeployment(seed=1)
        start_dp_background(deployment, utilization=target)
        deployment.run(300 * MILLISECONDS)
        return sum(s.processing_ns for s in deployment.services)

    low = measure(0.10)
    high = measure(0.50)
    assert high > low * 3


def test_dp_background_has_idle_windows():
    """Burstiness leaves harvestable gaps (Tai Chi finds yields)."""
    deployment = TaiChiDeployment(seed=1)
    start_dp_background(deployment, utilization=0.30)
    start_cp_background(deployment, n_monitors=2, rolling_tasks=4)
    deployment.run(300 * MILLISECONDS)
    assert deployment.taichi.sw_probe.notifications > 10
    assert deployment.taichi.scheduler.slices_run > 10


def test_dp_background_duration_bounded():
    deployment = StaticPartitionDeployment(seed=1)
    start_dp_background(deployment, utilization=0.30,
                        duration_ns=50 * MILLISECONDS)
    deployment.run(300 * MILLISECONDS)
    early = sum(s.processing_ns for s in deployment.services)
    deployment.run(600 * MILLISECONDS)
    late = sum(s.processing_ns for s in deployment.services)
    # Sources stop near the deadline (the in-progress burst may linger).
    assert late < early * 1.5


def test_cp_background_spawns_monitors_and_rollers():
    deployment = StaticPartitionDeployment(seed=1)
    monitors, rollers = start_cp_background(deployment, n_monitors=3,
                                            rolling_tasks=2)
    assert len(monitors) == 3
    assert len(rollers) == 2
    deployment.run(100 * MILLISECONDS)
    assert all(monitor.cycles > 0 for monitor in monitors)


def test_cp_background_respects_affinity():
    deployment = StaticPartitionDeployment(seed=1)
    start_cp_background(deployment, n_monitors=2, rolling_tasks=2)
    deployment.run(100 * MILLISECONDS)
    dp_busy = sum(deployment.kernel.cpus[c].busy_ns
                  for c in deployment.board.dp_cpu_ids)
    # Only the idle DP pollers' own dispatch costs; no CP work leaked over.
    assert dp_busy < 1 * MILLISECONDS
