"""Short-run smoke + shape tests for each Table 3 workload."""

import pytest

from repro.baselines import StaticPartitionDeployment, TaiChiDeployment
from repro.sim import MILLISECONDS
from repro.workloads import (
    run_fio,
    run_mysql,
    run_nginx,
    run_ping,
    run_sockperf_tcp,
    run_sockperf_udp,
    run_synth_cp,
    run_tcp_crr,
    run_tcp_rr,
    run_tcp_stream,
    run_udp_stream,
)

DURATION = 10 * MILLISECONDS


@pytest.fixture
def net_deployment():
    deployment = StaticPartitionDeployment(seed=3)
    deployment.warmup()
    return deployment


def test_udp_stream_reports_bandwidth(net_deployment):
    result = run_udp_stream(net_deployment, DURATION)
    assert result["avg_rx_bw_gbps"] > 0
    assert result["avg_rx_pps"] > 0


def test_tcp_stream_reports_both_directions(net_deployment):
    result = run_tcp_stream(net_deployment, DURATION)
    assert result["avg_tx_pps"] > 0
    assert result["avg_rx_pps"] > 0


def test_tcp_rr_closed_loop(net_deployment):
    result = run_tcp_rr(net_deployment, DURATION, n_connections=64)
    assert result["rr_per_s"] > 0
    assert result["avg_rx_pps"] == result["rr_per_s"]


def test_tcp_crr_counts_four_packets_per_conn(net_deployment):
    result = run_tcp_crr(net_deployment, DURATION, n_connections=64)
    total_pps = result["avg_rx_pps"] + result["avg_tx_pps"]
    assert total_pps == pytest.approx(result["cps"] * 4, rel=0.01)


def test_sockperf_tcp(net_deployment):
    result = run_sockperf_tcp(net_deployment, DURATION, n_connections=64)
    assert result["cps"] > 0


def test_sockperf_udp_percentiles_ordered(net_deployment):
    result = run_sockperf_udp(net_deployment, DURATION, rate_pps=50_000)
    assert result["udp_avg_lat_ns"] > 0
    assert (result["udp_avg_lat_ns"] <= result["udp_p99_lat_ns"]
            <= result["udp_p999_lat_ns"])


def test_ping_statistics_ordered(net_deployment):
    result = run_ping(net_deployment, DURATION, interval_ns=500_000)
    assert result["count"] > 5
    assert result["min_ns"] <= result["avg_ns"] <= result["max_ns"]
    assert result["mdev_ns"] >= 0


def test_fio_requires_storage_deployment(net_deployment):
    with pytest.raises(ValueError):
        run_fio(net_deployment, DURATION)


def test_fio_reports_iops():
    deployment = StaticPartitionDeployment(seed=3, dp_kind="storage")
    deployment.warmup()
    result = run_fio(deployment, DURATION)
    assert result["iops"] > 0
    assert result["bw_mbps"] == pytest.approx(result["iops"] * 4096 / 1e6)


def test_mysql_metrics_consistent(net_deployment):
    result = run_mysql(net_deployment, DURATION, n_threads=32)
    assert result["avg_query_per_s"] > 0
    assert result["max_query_per_s"] >= result["avg_query_per_s"] * 0.5
    assert result["avg_trans_per_s"] == pytest.approx(
        result["avg_query_per_s"] / 10)


def test_nginx_http_and_https(net_deployment):
    http = run_nginx(net_deployment, DURATION, protocol="http",
                     max_clients=64)
    deployment2 = StaticPartitionDeployment(seed=3)
    deployment2.warmup()
    https = run_nginx(deployment2, DURATION, protocol="https",
                      max_clients=64)
    assert http["requests_per_s"] > 0
    # HTTPS does handshake packets per request: strictly fewer requests/s.
    assert https["requests_per_s"] < http["requests_per_s"]


def test_synth_cp_taichi_beats_static():
    static = run_synth_cp(StaticPartitionDeployment(seed=5), 16, rounds=1)
    taichi = run_synth_cp(TaiChiDeployment(seed=5), 16, rounds=1)
    assert taichi["avg_exec_ms"] < static["avg_exec_ms"]
