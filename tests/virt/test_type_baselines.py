"""Shape tests for the type-1/type-2 baseline models under saturation."""

import pytest

from repro.baselines import (
    StaticPartitionDeployment,
    TaiChiDeployment,
    TaiChiVDPDeployment,
    Type2Deployment,
)
from repro.sim import MILLISECONDS
from repro.workloads import run_tcp_crr


@pytest.fixture(scope="module")
def saturated_cps():
    results = {}
    for name, cls in (("static", StaticPartitionDeployment),
                      ("taichi", TaiChiDeployment),
                      ("vdp", TaiChiVDPDeployment),
                      ("type2", Type2Deployment)):
        deployment = cls(seed=23)
        deployment.warmup()
        results[name] = run_tcp_crr(deployment, 15 * MILLISECONDS,
                                    n_connections=384)["cps"]
    return results


def test_taichi_matches_baseline_under_saturation(saturated_cps):
    assert saturated_cps["taichi"] >= saturated_cps["static"] * 0.98


def test_vdp_pays_the_guest_tax(saturated_cps):
    ratio = saturated_cps["vdp"] / saturated_cps["static"]
    assert 0.88 < ratio < 0.97  # paper: ~8% degradation


def test_type2_pays_cpu_loss_and_emulation(saturated_cps):
    ratio = saturated_cps["type2"] / saturated_cps["static"]
    assert 0.68 < ratio < 0.85  # paper: ~26% degradation


def test_ordering_matches_table2(saturated_cps):
    assert (saturated_cps["type2"] < saturated_cps["vdp"]
            < saturated_cps["taichi"] * 1.001)
