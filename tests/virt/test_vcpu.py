"""Tests for virtual CPUs: grants, revocation, freezing."""

import pytest

from repro.kernel import Compute, Kernel, KernelSection
from repro.sim import Environment, MICROSECONDS, MILLISECONDS
from repro.virt import BackingGrant, VirtualCPU, VMExitReason


def make_board():
    env = Environment()
    kernel = Kernel(env)
    pcpu = kernel.add_cpu(0)
    vcpu = kernel.add_cpu("v0", online=False, cpu_cls=VirtualCPU)
    kernel.boot_cpu("v0")
    env.run(until=1 * MILLISECONDS)
    assert vcpu.online
    return env, kernel, pcpu, vcpu


def test_vcpu_does_not_advance_without_backing():
    env, kernel, pcpu, vcpu = make_board()
    thread = kernel.spawn("t", iter([Compute(100 * MICROSECONDS)]),
                          affinity={"v0"})
    env.run(until=10 * MILLISECONDS)
    assert not thread.done.triggered
    assert vcpu.busy_ns == 0


def test_backed_vcpu_executes_work():
    env, kernel, pcpu, vcpu = make_board()
    thread = kernel.spawn("t", iter([Compute(100 * MICROSECONDS)]),
                          affinity={"v0"})
    grant = BackingGrant(env, pcpu, vcpu, 10 * MILLISECONDS)
    vcpu.set_backing(grant)
    env.run(until=5 * MILLISECONDS)
    assert thread.done.triggered
    assert vcpu.busy_ns >= 100 * MICROSECONDS


def test_double_backing_rejected():
    env, kernel, pcpu, vcpu = make_board()
    vcpu.set_backing(BackingGrant(env, pcpu, vcpu, MILLISECONDS))
    with pytest.raises(RuntimeError):
        vcpu.set_backing(BackingGrant(env, pcpu, vcpu, MILLISECONDS))


def test_revoke_freezes_mid_nonpreemptible_section():
    env, kernel, pcpu, vcpu = make_board()
    thread = kernel.spawn("t", iter([KernelSection(4 * MILLISECONDS)]),
                          affinity={"v0"})

    def driver(env):
        vcpu.set_backing(BackingGrant(env, pcpu, vcpu, 100 * MILLISECONDS))
        yield env.timeout(1 * MILLISECONDS)
        vcpu.revoke(VMExitReason.HW_PROBE_IRQ)   # mid-section!
        yield env.timeout(2 * MILLISECONDS)      # frozen window
        assert not thread.done.triggered
        vcpu.set_backing(BackingGrant(env, pcpu, vcpu, 100 * MILLISECONDS))

    env.process(driver(env))
    env.run(until=20 * MILLISECONDS)
    assert thread.done.triggered
    assert vcpu.frozen_ns >= 2 * MILLISECONDS
    # Busy time counts only execution, not the freeze.
    assert vcpu.busy_ns < 4 * MILLISECONDS + 500 * MICROSECONDS


def test_halt_signal_when_out_of_work():
    env, kernel, pcpu, vcpu = make_board()
    kernel.spawn("t", iter([Compute(50 * MICROSECONDS)]), affinity={"v0"})
    grant = BackingGrant(env, pcpu, vcpu, 100 * MILLISECONDS)
    vcpu.set_backing(grant)
    env.run(until=grant.halted)
    assert grant.halted.triggered
    assert vcpu.halt_signals >= 1


def test_revoke_without_backing_is_noop():
    env, kernel, pcpu, vcpu = make_board()
    vcpu.revoke(VMExitReason.EXTERNAL)
    assert vcpu.revocations == 0


def test_backed_time_accounted_on_revoke():
    env, kernel, pcpu, vcpu = make_board()
    kernel.spawn("t", iter([Compute(50 * MILLISECONDS)]), affinity={"v0"})

    def driver(env):
        vcpu.set_backing(BackingGrant(env, pcpu, vcpu, 100 * MILLISECONDS))
        yield env.timeout(3 * MILLISECONDS)
        vcpu.revoke(VMExitReason.TIMESLICE_EXPIRED)

    env.process(driver(env))
    env.run(until=10 * MILLISECONDS)
    assert vcpu.backed_ns == 3 * MILLISECONDS
    assert vcpu.revocations == 1


def test_holds_any_lock_reflects_thread_locks():
    env, kernel, pcpu, vcpu = make_board()
    lock = kernel.spinlock("l")
    from repro.kernel import LockAcquire, LockRelease, Sleep

    def body():
        yield LockAcquire(lock)
        yield Sleep(5 * MILLISECONDS)
        yield LockRelease(lock)

    kernel.spawn("t", body(), affinity={"v0"})
    vcpu.set_backing(BackingGrant(env, pcpu, vcpu, 100 * MILLISECONDS))
    env.run(until=2 * MILLISECONDS)
    assert vcpu.holds_any_lock or lock.locked
