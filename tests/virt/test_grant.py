"""Tests for backing grants."""

from repro.kernel import Kernel
from repro.sim import Environment, MICROSECONDS
from repro.virt import BackingGrant, VirtualCPU, VMExitReason


def make():
    env = Environment()
    kernel = Kernel(env)
    pcpu = kernel.add_cpu(0)
    vcpu = VirtualCPU(kernel, "v0", online=False)
    return env, pcpu, vcpu


def test_expiry_fires_after_slice():
    env, pcpu, vcpu = make()
    grant = BackingGrant(env, pcpu, vcpu, 50 * MICROSECONDS)
    env.run(until=100 * MICROSECONDS)
    assert grant.expired.processed
    assert grant.resolve_end_reason() is VMExitReason.TIMESLICE_EXPIRED


def test_revoke_request_beats_expiry():
    env, pcpu, vcpu = make()
    grant = BackingGrant(env, pcpu, vcpu, 50 * MICROSECONDS)
    grant.request_revoke(VMExitReason.HW_PROBE_IRQ)
    env.run(until=100 * MICROSECONDS)
    assert grant.resolve_end_reason() is VMExitReason.HW_PROBE_IRQ


def test_halt_resolution():
    env, pcpu, vcpu = make()
    grant = BackingGrant(env, pcpu, vcpu, 50 * MICROSECONDS)
    grant.signal_halt()
    assert grant.resolve_end_reason() is VMExitReason.HALT


def test_duplicate_signals_are_idempotent():
    env, pcpu, vcpu = make()
    grant = BackingGrant(env, pcpu, vcpu, 50 * MICROSECONDS)
    grant.request_revoke()
    grant.request_revoke()
    grant.signal_halt()
    grant.signal_halt()
    assert grant.resolve_end_reason() is VMExitReason.HW_PROBE_IRQ


def test_finish_records_reason_and_time():
    env, pcpu, vcpu = make()
    grant = BackingGrant(env, pcpu, vcpu, 50 * MICROSECONDS)
    assert grant.active
    grant.finish(VMExitReason.HALT)
    assert not grant.active
    assert grant.end_reason is VMExitReason.HALT
    assert grant.ended_at_ns == env.now


def test_costs_switch_total():
    from repro.virt import VirtCosts

    costs = VirtCosts(vmenter_ns=800, vmexit_ns=1_200)
    assert costs.switch_total_ns == 2_000
