"""Tests for poll-mode DP services."""

from repro.dp import DPService, DPServiceParams, deploy_dp_services
from repro.hw import IORequest, PacketKind, SmartNIC
from repro.sim import Environment, MILLISECONDS


def make_board():
    env = Environment()
    return env, SmartNIC(env)


class RecordingNotifier:
    """Minimal stand-in for the software workload probe."""

    def __init__(self, threshold=16):
        self.threshold = threshold
        self.notified = []

    def threshold_for(self, service):
        return self.threshold

    def notify_idle(self, service):
        self.notified.append(service.name)


def test_service_processes_packets_in_order():
    env, board = make_board()
    services = deploy_dp_services(board, "net", cpu_ids=[0])
    done_order = []
    for index in range(3):
        req = IORequest(PacketKind.NET_TX, 64, ("net", 0, 0), service_ns=1_000,
                        done=env.event())
        req.done.callbacks.append(
            lambda event, i=index: done_order.append(i))
        board.accelerator.submit(req)
    env.run(until=5 * MILLISECONDS)
    assert done_order == [0, 1, 2]
    assert services[0].packets_processed == 3


def test_processing_time_accounted():
    env, board = make_board()
    services = deploy_dp_services(board, "net", cpu_ids=[0])
    board.accelerator.submit(
        IORequest(PacketKind.NET_TX, 64, ("net", 0, 0), service_ns=2_000))
    env.run(until=5 * MILLISECONDS)
    assert services[0].processing_ns == 2_000


def test_idle_notification_after_threshold():
    env, board = make_board()
    services = deploy_dp_services(board, "net", cpu_ids=[0])
    notifier = RecordingNotifier(threshold=16)
    services[0].attach_idle_notifier(notifier)
    env.run(until=5 * MILLISECONDS)
    assert notifier.notified  # crossed threshold with no traffic
    assert services[0].is_idle_blocked


def test_traffic_resets_idle_counting():
    env, board = make_board()
    services = deploy_dp_services(board, "net", cpu_ids=[0])
    notifier = RecordingNotifier(threshold=1_000_000)  # effectively never
    services[0].attach_idle_notifier(notifier)
    board.accelerator.submit(
        IORequest(PacketKind.NET_TX, 64, ("net", 0, 0), service_ns=1_000))
    env.run(until=5 * MILLISECONDS)
    assert services[0].packets_processed == 1
    assert not notifier.notified


def test_resume_polling_unblocks_idle_service():
    env, board = make_board()
    services = deploy_dp_services(board, "net", cpu_ids=[0])
    notifier = RecordingNotifier(threshold=16)
    service = services[0]
    service.attach_idle_notifier(notifier)
    env.run(until=2 * MILLISECONDS)
    first_count = len(notifier.notified)
    assert service.is_idle_blocked
    service.resume_polling()
    env.run(until=4 * MILLISECONDS)
    # The service re-polled, found nothing, and notified again.
    assert len(notifier.notified) > first_count


def test_pollution_tax_applies_once():
    env, board = make_board()
    params = DPServiceParams(pollution_tax=2.0, pollution_window_ns=1_000)
    services = deploy_dp_services(board, "net", cpu_ids=[0], params=params)
    service = services[0]
    service.note_vcpu_ran()
    for _ in range(2):
        board.accelerator.submit(
            IORequest(PacketKind.NET_TX, 64, ("net", 0, 0), service_ns=1_000))
    env.run(until=5 * MILLISECONDS)
    # First packet taxed (2000 ns), second at base cost (1000 ns).
    assert service.processing_ns == 3_000


def test_storage_round_trip_completes_original_request():
    env, board = make_board()
    services = deploy_dp_services(board, "storage", cpu_ids=[0])
    done = env.event()
    request = IORequest(PacketKind.STORAGE_SUBMIT, 4096, ("storage", 0, 0),
                        service_ns=2_000, done=done)
    board.accelerator.submit(request)
    env.run(until=10 * MILLISECONDS)
    assert done.triggered
    # Submission + completion both cost DP processing.
    assert services[0].packets_processed == 2


def test_work_scale_multiplies_cost():
    env, board = make_board()
    params = DPServiceParams(work_scale=1.5)
    services = deploy_dp_services(board, "net", cpu_ids=[0], params=params)
    board.accelerator.submit(
        IORequest(PacketKind.NET_TX, 64, ("net", 0, 0), service_ns=1_000))
    env.run(until=5 * MILLISECONDS)
    assert services[0].processing_ns == 1_500


def test_utilization_metric():
    env, board = make_board()
    services = deploy_dp_services(board, "net", cpu_ids=[0])
    board.accelerator.submit(
        IORequest(PacketKind.NET_TX, 64, ("net", 0, 0), service_ns=10_000))
    env.run(until=1 * MILLISECONDS)
    util = services[0].utilization(1 * MILLISECONDS)
    assert abs(util - 0.01) < 0.005
