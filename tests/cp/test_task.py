"""Tests for synthetic CP tasks and the routine-duration sampler."""

import numpy as np

from repro.cp.task import (
    CPTaskParams,
    sample_nonpreemptible_ns,
    spawn_synth_cp,
    synthetic_cp_body,
)
from repro.kernel import Kernel
from repro.sim import Environment, MILLISECONDS, SECONDS


def test_sampler_respects_production_bounds():
    rng = np.random.default_rng(0)
    samples = [sample_nonpreemptible_ns(rng) for _ in range(20_000)]
    assert max(samples) <= 67 * MILLISECONDS
    assert min(samples) > 0


def test_sampler_long_tail_band_fraction():
    rng = np.random.default_rng(1)
    samples = [sample_nonpreemptible_ns(rng) for _ in range(50_000)]
    long_tail = [s for s in samples if s >= 1 * MILLISECONDS]
    in_band = [s for s in long_tail if s < 5 * MILLISECONDS]
    assert long_tail, "expected some >1ms routines"
    fraction = len(in_band) / len(long_tail)
    assert 0.90 < fraction < 0.98  # paper: 94.5%


def test_body_completes_and_calls_on_done():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    rng = np.random.default_rng(2)
    called = []
    params = CPTaskParams(total_ns=5 * MILLISECONDS)
    thread = kernel.spawn(
        "cp", synthetic_cp_body(rng, params=params,
                                on_done=lambda: called.append(env.now)))
    env.run(until=1 * SECONDS)
    assert thread.done.triggered
    assert called


def test_unloaded_execution_time_near_nominal_total():
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    rng = np.random.default_rng(3)
    params = CPTaskParams(total_ns=50 * MILLISECONDS)
    done_at = []
    kernel.spawn("cp", synthetic_cp_body(
        rng, params=params, on_done=lambda: done_at.append(env.now)))
    env.run(until=1 * SECONDS)
    # Unloaded wall time should be within ~40% of the nominal 50 ms
    # (sleep jitter and sampling spread allowed).
    assert 25 * MILLISECONDS < done_at[0] < 80 * MILLISECONDS


def test_spawn_synth_cp_records_exec_times():
    env = Environment()
    kernel = Kernel(env)
    for cpu_id in range(2):
        kernel.add_cpu(cpu_id)
    rng = np.random.default_rng(4)
    times = []
    params = CPTaskParams(total_ns=3 * MILLISECONDS)
    threads = spawn_synth_cp(kernel, env, rng, 4, {0, 1}, params=params,
                             recorder=times.append)
    env.run(until=1 * SECONDS)
    assert all(thread.done.triggered for thread in threads)
    assert len(times) == 4
    assert all(t > 0 for t in times)


def test_lock_wrapped_sections_contend():
    env = Environment()
    kernel = Kernel(env)
    for cpu_id in range(2):
        kernel.add_cpu(cpu_id)
    rng = np.random.default_rng(5)
    lock = kernel.spinlock("drv")
    params = CPTaskParams(total_ns=5 * MILLISECONDS, sleep_fraction=0.0)
    threads = spawn_synth_cp(kernel, env, rng, 2, {0, 1}, params=params,
                             locks=[lock])
    env.run(until=1 * SECONDS)
    assert all(thread.done.triggered for thread in threads)
    assert lock.acquisitions > 0
