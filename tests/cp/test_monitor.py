"""Tests for monitoring CP tasks."""

from repro.cp import MonitorTask
from repro.hw import SmartNIC
from repro.sim import Environment, MILLISECONDS


def test_monitor_cycles_on_period():
    env = Environment()
    board = SmartNIC(env)
    monitor = MonitorTask(board, "mon", board.cp_cpu_ids,
                          period_ns=5 * MILLISECONDS)
    env.run(until=60 * MILLISECONDS)
    assert 5 <= monitor.cycles <= 14


def test_monitor_respects_affinity():
    env = Environment()
    board = SmartNIC(env)
    monitor = MonitorTask(board, "mon", [board.cp_cpu_ids[0]],
                          period_ns=5 * MILLISECONDS)
    env.run(until=30 * MILLISECONDS)
    assert monitor.thread.last_cpu == board.cp_cpu_ids[0]


def test_monitor_consumes_cp_cpu_time():
    env = Environment()
    board = SmartNIC(env)
    MonitorTask(board, "mon", board.cp_cpu_ids, period_ns=2 * MILLISECONDS)
    env.run(until=50 * MILLISECONDS)
    cp_busy = sum(board.kernel.cpus[c].busy_ns for c in board.cp_cpu_ids)
    assert cp_busy > 0
