"""Tests for the VM-creation device-management workflow."""

from repro.cp import DeviceManager, DeviceMgmtParams, Orchestrator
from repro.hw import SmartNIC
from repro.sim import Environment, MILLISECONDS, SECONDS


def make_manager(params=None):
    env = Environment()
    board = SmartNIC(env)
    manager = DeviceManager(board, board.cp_cpu_ids, params=params)
    return env, board, manager


def test_create_vm_completes_with_timestamps():
    env, board, manager = make_manager()
    request = manager.create_vm()
    env.run(until=request.done)
    assert request.t_cp_started is not None
    assert request.t_devices_ready > request.t_cp_started
    assert request.t_vm_started > request.t_devices_ready
    assert request.startup_time_ns > 0
    assert request.cp_execution_ns > 0


def test_startup_includes_qemu_instantiation():
    params = DeviceMgmtParams()
    env, board, manager = make_manager(params)
    request = manager.create_vm()
    env.run(until=request.done)
    assert (request.t_vm_started - request.t_devices_ready
            == params.qemu_instantiate_ns)


def test_single_vm_within_slo():
    env, board, manager = make_manager()
    request = manager.create_vm()
    env.run(until=request.done)
    assert request.startup_time_ns < manager.params.startup_slo_ns


def test_storm_degrades_latency():
    env, board, manager = make_manager()
    orchestrator = Orchestrator(manager, density=1.0, base_storm_size=1)
    solo = orchestrator.launch_storm(1)[0]
    env.run(until=solo.done)
    solo_startup = solo.startup_time_ns

    env2, board2, manager2 = make_manager()
    orchestrator2 = Orchestrator(manager2, density=4.0, base_storm_size=8)
    storm = orchestrator2.launch_storm()
    env2.run(until=env2.all_of([r.done for r in storm]))
    storm_avg = sum(orchestrator2.startup_times_ns()) / len(storm)
    assert storm_avg > solo_startup * 1.5


def test_storm_size_scales_with_density():
    env, board, manager = make_manager()
    orchestrator = Orchestrator(manager, density=4.0, base_storm_size=8)
    assert orchestrator.storm_size == 32


def test_driver_locks_are_exercised():
    env, board, manager = make_manager()
    requests = [manager.create_vm() for _ in range(4)]
    env.run(until=env.all_of([r.done for r in requests]))
    assert sum(lock.acquisitions for lock in manager.driver_locks) == \
        sum(r.n_devices for r in requests)


def test_poisson_source_issues_requests():
    import numpy as np

    env, board, manager = make_manager()
    orchestrator = Orchestrator(manager)
    orchestrator.launch_poisson(rate_per_s=100, duration_ns=200 * MILLISECONDS,
                                rng=np.random.default_rng(0))
    env.run(until=2 * SECONDS)
    assert len(orchestrator.requests) > 5
    assert orchestrator.startup_times_ns()
