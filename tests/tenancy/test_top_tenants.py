"""``taichi-experiments top``: per-tenant rows, single-tenant fallback."""

import json
import os

import pytest

from repro.fleet import FleetRunner, render_top, uniform_spec, \
    write_fleet_json
from repro.scenario import Scenario, run_soak
from repro.sim.units import MILLISECONDS

TENANTS = [
    {"tenant_id": "gold", "weight": 3.0,
     "workload": {"dp_utilization": 0.4, "n_monitors": 3,
                  "rolling_tasks": 3}},
    {"tenant_id": "bronze", "traffic": "spiky",
     "workload": {"dp_utilization": 0.4, "n_monitors": 3,
                  "rolling_tasks": 3}},
]


def _write(tmp_path, name, payload):
    path = os.path.join(tmp_path, name)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


def test_top_renders_tenant_rows_from_bare_soak_summary(tmp_path):
    # A multi-tenant soak summary renders without a fleet wrapper: one
    # health row for the node, one tenant row per tenant.
    summary = run_soak(Scenario(arm="taichi", tenants=TENANTS), seed=11,
                       duration_ns=30 * MILLISECONDS,
                       drain_ns=15 * MILLISECONDS, label="board-07")
    path = _write(tmp_path, "soak.json", summary)
    text = render_top(path)
    assert "== fleet top: 1 nodes ==" in text
    assert "== tenants: 2 rows ==" in text
    assert "gold" in text and "bronze" in text
    # The tenant table carries the per-tenant SLO columns (the table
    # formatter prints floats to one decimal).
    gold = summary["tenants"]["gold"]
    assert f"{gold['dp_slo_attainment_pct']:.1f}" in text


def test_top_single_tenant_output_is_byte_identical(tmp_path):
    # Satellite contract: pre-tenancy reports render byte-for-byte the
    # same — no tenant table, no new columns on the health rows.
    spec = uniform_spec("tiny", "taichi", 2, duration_ms=40.0,
                        drain_ms=20.0)
    report = FleetRunner(spec, jobs=1, scale=0.5).run()
    path = _write(tmp_path, "fleet.json", report)
    text = render_top(path)
    assert "tenant" not in text
    # Strip the tenant-aware code path's inputs and re-render: the text
    # must not change, proving the tenant branch contributes zero bytes.
    for node in report["nodes"]:
        assert "tenants" not in node
    assert render_top(path) == text


def test_top_tenantless_soak_summary_keeps_old_error(tmp_path):
    summary = run_soak(Scenario(arm="taichi"), seed=11,
                       duration_ns=30 * MILLISECONDS,
                       drain_ns=15 * MILLISECONDS, label="plain")
    path = _write(tmp_path, "plain.json", summary)
    with pytest.raises(ValueError, match="not a fleet report"):
        render_top(path)


def test_write_fleet_json_round_trips_tenant_blocks(tmp_path):
    from repro.fleet import FleetSpec, NodeSpec

    scenario = Scenario(arm="taichi", tenants=TENANTS)
    spec = FleetSpec(name="t", nodes=[NodeSpec("n0", scenario=scenario)],
                     duration_ms=30.0, drain_ms=15.0)
    report = FleetRunner(spec, jobs=1, scale=1.0).run()
    path = os.path.join(tmp_path, "fleet.json")
    write_fleet_json(path, report)
    with open(path) as handle:
        revived = json.load(handle)
    assert revived["aggregate"]["tenants"].keys() == {"gold", "bronze"}
    assert (revived["nodes"][0]["tenants"]["gold"]["granted_ns"]
            == report["nodes"][0]["tenants"]["gold"]["granted_ns"])
