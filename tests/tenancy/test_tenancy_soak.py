"""The multi-tenant soak: delegation, determinism, telemetry, invariants."""

from repro.obs import observe
from repro.scenario import Scenario, run_soak
from repro.sim.units import MILLISECONDS
from repro.tenancy import verify_tenant_summary

TENANTS = [
    {"tenant_id": "gold", "weight": 3.0,
     "workload": {"dp_utilization": 0.4, "n_monitors": 3,
                  "rolling_tasks": 3}},
    {"tenant_id": "bronze", "traffic": "spiky",
     "workload": {"dp_utilization": 0.4, "n_monitors": 3,
                  "rolling_tasks": 3}},
]


def _soak(duration_ms=30, **kwargs):
    scenario = Scenario(arm="taichi", tenants=TENANTS, **kwargs)
    return run_soak(scenario, seed=11,
                    duration_ns=duration_ms * MILLISECONDS,
                    drain_ns=15 * MILLISECONDS, label="tenant-soak")


def test_run_soak_delegates_and_keeps_single_tenant_shape():
    summary = _soak()
    # Every single-tenant summary key survives (fleet/top compatibility)...
    assert summary["node_id"] == "tenant-soak"
    assert summary["dp_sample_count"] > 0
    assert set(summary["dp_latency_us"]) >= {"count", "p50", "p99"}
    assert "dp_sketch" in summary and "startup_sketch" in summary
    # ... plus the tenant view.
    assert set(summary["tenants"]) == {"gold", "bronze"}
    assert summary["tenancy"]["isolation"] is True
    assert summary["tenancy"]["total_granted_ns"] > 0


def test_single_tenant_summary_carries_no_tenant_keys():
    summary = run_soak(Scenario(arm="taichi"), seed=11,
                       duration_ns=30 * MILLISECONDS,
                       drain_ns=15 * MILLISECONDS)
    assert "tenants" not in summary
    assert "tenancy" not in summary


def test_tenant_soak_is_deterministic():
    assert _soak() == _soak()


def test_tenant_blocks_account_for_all_samples_and_grants():
    summary = _soak()
    blocks = summary["tenants"].values()
    assert sum(b["dp_sample_count"] for b in blocks) \
        == summary["dp_sample_count"]
    assert sum(b["granted_ns"] for b in blocks) \
        == summary["tenancy"]["total_granted_ns"]
    for block in blocks:
        assert block["dp_within_slo"] <= block["dp_slo_total"]
        assert block["vms_started"] <= block["vms_requested"]
        # Sketches, never raw sample arrays, in tenant blocks.
        assert "dp_samples_us" not in block


def test_weighted_shares_favor_the_heavier_tenant():
    # Identical backlogged workloads, 3:1 weights: the weighted-fair pick
    # must grant the heavier tenant strictly more donated time.
    summary = _soak()
    gold = summary["tenants"]["gold"]
    bronze = summary["tenants"]["bronze"]
    assert gold["granted_ns"] > bronze["granted_ns"]


def test_verify_tenant_summary_clean_and_detects_corruption():
    summary = _soak()
    assert verify_tenant_summary(summary) == []

    doctored = {**summary,
                "tenancy": {**summary["tenancy"],
                            "total_granted_ns":
                            summary["tenancy"]["total_granted_ns"] + 1}}
    problems = verify_tenant_summary(doctored)
    assert any("conserve" in problem for problem in problems)

    assert verify_tenant_summary({"node_id": "x"}) \
        == ["summary carries no tenant blocks"]


def test_isolation_off_still_conserves_ledgers():
    summary = _soak(tenant_isolation=False)
    assert summary["tenancy"]["isolation"] is False
    assert sum(b["granted_ns"] for b in summary["tenants"].values()) \
        == summary["tenancy"]["total_granted_ns"]


def test_tenant_soak_invariants_clean():
    with observe(check_invariants=True) as session:
        _soak()
        violations = session.violations()
    assert session.invariant_engines
    assert violations == []


def test_faulted_tenant_soak_reports_injections():
    summary = _soak(faults="probe_outage", degradation=True,
                    duration_ms=60)
    assert summary["faults"]["injected"] > 0
    assert verify_tenant_summary(summary) == []


def test_per_tenant_gauges_drive_alert_rules():
    # A rule keyed ``tenant.<id>.*`` needs no alert-code support — the
    # per-tenant gauges exist under exactly that name.
    scenario = Scenario(arm="taichi", tenants=TENANTS, alerts=[
        {"name": "gold_touchy", "signal": "tenant.gold.dp_slo_attainment_pct",
         "threshold": 200.0, "op": "lt", "hold": 1},
    ])
    summary = run_soak(scenario, seed=11, duration_ns=30 * MILLISECONDS,
                       drain_ns=15 * MILLISECONDS, label="tenant-alerts")
    alerts = summary["telemetry"]["alerts"]
    assert alerts["raised"] >= 1
