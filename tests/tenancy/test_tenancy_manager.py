"""TenancyManager: partition, donation policy, ledgers, repartition."""

import pytest

from repro.scenario import build
from repro.tenancy import TenancyManager, TenantRuntime, TenantSpec, \
    weighted_partition


def _runtimes(*weights):
    return [TenantRuntime(TenantSpec(tenant_id=f"t{i}", weight=w), i)
            for i, w in enumerate(weights)]


# -- weighted_partition --------------------------------------------------------


def test_partition_splits_by_weight_with_largest_remainder():
    assert weighted_partition(8, _runtimes(4.0, 1.0, 1.0, 1.0),
                              "vCPUs") == [5, 1, 1, 1]
    assert weighted_partition(8, _runtimes(1.0, 1.0), "vCPUs") == [4, 4]
    assert weighted_partition(7, _runtimes(1.0, 1.0), "vCPUs") == [4, 3]


def test_partition_guarantees_one_each():
    # A 100:1 split of 2 items still leaves the small tenant one item.
    assert weighted_partition(2, _runtimes(100.0, 1.0), "services") == [1, 1]


def test_partition_is_deterministic_on_ties():
    # Equal weights, odd items: earlier declaration wins the extra.
    assert weighted_partition(5, _runtimes(1.0, 1.0), "vCPUs") == [3, 2]


def test_partition_rejects_more_tenants_than_items_naming_resource():
    with pytest.raises(ValueError, match="DP services"):
        weighted_partition(2, _runtimes(1.0, 1.0, 1.0), "DP services")


# -- install on a Tai Chi deployment ------------------------------------------


TENANTS = [
    {"tenant_id": "gold", "weight": 3.0, "probe_threshold": 64},
    {"tenant_id": "bronze", "weight": 1.0},
]


def _install(arm="taichi", isolation=True, tenants=TENANTS):
    deployment = build(arm, seed=0)
    manager = TenancyManager(deployment, tenants,
                             isolation=isolation).install()
    return deployment, manager


def test_install_partitions_services_and_vcpus_and_tags_them():
    deployment, manager = _install()
    gold = manager.by_id["gold"]
    bronze = manager.by_id["bronze"]
    assert len(gold.services) == 6 and len(bronze.services) == 2
    assert len(gold.vcpus) == 6 and len(bronze.vcpus) == 2
    assert all(s.tenant_id == "gold" for s in gold.services)
    assert all(v.tenant_id == "bronze" for v in bronze.vcpus)
    # CP affinity: own vCPUs plus the shared dedicated CP pCPUs.
    cp_pcpus = set(deployment.board.cp_cpu_ids)
    assert gold.cp_affinity == {v.cpu_id for v in gold.vcpus} | cp_pcpus
    assert deployment.tenancy is manager
    assert deployment.taichi.scheduler.tenancy is manager


def test_install_seeds_per_tenant_probe_thresholds():
    deployment, manager = _install()
    sw_probe = deployment.taichi.sw_probe
    for service in manager.by_id["gold"].services:
        assert sw_probe.threshold_for(service) == 64
    bronze_service = manager.by_id["bronze"].services[0]
    assert sw_probe.threshold_for(bronze_service) \
        == deployment.taichi.config.initial_threshold


def test_install_twice_is_rejected():
    deployment, manager = _install()
    with pytest.raises(RuntimeError, match="already installed"):
        manager.install()


def test_install_on_static_arm_shares_cp_partition():
    deployment, manager = _install(arm="static")
    assert deployment.taichi is None
    for runtime in manager.runtimes:
        assert runtime.cp_affinity == set(deployment.cp_affinity)
        assert runtime.services            # DP split still happens


# -- donation policy -----------------------------------------------------------


def test_may_back_isolates_tenant_dp_cpus():
    deployment, manager = _install()
    gold = manager.by_id["gold"]
    bronze = manager.by_id["bronze"]
    gold_cpu = gold.services[0].cpu_id
    assert manager.may_back(gold_cpu, gold.vcpus[0])
    assert not manager.may_back(gold_cpu, bronze.vcpus[0])
    # Shared CP pCPUs back anyone.
    cp_pcpu = deployment.board.cp_cpu_ids[0]
    assert manager.may_back(cp_pcpu, bronze.vcpus[0])


def test_isolation_off_backs_anyone():
    deployment, manager = _install(isolation=False)
    gold = manager.by_id["gold"]
    bronze = manager.by_id["bronze"]
    assert manager.may_back(gold.services[0].cpu_id, bronze.vcpus[0])


def test_choose_picks_lowest_normalized_usage_then_declaration_order():
    deployment, manager = _install()
    gold = manager.by_id["gold"]
    bronze = manager.by_id["bronze"]
    heads = {gold: gold.vcpus[0], bronze: bronze.vcpus[0]}
    # Fresh ledgers tie at zero: declaration order wins.
    assert manager.choose(heads, cpu_id=None) is gold.vcpus[0]
    # Charge gold 3 weight-normalized us vs bronze 1: bronze wins.
    gold.granted_ns = 9_000     # /3.0 -> 3_000
    bronze.granted_ns = 1_000   # /1.0 -> 1_000
    assert manager.choose(heads, cpu_id=None) is bronze.vcpus[0]


def test_note_grant_updates_ledgers_and_board_total():
    deployment, manager = _install()
    gold = manager.by_id["gold"]
    manager.note_grant(gold.vcpus[0], 50_000, cpu_id=0)
    assert gold.granted_ns == 50_000 and gold.grants == 1
    assert manager.total_granted_ns == 50_000

    class UntaggedVcpu:
        pass

    # Untagged vCPUs hit the board total but no tenant ledger.
    manager.note_grant(UntaggedVcpu(), 10_000, cpu_id=0)
    assert manager.total_granted_ns == 60_000
    assert sum(r.granted_ns for r in manager.runtimes) == 50_000


# -- dynamic repartitioning ----------------------------------------------------


def test_repartition_adopts_and_releases_services():
    from repro.core.repartition import DynamicRepartitioner

    deployment, manager = _install()
    repartitioner = DynamicRepartitioner(deployment)
    before = {tid: len(r.services) for tid, r in manager.by_id.items()}

    (new_service,) = repartitioner.cp_to_dp(1)
    # bronze holds 2/1.0 = 2 normalized services vs gold's 6/3.0 = 2:
    # the tie breaks to the earlier declaration — gold adopts.
    assert new_service.tenant_id == "gold"
    assert len(manager.by_id["gold"].services) == before["gold"] + 1

    repartitioner.dp_to_cp(1)
    # The retired service (the adopted one: partitions pop the tail)
    # leaves its owner's book.
    assert len(manager.by_id["gold"].services) == before["gold"]
    assert manager.tenant_of_cpu(new_service.cpu_id) is None


def test_stats_shape():
    deployment, manager = _install()
    stats = manager.stats()
    assert stats["isolation"] is True
    assert set(stats["tenants"]) == {"gold", "bronze"}
    block = stats["tenants"]["gold"]
    assert block["weight"] == 3.0
    assert len(block["services"]) == 6 and len(block["vcpus"]) == 6
    assert block["granted_ns"] == 0 and block["grants"] == 0
