"""Fleet-level tenancy: cross-node aggregation and the ``top`` view."""

import json
import os

from repro.fleet import (
    FleetRunner,
    FleetSpec,
    NodeSpec,
    aggregate_fleet,
    aggregate_tenants,
    render_top,
    write_fleet_json,
)
from repro.scenario import Scenario, run_soak
from repro.sim.units import MILLISECONDS

TENANTS = [
    {"tenant_id": "gold", "weight": 3.0,
     "workload": {"dp_utilization": 0.4, "n_monitors": 3,
                  "rolling_tasks": 3}},
    {"tenant_id": "bronze", "traffic": "spiky",
     "workload": {"dp_utilization": 0.4, "n_monitors": 3,
                  "rolling_tasks": 3}},
]


def _node_summary(label, seed, tenants=TENANTS):
    scenario = Scenario(arm="taichi", tenants=tenants)
    summary = run_soak(scenario, seed=seed, duration_ns=30 * MILLISECONDS,
                       drain_ns=15 * MILLISECONDS, label=label)
    # run_node's fleet envelope, which aggregate_fleet expects.
    summary["invariants"] = {"checked": False, "violations": 0, "ok": True}
    return summary


def _tenant_spec(n_nodes=2, **kwargs):
    scenario = Scenario(arm="taichi", tenants=TENANTS)
    nodes = [NodeSpec(node_id=f"node-{index:02d}", scenario=scenario)
             for index in range(n_nodes)]
    kwargs.setdefault("duration_ms", 30.0)
    kwargs.setdefault("drain_ms", 15.0)
    return FleetSpec(name="tenant-fleet", nodes=nodes, **kwargs)


def test_aggregate_tenants_pools_counts_and_merges_sketches():
    a = _node_summary("a", seed=3)
    b = _node_summary("b", seed=4)
    merged = aggregate_tenants([a, b])
    assert sorted(merged) == ["bronze", "gold"]
    for tid, block in merged.items():
        assert block["nodes"] == 2
        assert block["granted_ns"] == (a["tenants"][tid]["granted_ns"]
                                       + b["tenants"][tid]["granted_ns"])
        assert block["vms_started"] == (a["tenants"][tid]["vms_started"]
                                        + b["tenants"][tid]["vms_started"])
        # Merged-sketch count equals the pooled per-node sample count.
        assert block["dp_latency_us"]["count"] == (
            a["tenants"][tid]["dp_sample_count"]
            + b["tenants"][tid]["dp_sample_count"])
    assert merged["gold"]["weight"] == 3.0


def test_aggregate_tenants_skips_tenantless_nodes():
    multi = _node_summary("multi", seed=3)
    single = run_soak(Scenario(arm="taichi"), seed=5,
                      duration_ns=30 * MILLISECONDS,
                      drain_ns=15 * MILLISECONDS, label="single")
    merged = aggregate_tenants([multi, single])
    # The single-tenant node contributes no rows: per-tenant node counts
    # stay at 1 and the merge equals the multi-tenant node alone.
    assert all(block["nodes"] == 1 for block in merged.values())
    assert merged == aggregate_tenants([multi])
    assert aggregate_tenants([single]) == {}


def test_fleet_report_tenants_key_only_when_present():
    multi = _node_summary("multi", seed=3)
    single = _node_summary("single", seed=5, tenants=None)
    assert "tenants" in aggregate_fleet([multi])
    # Single-tenant fleets stay byte-identical to pre-tenancy reports.
    assert "tenants" not in aggregate_fleet([single])


def test_fleet_runner_tenant_fleet_end_to_end(tmp_path):
    report = FleetRunner(_tenant_spec(), jobs=1, scale=1.0).run()
    for node in report["nodes"]:
        assert set(node["tenants"]) == {"gold", "bronze"}
    fleet_tenants = report["aggregate"]["tenants"]
    assert fleet_tenants["gold"]["nodes"] == 2
    assert fleet_tenants["gold"]["granted_ns"] == sum(
        node["tenants"]["gold"]["granted_ns"] for node in report["nodes"])

    # `top` over the fleet JSON renders a per-tenant table.
    json_path = os.path.join(tmp_path, "fleet.json")
    write_fleet_json(json_path, report)
    text = render_top(json_path)
    assert "== tenants: 4 rows ==" in text
    assert "gold" in text and "bronze" in text


def test_tenant_fleet_is_deterministic_across_jobs():
    spec = _tenant_spec()
    serial = FleetRunner(spec, jobs=1, scale=1.0).run()
    parallel = FleetRunner(spec, jobs=2, scale=1.0).run()
    assert (json.dumps(serial["aggregate"], sort_keys=True)
            == json.dumps(parallel["aggregate"], sort_keys=True))
