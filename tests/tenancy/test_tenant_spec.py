"""TenantSpec validation and JSON round-trips.

Every rejection must *name the offending tenant* — a fleet spec can carry
hundreds of tenant entries, and an anonymous "weight must be positive" is
useless at that scale.
"""

import json

import pytest

from repro.scenario import Scenario
from repro.tenancy import MIN_SHARE, TenantSpec, normalize_tenants


# -- single-spec validation ----------------------------------------------------


def test_minimal_spec_defaults():
    spec = TenantSpec(tenant_id="a")
    assert spec.weight == 1.0
    assert spec.dp_slo_us is None
    assert spec.probe_threshold is None
    assert spec.traffic is None
    assert spec.workload is None


def test_rejects_empty_tenant_id():
    with pytest.raises(ValueError, match="non-empty string"):
        TenantSpec(tenant_id="")


def test_rejections_name_the_tenant():
    with pytest.raises(ValueError, match="tenant 'edgy'.*weight"):
        TenantSpec(tenant_id="edgy", weight=-2)
    with pytest.raises(ValueError, match="tenant 'edgy'.*dp_slo_us"):
        TenantSpec(tenant_id="edgy", dp_slo_us=0)
    with pytest.raises(ValueError, match="tenant 'edgy'.*probe_threshold"):
        TenantSpec(tenant_id="edgy", probe_threshold=0)
    with pytest.raises(ValueError, match="tenant 'edgy'.*traffic"):
        TenantSpec(tenant_id="edgy", traffic="tsunami")
    with pytest.raises(ValueError, match="tenant 'edgy'.*invalid workload"):
        TenantSpec(tenant_id="edgy", workload={"dp_utilization": 7.0})


def test_from_dict_rejects_unknown_fields_naming_the_tenant():
    with pytest.raises(ValueError, match="'mystery'.*cpu_quota"):
        TenantSpec.from_dict({"tenant_id": "mystery", "cpu_quota": 4})
    # Without an id there is still a stable label to grep for.
    with pytest.raises(ValueError, match="<unnamed>.*cpu_quota"):
        TenantSpec.from_dict({"cpu_quota": 4})


def test_from_dict_requires_tenant_id():
    with pytest.raises(ValueError, match="missing 'tenant_id'"):
        TenantSpec.from_dict({"weight": 2.0})


def test_workload_dict_is_revived():
    spec = TenantSpec(tenant_id="a", workload={"dp_utilization": 0.5})
    assert spec.workload.dp_utilization == 0.5


# -- list-level validation -----------------------------------------------------


def test_normalize_rejects_non_list_and_empty():
    with pytest.raises(ValueError, match="must be a list"):
        normalize_tenants({"tenant_id": "a"})
    with pytest.raises(ValueError, match="at least one tenant"):
        normalize_tenants([])


def test_duplicate_ids_are_rejected_by_name():
    with pytest.raises(ValueError, match="duplicate tenant id 'twin'"):
        normalize_tenants([{"tenant_id": "twin"}, {"tenant_id": "twin"}])


def test_vanishing_share_is_rejected_by_name():
    tenants = [{"tenant_id": "whale", "weight": 1000.0},
               {"tenant_id": "plankton", "weight": 1.0}]
    with pytest.raises(ValueError, match="'plankton'.*cannot be honored"):
        normalize_tenants(tenants)
    # Exactly at the floor is accepted.
    ok = normalize_tenants([
        {"tenant_id": "whale", "weight": 1 / MIN_SHARE - 1},
        {"tenant_id": "plankton", "weight": 1.0},
    ])
    assert [spec.tenant_id for spec in ok] == ["whale", "plankton"]


def test_declaration_order_is_preserved():
    specs = normalize_tenants([
        {"tenant_id": "z"}, {"tenant_id": "a"}, {"tenant_id": "m"},
    ])
    assert [spec.tenant_id for spec in specs] == ["z", "a", "m"]


# -- scenario integration and JSON round-trip ----------------------------------


def test_scenario_round_trips_tenants(tmp_path):
    scenario = Scenario(arm="taichi", tenants=[
        {"tenant_id": "victim", "weight": 3.0, "dp_slo_us": 250.0,
         "workload": {"dp_utilization": 0.2}},
        {"tenant_id": "noisy", "traffic": "spiky"},
    ], tenant_isolation=False)
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(scenario.to_dict()))
    revived = Scenario.from_dict(json.loads(path.read_text()))
    assert revived.to_dict() == scenario.to_dict()
    assert [spec.tenant_id for spec in revived.tenants] == ["victim",
                                                            "noisy"]
    assert revived.tenants[0].workload.dp_utilization == 0.2
    assert revived.tenant_isolation is False


def test_single_tenant_scenario_json_is_byte_identical():
    # The tenancy feature must be invisible when unused: no new keys.
    plain = Scenario(arm="taichi")
    assert "tenants" not in plain.to_dict()
    assert "tenant_isolation" not in plain.to_dict()
    assert (json.dumps(plain.to_dict(), sort_keys=True)
            == json.dumps(Scenario(arm="taichi").to_dict(), sort_keys=True))


def test_scenario_rejects_bad_tenants_naming_the_tenant():
    with pytest.raises(ValueError, match="duplicate tenant id 'twin'"):
        Scenario(arm="taichi", tenants=[{"tenant_id": "twin"},
                                        {"tenant_id": "twin"}])
