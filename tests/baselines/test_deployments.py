"""Tests for the deployment builders."""

import pytest

from repro.baselines import (
    DEPLOYMENTS,
    build_deployment,
    NaiveCoscheduleDeployment,
    StaticPartitionDeployment,
    TaiChiDeployment,
    TaiChiNoHwProbeDeployment,
    TaiChiVDPDeployment,
    Type2Deployment,
)
from repro.sim import MILLISECONDS


def test_registry_contains_all_systems():
    assert set(DEPLOYMENTS) == {
        "static", "taichi", "taichi-no-hw-probe", "taichi-vdp", "type2",
        "naive",
    }


def test_build_unknown_name_rejected():
    with pytest.raises(ValueError):
        build_deployment("does-not-exist")


def test_static_partition_shape():
    deployment = StaticPartitionDeployment(seed=0)
    assert len(deployment.services) == 8
    assert deployment.cp_affinity == set(deployment.board.cp_cpu_ids)
    assert deployment.taichi is None


def test_taichi_deployment_wires_framework():
    deployment = TaiChiDeployment(seed=0)
    deployment.warmup()
    assert deployment.taichi is not None
    assert deployment.taichi.installed
    assert all(s.idle_notifier is deployment.taichi.sw_probe
               for s in deployment.services)
    assert set(deployment.taichi.vcpu_ids()) <= deployment.cp_affinity


def test_no_hw_probe_variant_disables_probe():
    deployment = TaiChiNoHwProbeDeployment(seed=0)
    assert deployment.taichi.scheduler.hw_probe is None


def test_vdp_applies_guest_tax_to_dp_cpus():
    deployment = TaiChiVDPDeployment(seed=0, guest_tax=1.07)
    for cpu_id in deployment.board.dp_cpu_ids:
        assert deployment.board.kernel.cpus[cpu_id].work_tax == 1.07


def test_type2_loses_one_dp_cpu_and_scales_work():
    deployment = Type2Deployment(seed=0)
    assert len(deployment.services) == 7
    assert deployment.dp_params.work_scale > 1.0
    for cpu_id in deployment.board.cp_cpu_ids:
        assert deployment.board.kernel.cpus[cpu_id].work_tax > 1.0


def test_naive_coschedule_allows_cp_on_dp_cpus():
    deployment = NaiveCoscheduleDeployment(seed=0)
    assert set(deployment.board.dp_cpu_ids) <= deployment.cp_affinity


def test_storage_kind_deploys_storage_services():
    deployment = StaticPartitionDeployment(seed=0, dp_kind="storage")
    assert all(service.kind == "storage" for service in deployment.services)


def test_stats_shape():
    deployment = TaiChiDeployment(seed=0)
    deployment.warmup()
    stats = deployment.stats()
    assert stats["name"] == "taichi"
    assert "taichi" in stats


def test_same_seed_reproducible():
    def run_once():
        deployment = TaiChiDeployment(seed=42)
        deployment.run(20 * MILLISECONDS)
        return (deployment.env.now,
                deployment.taichi.scheduler.slices_run,
                deployment.dp_processing_ns())

    assert run_once() == run_once()
