#!/usr/bin/env python
"""Latency-sensitive traffic under CP pressure: why the hardware probe exists.

A finance/live-streaming style tenant pings through the data plane while
the control plane is busy.  Three configurations:

* static partition (no co-scheduling): the clean reference;
* Tai Chi with the hardware workload probe: CP work runs on idle DP
  cycles, yet RTTs match the reference — the 3.2 us preprocessing window
  hides the 2 us vCPU switch;
* Tai Chi without the probe: DP resumption waits for vCPU slice expiry
  and the tail explodes.

Run:  python examples/latency_sensitive.py
"""

from repro.baselines import (
    StaticPartitionDeployment,
    TaiChiDeployment,
    TaiChiNoHwProbeDeployment,
)
from repro.core import TaiChiConfig
from repro.sim import MICROSECONDS, MILLISECONDS
from repro.workloads import run_ping
from repro.workloads.background import start_cp_background


def measure(deployment_cls, label, **kwargs):
    deployment = deployment_cls(seed=21, **kwargs)
    start_cp_background(deployment, n_monitors=4, rolling_tasks=3)
    deployment.warmup()
    result = run_ping(deployment, 800 * MILLISECONDS)
    print(f"{label:26s} min={result['min_ns']/1e3:6.1f}  "
          f"avg={result['avg_ns']/1e3:6.1f}  "
          f"p99={result['p99_ns']/1e3:6.1f}  "
          f"max={result['max_ns']/1e3:6.1f}  "
          f"mdev={result['mdev_ns']/1e3:5.1f}  (us)")
    return result


def main():
    print("Ping RTT under control-plane pressure (Table 5 scenario)\n")
    config = TaiChiConfig(max_slice_ns=100 * MICROSECONDS)
    measure(StaticPartitionDeployment, "static partition")
    measure(TaiChiDeployment, "Tai Chi (HW probe on)", taichi_config=config)
    measure(TaiChiNoHwProbeDeployment, "Tai Chi (HW probe OFF)")
    print("\nWith the probe, vCPU preemption overlaps the accelerator's")
    print("preprocessing window; without it, packets wait out the slice.")


if __name__ == "__main__":
    main()
