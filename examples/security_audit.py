#!/usr/bin/env python
"""Section 8 extras: instruction auditing and always-preemptible contexts.

Part 1 puts a suspicious control-plane task under instruction-level audit:
Tai Chi migrates it onto an audit vCPU via plain affinity, records every
instruction (flagging privileged ones), then transparently migrates it
back — no persistent overhead, no cooperation from the task.

Part 2 shows the always-preemptible kernel context: a realtime task shares
CPUs with a kernel-section-heavy hog, first directly (ms-scale priority
inversion), then with the hog wrapped in a vCPU context (microsecond
wakeups again).

Run:  python examples/security_audit.py
"""

from collections import Counter

from repro.baselines import TaiChiDeployment
from repro.core import InstructionAuditor, PreemptibleKernelContext
from repro.kernel import Compute, Kernel, KernelSection, SchedClass, Sleep, Syscall
from repro.sim import Environment, MICROSECONDS, MILLISECONDS, SECONDS


def suspicious_task():
    while True:
        yield Compute(300 * MICROSECONDS)           # user-space work
        yield Syscall(80 * MICROSECONDS, name="net-cfg")
        yield KernelSection(200 * MICROSECONDS)     # driver poking
        yield Sleep(500 * MICROSECONDS)


def kernel_hog():
    while True:
        yield KernelSection(5 * MILLISECONDS)
        yield Compute(100 * MICROSECONDS)


def rt_latency(env, kernel, affinity, count=50):
    samples = []

    def body():
        for _ in range(count):
            target = env.now + 2 * MILLISECONDS
            yield Sleep(2 * MILLISECONDS)
            samples.append(env.now - target)
            yield Compute(10 * MICROSECONDS)

    kernel.spawn("rt", body(), sched_class=SchedClass.REALTIME,
                 affinity=affinity)
    return samples


def main():
    print("=== Part 1: on-demand instruction auditing ===\n")
    deployment = TaiChiDeployment(seed=33)
    deployment.warmup()
    env = deployment.env

    intercepted = []
    auditor = InstructionAuditor(
        deployment.taichi,
        interceptor=lambda thread, instr: intercepted.append(instr) or True,
    )
    target = deployment.kernel.spawn(
        "suspicious", suspicious_task(),
        affinity=set(deployment.board.cp_cpu_ids))

    deployment.run(env.now + 50 * MILLISECONDS)   # run unaudited first
    session = auditor.begin(target)
    deployment.run(env.now + 100 * MILLISECONDS)  # audited window
    auditor.end(target)

    kinds = Counter(record.kind for record in session.records)
    print(f"audited window       : {session.summary()['duration_ns']/1e6:.0f} ms "
          f"on vCPU {session.vcpu_id}")
    print(f"instructions recorded: {dict(kinds)}")
    print(f"privileged           : {len(session.privileged_records())} "
          f"(intercepted {len(session.intercepted)})")
    print(f"affinity restored    : {sorted(target.affinity)}\n")

    print("=== Part 2: always-preemptible kernel context ===\n")
    env2 = Environment()
    kernel2 = Kernel(env2)
    kernel2.add_cpu(0)
    kernel2.spawn("hog", kernel_hog())
    direct = rt_latency(env2, kernel2, {0})
    env2.run(until=300 * MILLISECONDS)

    deployment3 = TaiChiDeployment(seed=34)
    deployment3.warmup()
    context = PreemptibleKernelContext(deployment3.taichi)
    context.submit("hog", kernel_hog())
    wrapped = rt_latency(deployment3.env, deployment3.kernel,
                         {deployment3.board.cp_cpu_ids[0]})
    deployment3.run(deployment3.env.now + 300 * MILLISECONDS)

    print(f"RT wake latency, hog co-scheduled directly : "
          f"avg {sum(direct)/len(direct)/1e3:7.1f} us   "
          f"max {max(direct)/1e3:7.1f} us")
    print(f"RT wake latency, hog in a vCPU context     : "
          f"avg {sum(wrapped)/len(wrapped)/1e3:7.1f} us   "
          f"max {max(wrapped)/1e3:7.1f} us")
    print("\nVM-exit cuts through non-preemptible kernel routines; the")
    print("hog's sections freeze mid-flight and resume on harvested cycles.")


if __name__ == "__main__":
    main()
