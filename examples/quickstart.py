#!/usr/bin/env python
"""Quickstart: deploy Tai Chi on a SmartNIC and co-schedule DP + CP.

Builds the Table 4 board (12 CPUs: 8 data-plane, 4 control-plane),
installs the Tai Chi framework (8 vCPUs registered as native CPUs),
attaches the data-plane services, then runs network traffic and a burst of
control-plane tasks side by side.

Run:  python examples/quickstart.py
"""

from repro.core import TaiChi
from repro.dp import deploy_dp_services
from repro.hw import IORequest, PacketKind, SmartNIC
from repro.sim import Environment, MICROSECONDS, MILLISECONDS, SECONDS, RandomStreams
from repro.cp.task import spawn_synth_cp


def main():
    env = Environment()
    board = SmartNIC(env)
    print(f"Built {board}")

    # Data plane: one DPDK-style poll service per DP CPU.
    services = deploy_dp_services(board, "net")

    # Tai Chi: create + boot vCPUs, hook IPIs, wire the workload probes.
    taichi = TaiChi(board)
    taichi.install()
    for service in services:
        taichi.attach_dp_service(service)   # the <10-line DP integration
    print(f"Installed {taichi}: vCPUs {taichi.vcpu_ids()}")

    # Network traffic: 60k pps of small packets across all queues.
    latencies = []

    def traffic():
        rng = board.rng.stream("example-traffic")
        deadline = env.now + 1 * SECONDS
        queue_index = 0
        while env.now < deadline:
            yield env.timeout(int(rng.exponential(16 * MICROSECONDS)))
            done = env.event()
            done.callbacks.append(
                lambda event: latencies.append(event.value.total_latency_ns))
            board.accelerator.submit(IORequest(
                PacketKind.NET_TX, 512, ("net", queue_index % 8, 0),
                service_ns=1_500, done=done))
            queue_index += 1

    env.process(traffic(), name="traffic")

    # Control plane: 24 concurrent 50 ms tasks — bound to Tai Chi's CPU set
    # (vCPUs + dedicated CP CPUs) with standard affinity, zero code changes.
    cp_times = []
    rng = RandomStreams(seed=1).stream("example-cp")

    def launch_cp():
        yield env.timeout(5 * MILLISECONDS)
        spawn_synth_cp(board.kernel, env, rng, 24, taichi.cp_affinity(),
                       recorder=cp_times.append)

    env.process(launch_cp(), name="cp-launcher")
    env.run(until=1 * SECONDS)

    latencies.sort()
    print(f"\nDP packets delivered : {len(latencies):,}")
    print(f"DP latency p50 / p99 : {latencies[len(latencies)//2]/1e3:.1f} / "
          f"{latencies[int(len(latencies)*0.99)]/1e3:.1f} us")
    print(f"CP tasks finished    : {len(cp_times)} "
          f"(avg {sum(cp_times)/max(len(cp_times),1)/1e6:.1f} ms)")
    stats = taichi.stats()["scheduler"]
    print(f"vCPU slices run      : {stats['slices_run']} "
          f"(exits: {stats['exits']})")


if __name__ == "__main__":
    main()
