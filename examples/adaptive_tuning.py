#!/usr/bin/env python
"""Watch Tai Chi's two adaptive feedback loops react to traffic phases.

Phase 1 (quiet): no traffic — time slices double on every expiry exit and
empty-poll thresholds shrink, so nearly all idle cycles go to CP tasks.

Phase 2 (bursty): traffic arrives — hardware-probe exits reset slices to
50 us and push thresholds back up, making yielding conservative again.

Run:  python examples/adaptive_tuning.py
"""

from repro.baselines import TaiChiDeployment
from repro.cp.task import CPTaskParams, spawn_synth_cp
from repro.hw import IORequest, PacketKind
from repro.sim import MICROSECONDS, MILLISECONDS, SECONDS


def snapshot(tag, deployment):
    scheduler = deployment.taichi.scheduler
    probe = deployment.taichi.sw_probe
    slices = sorted(scheduler.slice_for(vcpu) // 1000
                    for vcpu in deployment.taichi.vcpus)
    thresholds = sorted(probe.stats()["thresholds"].values())
    exits = {reason: count
             for reason, count in scheduler.stats()["exits"].items()}
    print(f"[{tag}]")
    print(f"  vCPU time slices (us): {slices}")
    print(f"  empty-poll thresholds: {thresholds}")
    print(f"  VM-exit counts so far: {exits}\n")


def main():
    deployment = TaiChiDeployment(seed=3)
    env = deployment.env
    board = deployment.board
    deployment.warmup()

    # Persistent CP pressure so vCPU slices keep running.
    rng = deployment.rng.stream("cp")

    def cp_pressure():
        while True:
            threads = spawn_synth_cp(
                board.kernel, env, rng, 12, deployment.cp_affinity,
                params=CPTaskParams(total_ns=20 * MILLISECONDS))
            yield env.all_of([thread.done for thread in threads])

    env.process(cp_pressure(), name="cp-pressure")

    print("Phase 1: 300 ms of total DP quiet\n")
    env.run(until=env.now + 300 * MILLISECONDS)
    snapshot("after quiet phase", deployment)

    print("Phase 2: 300 ms of bursty traffic on every queue\n")

    def traffic():
        stream = deployment.rng.stream("bursts")
        deadline = env.now + 300 * MILLISECONDS
        while env.now < deadline:
            for queue in range(8):
                board.accelerator.submit(IORequest(
                    PacketKind.NET_TX, 256, ("net", queue, 0),
                    service_ns=2_000))
            yield env.timeout(int(stream.exponential(60 * MICROSECONDS)))

    proc = env.process(traffic(), name="traffic")
    env.run(until=proc)
    snapshot("after bursty phase", deployment)

    print("Slices reset toward 50 us and thresholds grew: the framework")
    print("traded harvest aggressiveness for data-plane protection.")


if __name__ == "__main__":
    main()
