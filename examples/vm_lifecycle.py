#!/usr/bin/env python
"""The full Figure 1c loop: control plane creates the path, data plane serves it.

A host node asks the SmartNIC control plane for a new VM.  The
device-management CP task parses the request and initializes each emulated
device — *materializing real accelerator queues* attached to DP services —
then QEMU instantiates the guest.  The freshly booted VM immediately runs
storage and network I/O through the very queues its creation just built.

Under Tai Chi the CP work rides on harvested DP cycles, so even with the
node's data plane busy the VM comes up fast.

Run:  python examples/vm_lifecycle.py
"""

from repro.baselines import TaiChiDeployment
from repro.hw import HostNode, VMSpec
from repro.sim import MICROSECONDS, MILLISECONDS
from repro.workloads.background import start_dp_background


def main():
    deployment = TaiChiDeployment(seed=42)
    start_dp_background(deployment, utilization=0.30)  # a busy node
    deployment.warmup()
    env = deployment.env
    host = HostNode(deployment)

    print("Requesting a VM (1 vNIC x2 queues, 4 virtio-blk)...")
    vm = host.create_vm(VMSpec(n_vnics=1, n_vblks=4))
    env.run(until=vm.request.done)
    print(f"VM {vm.vm_id} running after {vm.startup_time_ns() / 1e6:.1f} ms; "
          f"devices: {[f'{d.kind}#{d.device_id}' for d in vm.devices]}")
    for device in vm.devices:
        print(f"  {device.kind}#{device.device_id}: queues on DP cpu "
              f"{device.service.cpu_id}")

    # Tenant I/O through the new devices.
    net_latencies, blk_latencies = [], []

    def tenant():
        vnic = vm.vnics[0]
        for _ in range(200):
            done = env.event()
            vnic.submit(512, service_ns=1_500, done=done)
            result = yield done
            net_latencies.append(result.total_latency_ns)
            yield env.timeout(100 * MICROSECONDS)

    env.process(tenant(), name="tenant-net")
    env.run(until=env.now + 50 * MILLISECONDS)

    net_latencies.sort()
    print(f"\nTenant network I/O: {len(net_latencies)} packets, "
          f"p50 {net_latencies[len(net_latencies) // 2] / 1e3:.1f} us, "
          f"p99 {net_latencies[int(len(net_latencies) * 0.99)] / 1e3:.1f} us")

    print("\nDestroying the VM...")
    host.destroy_vm(vm)
    print(f"Host now: {host}")


if __name__ == "__main__":
    main()
