#!/usr/bin/env python
"""Deploy Tai Chi on a custom SmartNIC: a BlueField-3-like 16-core board.

Demonstrates the cross-platform claim: the framework only needs CPUs with
virtualization support and a programmable accelerator exposing the
workload-probe hook — both parameters of :class:`BoardConfig`.  Also shows
the Section 8 inverse adaptation: shrinking the CP partition to grow DP
throughput while CP work rides on harvested idle cycles.

Run:  python examples/custom_smartnic.py
"""

from repro.baselines import StaticPartitionDeployment, TaiChiDeployment
from repro.hw import AcceleratorParams, BoardConfig
from repro.sim import MILLISECONDS
from repro.workloads import run_sockperf_tcp, run_synth_cp

BLUEFIELD_LIKE = dict(
    total_cpus=16,
    pcie_bandwidth_gbps=126.0,          # Gen4 x8
    accelerator=AcceleratorParams(preprocess_ns=2_200, transfer_ns=400),
)


def throughput(deployment_cls, config, label):
    deployment = deployment_cls(seed=9, board_config=config)
    deployment.warmup()
    result = run_sockperf_tcp(deployment, 40 * MILLISECONDS)
    print(f"{label:34s} {result['cps']:>12,.0f} conn/s")
    return result["cps"]


def main():
    print("BlueField-3-like board: 16 ARM cores, faster accelerator\n")

    standard = BoardConfig(dp_cpus=12, cp_cpus=4, **BLUEFIELD_LIKE)
    boosted = BoardConfig(dp_cpus=14, cp_cpus=2, **BLUEFIELD_LIKE)

    base = throughput(StaticPartitionDeployment, standard,
                      "static 12 DP / 4 CP")
    boost = throughput(TaiChiDeployment, boosted,
                       "Tai Chi 14 DP / 2 CP (Section 8)")
    print(f"\nDP throughput gain from repartitioning: "
          f"{(boost / base - 1) * 100:+.1f}%")

    print("\nCP sanity check (8 concurrent 50 ms tasks):")
    cp_static = run_synth_cp(
        StaticPartitionDeployment(seed=9, board_config=standard), 8, rounds=1)
    cp_boost = run_synth_cp(
        TaiChiDeployment(seed=9, board_config=boosted), 8, rounds=1)
    print(f"  static 4-CPU CP partition : {cp_static['avg_exec_ms']:6.1f} ms avg")
    print(f"  Tai Chi 2-CPU + harvested : {cp_boost['avg_exec_ms']:6.1f} ms avg")
    print("\nCP performance holds despite half the dedicated CPUs, because")
    print("idle data-plane cycles back the vCPUs.")


if __name__ == "__main__":
    main()
