#!/usr/bin/env python
"""VM startup storm: the workload that motivates the paper.

A burst of VM-creation requests arrives at a high-density node.  Device
initialization is control-plane work; with the static partition it queues
on 4 CPUs and blows through the startup SLO, while Tai Chi harvests idle
data-plane cycles and keeps startups inside the SLO.

Run:  python examples/vm_startup_storm.py
"""

from repro.baselines import StaticPartitionDeployment, TaiChiDeployment
from repro.cp.device_mgmt import DeviceManager
from repro.cp.orchestration import Orchestrator
from repro.sim import MILLISECONDS, SECONDS
from repro.workloads.background import start_cp_background

DENSITY = 4.0
STORM_BASE = 16


def run_storm(deployment_cls, label):
    deployment = deployment_cls(seed=7)
    start_cp_background(deployment, n_monitors=8, rolling_tasks=4)
    manager = DeviceManager(deployment.board, deployment.cp_affinity)
    orchestrator = Orchestrator(manager, density=DENSITY,
                                base_storm_size=STORM_BASE)
    deployment.warmup()
    requests = orchestrator.launch_storm()
    env = deployment.env
    env.run(until=env.any_of([
        env.all_of([request.done for request in requests]),
        env.timeout(120 * SECONDS),
    ]))
    startups = orchestrator.startup_times_ns()
    slo = manager.params.startup_slo_ns
    avg = sum(startups) / len(startups)
    worst = max(startups)
    violations = sum(1 for value in startups if value > slo)
    print(f"{label:22s} VMs={len(startups):3d}  "
          f"avg={avg / MILLISECONDS:7.1f} ms  "
          f"worst={worst / MILLISECONDS:7.1f} ms  "
          f"SLO violations={violations}/{len(startups)}")
    return avg


def main():
    print(f"Startup storm: {int(STORM_BASE * DENSITY)} VMs at density x{DENSITY:.0f}, "
          f"SLO = 250 ms\n")
    baseline = run_storm(StaticPartitionDeployment, "static partition")
    taichi = run_storm(TaiChiDeployment, "Tai Chi")
    print(f"\nTai Chi startup-time reduction: {baseline / taichi:.2f}x")


if __name__ == "__main__":
    main()
