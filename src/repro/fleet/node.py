"""One fleet node end to end: build, load, run, summarize.

:func:`run_node` is the process-pool worker — a module-level function
taking one plain-dict payload and returning one plain-dict summary, so
it pickles across :class:`~concurrent.futures.ProcessPoolExecutor`
boundaries.  The simulation itself is the shared production-soak driver
(:func:`repro.scenario.soak.run_soak`) parameterized by the node's
embedded :class:`~repro.scenario.spec.Scenario`; this module only adds
the seed derivation, observability capture, and invariant verdicts.

Determinism contract: the summary is a pure function of (payload), with
the node's seed derived from the fleet root via
:func:`~repro.sim.rng.derive_seed` — no wall-clock, no process-global
state, no dependence on which worker ran it.  ``FleetRunner`` leans on
this to produce byte-identical reports at any ``--jobs`` level.
"""

import os

from repro.fleet.durability import failure_envelope, maybe_inject_chaos

# The canonical attainment helper lives in repro.metrics.stats; re-exported
# because the aggregator and tests historically import it from here.
from repro.fleet.spec import NodeSpec
from repro.metrics.stats import attainment_pct  # noqa: F401
from repro.obs import observe, write_jsonl
from repro.scenario.soak import run_soak
from repro.sim.rng import derive_seed


def node_seed(root_seed, node_id):
    """The derived seed a node simulates under (shared with tests)."""
    return derive_seed(root_seed, "fleet-node", node_id)


def run_node(payload):
    """Simulate one node; returns its picklable summary dict.

    Payload keys: ``node`` (NodeSpec dict), ``root_seed``,
    ``duration_ns``, ``drain_ns``, ``dp_slo_us``, ``fault_scale``,
    ``capture_path`` (JSONL target or None), ``check_invariants``,
    ``raw_samples`` (ship raw sample arrays; when false — the fleet
    default — the summary carries only the mergeable sketches and the
    derived stats), ``telemetry_dir`` (per-node snapshot-series JSONL
    target dir or None), ``telemetry_interval_ms`` and ``spans``
    (causal request tracing: the summary gains per-channel tail
    exemplars the aggregator pools into the fleet worst-request table).

    Containment contract: this worker *never raises*.  Any exception —
    including an injected ``chaos`` fault for this ``attempt`` — comes
    back as a :func:`~repro.fleet.durability.failure_envelope` built
    here in the worker, so the traceback tail reflects the real raise
    site and the envelope is byte-identical at any ``--jobs`` level.
    (A chaos entry of kind ``"crash"`` in a pooled run is the one
    exception: it hard-exits the process to exercise the pool-rebuild
    path.)
    """
    node_id = (payload.get("node") or {}).get("node_id", "?")
    attempt = int(payload.get("attempt", 1))
    try:
        maybe_inject_chaos(payload.get("chaos"), node_id, attempt,
                           parallel=bool(payload.get("parallel")))
        return _run_node(payload)
    except Exception as exc:
        return failure_envelope(node_id, attempt, exc)


def _run_node(payload):
    node = NodeSpec.from_dict(payload["node"])
    capture_path = payload.get("capture_path")
    check_invariants = bool(payload.get("check_invariants", False))
    telemetry = _telemetry_config(payload, node.node_id)
    with observe(trace=capture_path is not None,
                 check_invariants=check_invariants) as session:
        summary = run_soak(
            node.scenario,
            seed=node_seed(payload["root_seed"], node.node_id),
            duration_ns=int(payload["duration_ns"]),
            drain_ns=int(payload["drain_ns"]),
            dp_slo_us=float(payload["dp_slo_us"]),
            fault_scale=float(payload.get("fault_scale", 1.0)),
            label=node.node_id,
            telemetry=telemetry,
            spans=bool(payload.get("spans", False)),
        )
        if capture_path is not None:
            write_jsonl(capture_path, session.streams)
            summary["capture_path"] = capture_path
        violations = session.violations() if check_invariants else []
        summary["metrics"] = _deterministic_metrics(session.metrics)
    summary["invariants"] = {
        "checked": check_invariants,
        "violations": len(violations),
        "ok": not violations,
    }
    if not payload.get("raw_samples", True):
        # The sketches carry the distributions; the arrays are the O(n)
        # payload the streaming pipeline exists to avoid shipping.
        del summary["dp_samples_us"]
        del summary["startup_samples_ms"]
    return summary


def _telemetry_config(payload, node_id):
    """Build the node's TelemetryConfig from its payload (or None)."""
    telemetry_dir = payload.get("telemetry_dir")
    if not telemetry_dir:
        return None
    from repro.obs.telemetry import TelemetryConfig

    return TelemetryConfig(
        interval_ms=float(payload.get("telemetry_interval_ms", 10.0)),
        jsonl_path=os.path.join(telemetry_dir,
                                f"{node_id}.telemetry.jsonl"),
        node_id=node_id,
    )


def _deterministic_metrics(registry):
    """Counters plus engine event totals — no wall-clock anywhere.

    ``sim.engine`` sources carry ``wall_time_s``; shipping that into node
    summaries would make reports differ run to run, so only the
    deterministic pieces survive.
    """
    snap = registry.snapshot()
    engine_events = 0
    engine_skipped = 0
    for name, profile in snap["sources"].items():
        if name.split("#")[0] == "sim.engine":
            engine_events += profile["events_processed"]
            engine_skipped += profile.get("events_skipped", 0)
    return {"counters": snap["counters"], "engine_events": engine_events,
            "engine_events_skipped": engine_skipped}
