"""One fleet node end to end: build, load, run, summarize.

:func:`run_node` is the process-pool worker — a module-level function
taking one plain-dict payload and returning one plain-dict summary, so
it pickles across :class:`~concurrent.futures.ProcessPoolExecutor`
boundaries.  The simulation it runs is the production-soak shape (bursty
DP background, CP hum, tenant latency probes, VM-creation storms through
the host/eNIC lifecycle) parameterized by the node's
:class:`~repro.fleet.spec.NodeSpec`.

Determinism contract: the summary is a pure function of (payload), with
the node's seed derived from the fleet root via
:func:`~repro.sim.rng.derive_seed` — no wall-clock, no process-global
state, no dependence on which worker ran it.  ``FleetRunner`` leans on
this to produce byte-identical reports at any ``--jobs`` level.
"""

from repro.baselines import build_deployment
from repro.faults.session import active_fault_plan
from repro.fleet.spec import NodeSpec, TRAFFIC_PROFILES
from repro.hw.host import HostNode, VMSpec
from repro.hw.packet import IORequest, PacketKind
from repro.metrics import LatencyRecorder
from repro.metrics.stats import summarize
from repro.obs import observe, write_jsonl
from repro.sim.rng import derive_seed
from repro.sim.units import MICROSECONDS, MILLISECONDS

#: Per-node probe-sample retention; beyond this the recorder's reservoir
#: keeps percentiles honest but the summary stops shipping raw samples.
_SAMPLE_CAP = 50_000

#: ``WorkloadMix.dp_utilization`` is offered load relative to this nominal
#: DP partition size, so a node that repartitions CPUs (``dp_boost``, or
#: type-2 losing one to QEMU) sees the *same* total traffic spread over
#: its actual service count — capacity changes show up in latency, not in
#: offered work.
_NOMINAL_DP_SERVICES = 8


def node_seed(root_seed, node_id):
    """The derived seed a node simulates under (shared with tests)."""
    return derive_seed(root_seed, "fleet-node", node_id)


def attainment_pct(within, total):
    """SLO attainment with the vacuous case pinned at 100 (no samples =
    no violations), so short smoke runs don't read as fleet-wide outages."""
    if total <= 0:
        return 100.0
    return 100.0 * within / total


def run_node(payload):
    """Simulate one node; returns its picklable summary dict.

    Payload keys: ``node`` (NodeSpec dict), ``root_seed``,
    ``duration_ns``, ``drain_ns``, ``dp_slo_us``, ``fault_scale``,
    ``capture_path`` (JSONL target or None), ``check_invariants``.
    """
    node = NodeSpec.from_dict(payload["node"])
    capture_path = payload.get("capture_path")
    check_invariants = bool(payload.get("check_invariants", False))
    with observe(trace=capture_path is not None,
                 check_invariants=check_invariants) as session:
        summary = _simulate(
            node,
            seed=node_seed(payload["root_seed"], node.node_id),
            duration_ns=int(payload["duration_ns"]),
            drain_ns=int(payload["drain_ns"]),
            dp_slo_us=float(payload["dp_slo_us"]),
            fault_scale=float(payload.get("fault_scale", 1.0)),
        )
        if capture_path is not None:
            write_jsonl(capture_path, session.streams)
            summary["capture_path"] = capture_path
        violations = session.violations() if check_invariants else []
        summary["metrics"] = _deterministic_metrics(session.metrics)
    summary["invariants"] = {
        "checked": check_invariants,
        "violations": len(violations),
        "ok": not violations,
    }
    return summary


def _simulate(node, seed, duration_ns, drain_ns, dp_slo_us, fault_scale):
    from repro.workloads.background import (
        start_cp_background, start_dp_background,
    )

    plan = node.fault_plan()
    if plan is not None and fault_scale != 1.0:
        plan = plan.scaled(fault_scale)
    with active_fault_plan(plan):
        deployment = build_deployment(node.deployment, seed=seed)
    if node.dp_boost:
        from repro.core import DynamicRepartitioner

        deployment.warmup()
        DynamicRepartitioner(deployment).cp_to_dp(node.dp_boost)
    if node.degradation:
        deployment.taichi.enable_degradation()

    mix = node.workload
    per_service_util = min(
        mix.dp_utilization * _NOMINAL_DP_SERVICES / len(deployment.services),
        0.95)
    start_dp_background(deployment, utilization=per_service_util,
                        burstiness=TRAFFIC_PROFILES[node.traffic])
    start_cp_background(deployment, n_monitors=mix.n_monitors,
                        rolling_tasks=mix.rolling_tasks)
    deployment.warmup()
    env = deployment.env
    board = deployment.board
    host = HostNode(deployment)

    probe_latency = LatencyRecorder(name=f"{node.node_id}-probe",
                                    cap=_SAMPLE_CAP)

    def latency_probe():
        rng = deployment.rng.stream("fleet-probe")
        period_ns = mix.probe_period_us * MICROSECONDS
        while True:
            queue = int(rng.integers(0, 8))
            done = env.event()
            done.callbacks.append(
                lambda event: probe_latency.record(
                    event.value.total_latency_ns))
            board.accelerator.submit(IORequest(
                PacketKind.NET_TX, 64, ("net", queue, 0),
                service_ns=1_500, done=done))
            yield env.timeout(int(rng.exponential(period_ns)))

    env.process(latency_probe(), name="latency-probe")

    def storm_source():
        rng = deployment.rng.stream("fleet-storms")
        period_ns = mix.vm_period_ms * MILLISECONDS
        while True:
            yield env.timeout(int(rng.exponential(period_ns)))
            for _ in range(int(rng.integers(mix.vm_batch_min,
                                            mix.vm_batch_max + 1))):
                host.create_vm(VMSpec(n_vblks=mix.vm_vblks))

    env.process(storm_source(), name="storm-source")
    deployment.run(env.now + duration_ns)
    # Drain: give in-flight startups a grace window.
    deployment.run(env.now + drain_ns)

    dp_samples_us = [value / MICROSECONDS for value in probe_latency.samples]
    dp_within = sum(1 for value in dp_samples_us if value <= dp_slo_us)

    startups_ms = sorted(
        vm.startup_time_ns() / MILLISECONDS for vm in host.vms
        if vm.startup_time_ns() is not None)
    slo_ns = host.manager.params.startup_slo_ns
    slo_ms = slo_ns / MILLISECONDS
    startup_within = sum(1 for value in startups_ms if value <= slo_ms)
    # A startup still pending past the SLO is a violation even though it
    # never produced a sample — a saturated control plane must not score
    # 100% by finishing almost nothing.  Requests younger than the SLO at
    # stream end are censored (they still had time), not counted.
    overdue_pending = sum(
        1 for vm in host.vms
        if vm.startup_time_ns() is None
        and env.now - vm.request.t_issued > slo_ns)
    startup_total = len(startups_ms) + overdue_pending

    injector = deployment.fault_injector
    summary = {
        "node_id": node.node_id,
        "deployment": node.deployment,
        "traffic": node.traffic,
        "seed": seed,
        "dp_samples_us": dp_samples_us,
        "dp_sample_count": probe_latency.count,
        "dp_latency_us": summarize(dp_samples_us, qs=(50, 90, 99, 99.9)),
        "dp_slo_us": dp_slo_us,
        "dp_within_slo": dp_within,
        "dp_slo_attainment_pct": attainment_pct(dp_within,
                                                len(dp_samples_us)),
        "startup_samples_ms": startups_ms,
        "startup_ms": summarize(startups_ms, qs=(50, 90, 99)),
        "startup_slo_ms": slo_ms,
        "startup_within_slo": startup_within,
        "startup_slo_total": startup_total,
        "startup_overdue_pending": overdue_pending,
        "startup_slo_attainment_pct": attainment_pct(startup_within,
                                                     startup_total),
        "vms_started": len(startups_ms),
        "vms_requested": len(host.vms),
        "faults": {
            "injected": injector.injected if injector else 0,
            "cleared": injector.cleared if injector else 0,
        },
    }
    return summary


def _deterministic_metrics(registry):
    """Counters plus engine event totals — no wall-clock anywhere.

    ``sim.engine`` sources carry ``wall_time_s``; shipping that into node
    summaries would make reports differ run to run, so only the
    deterministic pieces survive.
    """
    snap = registry.snapshot()
    engine_events = sum(
        profile["events_processed"]
        for name, profile in snap["sources"].items()
        if name.split("#")[0] == "sim.engine")
    return {"counters": snap["counters"], "engine_events": engine_events}
