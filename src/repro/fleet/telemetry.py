"""Fleet-level telemetry: merge per-node snapshot series, render `top`.

When ``taichi-experiments fleet --telemetry-dir DIR`` runs, every node
writes its own interval snapshot series (``<node>.telemetry.jsonl``,
via :class:`~repro.obs.telemetry.TelemetryJsonlWriter`).  This module is
the fleet-side read path:

* :func:`load_fleet_telemetry` finds and parses the per-node series;
* :func:`merge_interval_series` folds them into one fleet-wide series —
  counters sum, sketch deltas merge (in sorted node order, so the merged
  series is deterministic), gauges keep min/mean/max across nodes;
* :func:`write_fleet_telemetry` persists the merged series
  (``merged.jsonl``) plus a final-state OpenMetrics exposition
  (``fleet.openmetrics``) next to the per-node files;
* :func:`render_top` is ``taichi-experiments top``: a per-node fleet
  health table (tail latency, SLO attainment, probe health, active
  alerts) from a telemetry dir or a fleet JSON report.
"""

import glob
import json
import os

from repro.metrics.sketch import QuantileSketch
from repro.obs.telemetry import (
    TelemetrySnapshot,
    load_telemetry_jsonl,
    openmetrics_text,
)

_SUFFIX = ".telemetry.jsonl"


def load_fleet_telemetry(telemetry_dir):
    """``{node_id: (snapshots, meta)}`` from a fleet telemetry dir.

    Nodes come back in sorted node-id order — the canonical merge order.
    """
    out = {}
    for path in sorted(glob.glob(os.path.join(telemetry_dir,
                                              "*" + _SUFFIX))):
        node_id, snapshots, meta = load_telemetry_jsonl(path)
        out[node_id] = (snapshots, meta)
    return dict(sorted(out.items()))


def merge_interval_series(by_node):
    """Merge per-node snapshot series into one fleet series, by ``seq``.

    ``by_node`` maps node id to a snapshot list (or the ``(snapshots,
    meta)`` pairs :func:`load_fleet_telemetry` returns).  For each
    interval index present anywhere: counter totals/deltas sum across
    nodes, sketch deltas merge, and each gauge becomes a
    ``{"min", "mean", "max", "nodes"}`` spread (a fleet has no single
    run-queue depth).  Alerts union, tagged with their node.  Returns a
    list of plain dicts (``kind: "telemetry"``, ``stream: "fleet"``).
    """
    series = {}
    for node_id in sorted(by_node):
        snapshots = by_node[node_id]
        if isinstance(snapshots, tuple):
            snapshots = snapshots[0]
        for snapshot in snapshots:
            series.setdefault(snapshot.seq, []).append((node_id, snapshot))

    merged = []
    for seq in sorted(series):
        members = series[seq]
        counters = {}
        sketches = {}
        gauges = {}
        alerts = []
        t_start = min(snapshot.t_start_ns for _, snapshot in members)
        t_end = max(snapshot.t_end_ns for _, snapshot in members)
        for node_id, snapshot in members:
            for name, sample in snapshot.counters.items():
                bucket = counters.setdefault(name, {"total": 0, "delta": 0})
                bucket["total"] += sample.total
                bucket["delta"] += sample.delta
            for name, sketch in snapshot.sketches.items():
                if name in sketches:
                    sketches[name].merge(sketch)
                else:
                    sketches[name] = QuantileSketch.from_dict(
                        sketch.to_dict())
            for name, sample in snapshot.gauges.items():
                gauges.setdefault(name, []).append(sample.value)
            alerts.extend(f"{node_id}:{alert}" for alert in snapshot.alerts)
        merged.append({
            "kind": "telemetry",
            "stream": "fleet",
            "seq": seq,
            "t_start_ns": t_start,
            "t_end_ns": t_end,
            "nodes": len(members),
            "counters": {name: bucket
                         for name, bucket in sorted(counters.items())},
            "gauges": {
                name: {
                    "min": min(values),
                    "mean": sum(values) / len(values),
                    "max": max(values),
                    "nodes": len(values),
                }
                for name, values in sorted(gauges.items())
            },
            "sketches": {name: sketch.to_dict()
                         for name, sketch in sorted(sketches.items())},
            "alerts": alerts,
        })
    return merged


def write_fleet_telemetry(telemetry_dir, report=None):
    """Write ``merged.jsonl`` and ``fleet.openmetrics`` into the dir.

    The OpenMetrics exposition is the fleet's *final* state: cumulative
    counters summed over the merged series' deltas, last-interval gauge
    means, and the full-run merged sketches (all interval deltas folded
    together).  When ``report`` is given, its fleet-aggregate sketches
    (which cover every sample, not just ticked intervals) take
    precedence for the summary families.  Returns the merged series.
    """
    by_node = load_fleet_telemetry(telemetry_dir)
    merged = merge_interval_series(by_node)

    merged_path = os.path.join(telemetry_dir, "merged.jsonl")
    with open(merged_path, "w") as handle:
        handle.write(json.dumps({
            "pid": 0,
            "stream": "fleet",
            "kind": "telemetry_meta",
            "args": {
                "snapshots": len(merged),
                "dropped": sum(
                    int(meta.get("dropped", 0) or 0)
                    for _, meta in by_node.values()),
                "nodes": len(by_node),
                "mode": "merged",
                "stream_type": "telemetry",
            },
        }))
        handle.write("\n")
        for snapshot in merged:
            handle.write(json.dumps(snapshot))
            handle.write("\n")

    counters = {}
    gauges = {}
    sketches = {}
    for snapshot in merged:
        for name, bucket in snapshot["counters"].items():
            counters[name] = counters.get(name, 0) + bucket["delta"]
        for name, spread in snapshot["gauges"].items():
            gauges[name] = spread["mean"]
        for name, data in snapshot["sketches"].items():
            sketch = QuantileSketch.from_dict(data)
            if name in sketches:
                sketches[name].merge(sketch)
            else:
                sketches[name] = sketch
    if report is not None:
        fleet = report.get("aggregate", {}).get("fleet", {})
        for key, family in (("dp_sketch", "dp_rx_wait_us"),
                            ("startup_sketch", "vm_startup_ms")):
            data = fleet.get(key)
            if data:
                sketches[family] = QuantileSketch.from_dict(data)
    text = openmetrics_text(counters=counters, gauges=gauges,
                            sketches=sketches, labels={"fleet": "all"})
    with open(os.path.join(telemetry_dir, "fleet.openmetrics"),
              "w") as handle:
        handle.write(text)
    return merged


# -- `top`: the fleet health table ---------------------------------------------


def _node_row_from_snapshots(node_id, snapshots):
    """One health row from a node's snapshot series (last state wins)."""
    last = snapshots[-1] if snapshots else None
    dp = QuantileSketch.merged(
        snapshot.sketches["dp_rx_wait_us"] for snapshot in snapshots
        if "dp_rx_wait_us" in snapshot.sketches)
    gauges = last.signals() if last is not None else {}
    return {
        "node": node_id,
        "dp_p50_us": dp.percentile(50),
        "dp_p99_us": dp.percentile(99),
        "dp_slo_pct": gauges.get("dp_slo_attainment_pct"),
        "startup_slo_pct": gauges.get("startup_slo_attainment_pct"),
        "rq_depth": gauges.get("rq_depth"),
        "probe": ("ok" if gauges.get("probe_health", 1.0) >= 1.0
                  else "DEGRADED"),
        "engine": "-",  # snapshot series carry no engine self-profile
        "alerts": ",".join(last.alerts) if last is not None and last.alerts
        else "-",
    }


def _node_row_from_summary(node):
    """One health row from a fleet-report node summary."""
    dp = node.get("dp_latency_us", {})
    telemetry = node.get("telemetry") or {}
    alert_summary = telemetry.get("alerts") or {}
    active = alert_summary.get("active") or []
    return {
        "node": node["node_id"],
        "dp_p50_us": dp.get("p50"),
        "dp_p99_us": dp.get("p99"),
        "dp_slo_pct": node.get("dp_slo_attainment_pct"),
        "startup_slo_pct": node.get("startup_slo_attainment_pct"),
        "rq_depth": None,
        "probe": "ok",
        "engine": _engine_cell(node.get("engine")),
        "alerts": ",".join(active) if active else "-",
    }


def _engine_cell(engine):
    """Compact engine self-profile: events processed + fast-forward share.

    Reports predating the ``engine`` summary block render ``-``.
    """
    if not engine:
        return "-"
    processed = engine.get("events_processed", 0)
    ratio = engine.get("skipped_ratio", 0.0)
    return f"{_si(processed)}ev {ratio * 100.0:.0f}%ff"


def _si(n):
    if n >= 1_000_000:
        return f"{n / 1e6:.1f}M"
    if n >= 1_000:
        return f"{n / 1e3:.1f}k"
    return str(n)


def _tenant_rows(nodes):
    """Per-tenant health rows from node summaries carrying tenant blocks.

    Single-tenant nodes have no ``tenants`` block and contribute no rows,
    so the ``top`` output for pre-tenancy reports is unchanged.
    """
    rows = []
    for node in nodes:
        for tid in sorted(node.get("tenants") or {}):
            block = node["tenants"][tid]
            dp = block.get("dp_latency_us", {})
            rows.append({
                "node": node["node_id"],
                "tenant": tid,
                "weight": block.get("weight"),
                "dp_p99_us": dp.get("p99"),
                "dp_slo_pct": block.get("dp_slo_attainment_pct"),
                "startup_slo_pct": block.get("startup_slo_attainment_pct"),
            })
    return rows


def fleet_health_rows(source):
    """Health rows from a telemetry dir or a fleet JSON report path."""
    if os.path.isdir(source):
        by_node = load_fleet_telemetry(source)
        if not by_node:
            raise ValueError(
                f"no *{_SUFFIX} series found in {source!r}")
        return [_node_row_from_snapshots(node_id, snapshots)
                for node_id, (snapshots, _) in by_node.items()]
    with open(source) as handle:
        report = json.load(handle)
    nodes = report.get("nodes")
    if not nodes:
        raise ValueError(f"{source!r} is not a fleet report (no nodes)")
    return [_node_row_from_summary(node) for node in nodes]


def render_top(source):
    """The ``taichi-experiments top`` view: fleet health as a text table.

    Given a fleet JSON report from a spans-on run, a second table lists
    the fleet-wide worst requests (the pooled tail exemplars) under the
    health rows — node, request id, duration, dominant segment.  A
    degraded report (nodes failed terminally) adds a failed-node table
    with each node's failure kind, attempt count and error.
    """
    from repro.experiments.report import format_table

    worst_requests = {}
    failed_nodes = []
    coverage = None
    tenant_rows = []
    if os.path.isdir(source):
        rows = fleet_health_rows(source)
    else:
        with open(source) as handle:
            report = json.load(handle)
        nodes = report.get("nodes")
        if not nodes and report.get("tenants") and report.get("node_id"):
            # A bare multi-tenant soak summary: render it as a one-node
            # fleet so per-tenant rows are inspectable without a fleet
            # wrapper.  (Tenant-less summaries keep the old error.)
            nodes = [report]
            report = {}
        aggregate = report.get("aggregate") or {}
        failed_nodes = aggregate.get("failed_nodes") or []
        coverage = aggregate.get("coverage")
        if not nodes and not failed_nodes:
            raise ValueError(f"{source!r} is not a fleet report (no nodes)")
        rows = [_node_row_from_summary(node) for node in nodes or []]
        tenant_rows = _tenant_rows(nodes or [])
        worst_requests = aggregate.get("worst_requests") or {}
    worst = max(
        (row for row in rows if row["dp_p99_us"] is not None),
        key=lambda row: row["dp_p99_us"], default=None)
    alerting = [row["node"] for row in rows if row["alerts"] != "-"]
    degraded = [row["node"] for row in rows if row["probe"] != "ok"]
    lines = [f"== fleet top: {len(rows)} nodes =="]
    if rows:
        lines.append(format_table(rows))
    if tenant_rows:
        lines.append(f"== tenants: {len(tenant_rows)} rows ==")
        lines.append(format_table(tenant_rows))
    if worst is not None:
        lines.append(f"worst dp p99: {worst['node']} "
                     f"({worst['dp_p99_us']:.1f}us)")
    if degraded:
        lines.append(f"probe degraded: {', '.join(degraded)}")
    if failed_nodes:
        lines.append(
            f"== failed nodes: {len(failed_nodes)}"
            + (f" (coverage {coverage['fraction'] * 100.0:.1f}%)"
               if coverage else "") + " ==")
        lines.append(format_table([
            {"node": failure["node_id"], "kind": failure["kind"],
             "attempts": failure["attempts"],
             "error": failure["error"][:60]}
            for failure in failed_nodes
        ]))
    if alerting:
        lines.append(f"alerting: {', '.join(alerting)}")
    elif not degraded and not failed_nodes:
        lines.append("all nodes healthy")
    if worst_requests:
        request_rows = [
            {
                "channel": channel,
                "node": record["node_id"],
                "request": record["request"],
                "duration_ms": record["duration_ns"] / 1e6,
                "dominant": (f"{record['dominant']} "
                             f"({record['dominant_pct']:.0f}%)"),
            }
            for channel in sorted(worst_requests)
            for record in worst_requests[channel]
        ]
        lines.append(f"== worst requests: {len(request_rows)} ==")
        lines.append(format_table(request_rows))
    return "\n".join(lines)


def load_merged_series(telemetry_dir):
    """Parse ``merged.jsonl`` snapshot dicts (the head meta line is
    skipped; :func:`load_fleet_telemetry`-style callers read it there)."""
    path = os.path.join(telemetry_dir, "merged.jsonl")
    out = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                data = json.loads(line)
                if data.get("kind") == "telemetry":
                    out.append(data)
    return out


def snapshots_from_dicts(dicts):
    """Rebuild :class:`TelemetrySnapshot` objects from ``to_dict`` forms."""
    return [TelemetrySnapshot.from_dict(data) for data in dicts
            if data.get("kind") == "telemetry"]
