"""Declarative fleet scenarios: which boards, running what, under what.

A :class:`FleetSpec` describes a rack or pod of SmartNIC boards the way a
:class:`~repro.faults.plan.FaultPlan` describes a storm: plain data that
round-trips through JSON (``taichi-experiments fleet <spec.json>``) and
ships with named presets (``rack``, ``pod``).  Each :class:`NodeSpec`
picks a deployment class from :data:`repro.baselines.DEPLOYMENTS`, a
workload mix, a traffic profile, and optionally a per-node fault plan —
so one spec can express OSMOSIS-style mixed-tenant racks (latency-sharp
nodes next to throughput hogs next to a node riding out a probe outage).

Seeds are never stored per node: the runner derives every node's seed
from the fleet root via :func:`repro.sim.rng.derive_seed`, which is what
makes results byte-identical at any ``--jobs`` level.
"""

import json
from dataclasses import dataclass, replace

from repro.fleet.durability import RetryPolicy, normalize_chaos

# WorkloadMix and TRAFFIC_PROFILES moved to repro.scenario.spec with the
# scenario layer; re-exported here because fleet callers predate it.
from repro.scenario.spec import (  # noqa: F401
    Scenario,
    TRAFFIC_PROFILES,
    WorkloadMix,
)


class NodeSpec:
    """One SmartNIC board in the fleet: an id plus a :class:`Scenario`.

    A thin wrapper — the arm, workload mix, traffic profile, fault plan
    and dp_boost/degradation flags all live in the embedded scenario.
    The historical flat keyword surface (``deployment=``, ``traffic=``,
    ``workload=``, ``dp_boost=``, ``degradation=``, ``faults=``) still
    constructs, and the matching read-only properties still resolve, so
    existing specs, JSON files and callers keep working.
    """

    def __init__(self, node_id, scenario=None, *, deployment=None,
                 traffic=None, workload=None, knobs=None, dp_boost=None,
                 degradation=None, faults=None):
        if not isinstance(node_id, str) or not node_id:
            raise ValueError("node_id must be a non-empty string")
        self.node_id = node_id
        if scenario is not None:
            flat = {"deployment": deployment, "traffic": traffic,
                    "workload": workload, "knobs": knobs,
                    "dp_boost": dp_boost, "degradation": degradation,
                    "faults": faults}
            clashes = sorted(key for key, value in flat.items()
                             if value is not None)
            if clashes:
                raise ValueError(
                    f"pass either scenario= or flat node fields, not both "
                    f"(got scenario plus {clashes})")
            if isinstance(scenario, dict):
                scenario = Scenario.from_dict(scenario)
            if not isinstance(scenario, Scenario):
                raise ValueError(
                    f"scenario must be a Scenario or its dict, got "
                    f"{type(scenario).__name__}")
            self.scenario = scenario
        else:
            self.scenario = Scenario(
                arm=deployment if deployment is not None else "taichi",
                traffic=traffic if traffic is not None else "bursty",
                workload=(workload if workload is not None
                          else WorkloadMix()),
                knobs=knobs or {},
                dp_boost=dp_boost or 0,
                degradation=bool(degradation),
                faults=faults,
            )

    # -- Flat views into the embedded scenario ------------------------------------

    @property
    def deployment(self):
        return self.scenario.arm

    @property
    def traffic(self):
        return self.scenario.traffic

    @property
    def workload(self):
        return self.scenario.workload

    @property
    def dp_boost(self):
        return self.scenario.dp_boost

    @property
    def degradation(self):
        return self.scenario.degradation

    @property
    def faults(self):
        return self.scenario.faults

    def fault_plan(self):
        """Resolve the scenario's faults to a :class:`FaultPlan` (or None)."""
        return self.scenario.fault_plan()

    def to_dict(self):
        return {"node_id": self.node_id,
                "scenario": self.scenario.to_dict()}

    @classmethod
    def from_dict(cls, data):
        """Accept both the nested form and the historical flat form."""
        return cls(**data)

    def __repr__(self):
        return f"<NodeSpec {self.node_id!r} {self.scenario!r}>"


@dataclass
class FleetSpec:
    """A whole rack/pod: nodes plus the fleet-level clock and SLO knobs.

    ``duration_ms``/``drain_ms`` are per-node simulated time (the runner
    scales both); ``dp_slo_us`` is the fleet-wide data-plane latency SLO
    each probe sample is scored against.  The VM-startup SLO lives with
    each node's device manager, as in the single-board experiments.

    ``raw_samples`` makes every node ship its raw probe/startup sample
    arrays (the pre-sketch wire format) instead of mergeable quantile
    sketches; ``telemetry_interval_ms`` is the per-node snapshot cadence
    when the runner is given a telemetry directory.  ``spans`` turns on
    causal request tracing on every node: each summary then carries its
    tail exemplars and the fleet aggregate a ``worst_requests`` table.

    ``retry`` is the fleet's durability contract — a
    :class:`~repro.fleet.durability.RetryPolicy` (or its dict) giving
    every node its attempt budget, backoff and per-attempt timeout.
    ``chaos`` injects worker faults for durability testing:
    ``{node_id: N}`` fails that node's first N attempts (``-1`` = every
    attempt; dict form adds ``"kind": "exception" | "crash"``).  Both
    are plain data and round-trip through spec JSON.
    """

    name: str
    nodes: list
    seed: int = 0
    duration_ms: float = 400.0
    drain_ms: float = 200.0
    dp_slo_us: float = 300.0
    raw_samples: bool = False
    telemetry_interval_ms: float = 10.0
    spans: bool = False
    retry: object = None
    chaos: object = None

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("fleet name must be a non-empty string")
        self.nodes = [
            node if isinstance(node, NodeSpec) else NodeSpec.from_dict(node)
            for node in self.nodes
        ]
        if not self.nodes:
            raise ValueError("a fleet needs at least one node")
        seen = set()
        for node in self.nodes:
            if node.node_id in seen:
                raise ValueError(f"duplicate node_id {node.node_id!r}")
            seen.add(node.node_id)
        self.seed = int(self.seed)
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.drain_ms < 0:
            raise ValueError("drain_ms must be >= 0")
        if self.dp_slo_us <= 0:
            raise ValueError("dp_slo_us must be positive")
        self.raw_samples = bool(self.raw_samples)
        if self.telemetry_interval_ms <= 0:
            raise ValueError("telemetry_interval_ms must be positive")
        self.spans = bool(self.spans)
        if self.retry is not None:
            self.retry = RetryPolicy.from_value(self.retry)
        self.chaos = normalize_chaos(self.chaos)

    def with_seed(self, seed):
        """A copy rooted at a different seed (CLI ``--seed`` override)."""
        return replace(self, seed=int(seed), nodes=list(self.nodes))

    def subset(self, n_nodes):
        """A copy keeping only the first ``n_nodes`` (CLI ``--nodes``)."""
        n_nodes = int(n_nodes)
        if not 0 < n_nodes <= len(self.nodes):
            raise ValueError(
                f"--nodes must be in 1..{len(self.nodes)}, got {n_nodes}")
        return replace(self, nodes=list(self.nodes[:n_nodes]))

    def to_dict(self):
        data = {
            "name": self.name,
            "seed": self.seed,
            "duration_ms": self.duration_ms,
            "drain_ms": self.drain_ms,
            "dp_slo_us": self.dp_slo_us,
            "nodes": [node.to_dict() for node in self.nodes],
        }
        if self.raw_samples:
            data["raw_samples"] = True
        if self.telemetry_interval_ms != 10.0:
            data["telemetry_interval_ms"] = self.telemetry_interval_ms
        if self.spans:
            data["spans"] = True
        if self.retry is not None:
            data["retry"] = self.retry.to_dict()
        if self.chaos:
            data["chaos"] = {node_id: dict(entry)
                             for node_id, entry in self.chaos.items()}
        return data

    def to_json(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_dict(cls, data):
        return cls(**data)

    @classmethod
    def from_json(cls, path):
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    @classmethod
    def preset(cls, name):
        try:
            factory = PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown fleet preset {name!r}; "
                f"choose from {sorted(PRESETS)}") from None
        return factory()

    def __len__(self):
        return len(self.nodes)

    def __repr__(self):
        return f"<FleetSpec {self.name!r} nodes={len(self.nodes)}>"


def uniform_spec(name, deployment, n_nodes, seed=0, duration_ms=400.0,
                 drain_ms=200.0, dp_slo_us=300.0, traffic="bursty",
                 dp_boost=0, **workload):
    """A homogeneous fleet: every node the same class and mix.

    The scale-out experiment builds two of these (all-Tai Chi vs.
    all-static) over the *same* node ids so both arms draw identical
    per-node seeds.
    """
    mix = WorkloadMix(**workload)
    nodes = [
        NodeSpec(node_id=f"node-{index:02d}", deployment=deployment,
                 traffic=traffic, workload=mix, dp_boost=dp_boost)
        for index in range(n_nodes)
    ]
    return FleetSpec(name=name, nodes=nodes, seed=seed,
                     duration_ms=duration_ms, drain_ms=drain_ms,
                     dp_slo_us=dp_slo_us)


def _rack():
    """8 boards, mixed tenants: the default top-of-rack scenario.

    Six Tai Chi nodes spanning the traffic profiles (one boosted, one
    riding out a probe outage behind the degradation layer) plus two
    static-partition stragglers for per-class comparison.
    """
    profiles = ["steady", "bursty", "spiky"]
    nodes = []
    for index in range(6):
        mix = WorkloadMix(
            dp_utilization=(0.20, 0.30, 0.45)[index % 3],
            vm_period_ms=(150.0, 100.0)[index % 2],
        )
        nodes.append(NodeSpec(
            node_id=f"rack-{index:02d}",
            deployment="taichi",
            traffic=profiles[index % 3],
            workload=mix,
            dp_boost=2 if index == 4 else 0,
            degradation=index == 5,
            faults="probe_outage" if index == 5 else None,
        ))
    for index in range(6, 8):
        nodes.append(NodeSpec(
            node_id=f"rack-{index:02d}",
            deployment="static",
            traffic=profiles[index % 3],
            workload=WorkloadMix(dp_utilization=0.30),
        ))
    return FleetSpec(name="rack", nodes=nodes)


def _pod():
    """64 boards: 8 racks with rack-to-rack drift, 3:1 Tai Chi:static."""
    profiles = ["steady", "bursty", "spiky"]
    nodes = []
    for rack_index in range(8):
        for slot in range(8):
            index = rack_index * 8 + slot
            static = slot >= 6  # two static stragglers per rack
            mix = WorkloadMix(
                dp_utilization=0.20 + 0.05 * (rack_index % 4),
                vm_period_ms=90.0 + 20.0 * (slot % 3),
                vm_batch_max=8 + 2 * (rack_index % 2),
            )
            nodes.append(NodeSpec(
                node_id=f"pod-{rack_index}-{slot}",
                deployment="static" if static else "taichi",
                traffic=profiles[(rack_index + slot) % 3],
                workload=mix,
                degradation=(not static) and slot == 5,
                faults="probe_outage" if (not static and slot == 5
                                          and rack_index % 4 == 0) else None,
            ))
    return FleetSpec(name="pod", nodes=nodes)


PRESETS = {
    "rack": _rack,
    "pod": _pod,
}


def load_fleet_spec(spec):
    """Resolve a CLI ``fleet`` argument: preset name or JSON path."""
    if spec in PRESETS:
        return FleetSpec.preset(spec)
    if spec.endswith(".json"):
        return FleetSpec.from_json(spec)
    raise ValueError(
        f"fleet expects a preset ({sorted(PRESETS)}) or a .json "
        f"FleetSpec file, got {spec!r}")
