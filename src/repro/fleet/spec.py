"""Declarative fleet scenarios: which boards, running what, under what.

A :class:`FleetSpec` describes a rack or pod of SmartNIC boards the way a
:class:`~repro.faults.plan.FaultPlan` describes a storm: plain data that
round-trips through JSON (``taichi-experiments fleet <spec.json>``) and
ships with named presets (``rack``, ``pod``).  Each :class:`NodeSpec`
picks a deployment class from :data:`repro.baselines.DEPLOYMENTS`, a
workload mix, a traffic profile, and optionally a per-node fault plan —
so one spec can express OSMOSIS-style mixed-tenant racks (latency-sharp
nodes next to throughput hogs next to a node riding out a probe outage).

Seeds are never stored per node: the runner derives every node's seed
from the fleet root via :func:`repro.sim.rng.derive_seed`, which is what
makes results byte-identical at any ``--jobs`` level.
"""

import json
from dataclasses import dataclass, field, replace

from repro.baselines import DEPLOYMENTS
from repro.faults.plan import FaultPlan, PRESETS as FAULT_PRESETS

#: Traffic profile name -> burstiness knob of the DP background generator
#: (duty-cycle peak-to-mean; see ``start_dp_background``).
TRAFFIC_PROFILES = {
    "steady": 0.2,
    "bursty": 0.5,
    "spiky": 0.75,
}

#: Deployment classes that carry a live TaiChi instance (and thus accept
#: ``dp_boost`` / ``degradation``).
_TAICHI_CLASSES = frozenset({"taichi", "taichi-no-hw-probe", "taichi-vdp"})


@dataclass
class WorkloadMix:
    """Per-node load knobs: DP pressure, CP hum, and VM-creation density."""

    dp_utilization: float = 0.30
    n_monitors: int = 4
    rolling_tasks: int = 3
    probe_period_us: float = 400.0
    vm_period_ms: float = 120.0
    vm_batch_min: int = 4
    vm_batch_max: int = 10
    vm_vblks: int = 4

    def __post_init__(self):
        if not 0.0 < self.dp_utilization < 1.0:
            raise ValueError(
                f"dp_utilization must be in (0, 1), got {self.dp_utilization}")
        if self.n_monitors < 0 or self.rolling_tasks < 0:
            raise ValueError("n_monitors/rolling_tasks must be >= 0")
        if self.probe_period_us <= 0:
            raise ValueError("probe_period_us must be positive")
        if self.vm_period_ms <= 0:
            raise ValueError("vm_period_ms must be positive")
        if not 0 < self.vm_batch_min <= self.vm_batch_max:
            raise ValueError(
                "need 0 < vm_batch_min <= vm_batch_max, got "
                f"{self.vm_batch_min}..{self.vm_batch_max}")
        if self.vm_vblks < 0:
            raise ValueError("vm_vblks must be >= 0")

    def to_dict(self):
        return {
            "dp_utilization": self.dp_utilization,
            "n_monitors": self.n_monitors,
            "rolling_tasks": self.rolling_tasks,
            "probe_period_us": self.probe_period_us,
            "vm_period_ms": self.vm_period_ms,
            "vm_batch_min": self.vm_batch_min,
            "vm_batch_max": self.vm_batch_max,
            "vm_vblks": self.vm_vblks,
        }


@dataclass
class NodeSpec:
    """One SmartNIC board in the fleet.

    ``faults`` is either a preset name (``"storm"``), a FaultPlan dict,
    or a :class:`FaultPlan`; the runner scales it along with the node
    duration.  ``dp_boost`` moves that many CP pCPUs to the data plane
    after warmup (Section 8's inverse adaptation); ``degradation``
    installs the graceful-degradation layer.  Both require a
    Tai Chi-family deployment class.
    """

    node_id: str
    deployment: str = "taichi"
    traffic: str = "bursty"
    workload: WorkloadMix = field(default_factory=WorkloadMix)
    dp_boost: int = 0
    degradation: bool = False
    faults: object = None

    def __post_init__(self):
        if not isinstance(self.node_id, str) or not self.node_id:
            raise ValueError("node_id must be a non-empty string")
        if self.deployment not in DEPLOYMENTS:
            raise ValueError(
                f"unknown deployment class {self.deployment!r}; "
                f"choose from {sorted(DEPLOYMENTS)}")
        if self.traffic not in TRAFFIC_PROFILES:
            raise ValueError(
                f"unknown traffic profile {self.traffic!r}; "
                f"choose from {sorted(TRAFFIC_PROFILES)}")
        if isinstance(self.workload, dict):
            self.workload = WorkloadMix(**self.workload)
        self.dp_boost = int(self.dp_boost)
        if self.dp_boost < 0:
            raise ValueError("dp_boost must be >= 0")
        taichi_family = self.deployment in _TAICHI_CLASSES
        if self.dp_boost and not taichi_family:
            raise ValueError(
                f"dp_boost requires a Tai Chi deployment class, "
                f"got {self.deployment!r}")
        if self.degradation and not taichi_family:
            raise ValueError(
                f"degradation requires a Tai Chi deployment class, "
                f"got {self.deployment!r}")
        if isinstance(self.faults, str):
            if self.faults not in FAULT_PRESETS:
                raise ValueError(
                    f"unknown fault preset {self.faults!r}; "
                    f"choose from {sorted(FAULT_PRESETS)}")
        elif isinstance(self.faults, dict):
            self.faults = FaultPlan.from_dict(self.faults)
        elif self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ValueError(
                "faults must be a preset name, a FaultPlan dict, or a "
                f"FaultPlan, got {type(self.faults).__name__}")

    def fault_plan(self):
        """Resolve ``faults`` to a :class:`FaultPlan` (or None)."""
        if self.faults is None:
            return None
        if isinstance(self.faults, str):
            return FaultPlan.preset(self.faults)
        return self.faults

    def to_dict(self):
        data = {
            "node_id": self.node_id,
            "deployment": self.deployment,
            "traffic": self.traffic,
            "workload": self.workload.to_dict(),
        }
        if self.dp_boost:
            data["dp_boost"] = self.dp_boost
        if self.degradation:
            data["degradation"] = True
        if self.faults is not None:
            data["faults"] = (self.faults if isinstance(self.faults, str)
                              else self.faults.to_dict())
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


@dataclass
class FleetSpec:
    """A whole rack/pod: nodes plus the fleet-level clock and SLO knobs.

    ``duration_ms``/``drain_ms`` are per-node simulated time (the runner
    scales both); ``dp_slo_us`` is the fleet-wide data-plane latency SLO
    each probe sample is scored against.  The VM-startup SLO lives with
    each node's device manager, as in the single-board experiments.
    """

    name: str
    nodes: list
    seed: int = 0
    duration_ms: float = 400.0
    drain_ms: float = 200.0
    dp_slo_us: float = 300.0

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("fleet name must be a non-empty string")
        self.nodes = [
            node if isinstance(node, NodeSpec) else NodeSpec.from_dict(node)
            for node in self.nodes
        ]
        if not self.nodes:
            raise ValueError("a fleet needs at least one node")
        seen = set()
        for node in self.nodes:
            if node.node_id in seen:
                raise ValueError(f"duplicate node_id {node.node_id!r}")
            seen.add(node.node_id)
        self.seed = int(self.seed)
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.drain_ms < 0:
            raise ValueError("drain_ms must be >= 0")
        if self.dp_slo_us <= 0:
            raise ValueError("dp_slo_us must be positive")

    def with_seed(self, seed):
        """A copy rooted at a different seed (CLI ``--seed`` override)."""
        return replace(self, seed=int(seed), nodes=list(self.nodes))

    def subset(self, n_nodes):
        """A copy keeping only the first ``n_nodes`` (CLI ``--nodes``)."""
        n_nodes = int(n_nodes)
        if not 0 < n_nodes <= len(self.nodes):
            raise ValueError(
                f"--nodes must be in 1..{len(self.nodes)}, got {n_nodes}")
        return replace(self, nodes=list(self.nodes[:n_nodes]))

    def to_dict(self):
        return {
            "name": self.name,
            "seed": self.seed,
            "duration_ms": self.duration_ms,
            "drain_ms": self.drain_ms,
            "dp_slo_us": self.dp_slo_us,
            "nodes": [node.to_dict() for node in self.nodes],
        }

    def to_json(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_dict(cls, data):
        return cls(**data)

    @classmethod
    def from_json(cls, path):
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    @classmethod
    def preset(cls, name):
        try:
            factory = PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown fleet preset {name!r}; "
                f"choose from {sorted(PRESETS)}") from None
        return factory()

    def __len__(self):
        return len(self.nodes)

    def __repr__(self):
        return f"<FleetSpec {self.name!r} nodes={len(self.nodes)}>"


def uniform_spec(name, deployment, n_nodes, seed=0, duration_ms=400.0,
                 drain_ms=200.0, dp_slo_us=300.0, traffic="bursty",
                 dp_boost=0, **workload):
    """A homogeneous fleet: every node the same class and mix.

    The scale-out experiment builds two of these (all-Tai Chi vs.
    all-static) over the *same* node ids so both arms draw identical
    per-node seeds.
    """
    mix = WorkloadMix(**workload)
    nodes = [
        NodeSpec(node_id=f"node-{index:02d}", deployment=deployment,
                 traffic=traffic, workload=mix, dp_boost=dp_boost)
        for index in range(n_nodes)
    ]
    return FleetSpec(name=name, nodes=nodes, seed=seed,
                     duration_ms=duration_ms, drain_ms=drain_ms,
                     dp_slo_us=dp_slo_us)


def _rack():
    """8 boards, mixed tenants: the default top-of-rack scenario.

    Six Tai Chi nodes spanning the traffic profiles (one boosted, one
    riding out a probe outage behind the degradation layer) plus two
    static-partition stragglers for per-class comparison.
    """
    profiles = ["steady", "bursty", "spiky"]
    nodes = []
    for index in range(6):
        mix = WorkloadMix(
            dp_utilization=(0.20, 0.30, 0.45)[index % 3],
            vm_period_ms=(150.0, 100.0)[index % 2],
        )
        nodes.append(NodeSpec(
            node_id=f"rack-{index:02d}",
            deployment="taichi",
            traffic=profiles[index % 3],
            workload=mix,
            dp_boost=2 if index == 4 else 0,
            degradation=index == 5,
            faults="probe_outage" if index == 5 else None,
        ))
    for index in range(6, 8):
        nodes.append(NodeSpec(
            node_id=f"rack-{index:02d}",
            deployment="static",
            traffic=profiles[index % 3],
            workload=WorkloadMix(dp_utilization=0.30),
        ))
    return FleetSpec(name="rack", nodes=nodes)


def _pod():
    """64 boards: 8 racks with rack-to-rack drift, 3:1 Tai Chi:static."""
    profiles = ["steady", "bursty", "spiky"]
    nodes = []
    for rack_index in range(8):
        for slot in range(8):
            index = rack_index * 8 + slot
            static = slot >= 6  # two static stragglers per rack
            mix = WorkloadMix(
                dp_utilization=0.20 + 0.05 * (rack_index % 4),
                vm_period_ms=90.0 + 20.0 * (slot % 3),
                vm_batch_max=8 + 2 * (rack_index % 2),
            )
            nodes.append(NodeSpec(
                node_id=f"pod-{rack_index}-{slot}",
                deployment="static" if static else "taichi",
                traffic=profiles[(rack_index + slot) % 3],
                workload=mix,
                degradation=(not static) and slot == 5,
                faults="probe_outage" if (not static and slot == 5
                                          and rack_index % 4 == 0) else None,
            ))
    return FleetSpec(name="pod", nodes=nodes)


PRESETS = {
    "rack": _rack,
    "pod": _pod,
}


def load_fleet_spec(spec):
    """Resolve a CLI ``fleet`` argument: preset name or JSON path."""
    if spec in PRESETS:
        return FleetSpec.preset(spec)
    if spec.endswith(".json"):
        return FleetSpec.from_json(spec)
    raise ValueError(
        f"fleet expects a preset ({sorted(PRESETS)}) or a .json "
        f"FleetSpec file, got {spec!r}")
