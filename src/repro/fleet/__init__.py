"""``repro.fleet`` — parallel multi-board scale-out.

Every experiment elsewhere in this repo simulates exactly one SmartNIC;
the paper's headline claim is a hyperscale *fleet* (Section 6.6: three
years in production, no I/O SLO violations fleet-wide).  This subsystem
closes that gap: a declarative :class:`FleetSpec` describes a rack/pod
of boards (per-node deployment class, workload mix, traffic profile,
optional fault plan), :class:`FleetRunner` fans the nodes out across a
process pool, and :mod:`repro.fleet.aggregate` merges the per-node
summaries into fleet-wide percentiles, SLO-attainment rates and
per-deployment-class comparisons.

Typical use from the CLI::

    taichi-experiments fleet rack --jobs 4 --out fleet.md

or programmatically::

    from repro.fleet import FleetSpec, run_fleet

    report = run_fleet(FleetSpec.preset("rack"), jobs=4, scale=0.25)
    print(report["aggregate"]["fleet"]["dp_latency_us"]["p99"])

See ``docs/fleet.md`` for the scenario format and determinism contract.
"""

from repro.fleet.aggregate import (
    aggregate_fleet,
    aggregate_nodes,
    aggregate_tenants,
    worst_nodes,
)
from repro.fleet.durability import (
    CheckpointError,
    FleetCheckpoint,
    FleetRunFailed,
    InjectedWorkerFault,
    NodeFailure,
    RetryPolicy,
    verify_fleet_report,
)
from repro.fleet.node import node_seed, run_node
from repro.fleet.pool import Outcome, PoolTaskError, pool_imap, pool_map, pool_outcomes
from repro.fleet.report import (
    canonical_report,
    fleet_markdown,
    format_fleet_text,
    write_fleet_json,
    write_fleet_md,
)
from repro.fleet.runner import FleetRunner, run_fleet
from repro.fleet.telemetry import (
    fleet_health_rows,
    load_fleet_telemetry,
    load_merged_series,
    merge_interval_series,
    render_top,
    write_fleet_telemetry,
)
from repro.fleet.spec import (
    FleetSpec,
    NodeSpec,
    PRESETS,
    TRAFFIC_PROFILES,
    WorkloadMix,
    load_fleet_spec,
    uniform_spec,
)

__all__ = [
    "CheckpointError",
    "FleetCheckpoint",
    "FleetRunFailed",
    "FleetRunner",
    "FleetSpec",
    "InjectedWorkerFault",
    "NodeFailure",
    "NodeSpec",
    "Outcome",
    "PRESETS",
    "PoolTaskError",
    "RetryPolicy",
    "TRAFFIC_PROFILES",
    "WorkloadMix",
    "aggregate_fleet",
    "aggregate_nodes",
    "aggregate_tenants",
    "canonical_report",
    "fleet_markdown",
    "format_fleet_text",
    "fleet_health_rows",
    "load_fleet_spec",
    "load_fleet_telemetry",
    "load_merged_series",
    "merge_interval_series",
    "node_seed",
    "pool_imap",
    "pool_map",
    "pool_outcomes",
    "render_top",
    "run_fleet",
    "run_node",
    "uniform_spec",
    "verify_fleet_report",
    "worst_nodes",
    "write_fleet_json",
    "write_fleet_telemetry",
    "write_fleet_md",
]
