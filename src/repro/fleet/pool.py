"""Process-pool fan-out shared by the fleet runner and ``validate --jobs``.

One helper, two properties the callers rely on:

* **order**: results stream back in *input* order regardless of which
  worker finishes first, so reports and progress output are identical at
  any ``--jobs`` level;
* **degradation**: ``jobs <= 1`` (or a single item) never touches
  ``multiprocessing`` at all — it is byte-for-byte the old serial path,
  which keeps single-job runs debuggable and CI environments without
  usable process pools working.

Workers must be module-level functions taking one picklable payload and
returning one picklable result (the ``ProcessPoolExecutor`` contract).
"""

from concurrent.futures import ProcessPoolExecutor


def pool_imap(fn, payloads, jobs=1):
    """Yield ``fn(payload)`` for each payload, in input order.

    With ``jobs > 1`` payloads are fanned out across a process pool;
    consumption drives the pool, so callers can print progress as each
    in-order result lands.
    """
    payloads = list(payloads)
    if jobs <= 1 or len(payloads) <= 1:
        for payload in payloads:
            yield fn(payload)
        return
    with ProcessPoolExecutor(max_workers=min(int(jobs), len(payloads))) as pool:
        yield from pool.map(fn, payloads)


def pool_map(fn, payloads, jobs=1):
    """Like :func:`pool_imap` but collected into a list."""
    return list(pool_imap(fn, payloads, jobs=jobs))
