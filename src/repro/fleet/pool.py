"""Process-pool fan-out shared by the fleet runner and ``validate --jobs``.

Two layers with different failure contracts:

* :func:`pool_imap` / :func:`pool_map` — the historical streaming API:
  results come back in *input* order regardless of completion order,
  ``jobs <= 1`` (or a single item) never touches ``multiprocessing``,
  and a worker exception aborts the stream — but wrapped in a
  :class:`PoolTaskError` naming the payload index (and label) that
  failed, instead of the bare traceback ``pool.map`` used to surface.
* :func:`pool_outcomes` — the durable API the fleet runner uses: every
  payload runs to a structured :class:`Outcome` (success value or a
  typed failure), failures are *contained* per payload instead of
  shared, a :class:`~repro.fleet.durability.RetryPolicy` re-runs failed
  attempts with backoff, a broken process pool is rebuilt and charged
  as a ``crash`` attempt against the nodes that were in flight, and a
  per-attempt wall-clock timeout sheds stuck workers.

Workers must be module-level functions taking one picklable payload and
returning one picklable result (the ``ProcessPoolExecutor`` contract).
"""

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.fleet.durability import RetryPolicy, failure_envelope

#: Floor for the event-loop wait slice when deadlines/backoffs are armed.
_MIN_WAIT_S = 0.01
#: Ceiling so a far-off deadline still lets completed futures drain.
_MAX_WAIT_S = 0.5


class PoolTaskError(RuntimeError):
    """A worker raised: carries which payload failed and the cause.

    Even on the final failed attempt the caller learns *which* unit of
    work died — ``index`` into the payload list and, when the caller
    supplied a ``label`` function, the originating node/experiment id.
    """

    def __init__(self, index, label, cause):
        self.index = index
        self.label = label
        self.cause = cause
        what = f"payload {index}"
        if label is not None:
            what += f" ({label!r})"
        super().__init__(f"pool worker failed on {what}: {cause!r}")


def pool_imap(fn, payloads, jobs=1, label=None):
    """Yield ``fn(payload)`` for each payload, in input order.

    With ``jobs > 1`` payloads are fanned out across a process pool via
    explicit future submission; consumption drives delivery, so callers
    can print progress as each in-order result lands.  A worker
    exception surfaces as :class:`PoolTaskError` naming the payload
    (remaining futures are cancelled); ``label`` maps a payload to a
    human-readable name for that error.
    """
    payloads = list(payloads)

    def _label(index):
        return label(payloads[index]) if label is not None else None

    if jobs <= 1 or len(payloads) <= 1:
        for index, payload in enumerate(payloads):
            try:
                yield fn(payload)
            except Exception as exc:
                raise PoolTaskError(index, _label(index), exc) from exc
        return
    with ProcessPoolExecutor(max_workers=min(int(jobs),
                                             len(payloads))) as pool:
        futures = [pool.submit(fn, payload) for payload in payloads]
        for index, future in enumerate(futures):
            try:
                yield future.result()
            except Exception as exc:
                for pending in futures[index + 1:]:
                    pending.cancel()
                raise PoolTaskError(index, _label(index), exc) from exc


def pool_map(fn, payloads, jobs=1, label=None):
    """Like :func:`pool_imap` but collected into a list."""
    return list(pool_imap(fn, payloads, jobs=jobs, label=label))


# -- The durable outcome API ---------------------------------------------------


@dataclass
class Outcome:
    """One payload's terminal result: a value or a typed failure."""

    index: int
    label: object = None
    value: object = None
    failure: dict = None
    attempts: int = 1

    @property
    def ok(self):
        return self.failure is None


@dataclass
class _Task:
    index: int
    payload: object
    label: object = None
    attempt: int = 1
    eligible_at: float = 0.0
    deadline: float = field(default=None)


def _raised_failure(exc, kind="exception"):
    """Parent-side failure record for an exception a worker *raised*.

    The backstop path: well-behaved fleet workers catch their own
    exceptions and return an envelope (so the traceback is captured at
    the raise site); this covers workers that raise anyway — e.g.
    payloads that fail to unpickle.
    """
    envelope = failure_envelope("?", 0, exc, kind=kind)
    return {"kind": kind, "error": envelope["error"],
            "traceback": envelope["traceback"]}


def pool_outcomes(fn, payloads, jobs=1, label=None, retry=None,
                  prepare=None, classify=None, on_outcome=None):
    """Run every payload to an :class:`Outcome`; failures never spread.

    * ``label(payload)`` names the unit of work (node id) on its outcome.
    * ``retry`` is a :class:`~repro.fleet.durability.RetryPolicy`;
      failed attempts re-run (same payload, so deterministic workers
      make a successful retry byte-identical to a first-try success)
      after the policy's backoff, up to ``max_attempts``.
    * ``prepare(payload, attempt, parallel)`` builds the per-attempt
      payload actually shipped to the worker (the fleet runner injects
      the attempt number and pool flag here).
    * ``classify(value)`` flags a *returned* value as a failure — the
      worker-side containment contract: workers return failure
      envelopes rather than raising, keeping envelopes byte-identical
      across ``--jobs`` levels.  A classified value becomes the
      outcome's ``failure``.
    * ``on_outcome(outcome)`` fires once per payload as its outcome
      finalizes (completion order) — the runner's checkpoint journal.

    Crash containment (``jobs > 1``): a ``BrokenProcessPool`` charges a
    ``crash`` attempt to every in-flight payload (the parent cannot
    know which worker died), rebuilds the pool, and requeues whatever
    still has attempts left.  A payload whose per-attempt wall-clock
    timeout (``retry.timeout_s``) expires is charged a ``timeout``
    attempt and the pool is rebuilt to shed the stuck worker; serial
    runs cannot preempt and ignore timeouts.

    Returns outcomes in input order.
    """
    payloads = list(payloads)
    retry = RetryPolicy.from_value(retry)
    if jobs <= 1 or len(payloads) <= 1:
        return _serial_outcomes(fn, payloads, label=label, retry=retry,
                                prepare=prepare, classify=classify,
                                on_outcome=on_outcome)
    return _parallel_outcomes(fn, payloads, jobs=jobs, label=label,
                              retry=retry, prepare=prepare,
                              classify=classify, on_outcome=on_outcome)


def _attempt_failure(value, exc, classify):
    """The failure record for one finished attempt, or None on success."""
    if exc is not None:
        return _raised_failure(exc)
    if classify is not None and classify(value):
        return dict(value)
    return None


def _serial_outcomes(fn, payloads, label, retry, prepare, classify,
                     on_outcome):
    outcomes = []
    for index, payload in enumerate(payloads):
        name = label(payload) if label is not None else None
        attempt = 1
        while True:
            delay = retry.delay_s(attempt)
            if delay:
                time.sleep(delay)
            prepared = (prepare(payload, attempt, False)
                        if prepare is not None else payload)
            value, exc = None, None
            try:
                value = fn(prepared)
            except Exception as caught:
                exc = caught
            failure = _attempt_failure(value, exc, classify)
            if failure is None:
                outcome = Outcome(index=index, label=name, value=value,
                                  attempts=attempt)
                break
            if attempt >= retry.max_attempts:
                outcome = Outcome(index=index, label=name, failure=failure,
                                  attempts=attempt)
                break
            attempt += 1
        outcomes.append(outcome)
        if on_outcome is not None:
            on_outcome(outcome)
    return outcomes


def _parallel_outcomes(fn, payloads, jobs, label, retry, prepare, classify,
                       on_outcome):
    workers = min(int(jobs), len(payloads))
    outcomes = [None] * len(payloads)
    pending = deque(
        _Task(index=index, payload=payload,
              label=label(payload) if label is not None else None)
        for index, payload in enumerate(payloads))
    waiting = []          # backoff-delayed retries
    in_flight = {}        # future -> task
    rebuilds = 0
    timed_out_any = False
    pool = ProcessPoolExecutor(max_workers=workers)

    def _finalize(task, value=None, failure=None):
        outcome = Outcome(index=task.index, label=task.label, value=value,
                          failure=failure, attempts=task.attempt)
        outcomes[task.index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    def _resolve(task, value, failure, now):
        """Finalize an attempt's result, or requeue it for a retry."""
        if failure is None:
            _finalize(task, value=value)
            return
        if task.attempt >= retry.max_attempts:
            _finalize(task, failure=failure)
            return
        task.attempt += 1
        task.eligible_at = now + retry.delay_s(task.attempt)
        waiting.append(task)

    def _submit(task, now):
        prepared = (prepare(task.payload, task.attempt, True)
                    if prepare is not None else task.payload)
        timeout = retry.timeout_for(task.attempt)
        task.deadline = (now + timeout) if timeout is not None else None
        in_flight[pool.submit(fn, prepared)] = task

    try:
        while pending or waiting or in_flight:
            now = time.monotonic()
            ready = [task for task in waiting if task.eligible_at <= now]
            for task in ready:
                waiting.remove(task)
                pending.append(task)
            while pending and len(in_flight) < workers:
                _submit(pending.popleft(), now)
            if not in_flight:
                # Everything left is backoff-delayed: sleep to the next
                # eligibility instant.
                time.sleep(max(min(task.eligible_at for task in waiting)
                               - time.monotonic(), _MIN_WAIT_S))
                continue
            bounds = [task.deadline - now for task in in_flight.values()
                      if task.deadline is not None]
            bounds.extend(task.eligible_at - now for task in waiting)
            wait_s = (max(min(min(bounds), _MAX_WAIT_S), _MIN_WAIT_S)
                      if bounds else None)
            done, _ = wait(list(in_flight), timeout=wait_s,
                           return_when=FIRST_COMPLETED)
            broken = False
            now = time.monotonic()
            for future in done:
                task = in_flight.pop(future)
                value, exc = None, None
                try:
                    value = future.result()
                except BrokenProcessPool as caught:
                    # The pool died while this task was in flight; the
                    # parent cannot tell culprit from bystander, so the
                    # crash attempt is charged to each.
                    broken = True
                    _resolve(task, None,
                             {"kind": "crash",
                              "error": f"worker process crashed "
                                       f"(attempt {task.attempt}): "
                                       f"{caught!r}",
                              "traceback": []}, now)
                    continue
                except Exception as caught:
                    exc = caught
                _resolve(task, value, _attempt_failure(value, exc, classify),
                         now)
            expired = [future for future, task in in_flight.items()
                       if task.deadline is not None and now > task.deadline]
            for future in expired:
                task = in_flight.pop(future)
                timed_out_any = True
                broken = True   # rebuild below to shed the stuck worker
                _resolve(task, None,
                         {"kind": "timeout",
                          "error": f"attempt {task.attempt} exceeded "
                                   f"{retry.timeout_for(task.attempt):g}s "
                                   f"wall-clock timeout",
                          "traceback": []}, now)
            if broken:
                # Innocent in-flight tasks are requeued without a charged
                # attempt; their old futures (if any still complete in the
                # abandoned pool) are simply ignored.
                for task in in_flight.values():
                    pending.appendleft(task)
                in_flight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=workers)
                rebuilds += 1
    finally:
        # A stuck worker would make a waiting shutdown hang forever.
        pool.shutdown(wait=not timed_out_any, cancel_futures=True)
    return outcomes
