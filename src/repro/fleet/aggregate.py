"""Merge per-node summaries into fleet-wide results.

The merge never averages per-node percentiles: averaging a p99 across
nodes is not the fleet p99 (the tail of the worst node dominates).  Two
exact-in-their-own-terms paths exist:

* **sketch path** (default) — every node ships mergeable
  :class:`~repro.metrics.sketch.QuantileSketch` snapshots of its dp
  rx-wait and VM-startup distributions; the aggregator merges them *in
  spec order* (the float ``sum`` makes merge order observable) and
  queries the merged sketch.  O(buckets) per node instead of O(samples),
  which is what lets a pod-scale fleet aggregate without shipping raw
  arrays; quantiles are within the sketch's relative-error bound
  ``alpha`` of the pooled-raw order statistics.
* **raw path** (``raw_samples`` fleets, and hand-built summaries) — the
  historical pooled-raw-sample re-summarize, kept bit-for-bit so
  existing callers see unchanged numbers.

SLO attainment always pools exact within/total counts (nodes ship them
as scalars), so attainment is exact on both paths.  Three views come out
of one pass: ``fleet`` (whole rack/pod), ``classes`` (per deployment
class — the Wave-style comparison), and ``worst_nodes`` (who to page;
ties break on node_id so reports stay deterministic).
"""

from repro.fleet.node import attainment_pct
from repro.metrics.sketch import is_sketch_dict, merge_sketch_dicts
from repro.metrics.stats import summarize

_DP_QS = (50, 90, 99, 99.9)
_STARTUP_QS = (50, 90, 99)


def _sketch_block(nodes, key, qs):
    """Merged-sketch summary block (or None if any node lacks the sketch)."""
    dicts = [node.get(key) for node in nodes]
    if not all(is_sketch_dict(data) for data in dicts):
        return None
    merged = merge_sketch_dicts(dicts)
    block = merged.summary(qs=qs)
    return block, merged.to_dict()


def aggregate_nodes(nodes):
    """One aggregate block over a list of node summaries."""
    dp_merged = _sketch_block(nodes, "dp_sketch", _DP_QS)
    if dp_merged is not None:
        dp_block, dp_sketch = dp_merged
        dp_total = sum(node.get("dp_slo_total",
                                len(node.get("dp_samples_us") or []))
                       for node in nodes)
    else:
        dp_pool = [value for node in nodes
                   for value in node.get("dp_samples_us") or []]
        dp_block, dp_sketch = summarize(dp_pool, qs=_DP_QS), None
        dp_total = len(dp_pool)
    dp_within = sum(node["dp_within_slo"] for node in nodes)

    startup_merged = _sketch_block(nodes, "startup_sketch", _STARTUP_QS)
    if startup_merged is not None:
        startup_block, startup_sketch = startup_merged
    else:
        startup_pool = [value for node in nodes
                        for value in node.get("startup_samples_ms") or []]
        startup_block, startup_sketch = (
            summarize(startup_pool, qs=_STARTUP_QS), None)
    startup_within = sum(node["startup_within_slo"] for node in nodes)
    startup_total = sum(node["startup_slo_total"] for node in nodes)

    block = {
        "nodes": len(nodes),
        "node_ids": [node["node_id"] for node in nodes],
        "dp_latency_us": dp_block,
        "dp_slo_attainment_pct": attainment_pct(dp_within, dp_total),
        "startup_ms": startup_block,
        "startup_slo_attainment_pct": attainment_pct(startup_within,
                                                     startup_total),
        "vms_started": sum(node["vms_started"] for node in nodes),
        "vms_requested": sum(node["vms_requested"] for node in nodes),
        "faults_injected": sum(node["faults"]["injected"] for node in nodes),
        "invariant_violations":
            sum(node["invariants"]["violations"] for node in nodes),
        "invariants_ok": all(node["invariants"]["ok"] for node in nodes),
    }
    if dp_sketch is not None:
        block["dp_sketch"] = dp_sketch
    if startup_sketch is not None:
        block["startup_sketch"] = startup_sketch
    return block


def aggregate_tenants(nodes):
    """Merge per-tenant blocks across nodes: one block per tenant id.

    Sketches merge in node order (same contract as the fleet merge);
    attainment pools exact within/total counts.  Nodes without tenant
    blocks contribute nothing — a mixed fleet aggregates the tenants of
    the multi-tenant nodes only.
    """
    by_tenant = {}
    for node in nodes:
        for tid, block in (node.get("tenants") or {}).items():
            by_tenant.setdefault(tid, []).append(block)
    out = {}
    for tid in sorted(by_tenant):
        blocks = by_tenant[tid]
        dp_merged = _sketch_block(blocks, "dp_sketch", _DP_QS)
        startup_merged = _sketch_block(blocks, "startup_sketch",
                                       _STARTUP_QS)
        dp_within = sum(block["dp_within_slo"] for block in blocks)
        dp_total = sum(block["dp_slo_total"] for block in blocks)
        startup_within = sum(block["startup_within_slo"]
                             for block in blocks)
        startup_total = sum(block["startup_slo_total"] for block in blocks)
        merged = {
            "nodes": len(blocks),
            "weight": blocks[0]["weight"],
            "dp_latency_us": (dp_merged[0] if dp_merged is not None
                              else None),
            "dp_slo_attainment_pct": attainment_pct(dp_within, dp_total),
            "startup_ms": (startup_merged[0]
                           if startup_merged is not None else None),
            "startup_slo_attainment_pct": attainment_pct(startup_within,
                                                         startup_total),
            "vms_started": sum(block["vms_started"] for block in blocks),
            "vms_requested": sum(block["vms_requested"]
                                 for block in blocks),
            "granted_ns": sum(block["granted_ns"] for block in blocks),
        }
        if dp_merged is not None:
            merged["dp_sketch"] = dp_merged[1]
        if startup_merged is not None:
            merged["startup_sketch"] = startup_merged[1]
        out[tid] = merged
    return out


def worst_nodes(nodes):
    """The pageable offenders: worst DP p99, worst startup attainment."""
    with_dp = [node for node in nodes
               if node["dp_latency_us"].get("count", 0)]
    with_startups = [node for node in nodes if node["vms_started"]]
    worst = {}
    if with_dp:
        node = max(with_dp, key=lambda n: (n["dp_latency_us"]["p99"],
                                           n["node_id"]))
        worst["dp_p99"] = {"node_id": node["node_id"],
                           "value_us": node["dp_latency_us"]["p99"]}
    if with_startups:
        node = min(with_startups,
                   key=lambda n: (n["startup_slo_attainment_pct"],
                                  n["node_id"]))
        worst["startup_attainment"] = {
            "node_id": node["node_id"],
            "value_pct": node["startup_slo_attainment_pct"],
        }
    return worst


#: Fleet-wide worst-request table depth (per channel).
_WORST_REQUESTS_K = 8


def worst_requests(nodes, k=_WORST_REQUESTS_K):
    """Pool per-node tail exemplars into the fleet worst-request table.

    Only nodes that ran with spans on ship an ``exemplars`` block; the
    pool keeps the compact fields (who, where, how long, what dominated)
    and drops the per-request span trees — the node summary still has
    those.  Sort is ``(-duration_ns, node_id, request)`` so the table is
    deterministic at any ``--jobs`` level.
    """
    pooled = {}
    for node in nodes:
        for channel, records in (node.get("exemplars") or {}).items():
            bucket = pooled.setdefault(channel, [])
            for record in records:
                bucket.append({
                    "node_id": node["node_id"],
                    "request": record["request"],
                    "duration_ns": record["duration_ns"],
                    "dominant": record["dominant"],
                    "dominant_pct": record["dominant_pct"],
                    "segments": dict(record["segments"]),
                })
    out = {}
    for channel in sorted(pooled):
        bucket = sorted(
            pooled[channel],
            key=lambda r: (-r["duration_ns"], r["node_id"], r["request"]))
        out[channel] = bucket[:k]
    return out


def aggregate_fleet(nodes, failures=None, expected_nodes=None):
    """The full fleet report block: fleet + per-class + worst nodes.

    ``failures`` (a list of normalized failure envelopes — node id,
    kind, attempts, error, traceback tail) makes the aggregate accept a
    *partial* fleet: every statistic and SLO-attainment figure is
    computed over the surviving nodes only, and the block gains a
    ``failed_nodes`` table (sorted by node id), ``degraded: true`` and
    a ``coverage`` fraction against ``expected_nodes`` (defaults to
    survivors + failures).  A failure-free fleet emits none of these
    keys, keeping healthy reports byte-identical to pre-durability
    ones.
    """
    classes = {}
    for node in nodes:
        classes.setdefault(node["deployment"], []).append(node)
    out = {
        "fleet": aggregate_nodes(nodes),
        "classes": {name: aggregate_nodes(members)
                    for name, members in sorted(classes.items())},
        "worst_nodes": worst_nodes(nodes),
    }
    requests = worst_requests(nodes)
    if requests:
        # Only present on spans-on fleets, keeping spans-off reports
        # byte-identical to pre-span ones.
        out["worst_requests"] = requests
    tenants = aggregate_tenants(nodes)
    if tenants:
        # Only present when some node ran multi-tenant, keeping
        # single-tenant fleet reports byte-identical to pre-tenancy ones.
        out["tenants"] = tenants
    failures = list(failures or ())
    if failures:
        expected = (int(expected_nodes) if expected_nodes is not None
                    else len(nodes) + len(failures))
        out["degraded"] = True
        out["coverage"] = {
            "expected": expected,
            "completed": len(nodes),
            "fraction": len(nodes) / expected if expected else 0.0,
        }
        out["failed_nodes"] = sorted(
            (dict(failure) for failure in failures),
            key=lambda failure: failure["node_id"])
    return out
