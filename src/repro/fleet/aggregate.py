"""Merge per-node summaries into fleet-wide results.

The merge works on *pooled raw samples*, not on per-node percentiles:
averaging a p99 across nodes is not the fleet p99 (the tail of the worst
node dominates), so every node summary ships its probe samples and the
aggregator re-summarizes the pool.  SLO attainment pools the within/total
counts the same way, which keeps the math exact even when nodes saw very
different sample volumes.

Three views come out of one pass:

* ``fleet`` — the whole rack/pod as one distribution;
* ``classes`` — the same aggregate per deployment class (Tai Chi vs.
  static vs. ...), the Wave-style fleet-level comparison;
* ``worst_nodes`` — who to page: the node with the worst DP p99 and the
  node with the worst startup-SLO attainment (ties break on node_id so
  reports stay deterministic).
"""

from repro.fleet.node import attainment_pct
from repro.metrics.stats import summarize

_DP_QS = (50, 90, 99, 99.9)
_STARTUP_QS = (50, 90, 99)


def aggregate_nodes(nodes):
    """One aggregate block over a list of node summaries."""
    dp_pool = [value for node in nodes for value in node["dp_samples_us"]]
    dp_within = sum(node["dp_within_slo"] for node in nodes)
    startup_pool = [value for node in nodes
                    for value in node["startup_samples_ms"]]
    startup_within = sum(node["startup_within_slo"] for node in nodes)
    startup_total = sum(node["startup_slo_total"] for node in nodes)
    return {
        "nodes": len(nodes),
        "node_ids": [node["node_id"] for node in nodes],
        "dp_latency_us": summarize(dp_pool, qs=_DP_QS),
        "dp_slo_attainment_pct": attainment_pct(dp_within, len(dp_pool)),
        "startup_ms": summarize(startup_pool, qs=_STARTUP_QS),
        "startup_slo_attainment_pct": attainment_pct(startup_within,
                                                     startup_total),
        "vms_started": sum(node["vms_started"] for node in nodes),
        "vms_requested": sum(node["vms_requested"] for node in nodes),
        "faults_injected": sum(node["faults"]["injected"] for node in nodes),
        "invariant_violations":
            sum(node["invariants"]["violations"] for node in nodes),
        "invariants_ok": all(node["invariants"]["ok"] for node in nodes),
    }


def worst_nodes(nodes):
    """The pageable offenders: worst DP p99, worst startup attainment."""
    with_dp = [node for node in nodes
               if node["dp_latency_us"].get("count", 0)]
    with_startups = [node for node in nodes if node["vms_started"]]
    worst = {}
    if with_dp:
        node = max(with_dp, key=lambda n: (n["dp_latency_us"]["p99"],
                                           n["node_id"]))
        worst["dp_p99"] = {"node_id": node["node_id"],
                           "value_us": node["dp_latency_us"]["p99"]}
    if with_startups:
        node = min(with_startups,
                   key=lambda n: (n["startup_slo_attainment_pct"],
                                  n["node_id"]))
        worst["startup_attainment"] = {
            "node_id": node["node_id"],
            "value_pct": node["startup_slo_attainment_pct"],
        }
    return worst


def aggregate_fleet(nodes):
    """The full fleet report block: fleet + per-class + worst nodes."""
    classes = {}
    for node in nodes:
        classes.setdefault(node["deployment"], []).append(node)
    return {
        "fleet": aggregate_nodes(nodes),
        "classes": {name: aggregate_nodes(members)
                    for name, members in sorted(classes.items())},
        "worst_nodes": worst_nodes(nodes),
    }
