"""Fleet report rendering: terminal text, markdown, and canonical JSON.

The JSON writer strips the report's ``timing`` key — wall-clock and job
count are operator information, not results — so the emitted file is the
*canonical* report: a pure function of (FleetSpec, seed, scale) that the
determinism tests compare byte for byte across ``--jobs`` levels.
"""

import json

from repro.experiments.report import format_table


def canonical_report(report):
    """The deterministic subset of a runner report.

    Strips wall-clock (``timing``) and host-path fields (capture and
    telemetry file locations): two runs of the same spec and seed are
    byte-identical here even when they wrote their sidecar files to
    different directories.
    """
    out = {key: value for key, value in report.items()
           if key not in ("timing", "telemetry_dir")}
    nodes = []
    for node in out.get("nodes", []):
        node = {key: value for key, value in node.items()
                if key != "capture_path"}
        telemetry = node.get("telemetry")
        if isinstance(telemetry, dict) and "path" in telemetry:
            node["telemetry"] = {key: value
                                 for key, value in telemetry.items()
                                 if key != "path"}
        nodes.append(node)
    if nodes:
        out["nodes"] = nodes
    return out


def _node_rows(nodes):
    rows = []
    for node in nodes:
        dp = node["dp_latency_us"]
        rows.append({
            "node": node["node_id"],
            "class": node["deployment"],
            "traffic": node["traffic"],
            "dp_p50_us": dp.get("p50", 0.0),
            "dp_p99_us": dp.get("p99", 0.0),
            "dp_slo_pct": node["dp_slo_attainment_pct"],
            "vms": node["vms_started"],
            "startup_slo_pct": node["startup_slo_attainment_pct"],
            "faults": node["faults"]["injected"],
            "invariants": ("ok" if node["invariants"]["ok"] else
                           f"{node['invariants']['violations']} violations")
            if node["invariants"]["checked"] else "-",
        })
    return rows


def _aggregate_lines(title, block):
    dp = block["dp_latency_us"]
    startup = block["startup_ms"]
    lines = [f"-- {title} --"]
    lines.append(
        f"  nodes: {block['nodes']}, VMs started: {block['vms_started']}, "
        f"faults injected: {block['faults_injected']}")
    if dp.get("count"):
        lines.append(
            f"  dp latency: n={dp['count']} p50={dp['p50']:.1f}us "
            f"p99={dp['p99']:.1f}us p99.9={dp['p99.9']:.1f}us "
            f"max={dp['max']:.1f}us")
    lines.append(
        f"  dp SLO attainment: {block['dp_slo_attainment_pct']:.2f}%")
    if startup.get("count"):
        lines.append(
            f"  vm startup: n={startup['count']} p50={startup['p50']:.1f}ms "
            f"p99={startup['p99']:.1f}ms max={startup['max']:.1f}ms")
    lines.append(
        f"  startup SLO attainment: "
        f"{block['startup_slo_attainment_pct']:.2f}%")
    return lines


def _failure_lines(aggregate):
    """The degraded-fleet block: coverage headline + failure table."""
    if not aggregate.get("degraded"):
        return []
    coverage = aggregate["coverage"]
    failed = aggregate["failed_nodes"]
    lines = [
        f"-- DEGRADED: {len(failed)} of {coverage['expected']} nodes "
        f"failed (coverage {coverage['fraction'] * 100.0:.1f}%, "
        f"SLOs scored over {coverage['completed']} survivors) --"
    ]
    lines.append(format_table([
        {
            "node": failure["node_id"],
            "kind": failure["kind"],
            "attempts": failure["attempts"],
            "error": failure["error"][:72],
        }
        for failure in failed
    ]))
    return lines


def format_fleet_text(report):
    """Render a runner report for the terminal (includes wall-clock)."""
    spec = report["spec"]
    aggregate = report["aggregate"]
    timing = report.get("timing", {})
    lines = [
        f"== fleet {spec['name']!r}: {len(spec['nodes'])} nodes, "
        f"seed {spec['seed']}, scale {report['scale']:g} =="
    ]
    if timing:
        extras = ""
        if timing.get("retried"):
            extras += f", {len(timing['retried'])} node(s) retried"
        if timing.get("resumed_nodes"):
            extras += (f", {len(timing['resumed_nodes'])} resumed from "
                       f"checkpoint")
        lines.append(
            f"[{timing['wall_s']:.1f}s wall at --jobs {timing['jobs']}"
            f"{extras}]")
    lines.append("")
    if report["nodes"]:
        lines.append(format_table(_node_rows(report["nodes"])))
    else:
        lines.append("(no nodes completed)")
    lines.append("")
    lines.extend(_aggregate_lines("fleet-wide", aggregate["fleet"]))
    for name, block in aggregate["classes"].items():
        lines.extend(_aggregate_lines(f"class {name!r}", block))
    worst = aggregate["worst_nodes"]
    if worst:
        lines.append("-- worst nodes --")
        if "dp_p99" in worst:
            lines.append(
                f"  dp p99: {worst['dp_p99']['node_id']} "
                f"({worst['dp_p99']['value_us']:.1f}us)")
        if "startup_attainment" in worst:
            lines.append(
                f"  startup attainment: "
                f"{worst['startup_attainment']['node_id']} "
                f"({worst['startup_attainment']['value_pct']:.2f}%)")
    lines.extend(_failure_lines(aggregate))
    if not aggregate["fleet"]["invariants_ok"]:
        lines.append(
            f"INVARIANT VIOLATIONS: "
            f"{aggregate['fleet']['invariant_violations']}")
    return "\n".join(lines)


def fleet_markdown(report):
    """Render a runner report as a standalone markdown document."""
    spec = report["spec"]
    lines = [
        f"# Fleet report — {spec['name']}",
        "",
        f"{len(spec['nodes'])} nodes, seed {spec['seed']}, "
        f"scale {report['scale']:g}, per-node duration "
        f"{spec['duration_ms']:g} ms (+{spec['drain_ms']:g} ms drain), "
        f"DP SLO {spec['dp_slo_us']:g} us.",
        "",
        "```",
        format_fleet_text(report),
        "```",
        "",
    ]
    return "\n".join(lines)


def write_fleet_md(path, report):
    """Write the markdown report; returns the path."""
    with open(path, "w") as handle:
        handle.write(fleet_markdown(report))
    return path


def write_fleet_json(path, report):
    """Write the canonical (timing-free, deterministic) JSON report."""
    with open(path, "w") as handle:
        json.dump(canonical_report(report), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
