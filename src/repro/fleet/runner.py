"""The fleet runner: fan nodes out across processes, merge the results.

Each node is an independent single-board simulation, so a fleet is
embarrassingly parallel: ``FleetRunner`` ships one picklable payload per
node through :func:`~repro.fleet.pool.pool_outcomes` and re-assembles
the summaries in spec order.  Wall-clock therefore scales with available
cores (``--jobs``) instead of fleet size — the first subsystem in this
repo where it does.

Durability: node failures are *contained*.  A node that fails every
attempt of its :class:`~repro.fleet.durability.RetryPolicy` becomes a
typed entry in the aggregate's ``failed_nodes`` table instead of
destroying the run; retried nodes re-run from the same
:func:`~repro.sim.rng.derive_seed` payload, so a retry that succeeds is
byte-identical to a first-try success.  With a ``checkpoint_dir`` the
runner journals each node's outcome as it lands (atomic per-node
files); ``resume=True`` skips journaled nodes, and the resumed run's
canonical JSON is byte-identical to an uninterrupted one.  Unless
``allow_failures`` is set, terminal failures raise
:class:`~repro.fleet.durability.FleetRunFailed` — *after* the full
fleet ran and journaled, with the degraded report attached.

Determinism: node seeds come from :func:`~repro.sim.rng.derive_seed`
(pure function of the fleet root seed and the node id), results are
ordered by the spec (not by completion), and everything wall-clock lives
under the report's ``timing`` key, which :func:`write_fleet_json`
excludes — so the JSON report is byte-identical for ``--jobs 1`` and
``--jobs 4``, with or without an interruption in between.
"""

import os
import time

from repro.fleet.aggregate import aggregate_fleet
from repro.fleet.durability import (
    CheckpointError,
    FleetCheckpoint,
    FleetRunFailed,
    RetryPolicy,
    checkpoint_entry,
    is_failure_envelope,
    normalized_failure,
    payload_fingerprint,
)
from repro.fleet.node import run_node
from repro.fleet.pool import pool_outcomes
from repro.sim.units import MILLISECONDS

#: Scaled-duration floors: a shrunk CI fleet still has to clear warmup
#: and let a few VM storms land.
_MIN_DURATION_NS = 30 * MILLISECONDS
_MIN_DRAIN_NS = 20 * MILLISECONDS


def _prepare_payload(payload, attempt, parallel):
    """Per-attempt worker payload: same node work, new attempt number."""
    return {**payload, "attempt": attempt, "parallel": parallel}


class FleetRunner:
    """Run a :class:`~repro.fleet.spec.FleetSpec` at a given parallelism."""

    def __init__(self, spec, jobs=1, scale=1.0, capture_dir=None,
                 check_invariants=False, telemetry_dir=None, retry=None,
                 checkpoint_dir=None, resume=False, allow_failures=False):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.spec = spec
        self.jobs = max(int(jobs), 1)
        self.scale = float(scale)
        self.capture_dir = capture_dir
        self.check_invariants = bool(check_invariants)
        self.telemetry_dir = telemetry_dir
        self.retry = RetryPolicy.from_value(
            retry if retry is not None else spec.retry)
        self.checkpoint_dir = checkpoint_dir
        self.resume = bool(resume)
        self.allow_failures = bool(allow_failures)

    def payloads(self):
        """One picklable work unit per node, in spec order.

        Pure: building payloads (for inspection, fingerprinting, tests)
        touches no filesystem — :meth:`run` creates the capture and
        telemetry directories when it actually writes into them.
        """
        duration_ns = max(int(self.spec.duration_ms * MILLISECONDS
                              * self.scale), _MIN_DURATION_NS)
        drain_ns = (max(int(self.spec.drain_ms * MILLISECONDS * self.scale),
                        _MIN_DRAIN_NS)
                    if self.spec.drain_ms else 0)
        chaos = self.spec.chaos or {}
        out = []
        for node in self.spec.nodes:
            capture_path = (
                os.path.join(self.capture_dir, f"{node.node_id}.jsonl")
                if self.capture_dir else None)
            payload = {
                "node": node.to_dict(),
                "root_seed": self.spec.seed,
                "duration_ns": duration_ns,
                "drain_ns": drain_ns,
                "dp_slo_us": self.spec.dp_slo_us,
                "fault_scale": self.scale,
                "capture_path": capture_path,
                "check_invariants": self.check_invariants,
                "raw_samples": self.spec.raw_samples,
                "telemetry_dir": self.telemetry_dir,
                "telemetry_interval_ms": self.spec.telemetry_interval_ms,
                "spans": self.spec.spans,
            }
            entry = chaos.get(node.node_id)
            if entry:
                payload["chaos"] = dict(entry)
            if self.retry != RetryPolicy():
                # Part of the fingerprint: a resumed run under a different
                # retry policy must not silently reuse journaled entries.
                payload["retry"] = self.retry.to_dict()
            out.append(payload)
        return out

    def _load_checkpoint(self, payloads):
        """(checkpoint, reused-entries-by-node) honoring ``resume``."""
        if not self.checkpoint_dir:
            return None, {}
        checkpoint = FleetCheckpoint(self.checkpoint_dir)
        existing = checkpoint.load()
        if existing and not self.resume:
            raise CheckpointError(
                f"checkpoint dir {self.checkpoint_dir!r} already holds "
                f"{len(existing)} journaled node(s); pass resume/--resume "
                f"to continue that run, or use a fresh directory")
        checkpoint.write_manifest(self.spec, self.scale)
        reused = {}
        if self.resume:
            fingerprints = {payload["node"]["node_id"]:
                            payload_fingerprint(payload)
                            for payload in payloads}
            for node_id, entry in existing.items():
                if node_id not in fingerprints:
                    continue    # journaled under a larger subset; ignore
                if entry.get("fingerprint") != fingerprints[node_id]:
                    raise CheckpointError(
                        f"checkpoint entry for node {node_id!r} was "
                        f"journaled under a different spec/seed/scale; "
                        f"resume with the original settings or use a "
                        f"fresh --checkpoint-dir")
                reused[node_id] = entry
        return checkpoint, reused

    def run(self):
        """Simulate the fleet; returns the full report dict."""
        started = time.time()
        if self.capture_dir:
            os.makedirs(self.capture_dir, exist_ok=True)
        if self.telemetry_dir:
            os.makedirs(self.telemetry_dir, exist_ok=True)
        payloads = self.payloads()
        checkpoint, reused = self._load_checkpoint(payloads)
        to_run = [payload for payload in payloads
                  if payload["node"]["node_id"] not in reused]

        def _journal(outcome):
            if checkpoint is None:
                return
            fingerprint = payload_fingerprint(
                to_run[to_run_index[outcome.label]])
            if outcome.ok:
                entry = checkpoint_entry(outcome.label, fingerprint,
                                         summary=outcome.value)
            else:
                entry = checkpoint_entry(outcome.label, fingerprint,
                                         failure=normalized_failure(outcome))
            checkpoint.journal(entry)

        to_run_index = {payload["node"]["node_id"]: index
                        for index, payload in enumerate(to_run)}
        outcomes = pool_outcomes(
            run_node, to_run, jobs=self.jobs,
            label=lambda payload: payload["node"]["node_id"],
            retry=self.retry, prepare=_prepare_payload,
            classify=is_failure_envelope, on_outcome=_journal)

        by_node = {}
        retried = {}
        for outcome in outcomes:
            if outcome.ok:
                by_node[outcome.label] = ("ok", outcome.value)
                if outcome.attempts > 1:
                    retried[outcome.label] = outcome.attempts
            else:
                by_node[outcome.label] = ("failed",
                                          normalized_failure(outcome))
        resumed_nodes = []
        for node_id, entry in reused.items():
            if entry["outcome"] == "ok":
                by_node[node_id] = ("ok", entry["summary"])
            else:
                by_node[node_id] = ("failed", entry["failure"])
            resumed_nodes.append(node_id)

        nodes = []
        failures = []
        for node in self.spec.nodes:
            status, value = by_node[node.node_id]
            if status == "ok":
                nodes.append(value)
            else:
                failures.append(value)
        wall_s = time.time() - started
        timing = {"wall_s": wall_s, "jobs": self.jobs}
        if retried:
            timing["retried"] = dict(sorted(retried.items()))
        if resumed_nodes:
            timing["resumed_nodes"] = sorted(resumed_nodes)
        report = {
            "spec": self.spec.to_dict(),
            "scale": self.scale,
            "nodes": nodes,
            "aggregate": aggregate_fleet(nodes, failures=failures,
                                         expected_nodes=len(self.spec.nodes)),
            "timing": timing,
        }
        if self.telemetry_dir:
            from repro.fleet.telemetry import write_fleet_telemetry

            write_fleet_telemetry(self.telemetry_dir, report)
            report["telemetry_dir"] = self.telemetry_dir
        if failures and not self.allow_failures:
            raise FleetRunFailed(failures, report)
        return report


def run_fleet(spec, jobs=1, scale=1.0, capture_dir=None,
              check_invariants=False, telemetry_dir=None, retry=None,
              checkpoint_dir=None, resume=False, allow_failures=False):
    """One-call convenience used by the CLI and the scale-out experiment."""
    return FleetRunner(spec, jobs=jobs, scale=scale, capture_dir=capture_dir,
                       check_invariants=check_invariants,
                       telemetry_dir=telemetry_dir, retry=retry,
                       checkpoint_dir=checkpoint_dir, resume=resume,
                       allow_failures=allow_failures).run()
