"""The fleet runner: fan nodes out across processes, merge the results.

Each node is an independent single-board simulation, so a fleet is
embarrassingly parallel: ``FleetRunner`` ships one picklable payload per
node through :func:`~repro.fleet.pool.pool_map` and re-assembles the
summaries in spec order.  Wall-clock therefore scales with available
cores (``--jobs``) instead of fleet size — the first subsystem in this
repo where it does.

Determinism: node seeds come from :func:`~repro.sim.rng.derive_seed`
(pure function of the fleet root seed and the node id), results are
ordered by the spec (not by completion), and everything wall-clock lives
under the report's ``timing`` key, which :func:`write_fleet_json`
excludes — so the JSON report is byte-identical for ``--jobs 1`` and
``--jobs 4``.
"""

import os
import time

from repro.fleet.aggregate import aggregate_fleet
from repro.fleet.node import run_node
from repro.fleet.pool import pool_map
from repro.sim.units import MILLISECONDS

#: Scaled-duration floors: a shrunk CI fleet still has to clear warmup
#: and let a few VM storms land.
_MIN_DURATION_NS = 30 * MILLISECONDS
_MIN_DRAIN_NS = 20 * MILLISECONDS


class FleetRunner:
    """Run a :class:`~repro.fleet.spec.FleetSpec` at a given parallelism."""

    def __init__(self, spec, jobs=1, scale=1.0, capture_dir=None,
                 check_invariants=False, telemetry_dir=None):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.spec = spec
        self.jobs = max(int(jobs), 1)
        self.scale = float(scale)
        self.capture_dir = capture_dir
        self.check_invariants = bool(check_invariants)
        self.telemetry_dir = telemetry_dir

    def payloads(self):
        """One picklable work unit per node, in spec order."""
        duration_ns = max(int(self.spec.duration_ms * MILLISECONDS
                              * self.scale), _MIN_DURATION_NS)
        drain_ns = (max(int(self.spec.drain_ms * MILLISECONDS * self.scale),
                        _MIN_DRAIN_NS)
                    if self.spec.drain_ms else 0)
        if self.capture_dir:
            os.makedirs(self.capture_dir, exist_ok=True)
        if self.telemetry_dir:
            os.makedirs(self.telemetry_dir, exist_ok=True)
        out = []
        for node in self.spec.nodes:
            capture_path = (
                os.path.join(self.capture_dir, f"{node.node_id}.jsonl")
                if self.capture_dir else None)
            out.append({
                "node": node.to_dict(),
                "root_seed": self.spec.seed,
                "duration_ns": duration_ns,
                "drain_ns": drain_ns,
                "dp_slo_us": self.spec.dp_slo_us,
                "fault_scale": self.scale,
                "capture_path": capture_path,
                "check_invariants": self.check_invariants,
                "raw_samples": self.spec.raw_samples,
                "telemetry_dir": self.telemetry_dir,
                "telemetry_interval_ms": self.spec.telemetry_interval_ms,
                "spans": self.spec.spans,
            })
        return out

    def run(self):
        """Simulate the fleet; returns the full report dict."""
        started = time.time()
        nodes = pool_map(run_node, self.payloads(), jobs=self.jobs)
        wall_s = time.time() - started
        report = {
            "spec": self.spec.to_dict(),
            "scale": self.scale,
            "nodes": nodes,
            "aggregate": aggregate_fleet(nodes),
            "timing": {"wall_s": wall_s, "jobs": self.jobs},
        }
        if self.telemetry_dir:
            from repro.fleet.telemetry import write_fleet_telemetry

            write_fleet_telemetry(self.telemetry_dir, report)
            report["telemetry_dir"] = self.telemetry_dir
        return report


def run_fleet(spec, jobs=1, scale=1.0, capture_dir=None,
              check_invariants=False, telemetry_dir=None):
    """One-call convenience used by the CLI and the scale-out experiment."""
    return FleetRunner(spec, jobs=jobs, scale=scale, capture_dir=capture_dir,
                       check_invariants=check_invariants,
                       telemetry_dir=telemetry_dir).run()
