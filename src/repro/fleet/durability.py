"""Fleet run durability: retry policies, failure envelopes, checkpoints.

A fleet run used to share the fate of its weakest worker: one bad node
payload, one OOM-killed process, and ``pool.map`` destroyed the whole
run with a bare traceback — no indication of which node failed, no way
to salvage the other 63 results.  This module is the data layer that
makes fleet runs durable instead:

* :class:`RetryPolicy` — how many attempts each node gets, with what
  backoff and per-attempt wall-clock timeout.  Carried as plain data on
  :class:`~repro.fleet.spec.FleetSpec` so retry behaviour round-trips
  through spec JSON like everything else.
* **Failure envelopes** — a worker that fails returns (never raises) a
  typed envelope built *inside the worker*: node id, attempt, exception
  repr, traceback tail.  Capturing the traceback worker-side keeps the
  envelope byte-identical whether the node ran serially or in a pool,
  which is what lets degraded fleet reports stay deterministic across
  ``--jobs`` levels.
* **Chaos injection** — declarative injected worker faults
  (``FleetSpec.chaos``): fail a node's first N attempts (or every
  attempt) with a raised :class:`InjectedWorkerFault` or, in pooled
  runs, a hard ``os._exit`` that genuinely breaks the process pool.
  Chaos is data, so chaos-driven failures and retry counts are exactly
  reproducible — the durability experiment and CI lean on this.
* :class:`FleetCheckpoint` — a journal directory the runner writes one
  entry into as each node completes (atomic rename), so an interrupted
  run resumes from where it died: ``--checkpoint-dir D --resume`` skips
  journaled nodes and the final fleet JSON is byte-identical to an
  uninterrupted run.
* :func:`verify_fleet_report` — structural invariants over a finished
  report (coverage arithmetic, survivor/failure disjointness, envelope
  shape), run under ``fleet --check-invariants``.

Determinism caveats, documented rather than hidden: ``timeout`` and
genuine pool crashes (``BrokenProcessPool``) are wall-clock phenomena —
a pool break charges a crash attempt to every in-flight node because
the culprit is unknowable from the parent.  The canonical byte-identity
contract covers exception-kind failures (including all chaos of kind
``"exception"``), which is everything the simulation itself can
produce.
"""

import hashlib
import json
import os
import traceback
from dataclasses import dataclass, field, replace

#: Failure kinds a node outcome can carry.
FAILURE_KINDS = ("exception", "crash", "timeout")

#: How many traceback lines a failure envelope keeps.
TRACEBACK_TAIL_LINES = 6

#: Sentinel key marking a worker return value as a failure envelope.
FAILURE_KEY = "__fleet_failure__"


class InjectedWorkerFault(RuntimeError):
    """The deterministic chaos exception (``FleetSpec.chaos``)."""


class CheckpointError(ValueError):
    """A checkpoint dir cannot be (re)used the way the caller asked."""


class FleetRunFailed(RuntimeError):
    """Nodes failed terminally and the caller did not allow failures.

    Raised *after* the run completes and every outcome is journaled, so
    a rerun with ``resume=True`` (and ``allow_failures=True``) salvages
    everything that succeeded.  Carries the full ``report`` and the
    normalized ``failures`` list so callers can still render the
    degraded result.
    """

    def __init__(self, failures, report):
        self.failures = list(failures)
        self.report = report
        names = ", ".join(f["node_id"] for f in self.failures)
        first = self.failures[0]
        super().__init__(
            f"{len(self.failures)} node(s) failed terminally ({names}); "
            f"first: {first['node_id']} after {first['attempts']} "
            f"attempt(s): {first['error']} "
            f"(pass allow_failures/--allow-failures to accept a degraded "
            f"fleet)")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the runner tries before declaring a node failed.

    ``max_attempts`` counts total attempts (1 = no retry).  Attempt
    ``k+1`` waits ``backoff_s * backoff_multiplier**(k-1)`` seconds
    after attempt ``k`` fails.  ``timeout_s`` is the per-attempt
    wall-clock budget in pooled runs (attempt ``k`` gets
    ``timeout_s * timeout_multiplier**(k-1)``); serial runs cannot
    preempt a running node, so the timeout applies only when
    ``jobs > 1``.
    """

    max_attempts: int = 1
    backoff_s: float = 0.0
    backoff_multiplier: float = 2.0
    timeout_s: float = None
    timeout_multiplier: float = 1.0

    def __post_init__(self):
        if int(self.max_attempts) < 1:
            raise ValueError("max_attempts must be >= 1")
        object.__setattr__(self, "max_attempts", int(self.max_attempts))
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.timeout_multiplier < 1.0:
            raise ValueError("timeout_multiplier must be >= 1")

    def delay_s(self, attempt):
        """Seconds to wait before ``attempt`` (attempt numbers start at 1)."""
        if attempt <= 1 or self.backoff_s == 0:
            return 0.0
        return self.backoff_s * self.backoff_multiplier ** (attempt - 2)

    def timeout_for(self, attempt):
        """Wall-clock budget for ``attempt`` (None = unbounded)."""
        if self.timeout_s is None:
            return None
        return self.timeout_s * self.timeout_multiplier ** (attempt - 1)

    def to_dict(self):
        out = {"max_attempts": self.max_attempts}
        if self.backoff_s:
            out["backoff_s"] = self.backoff_s
            out["backoff_multiplier"] = self.backoff_multiplier
        if self.timeout_s is not None:
            out["timeout_s"] = self.timeout_s
            out["timeout_multiplier"] = self.timeout_multiplier
        return out

    @classmethod
    def from_value(cls, value):
        """Coerce None / dict / RetryPolicy into a RetryPolicy."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(**value)
        raise ValueError(
            f"retry must be a RetryPolicy or its dict, got "
            f"{type(value).__name__}")


@dataclass
class NodeFailure:
    """The typed terminal outcome of a node that never produced a summary."""

    node_id: str
    kind: str
    attempts: int
    error: str
    traceback: list = field(default_factory=list)

    def __post_init__(self):
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"failure kind must be one of {FAILURE_KINDS}, "
                f"got {self.kind!r}")
        self.attempts = int(self.attempts)

    def to_dict(self):
        return {"node_id": self.node_id, "kind": self.kind,
                "attempts": self.attempts, "error": self.error,
                "traceback": list(self.traceback)}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


# -- Failure envelopes (worker side) -------------------------------------------


def failure_envelope(node_id, attempt, exc, kind="exception"):
    """The dict a failing worker *returns* instead of raising.

    Built inside the worker so the traceback tail reflects the real
    raise site (not the parent's future re-raise shim) and is identical
    at any ``--jobs`` level.
    """
    lines = "".join(traceback.format_exception(
        type(exc), exc, exc.__traceback__)).rstrip("\n").splitlines()
    return {
        FAILURE_KEY: True,
        "node_id": node_id,
        "attempt": int(attempt),
        "kind": kind,
        "error": repr(exc),
        "traceback": lines[-TRACEBACK_TAIL_LINES:],
    }


def is_failure_envelope(value):
    """True if a worker return value is a failure envelope."""
    return isinstance(value, dict) and bool(value.get(FAILURE_KEY))


# -- Chaos: declarative injected worker faults ---------------------------------


def normalize_chaos(chaos):
    """Validate/normalize ``FleetSpec.chaos`` into canonical per-node form.

    Accepts ``{node_id: N}`` (fail the first N attempts; ``-1`` = every
    attempt) or ``{node_id: {"fail_attempts": N, "kind": ...}}``.
    Node ids need not exist in the spec — ``--nodes`` subsets and resume
    runs may carry chaos entries for nodes they no longer simulate.
    """
    if chaos is None:
        return None
    if not isinstance(chaos, dict):
        raise ValueError(f"chaos must be a dict of node_id -> spec, "
                         f"got {type(chaos).__name__}")
    out = {}
    for node_id, entry in chaos.items():
        if isinstance(entry, int):
            entry = {"fail_attempts": entry}
        elif not isinstance(entry, dict):
            raise ValueError(
                f"chaos[{node_id!r}] must be an int or a dict, "
                f"got {type(entry).__name__}")
        fail_attempts = int(entry.get("fail_attempts", -1))
        kind = entry.get("kind", "exception")
        if kind not in ("exception", "crash"):
            raise ValueError(
                f"chaos[{node_id!r}] kind must be 'exception' or 'crash', "
                f"got {kind!r}")
        out[node_id] = {"fail_attempts": fail_attempts, "kind": kind}
    return dict(sorted(out.items()))


def maybe_inject_chaos(entry, node_id, attempt, parallel=False):
    """Fire a chaos entry for this attempt (or return quietly).

    ``kind="exception"`` raises :class:`InjectedWorkerFault` (contained
    by the worker's envelope path).  ``kind="crash"`` hard-exits the
    worker process in pooled runs — a genuine ``BrokenProcessPool`` for
    the recovery path to handle — and degrades to the exception kind in
    serial runs, where exiting would kill the caller itself.
    """
    if not entry:
        return
    fail_attempts = entry["fail_attempts"]
    if fail_attempts >= 0 and attempt > fail_attempts:
        return
    if entry["kind"] == "crash" and parallel:
        os._exit(13)
    raise InjectedWorkerFault(
        f"injected worker fault on {node_id!r} (attempt {attempt})")


# -- Checkpoint journal --------------------------------------------------------


_ENTRY_SUFFIX = ".node.json"
_MANIFEST = "checkpoint.json"

#: Payload keys excluded from the fingerprint: host paths and pool
#: bookkeeping that legitimately differ between runs of the same fleet.
_FINGERPRINT_EXCLUDE = ("capture_path", "telemetry_dir", "attempt",
                       "parallel")


def payload_fingerprint(payload):
    """A stable digest of everything that determines a node's summary.

    Two payloads with the same fingerprint produce byte-identical
    summaries (the node worker is a pure function of its payload), so a
    journaled entry may stand in for a re-run — the basis of resume.
    """
    canon = {key: value for key, value in payload.items()
             if key not in _FINGERPRINT_EXCLUDE}
    blob = json.dumps(canon, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


class FleetCheckpoint:
    """A journal directory: one atomic JSON entry per completed node.

    Entries land in *completion* order (the runner journals from its
    pool callback), but each lives in its own ``<node_id>.node.json``
    file, so a kill at any instant leaves either a complete entry or no
    entry — never a torn one (write-to-temp + ``os.replace``).
    """

    def __init__(self, directory):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def entry_path(self, node_id):
        return os.path.join(self.directory, node_id + _ENTRY_SUFFIX)

    def load(self):
        """``{node_id: entry}`` for every journaled node."""
        out = {}
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(_ENTRY_SUFFIX):
                continue
            with open(os.path.join(self.directory, name)) as handle:
                entry = json.load(handle)
            out[entry["node_id"]] = entry
        return out

    def journal(self, entry):
        """Atomically persist one completed-node entry."""
        path = self.entry_path(entry["node_id"])
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(entry, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    def write_manifest(self, spec, scale):
        """A human-oriented header; the per-entry fingerprints are the
        actual resume guard."""
        path = os.path.join(self.directory, _MANIFEST)
        if os.path.exists(path):
            return path
        with open(path, "w") as handle:
            json.dump({"fleet": spec.name, "seed": spec.seed,
                       "scale": scale, "nodes": len(spec.nodes)},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def checkpoint_entry(node_id, fingerprint, summary=None, failure=None):
    """One journal entry: a success summary or a terminal failure."""
    if (summary is None) == (failure is None):
        raise ValueError("exactly one of summary/failure must be given")
    entry = {"node_id": node_id, "fingerprint": fingerprint}
    if summary is not None:
        entry["outcome"] = "ok"
        entry["summary"] = summary
    else:
        entry["outcome"] = "failed"
        entry["failure"] = failure
    return entry


# -- Report invariants ---------------------------------------------------------


def verify_fleet_report(report):
    """Structural durability invariants over a finished fleet report.

    Returns a list of problem strings (empty = consistent):

    * the aggregate's node count matches the surviving summaries;
    * coverage arithmetic adds up (completed + failed == expected,
      fraction == completed / expected);
    * failed node ids are disjoint from survivors and unique;
    * every failure envelope is well-formed (known kind, >= 1 attempt);
    * ``degraded`` is present exactly when nodes failed.
    """
    problems = []
    aggregate = report.get("aggregate") or {}
    fleet = aggregate.get("fleet") or {}
    survivors = [node["node_id"] for node in report.get("nodes", [])]
    if fleet.get("nodes") != len(survivors):
        problems.append(
            f"aggregate counts {fleet.get('nodes')} nodes but "
            f"{len(survivors)} summaries survive")
    failed = aggregate.get("failed_nodes") or []
    failed_ids = [entry.get("node_id") for entry in failed]
    if len(set(failed_ids)) != len(failed_ids):
        problems.append(f"duplicate failed node ids: {failed_ids}")
    overlap = set(failed_ids) & set(survivors)
    if overlap:
        problems.append(
            f"nodes both failed and survived: {sorted(overlap)}")
    for entry in failed:
        if entry.get("kind") not in FAILURE_KINDS:
            problems.append(
                f"failed node {entry.get('node_id')!r} has unknown "
                f"kind {entry.get('kind')!r}")
        if int(entry.get("attempts", 0)) < 1:
            problems.append(
                f"failed node {entry.get('node_id')!r} records "
                f"{entry.get('attempts')} attempts")
    degraded = bool(aggregate.get("degraded"))
    if degraded != bool(failed):
        problems.append(
            f"degraded flag is {degraded} with {len(failed)} failed nodes")
    coverage = aggregate.get("coverage")
    if failed:
        if not coverage:
            problems.append("degraded aggregate lacks a coverage block")
        else:
            expected = coverage.get("expected")
            completed = coverage.get("completed")
            if completed != len(survivors):
                problems.append(
                    f"coverage counts {completed} completed nodes but "
                    f"{len(survivors)} summaries survive")
            if expected != len(survivors) + len(failed):
                problems.append(
                    f"coverage expects {expected} nodes but "
                    f"{len(survivors)} + {len(failed)} completed/failed")
            if expected:
                fraction = coverage.get("fraction")
                if fraction != (completed or 0) / expected:
                    problems.append(
                        f"coverage fraction {fraction} != "
                        f"{completed}/{expected}")
    elif coverage is not None:
        problems.append("healthy aggregate carries a coverage block")
    return problems


def normalized_failure(outcome):
    """Collapse a pool outcome's failure into the canonical envelope.

    Accepts both worker-built envelopes (which carry the sentinel key
    and a per-attempt ``attempt`` field) and pool-built failures
    (crash/timeout, no traceback) and returns a
    :class:`NodeFailure`-shaped dict keyed by total attempts.
    """
    failure = outcome.failure
    return NodeFailure(
        node_id=outcome.label if outcome.label is not None
        else failure.get("node_id", f"#{outcome.index}"),
        kind=failure.get("kind", "exception"),
        attempts=outcome.attempts,
        error=failure.get("error", "unknown error"),
        traceback=list(failure.get("traceback") or ()),
    ).to_dict()


def retry_with(policy, max_attempts=None, backoff_s=None, timeout_s=None):
    """CLI-override helper: a copy of ``policy`` with fields replaced."""
    policy = RetryPolicy.from_value(policy)
    updates = {}
    if max_attempts is not None:
        updates["max_attempts"] = max_attempts
    if backoff_s is not None:
        updates["backoff_s"] = backoff_s
    if timeout_s is not None:
        updates["timeout_s"] = timeout_s
    return replace(policy, **updates) if updates else policy
