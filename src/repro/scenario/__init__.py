"""Declarative scenarios: the arm × workload matrix as data.

Public surface::

    from repro.scenario import Scenario, build, arms_under_test, run_soak

    deployment = build("taichi", seed=0, taichi_config=config)   # one arm
    scenario = Scenario(arm="taichi", traffic="spiky")           # one cell
    summary = run_soak(scenario, seed=0)                         # soak it

Experiments call :func:`build` (optionally via :func:`arms_under_test`
to honor the CLI ``--arm`` override); the fleet runner and the soak
experiments drive :func:`run_soak`; ``FleetSpec`` nodes embed a
:class:`Scenario`.  New arms plug in through
:func:`~repro.scenario.arms.register_arm` and immediately work
everywhere.
"""

from repro.scenario.arms import (
    ARMS,
    Arm,
    arm_names,
    build_arm,
    get_arm,
    is_arm,
    register_arm,
    validate_knobs,
)
from repro.scenario.session import (
    arm_override,
    arms_under_test,
    current_arms,
    parse_arm_list,
)
from repro.scenario.soak import run_soak
from repro.scenario.spec import (
    Scenario,
    TRAFFIC_PROFILES,
    WorkloadMix,
    load_scenario,
)

#: The one construction path every caller shares (alias of ``build_arm``).
build = build_arm

__all__ = [
    "ARMS",
    "Arm",
    "Scenario",
    "TRAFFIC_PROFILES",
    "WorkloadMix",
    "arm_names",
    "arm_override",
    "arms_under_test",
    "build",
    "build_arm",
    "current_arms",
    "get_arm",
    "is_arm",
    "load_scenario",
    "parse_arm_list",
    "register_arm",
    "run_soak",
    "validate_knobs",
]
