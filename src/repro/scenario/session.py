"""Module-global arm override (mirrors ``repro.faults.session``).

Experiments pick their default arm lists in module code; the CLI's
``run --arm NAME[,NAME...]`` flag needs to override that choice without
threading a parameter through every ``run(scale, seed)`` signature.  The
CLI activates the override for a dynamic scope and experiments consult
it through :func:`arms_under_test`::

    with arm_override(["baseline", "taichi-vdp"]):
        result = run_experiment("fig12")

Experiments that compare a reference against one or more measured arms
treat the first override arm as the reference.  Fixed-mechanism
experiments (ablations, single-arm motivation figures) ignore the
override — they measure a specific mechanism, not an arm choice.
"""

from contextlib import contextmanager

from repro.scenario.arms import get_arm

_ARM_OVERRIDE = None


def current_arms():
    """The active ``--arm`` override as a tuple, or None."""
    return _ARM_OVERRIDE


def arms_under_test(defaults):
    """The arms an experiment should measure: the override, else defaults."""
    if _ARM_OVERRIDE is not None:
        return tuple(_ARM_OVERRIDE)
    return tuple(defaults)


@contextmanager
def arm_override(arms):
    """Make ``arms`` the active override for the enclosed scope."""
    global _ARM_OVERRIDE
    validated = None
    if arms is not None:
        validated = tuple(arms)
        if not validated:
            raise ValueError("--arm needs at least one arm name")
        for name in validated:
            get_arm(name)  # raises with the registry's name list
    previous = _ARM_OVERRIDE
    _ARM_OVERRIDE = validated
    try:
        yield validated
    finally:
        _ARM_OVERRIDE = previous


def parse_arm_list(text):
    """Split a CLI ``--arm`` value (``"baseline,taichi"``) and validate."""
    arms = tuple(part.strip() for part in text.split(",") if part.strip())
    if not arms:
        raise ValueError("--arm needs at least one arm name")
    for name in arms:
        get_arm(name)
    return arms
