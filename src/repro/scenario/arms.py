"""The arm registry: every scheduler under test, with its knobs, as data.

An *arm* is one point on the scheduler axis of the evaluation matrix —
a :data:`repro.baselines.DEPLOYMENTS` class plus the set of knobs it
accepts.  Registration is entry-point style: anything (including a
future out-of-tree scheduler) can call :func:`register_arm` and
immediately participate in every experiment, fleet preset and CLI
``--arm`` override, because all construction flows through
:func:`build_arm`.

Knobs split into three groups:

* constructor knobs shared by every deployment (``board_config``,
  ``dp_kind``, ``dp_params``, ``dp_cpu_ids``);
* per-arm constructor knobs declared at registration time
  (``taichi_config``, ``guest_tax``, ``emulation_overhead``, ...);
* post-construction knobs available on Tai Chi-family arms only:
  ``dp_boost`` (move N CP pCPUs to the data plane after warmup —
  Section 8's inverse adaptation) and ``degradation`` (install the
  graceful-degradation layer).

Dict-valued knobs are coerced to their dataclasses (``taichi_config``
-> :class:`~repro.core.TaiChiConfig` etc.) so a knob set round-trips
through :class:`~repro.scenario.spec.Scenario` JSON.
"""

from dataclasses import asdict, dataclass, is_dataclass

from repro.baselines import DEPLOYMENTS
from repro.core import DynamicRepartitioner, TaiChiConfig
from repro.dp import DPServiceParams
from repro.hw import AcceleratorParams, BoardConfig
from repro.kernel import KernelParams
from repro.sim import EngineConfig
from repro.virt.costs import VirtCosts

#: Constructor knobs every deployment accepts (see ``Deployment.__init__``).
COMMON_KNOBS = ("board_config", "dp_kind", "dp_params", "dp_cpu_ids",
                "engine")

#: Post-construction knobs available on arms that carry a live TaiChi.
TAICHI_POST_KNOBS = ("dp_boost", "degradation")


@dataclass(frozen=True)
class Arm:
    """Registry metadata for one scheduler arm."""

    name: str
    cls: type
    doc: str = ""
    extra_knobs: tuple = ()
    taichi_family: bool = False
    aliases: tuple = ()

    @property
    def knobs(self):
        """Every knob :func:`build_arm` accepts for this arm."""
        accepted = COMMON_KNOBS + tuple(self.extra_knobs)
        if self.taichi_family:
            accepted += TAICHI_POST_KNOBS
        return accepted


#: Canonical arm name -> :class:`Arm`.
ARMS = {}

#: Alias -> canonical arm name (``baseline`` -> ``static``).
ALIASES = {}


def register_arm(name, cls, doc="", extra_knobs=(), taichi_family=False,
                 aliases=()):
    """Register (or replace) an arm.  Returns the :class:`Arm`."""
    arm = Arm(name=name, cls=cls, doc=doc, extra_knobs=tuple(extra_knobs),
              taichi_family=taichi_family, aliases=tuple(aliases))
    ARMS[name] = arm
    for alias in arm.aliases:
        ALIASES[alias] = name
    return arm


def arm_names(include_aliases=True):
    """Sorted names accepted by :func:`get_arm`."""
    names = set(ARMS)
    if include_aliases:
        names |= set(ALIASES)
    return sorted(names)


def get_arm(name):
    """Resolve an arm (or alias) to its :class:`Arm`."""
    canonical = ALIASES.get(name, name)
    try:
        return ARMS[canonical]
    except KeyError:
        raise ValueError(
            f"unknown arm {name!r}; choose from {arm_names()}") from None


def is_arm(name):
    return name in ARMS or name in ALIASES


def validate_knobs(name, knobs):
    """Reject unknown knobs with the arm name and its accepted set."""
    arm = get_arm(name)
    unknown = sorted(set(knobs) - set(arm.knobs))
    if unknown:
        raise ValueError(
            f"arm {arm.name!r} does not accept knob(s) {unknown}; "
            f"accepted knobs: {sorted(arm.knobs)}")
    return arm


def build_arm(name, seed=0, **knobs):
    """Construct a deployment for ``name`` with validated ``knobs``.

    This is the single construction path behind ``scenario.build``,
    ``build_deployment`` and the fleet/soak drivers.  Post-construction
    knobs are applied in the order the fleet runner established:
    ``dp_boost`` (warmup, then repartition) before ``degradation``.
    """
    arm = validate_knobs(name, knobs)
    dp_boost = int(knobs.pop("dp_boost", 0) or 0)
    degradation = bool(knobs.pop("degradation", False))
    if dp_boost < 0:
        raise ValueError("dp_boost must be >= 0")
    deployment = arm.cls(seed=seed, **_coerce_knobs(knobs))
    if dp_boost:
        deployment.warmup()
        DynamicRepartitioner(deployment).cp_to_dp(dp_boost)
    if degradation:
        deployment.taichi.enable_degradation()
    return deployment


# -- Knob (de)serialization ---------------------------------------------------------

def _coerce_knobs(knobs):
    """Revive dict-valued knobs (from Scenario JSON) into their dataclasses."""
    revived = dict(knobs)
    for key, factory in _KNOB_FACTORIES.items():
        value = revived.get(key)
        if isinstance(value, dict):
            revived[key] = factory(value)
    return revived


def _taichi_config_from_dict(data):
    data = dict(data)
    costs = data.get("costs")
    if isinstance(costs, dict):
        data["costs"] = VirtCosts(**costs)
    return TaiChiConfig(**data)


def _board_config_from_dict(data):
    data = dict(data)
    accelerator = data.get("accelerator")
    if isinstance(accelerator, dict):
        data["accelerator"] = AcceleratorParams(**accelerator)
    kernel = data.get("kernel")
    if isinstance(kernel, dict):
        data["kernel"] = KernelParams(**kernel)
    return BoardConfig(**data)


_KNOB_FACTORIES = {
    "taichi_config": _taichi_config_from_dict,
    "board_config": _board_config_from_dict,
    "dp_params": lambda data: DPServiceParams(**data),
    "engine": lambda data: EngineConfig(**data),
}


def knob_to_jsonable(value):
    """The JSON form of one knob value (dataclasses become dicts)."""
    if is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    if isinstance(value, (list, tuple)):
        return [knob_to_jsonable(item) for item in value]
    return value


# -- The built-in arms --------------------------------------------------------------

register_arm(
    "static", DEPLOYMENTS["static"],
    doc="Production baseline: static 8 DP / 4 CP partition, no sharing.",
    aliases=("baseline",))
register_arm(
    "taichi", DEPLOYMENTS["taichi"],
    doc="The full Tai Chi framework.",
    extra_knobs=("taichi_config",), taichi_family=True)
register_arm(
    "taichi-no-hw-probe", DEPLOYMENTS["taichi-no-hw-probe"],
    doc="Ablation: software probe only; DP resumes on slice expiry.",
    extra_knobs=("taichi_config",), taichi_family=True)
register_arm(
    "taichi-vdp", DEPLOYMENTS["taichi-vdp"],
    doc="Type-1 stand-in: DP services execute in vCPU contexts.",
    extra_knobs=("taichi_config", "guest_tax"), taichi_family=True)
register_arm(
    "type2", DEPLOYMENTS["type2"],
    doc="QEMU+KVM stand-in: emulation tax, guest CP tax, RPC surcharge.",
    extra_knobs=("emulation_overhead", "guest_cp_tax", "rpc_extra_ns"))
register_arm(
    "naive", DEPLOYMENTS["naive"],
    doc="CP tasks co-scheduled directly onto DP CPUs by the kernel.")
