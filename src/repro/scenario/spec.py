"""The declarative scenario: arm × workload × traffic × faults, as data.

A :class:`Scenario` is one cell of the evaluation matrix the paper's
figures walk — which scheduler arm runs, with which knobs, under which
:class:`WorkloadMix` and traffic profile, optionally riding out a
:class:`~repro.faults.plan.FaultPlan` with the degradation layer armed.
Like :class:`~repro.faults.plan.FaultPlan` and ``FleetSpec`` it is plain
data with a JSON round-trip, so a scenario can live in a file, ship in a
fleet spec, or be built inline by an experiment.

Construction (:meth:`Scenario.build`) flows through the arm registry
(:mod:`repro.scenario.arms`); the full production-soak simulation shape
lives in :mod:`repro.scenario.soak` and is shared by the fleet runner
and the soak experiments.
"""

import json
from dataclasses import dataclass, field

from repro.faults.plan import FaultPlan, PRESETS as FAULT_PRESETS
from repro.scenario.arms import (
    arm_names,
    get_arm,
    is_arm,
    knob_to_jsonable,
    validate_knobs,
)

#: Traffic profile name -> burstiness knob of the DP background generator
#: (duty-cycle peak-to-mean; see ``start_dp_background``).
TRAFFIC_PROFILES = {
    "steady": 0.2,
    "bursty": 0.5,
    "spiky": 0.75,
}


@dataclass
class WorkloadMix:
    """Per-board load knobs: DP pressure, CP hum, and VM-creation density."""

    dp_utilization: float = 0.30
    n_monitors: int = 4
    rolling_tasks: int = 3
    probe_period_us: float = 400.0
    vm_period_ms: float = 120.0
    vm_batch_min: int = 4
    vm_batch_max: int = 10
    vm_vblks: int = 4

    def __post_init__(self):
        if not 0.0 < self.dp_utilization < 1.0:
            raise ValueError(
                f"dp_utilization must be in (0, 1), got {self.dp_utilization}")
        if self.n_monitors < 0 or self.rolling_tasks < 0:
            raise ValueError("n_monitors/rolling_tasks must be >= 0")
        if self.probe_period_us <= 0:
            raise ValueError("probe_period_us must be positive")
        if self.vm_period_ms <= 0:
            raise ValueError("vm_period_ms must be positive")
        if not 0 < self.vm_batch_min <= self.vm_batch_max:
            raise ValueError(
                "need 0 < vm_batch_min <= vm_batch_max, got "
                f"{self.vm_batch_min}..{self.vm_batch_max}")
        if self.vm_vblks < 0:
            raise ValueError("vm_vblks must be >= 0")

    def to_dict(self):
        return {
            "dp_utilization": self.dp_utilization,
            "n_monitors": self.n_monitors,
            "rolling_tasks": self.rolling_tasks,
            "probe_period_us": self.probe_period_us,
            "vm_period_ms": self.vm_period_ms,
            "vm_batch_min": self.vm_batch_min,
            "vm_batch_max": self.vm_batch_max,
            "vm_vblks": self.vm_vblks,
        }


@dataclass
class Scenario:
    """One declarative system-under-test + workload configuration.

    ``arm`` is a registry name (or alias, e.g. ``baseline``); ``knobs``
    are arm construction knobs validated against the registry at spec
    time.  ``dp_boost``/``degradation`` require a Tai Chi-family arm.
    ``faults`` is a preset name, a FaultPlan dict, or a
    :class:`FaultPlan`; drivers scale it alongside their duration.
    ``check_invariants``/``trace`` are observability defaults a driver
    may honor when the caller doesn't override them.  ``alerts`` is a
    list of :class:`~repro.obs.alerts.AlertRule` dicts (SLO rules as
    data) that arm an SLO monitor on the soak driver's telemetry bus.
    """

    arm: str = "taichi"
    traffic: str = "bursty"
    workload: WorkloadMix = field(default_factory=WorkloadMix)
    knobs: dict = field(default_factory=dict)
    dp_boost: int = 0
    degradation: bool = False
    faults: object = None
    check_invariants: bool = False
    trace: bool = False
    alerts: list = None
    tenants: list = None
    tenant_isolation: bool = True

    def __post_init__(self):
        if not isinstance(self.arm, str) or not is_arm(self.arm):
            raise ValueError(
                f"unknown deployment class {self.arm!r}; "
                f"choose from {arm_names()}")
        if self.traffic not in TRAFFIC_PROFILES:
            raise ValueError(
                f"unknown traffic profile {self.traffic!r}; "
                f"choose from {sorted(TRAFFIC_PROFILES)}")
        if isinstance(self.workload, dict):
            self.workload = WorkloadMix(**self.workload)
        if not isinstance(self.knobs, dict):
            raise ValueError(
                f"knobs must be a dict, got {type(self.knobs).__name__}")
        validate_knobs(self.arm, self.knobs)
        self.dp_boost = int(self.dp_boost)
        if self.dp_boost < 0:
            raise ValueError("dp_boost must be >= 0")
        taichi_family = get_arm(self.arm).taichi_family
        if self.dp_boost and not taichi_family:
            raise ValueError(
                f"dp_boost requires a Tai Chi deployment class, "
                f"got {self.arm!r}")
        if self.degradation and not taichi_family:
            raise ValueError(
                f"degradation requires a Tai Chi deployment class, "
                f"got {self.arm!r}")
        if isinstance(self.faults, str):
            if self.faults not in FAULT_PRESETS:
                raise ValueError(
                    f"unknown fault preset {self.faults!r}; "
                    f"choose from {sorted(FAULT_PRESETS)}")
        elif isinstance(self.faults, dict):
            self.faults = FaultPlan.from_dict(self.faults)
        elif self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ValueError(
                "faults must be a preset name, a FaultPlan dict, or a "
                f"FaultPlan, got {type(self.faults).__name__}")
        if self.alerts is not None:
            from repro.obs.alerts import normalize_alert_rules

            if not isinstance(self.alerts, (list, tuple)):
                raise ValueError(
                    f"alerts must be a list of rule dicts, got "
                    f"{type(self.alerts).__name__}")
            self.alerts = normalize_alert_rules(self.alerts)
        if self.tenants is not None:
            # Lazy import: repro.tenancy.spec imports this module.
            from repro.tenancy.spec import normalize_tenants

            self.tenants = normalize_tenants(self.tenants)
        self.tenant_isolation = bool(self.tenant_isolation)

    # -- Faults -------------------------------------------------------------------

    def fault_plan(self, scale=1.0):
        """Resolve ``faults`` to a :class:`FaultPlan` (or None), scaled."""
        if self.faults is None:
            return None
        plan = (FaultPlan.preset(self.faults)
                if isinstance(self.faults, str) else self.faults)
        if scale != 1.0:
            plan = plan.scaled(scale)
        return plan

    # -- Construction -------------------------------------------------------------

    def build(self, seed=0, fault_scale=1.0):
        """Construct this scenario's deployment via the arm registry.

        When the scenario carries faults the deployment is built inside
        an ``active_fault_plan`` scope so it arms an injector; otherwise
        any externally active plan (``run --faults``) stays in effect.
        """
        from repro.scenario.arms import build_arm

        knobs = dict(self.knobs)
        if self.dp_boost:
            knobs["dp_boost"] = self.dp_boost
        if self.degradation:
            knobs["degradation"] = True
        plan = self.fault_plan(fault_scale)
        if plan is None:
            return build_arm(self.arm, seed=seed, **knobs)
        from repro.faults.session import active_fault_plan

        with active_fault_plan(plan):
            return build_arm(self.arm, seed=seed, **knobs)

    # -- JSON round-trip ----------------------------------------------------------

    def to_dict(self):
        data = {
            "arm": self.arm,
            "traffic": self.traffic,
            "workload": self.workload.to_dict(),
        }
        if self.knobs:
            data["knobs"] = {key: knob_to_jsonable(value)
                             for key, value in self.knobs.items()}
        if self.dp_boost:
            data["dp_boost"] = self.dp_boost
        if self.degradation:
            data["degradation"] = True
        if self.faults is not None:
            data["faults"] = (self.faults if isinstance(self.faults, str)
                              else self.faults.to_dict())
        if self.check_invariants:
            data["check_invariants"] = True
        if self.trace:
            data["trace"] = True
        if self.alerts is not None:
            data["alerts"] = [rule.to_dict() for rule in self.alerts]
        if self.tenants is not None:
            data["tenants"] = [tenant.to_dict() for tenant in self.tenants]
            if not self.tenant_isolation:
                data["tenant_isolation"] = False
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(**data)

    def to_json(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_json(cls, path):
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def __repr__(self):
        return (f"<Scenario arm={self.arm!r} traffic={self.traffic!r} "
                f"dp_boost={self.dp_boost} faults={bool(self.faults)}>")


def load_scenario(spec):
    """Resolve a CLI scenario argument: arm name or Scenario JSON path."""
    if isinstance(spec, Scenario):
        return spec
    if isinstance(spec, dict):
        return Scenario.from_dict(spec)
    if is_arm(spec):
        return Scenario(arm=spec)
    if isinstance(spec, str) and spec.endswith(".json"):
        return Scenario.from_json(spec)
    raise ValueError(
        f"expected an arm name ({arm_names()}) or a .json Scenario "
        f"file, got {spec!r}")
