"""The shared production-soak driver: one Scenario, one board, one summary.

This is the simulation shape the paper's Section 6.6 production story
rests on — bursty DP background at a fixed offered load, CP hum, tenant
latency probes against the accelerator, VM-creation storms through the
host/eNIC lifecycle, then a drain window for in-flight startups.  It
used to live twice (``fleet.node._simulate`` and ``ext_production_soak``
each carried a copy); both now call :func:`run_soak` with a
:class:`~repro.scenario.spec.Scenario`.

Determinism contract: the summary is a pure function of
``(scenario, seed, windows)`` — no wall clock, no process-global state.
The RNG stream names (``fleet-probe``, ``fleet-storms``) and process
names are part of that contract: they seed the per-purpose substreams,
so renaming them would silently re-draw every published fleet number.
"""

from repro.hw.host import HostNode, VMSpec
from repro.hw.packet import IORequest, PacketKind
from repro.metrics import LatencyRecorder
from repro.metrics.stats import attainment_pct, summarize
from repro.sim.units import MICROSECONDS, MILLISECONDS

#: Probe-sample retention; beyond this the recorder's reservoir keeps
#: percentiles honest but the summary stops shipping raw samples.
_SAMPLE_CAP = 50_000

#: ``WorkloadMix.dp_utilization`` is offered load relative to this nominal
#: DP partition size, so a board that repartitions CPUs (``dp_boost``, or
#: type-2 losing one to QEMU) sees the *same* total traffic spread over
#: its actual service count — capacity changes show up in latency, not in
#: offered work.
_NOMINAL_DP_SERVICES = 8


def run_soak(scenario, seed=0, duration_ns=400 * MILLISECONDS,
             drain_ns=200 * MILLISECONDS, dp_slo_us=300.0, fault_scale=1.0,
             label="node"):
    """Soak one scenario and return its picklable summary dict.

    ``fault_scale`` compresses the scenario's fault plan alongside a
    scaled duration; ``label`` names the board in the summary and its
    probe recorder (the fleet runner passes the node id).
    """
    from repro.scenario.spec import TRAFFIC_PROFILES
    from repro.workloads.background import (
        start_cp_background, start_dp_background,
    )

    deployment = scenario.build(seed=seed, fault_scale=fault_scale)

    mix = scenario.workload
    per_service_util = min(
        mix.dp_utilization * _NOMINAL_DP_SERVICES / len(deployment.services),
        0.95)
    start_dp_background(deployment, utilization=per_service_util,
                        burstiness=TRAFFIC_PROFILES[scenario.traffic])
    start_cp_background(deployment, n_monitors=mix.n_monitors,
                        rolling_tasks=mix.rolling_tasks)
    deployment.warmup()
    env = deployment.env
    board = deployment.board
    host = HostNode(deployment)

    probe_latency = LatencyRecorder(name=f"{label}-probe", cap=_SAMPLE_CAP)

    def latency_probe():
        rng = deployment.rng.stream("fleet-probe")
        period_ns = mix.probe_period_us * MICROSECONDS
        while True:
            queue = int(rng.integers(0, 8))
            done = env.event()
            done.callbacks.append(
                lambda event: probe_latency.record(
                    event.value.total_latency_ns))
            board.accelerator.submit(IORequest(
                PacketKind.NET_TX, 64, ("net", queue, 0),
                service_ns=1_500, done=done))
            yield env.timeout(int(rng.exponential(period_ns)))

    env.process(latency_probe(), name="latency-probe")

    def storm_source():
        rng = deployment.rng.stream("fleet-storms")
        period_ns = mix.vm_period_ms * MILLISECONDS
        while True:
            yield env.timeout(int(rng.exponential(period_ns)))
            for _ in range(int(rng.integers(mix.vm_batch_min,
                                            mix.vm_batch_max + 1))):
                host.create_vm(VMSpec(n_vblks=mix.vm_vblks))

    env.process(storm_source(), name="storm-source")
    deployment.run(env.now + duration_ns)
    # Drain: give in-flight startups a grace window.
    deployment.run(env.now + drain_ns)

    dp_samples_us = [value / MICROSECONDS for value in probe_latency.samples]
    dp_within = sum(1 for value in dp_samples_us if value <= dp_slo_us)

    startups_ms = sorted(
        vm.startup_time_ns() / MILLISECONDS for vm in host.vms
        if vm.startup_time_ns() is not None)
    slo_ns = host.manager.params.startup_slo_ns
    slo_ms = slo_ns / MILLISECONDS
    startup_within = sum(1 for value in startups_ms if value <= slo_ms)
    # A startup still pending past the SLO is a violation even though it
    # never produced a sample — a saturated control plane must not score
    # 100% by finishing almost nothing.  Requests younger than the SLO at
    # stream end are censored (they still had time), not counted.
    overdue_pending = sum(
        1 for vm in host.vms
        if vm.startup_time_ns() is None
        and env.now - vm.request.t_issued > slo_ns)
    startup_total = len(startups_ms) + overdue_pending

    injector = deployment.fault_injector
    summary = {
        "node_id": label,
        "deployment": scenario.arm,
        "traffic": scenario.traffic,
        "seed": seed,
        "dp_samples_us": dp_samples_us,
        "dp_sample_count": probe_latency.count,
        "dp_latency_us": summarize(dp_samples_us, qs=(50, 90, 99, 99.9)),
        "dp_slo_us": dp_slo_us,
        "dp_within_slo": dp_within,
        "dp_slo_attainment_pct": attainment_pct(dp_within,
                                                len(dp_samples_us)),
        "startup_samples_ms": startups_ms,
        "startup_ms": summarize(startups_ms, qs=(50, 90, 99)),
        "startup_slo_ms": slo_ms,
        "startup_within_slo": startup_within,
        "startup_slo_total": startup_total,
        "startup_overdue_pending": overdue_pending,
        "startup_slo_attainment_pct": attainment_pct(startup_within,
                                                     startup_total),
        "vms_started": len(startups_ms),
        "vms_requested": len(host.vms),
        "faults": {
            "injected": injector.injected if injector else 0,
            "cleared": injector.cleared if injector else 0,
        },
    }
    return summary
