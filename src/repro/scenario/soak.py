"""The shared production-soak driver: one Scenario, one board, one summary.

This is the simulation shape the paper's Section 6.6 production story
rests on — bursty DP background at a fixed offered load, CP hum, tenant
latency probes against the accelerator, VM-creation storms through the
host/eNIC lifecycle, then a drain window for in-flight startups.  It
used to live twice (``fleet.node._simulate`` and ``ext_production_soak``
each carried a copy); both now call :func:`run_soak` with a
:class:`~repro.scenario.spec.Scenario`.

Determinism contract: the summary is a pure function of
``(scenario, seed, windows)`` — no wall clock, no process-global state.
The RNG stream names (``fleet-probe``, ``fleet-storms``) and process
names are part of that contract: they seed the per-purpose substreams,
so renaming them would silently re-draw every published fleet number.
"""

from repro.hw.host import HostNode, VMSpec
from repro.hw.packet import IORequest, PacketKind
from repro.metrics import LatencyRecorder, QuantileSketch
from repro.metrics.sketch import DEFAULT_ALPHA
from repro.metrics.stats import attainment_pct, summarize
from repro.sim.units import MICROSECONDS, MILLISECONDS

#: Probe-sample retention; beyond this the recorder's reservoir keeps
#: percentiles honest but the summary stops shipping raw samples.
_SAMPLE_CAP = 50_000

#: ``WorkloadMix.dp_utilization`` is offered load relative to this nominal
#: DP partition size, so a board that repartitions CPUs (``dp_boost``, or
#: type-2 losing one to QEMU) sees the *same* total traffic spread over
#: its actual service count — capacity changes show up in latency, not in
#: offered work.
_NOMINAL_DP_SERVICES = 8


def run_soak(scenario, seed=0, duration_ns=400 * MILLISECONDS,
             drain_ns=200 * MILLISECONDS, dp_slo_us=300.0, fault_scale=1.0,
             label="node", telemetry=None, spans=False, exemplar_k=None):
    """Soak one scenario and return its picklable summary dict.

    ``fault_scale`` compresses the scenario's fault plan alongside a
    scaled duration; ``label`` names the board in the summary and its
    probe recorder (the fleet runner passes the node id).

    ``telemetry`` is an optional
    :class:`~repro.obs.telemetry.TelemetryConfig`: when set (or when the
    scenario declares ``alerts``, which arms a default config), a
    :class:`~repro.obs.telemetry.TelemetryBus` samples the run on
    sim-time intervals — counter deltas, health gauges (run-queue depth,
    grant occupancy, probe health, running SLO attainment), and sketch
    deltas for dp rx-wait and VM-startup latency — and an
    :class:`~repro.obs.alerts.SLOMonitor` evaluates the scenario's alert
    rules against each snapshot.  Telemetry never changes the simulated
    schedule (ticks only read state), and the summary's quantile
    sketches accumulate identically with the bus on or off.

    ``spans=True`` enables causal request tracing
    (:class:`~repro.obs.spans.SpanTracker`): DP probe packets and VM
    startups carry correlation ids, the K worst requests per channel
    (``exemplar_k``, default 4) ship under ``summary["exemplars"]`` with
    their full critical-path decomposition, and raised alerts reference
    the worst live exemplar ids.  Span tracking only *reads* the flat
    event stream, so every other summary key is byte-identical to a
    spans-off run.
    """
    if scenario.tenants:
        from repro.tenancy.soak import run_tenant_soak

        return run_tenant_soak(
            scenario, seed=seed, duration_ns=duration_ns, drain_ns=drain_ns,
            dp_slo_us=dp_slo_us, fault_scale=fault_scale, label=label,
            telemetry=telemetry, spans=spans, exemplar_k=exemplar_k)

    from repro.scenario.spec import TRAFFIC_PROFILES
    from repro.workloads.background import (
        start_cp_background, start_dp_background,
    )

    deployment = scenario.build(seed=seed, fault_scale=fault_scale)
    if spans:
        deployment.env.spans.enable(exemplar_k=exemplar_k)

    mix = scenario.workload
    per_service_util = min(
        mix.dp_utilization * _NOMINAL_DP_SERVICES / len(deployment.services),
        0.95)
    start_dp_background(deployment, utilization=per_service_util,
                        burstiness=TRAFFIC_PROFILES[scenario.traffic])
    start_cp_background(deployment, n_monitors=mix.n_monitors,
                        rolling_tasks=mix.rolling_tasks)
    deployment.warmup()
    env = deployment.env
    board = deployment.board
    host = HostNode(deployment)

    probe_latency = LatencyRecorder(name=f"{label}-probe", cap=_SAMPLE_CAP)

    # Streaming telemetry (optional).  Scenario-declared alert rules
    # imply a bus even when the driver didn't ask for one, so SLO
    # monitoring is purely declarative.
    if telemetry is None and scenario.alerts is not None:
        from repro.obs.telemetry import TelemetryConfig

        telemetry = TelemetryConfig(node_id=label)
    alpha = telemetry.alpha if telemetry else DEFAULT_ALPHA
    bus = None
    ring = None
    monitor = None
    jsonl_writer = None
    if telemetry is not None:
        from repro.obs.alerts import SLOMonitor
        from repro.obs.telemetry import (
            RingSeries, TelemetryBus, TelemetryJsonlWriter,
        )

        node_id = telemetry.node_id if telemetry.node_id != "node" else label
        bus = TelemetryBus(registry=env.metrics,
                           interval_ns=telemetry.interval_ns,
                           node_id=node_id, alpha=alpha)
        rules = scenario.alerts if scenario.alerts is not None \
            else telemetry.alerts
        if rules is not None:
            # The monitor subscribes first so exported snapshots carry
            # the interval's active alerts.
            monitor = bus.subscribe(SLOMonitor(
                rules=rules, tracer=env.tracer, node_id=node_id,
                exemplar_provider=env.spans if spans else None))
        ring = bus.subscribe(RingSeries(cap=telemetry.ring_cap))
        if telemetry.jsonl_path:
            jsonl_writer = bus.subscribe(TelemetryJsonlWriter(
                telemetry.jsonl_path, cap=telemetry.jsonl_cap,
                node_id=node_id))

    # The dp rx-wait sketch accumulates on every probe completion whether
    # or not a bus drains interval deltas from it — the summary's sketch
    # is the same object either way.
    dp_channel = (bus.channel("dp_rx_wait_us") if bus is not None else None)
    dp_sketch = dp_channel.cumulative if dp_channel is not None \
        else QuantileSketch(alpha)
    dp_within_running = [0]

    def record_probe(event):
        latency_ns = event.value.total_latency_ns
        probe_latency.record(latency_ns)
        latency_us = latency_ns / MICROSECONDS
        if latency_us <= dp_slo_us:
            dp_within_running[0] += 1
        if dp_channel is not None:
            dp_channel.observe(latency_us)
        else:
            dp_sketch.add(latency_us)

    def latency_probe():
        rng = deployment.rng.stream("fleet-probe")
        period_ns = mix.probe_period_us * MICROSECONDS
        while True:
            queue = int(rng.integers(0, 8))
            done = env.event()
            done.callbacks.append(record_probe)
            board.accelerator.submit(IORequest(
                PacketKind.NET_TX, 64, ("net", queue, 0),
                service_ns=1_500, done=done))
            yield env.timeout(int(rng.exponential(period_ns)))

    env.process(latency_probe(), name="latency-probe")

    def storm_source():
        rng = deployment.rng.stream("fleet-storms")
        period_ns = mix.vm_period_ms * MILLISECONDS
        while True:
            yield env.timeout(int(rng.exponential(period_ns)))
            for _ in range(int(rng.integers(mix.vm_batch_min,
                                            mix.vm_batch_max + 1))):
                host.create_vm(VMSpec(n_vblks=mix.vm_vblks))

    env.process(storm_source(), name="storm-source")

    slo_ns = host.manager.params.startup_slo_ns
    slo_ms = slo_ns / MILLISECONDS
    if bus is not None:
        _wire_bus_gauges(bus, deployment, host, probe_latency,
                         dp_within_running, slo_ns)
        bus.attach(env)

    deployment.run(env.now + duration_ns)
    # Drain: give in-flight startups a grace window.
    deployment.run(env.now + drain_ns)
    if bus is not None:
        bus.close(env.now)

    dp_samples_us = [value / MICROSECONDS for value in probe_latency.samples]
    dp_within = sum(1 for value in dp_samples_us if value <= dp_slo_us)

    startups_ms = sorted(
        vm.startup_time_ns() / MILLISECONDS for vm in host.vms
        if vm.startup_time_ns() is not None)
    startup_within = sum(1 for value in startups_ms if value <= slo_ms)
    # A startup still pending past the SLO is a violation even though it
    # never produced a sample — a saturated control plane must not score
    # 100% by finishing almost nothing.  Requests younger than the SLO at
    # stream end are censored (they still had time), not counted.
    overdue_pending = sum(
        1 for vm in host.vms
        if vm.startup_time_ns() is None
        and env.now - vm.request.t_issued > slo_ns)
    startup_total = len(startups_ms) + overdue_pending

    # Sketches the fleet ships in place of raw sample arrays.  The
    # startup sketch is rebuilt from the *sorted* samples so its float
    # ``sum`` is independent of VM completion order (and of whether a
    # telemetry bus also streamed the same values as interval deltas).
    startup_sketch = QuantileSketch(alpha).extend(startups_ms)

    injector = deployment.fault_injector
    summary = {
        "node_id": label,
        "deployment": scenario.arm,
        "traffic": scenario.traffic,
        "seed": seed,
        "dp_samples_us": dp_samples_us,
        "dp_sample_count": probe_latency.count,
        "dp_latency_us": summarize(dp_samples_us, qs=(50, 90, 99, 99.9)),
        "dp_slo_us": dp_slo_us,
        "dp_within_slo": dp_within,
        "dp_slo_attainment_pct": attainment_pct(dp_within,
                                                len(dp_samples_us)),
        "startup_samples_ms": startups_ms,
        "startup_ms": summarize(startups_ms, qs=(50, 90, 99)),
        "startup_slo_ms": slo_ms,
        "startup_within_slo": startup_within,
        "startup_slo_total": startup_total,
        "startup_overdue_pending": overdue_pending,
        "startup_slo_attainment_pct": attainment_pct(startup_within,
                                                     startup_total),
        "vms_started": len(startups_ms),
        "vms_requested": len(host.vms),
        "faults": {
            "injected": injector.injected if injector else 0,
            "cleared": injector.cleared if injector else 0,
        },
        "dp_sketch": dp_sketch.to_dict(),
        "dp_slo_total": len(dp_samples_us),
        "startup_sketch": startup_sketch.to_dict(),
        "engine": engine_summary(env),
    }
    if spans:
        # Only added when spans are on, so a spans-off summary (and its
        # fleet JSON) stays byte-identical to previous releases.
        summary["exemplars"] = env.spans.exemplars()
        summary["spans"] = {
            "completed": env.spans.roots_completed,
            "open": env.spans.open_spans(),
        }
    if bus is not None:
        summary["telemetry"] = {
            "intervals": bus.snapshots_emitted,
            "interval_ms": telemetry.interval_ms,
            "path": telemetry.jsonl_path,
            "ring_retained": len(ring),
            "alerts": monitor.summary() if monitor is not None else None,
        }
        if jsonl_writer is not None:
            summary["telemetry"]["path"] = jsonl_writer.finish()
    return summary


def engine_summary(env):
    """Deterministic engine self-profile for the summary ``engine`` block.

    Only wall-clock-free fields ship (no ``wall_time_s`` /
    ``events_per_wall_s``), keeping the fleet's byte-identity contract
    across ``--jobs`` levels.  These fields *do* depend on the engine
    mode — a stepped run processes the events a fast-forward run elides —
    which is exactly what the equivalence tests assert: summaries must be
    byte-identical outside this block, and
    ``stepped.events_processed == fast.events_processed +
    fast.events_skipped`` up to the handful of bookkeeping events each
    mode uniquely owns.
    """
    profile = env.profile()
    return {
        "events_processed": profile["events_processed"],
        "events_skipped": profile["events_skipped"],
        "fast_forward_windows": profile["fast_forward_windows"],
        "skipped_ratio": profile["skipped_ratio"],
        "scheduler": profile["scheduler"],
        "fast_forward": profile["fast_forward"],
    }


def _wire_bus_gauges(bus, deployment, host, probe_latency, dp_within_running,
                     slo_ns):
    """Register board-health gauges and the VM-startup collector.

    Everything here *reads* simulation state — gauges and collectors
    must never mutate the schedule, or telemetry-on runs would diverge
    from telemetry-off runs.
    """
    env = deployment.env
    kernel = deployment.board.kernel
    taichi = deployment.taichi

    bus.add_gauge("rq_depth", lambda: sum(
        len(cpu.runqueue) for cpu in kernel.cpus.values()))
    if taichi is not None:
        scheduler = taichi.scheduler
        bus.add_gauge("grant_occupancy", lambda: sum(
            1 for grant in scheduler.active.values() if grant.active))
        bus.add_gauge("probe_health",
                      lambda: 0.0 if scheduler.probe_degraded else 1.0)
    else:
        # Baselines have no probe to lose; report steady health so the
        # same alert rules apply across arms.
        bus.add_gauge("probe_health", lambda: 1.0)
    bus.add_gauge("dp_slo_attainment_pct", lambda: attainment_pct(
        dp_within_running[0], probe_latency.count))

    startup_channel = bus.channel("vm_startup_ms")
    seen = set()
    startup_state = {"within": 0, "completed": 0}

    def collect_startups(now_ns):
        for vm in host.vms:
            if id(vm) in seen:
                continue
            startup_ns = vm.startup_time_ns()
            if startup_ns is None:
                continue
            seen.add(id(vm))
            startup_channel.observe(startup_ns / MILLISECONDS)
            startup_state["completed"] += 1
            if startup_ns <= slo_ns:
                startup_state["within"] += 1

    bus.add_collector(collect_startups)

    def startup_attainment():
        overdue = sum(
            1 for vm in host.vms
            if vm.startup_time_ns() is None
            and env.now - vm.request.t_issued > slo_ns)
        return attainment_pct(startup_state["within"],
                              startup_state["completed"] + overdue)

    bus.add_gauge("startup_slo_attainment_pct", startup_attainment)
