"""Tai Chi reproduction: SmartNIC DP/CP co-scheduling via hybrid virtualization.

A simulation-based, from-scratch reproduction of "Tai Chi: A General
High-Efficiency Scheduling Framework for SmartNICs in Hyperscale Clouds"
(SOSP 2025).  See DESIGN.md for the system inventory and EXPERIMENTS.md
for paper-vs-measured results.

Public API tour::

    from repro.sim import Environment                    # DES engine
    from repro.hw import SmartNIC                        # the board
    from repro.dp import deploy_dp_services              # DPDK/SPDK models
    from repro.core import TaiChi, TaiChiConfig          # the framework
    from repro.baselines import build_deployment         # systems under test
    from repro.workloads import run_ping, run_synth_cp   # Table 3 benchmarks
    from repro.experiments import run_experiment         # tables & figures
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
