"""Multi-tenant boards: SmartNIC-as-a-pool with isolation guarantees.

Tenants are first-class scenario objects (:class:`TenantSpec` lists on
``Scenario.tenants``); the :class:`TenancyManager` partitions a built
board's DP services and vCPUs by weight and hooks the Tai Chi scheduler
for weighted-fair, isolation-respecting backing; :func:`run_tenant_soak`
drives per-tenant load and reports per-tenant SLO blocks;
:func:`verify_tenant_summary` cross-checks a summary's grant ledgers and
declared SLOs.
"""

from repro.tenancy.manager import TenancyManager, TenantRuntime, \
    weighted_partition
from repro.tenancy.soak import run_tenant_soak, verify_tenant_summary
from repro.tenancy.spec import MIN_SHARE, TenantSpec, normalize_tenants

__all__ = [
    "MIN_SHARE",
    "TenancyManager",
    "TenantRuntime",
    "TenantSpec",
    "normalize_tenants",
    "run_tenant_soak",
    "verify_tenant_summary",
    "weighted_partition",
]
