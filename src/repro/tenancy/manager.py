"""The tenancy runtime: partition one board's resources among tenants.

:class:`TenancyManager` is installed on a built deployment (after the arm
registry constructed it, before load starts).  It partitions the DP
services and — on Tai Chi arms — the vCPUs among the tenants
proportionally to their weights (largest-remainder, at least one each),
tags every service/vCPU with its owner's tenant id, computes each
tenant's CP affinity, seeds per-tenant probe thresholds, and hooks the
vCPU scheduler for weighted-fair backing:

* **isolation on** (the default): a tenant-owned DP CPU donates idle
  cycles only to that tenant's own vCPUs, and the shared CP pCPUs back
  the runnable tenant with the *lowest weight-normalized granted time* —
  so one tenant's CP storm cannot ride another tenant's data-plane CPUs,
  and the shared pool divides by weight;
* **isolation off**: the scheduler keeps its tenancy-blind round-robin
  (the pre-tenancy behavior) while grant accounting still attributes
  every slice — the measurable counterfactual the ``ext_multitenant``
  experiment compares against.

Grant accounting is conserved by construction (every slice lands in
exactly one tenant's ledger plus the board total) and is checkable from
the trace stream: ``tenant.pick`` events carry each weighted-fair
decision, ``tenant.grant`` events the running ledgers (see
:mod:`repro.obs.invariants`).
"""


class TenantRuntime:
    """One tenant's live slice: owned resources plus the grant ledger."""

    def __init__(self, spec, index):
        self.spec = spec
        self.index = index              # declaration order (tie-breaks)
        self.tenant_id = spec.tenant_id
        self.weight = spec.weight
        self.services = []
        self.vcpus = []
        self.cp_affinity = set()
        self.granted_ns = 0             # donated-slice time, accounted at
        self.grants = 0                 # slice end

    def normalized_usage_ns(self):
        """Granted time normalized by weight — the fairness currency."""
        return self.granted_ns / self.weight

    def __repr__(self):
        return (f"<TenantRuntime {self.tenant_id!r} weight={self.weight:g} "
                f"services={len(self.services)} vcpus={len(self.vcpus)}>")


def weighted_partition(n_items, runtimes, resource):
    """Split ``n_items`` whole items by weight (largest remainder, >=1).

    Returns one count per runtime, summing to ``n_items``.  Deterministic:
    ties break on declaration order.  Raises (naming the resource) when
    there are fewer items than tenants.
    """
    if len(runtimes) > n_items:
        raise ValueError(
            f"cannot partition {n_items} {resource} among "
            f"{len(runtimes)} tenants: every tenant needs at least one")
    total = sum(runtime.weight for runtime in runtimes)
    quotas = [n_items * runtime.weight / total for runtime in runtimes]
    counts = [max(int(quota), 1) for quota in quotas]
    while sum(counts) > n_items:
        # Shrink the most over-provisioned tenant that can still give.
        index = max(
            (i for i in range(len(counts)) if counts[i] > 1),
            key=lambda i: (counts[i] - quotas[i], -i))
        counts[index] -= 1
    while sum(counts) < n_items:
        index = max(range(len(counts)),
                    key=lambda i: (quotas[i] - counts[i], -i))
        counts[index] += 1
    return counts


class TenancyManager:
    """Owns the tenant partition and the per-tenant grant ledgers."""

    def __init__(self, deployment, tenants, isolation=True):
        from repro.tenancy.spec import normalize_tenants

        self.deployment = deployment
        self.env = deployment.env
        self.isolation = bool(isolation)
        specs = normalize_tenants(tenants)
        self.runtimes = [TenantRuntime(spec, index)
                         for index, spec in enumerate(specs)]
        self.by_id = {runtime.tenant_id: runtime
                      for runtime in self.runtimes}
        self._by_cpu = {}               # DP cpu_id -> TenantRuntime
        self._by_vcpu = {}              # VirtualCPU -> TenantRuntime
        self.total_granted_ns = 0
        self.installed = False

    # -- Installation -------------------------------------------------------------

    def install(self):
        """Partition the built deployment's resources among the tenants."""
        if self.installed:
            raise RuntimeError("tenancy is already installed on this board")
        deployment = self.deployment
        services = list(deployment.services)
        counts = weighted_partition(len(services), self.runtimes,
                                    "DP services")
        cursor = 0
        for runtime, count in zip(self.runtimes, counts):
            for service in services[cursor:cursor + count]:
                self.assign_service(service, runtime)
            cursor += count

        taichi = getattr(deployment, "taichi", None)
        if taichi is not None:
            vcpus = list(taichi.vcpus)
            counts = weighted_partition(len(vcpus), self.runtimes, "vCPUs")
            cursor = 0
            cp_pcpus = set(deployment.board.cp_cpu_ids)
            for runtime, count in zip(self.runtimes, counts):
                for vcpu in vcpus[cursor:cursor + count]:
                    vcpu.tenant_id = runtime.tenant_id
                    runtime.vcpus.append(vcpu)
                    self._by_vcpu[vcpu] = runtime
                cursor += count
                # CP tasks ride the tenant's own vCPUs plus the shared
                # dedicated CP pCPUs (which back tenants by weight).
                runtime.cp_affinity = (
                    {vcpu.cpu_id for vcpu in runtime.vcpus} | cp_pcpus)
            taichi.attach_tenancy(self)
        else:
            # Baseline arms have no vCPUs to partition: every tenant's CP
            # work shares the deployment's CP partition — which is exactly
            # the isolation gap the multi-tenant experiment measures.
            for runtime in self.runtimes:
                runtime.cp_affinity = set(deployment.cp_affinity)
        deployment.tenancy = self
        self.installed = True
        return self

    def assign_service(self, service, runtime):
        """Tag ``service`` as owned by ``runtime`` (install + repartition)."""
        service.tenant_id = runtime.tenant_id
        runtime.services.append(service)
        self._by_cpu[service.cpu_id] = runtime
        taichi = getattr(self.deployment, "taichi", None)
        if taichi is not None and runtime.spec.probe_threshold is not None:
            taichi.sw_probe.seed_threshold(service,
                                           runtime.spec.probe_threshold)

    def adopt_service(self, service):
        """Assign a repartition-created DP service to the tenant with the
        least weight-normalized DP capacity (ties: declaration order)."""
        runtime = min(self.runtimes,
                      key=lambda r: (len(r.services) / r.weight, r.index))
        self.assign_service(service, runtime)
        return runtime

    def release_service(self, service):
        """Detach a retired DP service (dynamic repartitioning)."""
        runtime = self._by_cpu.pop(service.cpu_id, None)
        if runtime is not None and service in runtime.services:
            runtime.services.remove(service)
        return runtime

    # -- Scheduler policy ---------------------------------------------------------

    def tenant_of_cpu(self, cpu_id):
        """The tenant owning DP CPU ``cpu_id`` (None for CP pCPUs)."""
        return self._by_cpu.get(cpu_id)

    def tenant_of_vcpu(self, vcpu):
        return self._by_vcpu.get(vcpu)

    def may_back(self, cpu_id, vcpu):
        """Donation policy: may ``cpu_id`` host a slice for ``vcpu``?

        Shared CP pCPUs back any tenant.  With isolation on, a
        tenant-owned DP CPU donates only to its own tenant's vCPUs.
        """
        if not self.isolation:
            return True
        owner = self._by_cpu.get(cpu_id)
        if owner is None:
            return True
        return self._by_vcpu.get(vcpu) is owner

    def choose(self, heads, cpu_id):
        """Weighted-fair pick among per-tenant queue heads.

        ``heads`` maps TenantRuntime (or None for untagged vCPUs) to the
        tenant's first runnable vCPU in FIFO order.  The tenant with the
        lowest weight-normalized granted time wins; declaration order
        breaks ties; untagged vCPUs (no tenant) always go first.  Emits a
        ``tenant.pick`` trace event carrying the decision and every
        backlogged tenant's normalized usage, which is what makes the
        fair-share invariant checkable from the stream.
        """
        runtime = min(
            heads,
            key=lambda r: ((0.0, -1) if r is None
                           else (r.normalized_usage_ns(), r.index)))
        if runtime is not None:
            tracer = self.deployment.kernel.tracer
            if tracer.enabled:
                backlogged = {
                    other.tenant_id: int(other.normalized_usage_ns())
                    for other in heads
                    if other is not None and other is not runtime
                }
                tracer.record(
                    self.env.now, cpu_id, "tenant.pick",
                    tenant=runtime.tenant_id,
                    usage_ns=int(runtime.normalized_usage_ns()),
                    backlogged=backlogged)
        return heads[runtime]

    def note_grant(self, vcpu, slice_ns, cpu_id):
        """Account one finished donated slice to its tenant's ledger."""
        slice_ns = int(slice_ns)
        self.total_granted_ns += slice_ns
        runtime = self._by_vcpu.get(vcpu)
        if runtime is None:
            return
        runtime.granted_ns += slice_ns
        runtime.grants += 1
        tracer = self.deployment.kernel.tracer
        if tracer.enabled:
            tracer.record(self.env.now, cpu_id, "tenant.grant",
                          tenant=runtime.tenant_id, ns=slice_ns,
                          tenant_total_ns=runtime.granted_ns,
                          total_ns=self.total_granted_ns)

    # -- Reporting ----------------------------------------------------------------

    def stats(self):
        """Per-tenant partition + grant-ledger view (metrics/summaries)."""
        return {
            "isolation": self.isolation,
            "total_granted_ns": self.total_granted_ns,
            "tenants": {
                runtime.tenant_id: {
                    "weight": runtime.weight,
                    "services": [service.name
                                 for service in runtime.services],
                    "vcpus": [vcpu.cpu_id for vcpu in runtime.vcpus],
                    "granted_ns": runtime.granted_ns,
                    "grants": runtime.grants,
                }
                for runtime in self.runtimes
            },
        }

    def __repr__(self):
        mode = "isolated" if self.isolation else "shared"
        return (f"<TenancyManager {mode} "
                f"tenants={[r.tenant_id for r in self.runtimes]}>")
