"""The multi-tenant production soak: one board, several tenants' load.

:func:`run_tenant_soak` is the tenant-aware sibling of
:func:`repro.scenario.soak.run_soak` — the scenario driver delegates here
whenever a :class:`~repro.scenario.spec.Scenario` declares ``tenants``.
It builds the arm through the same registry, installs a
:class:`~repro.tenancy.manager.TenancyManager`, then runs *per-tenant*
copies of the soak's load shape: DP background on the tenant's own rx
queues, CP hum and VM-creation storms bound to the tenant's CP affinity
through the tenant's own :class:`~repro.cp.device_mgmt.DeviceManager`,
and tenant latency probes tagged with the tenant id.

The summary keeps every key of the single-tenant soak (pooled across
tenants, so fleet aggregation and ``top`` keep working unchanged) and
adds ``summary["tenants"][tid]`` blocks plus a ``summary["tenancy"]``
ledger view.  Tenant blocks carry sketches and counts, never raw sample
arrays — they must stay cheap to ship through fleet JSON.

Determinism contract: per-tenant RNG streams are named
``tenant-<id>-{dp,cp,probe,storms}`` and ``device-mgmt-<id>``; renaming
them would re-draw every multi-tenant number.
"""

from repro.hw.host import HostNode, VMSpec
from repro.hw.packet import IORequest, PacketKind
from repro.metrics import LatencyRecorder, QuantileSketch
from repro.metrics.sketch import DEFAULT_ALPHA
from repro.metrics.stats import attainment_pct, summarize
from repro.scenario.soak import engine_summary
from repro.sim.units import MICROSECONDS, MILLISECONDS

from repro.tenancy.manager import TenancyManager

_SAMPLE_CAP = 50_000

#: Same nominal DP partition as the single-tenant soak: a tenant's
#: ``dp_utilization`` is offered load relative to this, spread over the
#: board's actual service count, so the *board-wide* offered work for a
#: given mix matches the single-tenant driver.
_NOMINAL_DP_SERVICES = 8


class _TenantRun:
    """One tenant's live measurement state during the soak."""

    def __init__(self, runtime, mix, traffic, dp_slo_us, label):
        self.runtime = runtime
        self.tenant_id = runtime.tenant_id
        self.mix = mix                    # tenant workload (or the default)
        self.traffic = traffic            # tenant traffic (or the default)
        self.dp_slo_us = dp_slo_us        # tenant SLO (or the global one)
        self.host = None
        self.probe_latency = LatencyRecorder(
            name=f"{label}-probe-{self.tenant_id}", cap=_SAMPLE_CAP)
        self.dp_channel = None            # per-tenant bus channel (optional)
        self.dp_sketch = None
        self.dp_within = 0


def run_tenant_soak(scenario, seed=0, duration_ns=400 * MILLISECONDS,
                    drain_ns=200 * MILLISECONDS, dp_slo_us=300.0,
                    fault_scale=1.0, label="node", telemetry=None,
                    spans=False, exemplar_k=None):
    """Soak one multi-tenant scenario; returns the summary dict.

    Same contract as :func:`repro.scenario.soak.run_soak` (which forwards
    here), plus the ``tenants``/``tenancy`` summary blocks.
    """
    from repro.cp.device_mgmt import DeviceManager
    from repro.scenario.spec import TRAFFIC_PROFILES
    from repro.workloads.background import (
        start_cp_background, start_dp_background,
    )

    deployment = scenario.build(seed=seed, fault_scale=fault_scale)
    if spans:
        deployment.env.spans.enable(exemplar_k=exemplar_k)
    env = deployment.env
    board = deployment.board

    tenancy = TenancyManager(deployment, scenario.tenants,
                             isolation=scenario.tenant_isolation).install()
    runs = [
        _TenantRun(runtime,
                   mix=runtime.spec.workload or scenario.workload,
                   traffic=runtime.spec.traffic or scenario.traffic,
                   dp_slo_us=(runtime.spec.dp_slo_us
                              if runtime.spec.dp_slo_us is not None
                              else dp_slo_us),
                   label=label)
        for runtime in tenancy.runtimes
    ]

    for run in runs:
        tid = run.tenant_id
        queues = [service.queue_ids[0]
                  for service in run.runtime.services]
        per_service_util = min(
            run.mix.dp_utilization * _NOMINAL_DP_SERVICES
            / len(deployment.services), 0.95)
        start_dp_background(
            deployment, utilization=per_service_util,
            burstiness=TRAFFIC_PROFILES[run.traffic],
            rng=deployment.rng.stream(f"tenant-{tid}-dp"),
            queues=queues, label=f"dp-bg-{tid}", tenant=tid)
        start_cp_background(
            deployment, n_monitors=run.mix.n_monitors,
            rolling_tasks=run.mix.rolling_tasks,
            rng=deployment.rng.stream(f"tenant-{tid}-cp"),
            affinity=run.runtime.cp_affinity, name_prefix=tid)
    deployment.warmup()

    for run in runs:
        tid = run.tenant_id
        manager = DeviceManager(
            board, run.runtime.cp_affinity,
            rng=board.rng.stream(f"device-mgmt-{tid}"))
        run.host = HostNode(deployment, manager=manager,
                            services=run.runtime.services, tenant_id=tid)

    probe_latency = LatencyRecorder(name=f"{label}-probe", cap=_SAMPLE_CAP)

    if telemetry is None and scenario.alerts is not None:
        from repro.obs.telemetry import TelemetryConfig

        telemetry = TelemetryConfig(node_id=label)
    alpha = telemetry.alpha if telemetry else DEFAULT_ALPHA
    bus = None
    ring = None
    monitor = None
    jsonl_writer = None
    if telemetry is not None:
        from repro.obs.alerts import SLOMonitor
        from repro.obs.telemetry import (
            RingSeries, TelemetryBus, TelemetryJsonlWriter,
        )

        node_id = telemetry.node_id if telemetry.node_id != "node" else label
        bus = TelemetryBus(registry=env.metrics,
                           interval_ns=telemetry.interval_ns,
                           node_id=node_id, alpha=alpha)
        rules = scenario.alerts if scenario.alerts is not None \
            else telemetry.alerts
        if rules is not None:
            monitor = bus.subscribe(SLOMonitor(
                rules=rules, tracer=env.tracer, node_id=node_id,
                exemplar_provider=env.spans if spans else None))
        ring = bus.subscribe(RingSeries(cap=telemetry.ring_cap))
        if telemetry.jsonl_path:
            jsonl_writer = bus.subscribe(TelemetryJsonlWriter(
                telemetry.jsonl_path, cap=telemetry.jsonl_cap,
                node_id=node_id))

    dp_channel = (bus.channel("dp_rx_wait_us") if bus is not None else None)
    dp_sketch = dp_channel.cumulative if dp_channel is not None \
        else QuantileSketch(alpha)
    dp_within_running = [0]
    for run in runs:
        if bus is not None:
            run.dp_channel = bus.channel(
                f"tenant.{run.tenant_id}.dp_rx_wait_us")
            run.dp_sketch = run.dp_channel.cumulative
        else:
            run.dp_sketch = QuantileSketch(alpha)

    def make_recorder(run):
        def record_probe(event):
            latency_ns = event.value.total_latency_ns
            probe_latency.record(latency_ns)
            run.probe_latency.record(latency_ns)
            latency_us = latency_ns / MICROSECONDS
            if latency_us <= dp_slo_us:
                dp_within_running[0] += 1
            if latency_us <= run.dp_slo_us:
                run.dp_within += 1
            if dp_channel is not None:
                dp_channel.observe(latency_us)
            else:
                dp_sketch.add(latency_us)
            if run.dp_channel is not None:
                run.dp_channel.observe(latency_us)
            else:
                run.dp_sketch.add(latency_us)
        return record_probe

    def latency_probe(run, record_probe):
        tid = run.tenant_id
        rng = deployment.rng.stream(f"tenant-{tid}-probe")
        period_ns = run.mix.probe_period_us * MICROSECONDS
        queues = [service.queue_ids[0]
                  for service in run.runtime.services]
        while True:
            queue_id = queues[int(rng.integers(0, len(queues)))]
            done = env.event()
            done.callbacks.append(record_probe)
            board.accelerator.submit(IORequest(
                PacketKind.NET_TX, 64, queue_id,
                service_ns=1_500, done=done, tenant=tid))
            yield env.timeout(int(rng.exponential(period_ns)))

    def storm_source(run):
        tid = run.tenant_id
        rng = deployment.rng.stream(f"tenant-{tid}-storms")
        period_ns = run.mix.vm_period_ms * MILLISECONDS
        while True:
            yield env.timeout(int(rng.exponential(period_ns)))
            for _ in range(int(rng.integers(run.mix.vm_batch_min,
                                            run.mix.vm_batch_max + 1))):
                run.host.create_vm(VMSpec(n_vblks=run.mix.vm_vblks))

    for run in runs:
        tid = run.tenant_id
        env.process(latency_probe(run, make_recorder(run)),
                    name=f"latency-probe-{tid}")
        env.process(storm_source(run), name=f"storm-source-{tid}")

    slo_ns = runs[0].host.manager.params.startup_slo_ns
    slo_ms = slo_ns / MILLISECONDS
    if bus is not None:
        _wire_tenant_gauges(bus, deployment, runs, probe_latency,
                            dp_within_running, slo_ns)
        bus.attach(env)

    deployment.run(env.now + duration_ns)
    deployment.run(env.now + drain_ns)
    if bus is not None:
        bus.close(env.now)

    dp_samples_us = [value / MICROSECONDS for value in probe_latency.samples]
    dp_within = sum(1 for value in dp_samples_us if value <= dp_slo_us)

    all_vms = [vm for run in runs for vm in run.host.vms]
    startups_ms = sorted(
        vm.startup_time_ns() / MILLISECONDS for vm in all_vms
        if vm.startup_time_ns() is not None)
    startup_within = sum(1 for value in startups_ms if value <= slo_ms)
    overdue_pending = sum(
        1 for vm in all_vms
        if vm.startup_time_ns() is None
        and env.now - vm.request.t_issued > slo_ns)
    startup_total = len(startups_ms) + overdue_pending
    startup_sketch = QuantileSketch(alpha).extend(startups_ms)

    injector = deployment.fault_injector
    summary = {
        "node_id": label,
        "deployment": scenario.arm,
        "traffic": scenario.traffic,
        "seed": seed,
        "dp_samples_us": dp_samples_us,
        "dp_sample_count": probe_latency.count,
        "dp_latency_us": summarize(dp_samples_us, qs=(50, 90, 99, 99.9)),
        "dp_slo_us": dp_slo_us,
        "dp_within_slo": dp_within,
        "dp_slo_attainment_pct": attainment_pct(dp_within,
                                                len(dp_samples_us)),
        "startup_samples_ms": startups_ms,
        "startup_ms": summarize(startups_ms, qs=(50, 90, 99)),
        "startup_slo_ms": slo_ms,
        "startup_within_slo": startup_within,
        "startup_slo_total": startup_total,
        "startup_overdue_pending": overdue_pending,
        "startup_slo_attainment_pct": attainment_pct(startup_within,
                                                     startup_total),
        "vms_started": len(startups_ms),
        "vms_requested": len(all_vms),
        "faults": {
            "injected": injector.injected if injector else 0,
            "cleared": injector.cleared if injector else 0,
        },
        "dp_sketch": dp_sketch.to_dict(),
        "dp_slo_total": len(dp_samples_us),
        "startup_sketch": startup_sketch.to_dict(),
        "engine": engine_summary(env),
        "tenancy": {
            "isolation": tenancy.isolation,
            "total_granted_ns": tenancy.total_granted_ns,
        },
        "tenants": {
            run.tenant_id: _tenant_block(run, env, slo_ns, slo_ms, alpha)
            for run in runs
        },
    }
    if spans:
        summary["exemplars"] = env.spans.exemplars()
        summary["spans"] = {
            "completed": env.spans.roots_completed,
            "open": env.spans.open_spans(),
        }
    if bus is not None:
        summary["telemetry"] = {
            "intervals": bus.snapshots_emitted,
            "interval_ms": telemetry.interval_ms,
            "path": telemetry.jsonl_path,
            "ring_retained": len(ring),
            "alerts": monitor.summary() if monitor is not None else None,
        }
        if jsonl_writer is not None:
            summary["telemetry"]["path"] = jsonl_writer.finish()
    return summary


def _tenant_block(run, env, slo_ns, slo_ms, alpha):
    """One tenant's summary block: sketches and counts, no raw arrays."""
    runtime = run.runtime
    dp_samples_us = [value / MICROSECONDS
                     for value in run.probe_latency.samples]
    startups_ms = sorted(
        vm.startup_time_ns() / MILLISECONDS for vm in run.host.vms
        if vm.startup_time_ns() is not None)
    startup_within = sum(1 for value in startups_ms if value <= slo_ms)
    overdue_pending = sum(
        1 for vm in run.host.vms
        if vm.startup_time_ns() is None
        and env.now - vm.request.t_issued > slo_ns)
    startup_total = len(startups_ms) + overdue_pending
    return {
        "weight": runtime.weight,
        "services": len(runtime.services),
        "vcpus": len(runtime.vcpus),
        "dp_sample_count": run.probe_latency.count,
        "dp_latency_us": summarize(dp_samples_us, qs=(50, 90, 99, 99.9)),
        "dp_slo_us": run.dp_slo_us,
        "dp_slo_declared": runtime.spec.dp_slo_us is not None,
        "dp_within_slo": run.dp_within,
        "dp_slo_total": len(dp_samples_us),
        "dp_slo_attainment_pct": attainment_pct(run.dp_within,
                                                len(dp_samples_us)),
        "dp_sketch": run.dp_sketch.to_dict(),
        "startup_ms": summarize(startups_ms, qs=(50, 90, 99)),
        "startup_slo_ms": slo_ms,
        "startup_within_slo": startup_within,
        "startup_slo_total": startup_total,
        "startup_overdue_pending": overdue_pending,
        "startup_slo_attainment_pct": attainment_pct(startup_within,
                                                     startup_total),
        "startup_sketch": QuantileSketch(alpha).extend(startups_ms).to_dict(),
        "vms_started": len(startups_ms),
        "vms_requested": len(run.host.vms),
        "granted_ns": runtime.granted_ns,
        "grants": runtime.grants,
    }


def _wire_tenant_gauges(bus, deployment, runs, probe_latency,
                        dp_within_running, slo_ns):
    """Board-health gauges plus per-tenant ``tenant.<id>.*`` gauges.

    Per-tenant gauge names make the declarative alert rules work
    unchanged: a rule on ``tenant.victim.dp_slo_attainment_pct`` needs no
    alert-code support, just this naming convention.
    """
    env = deployment.env
    kernel = deployment.board.kernel
    taichi = deployment.taichi

    bus.add_gauge("rq_depth", lambda: sum(
        len(cpu.runqueue) for cpu in kernel.cpus.values()))
    if taichi is not None:
        scheduler = taichi.scheduler
        bus.add_gauge("grant_occupancy", lambda: sum(
            1 for grant in scheduler.active.values() if grant.active))
        bus.add_gauge("probe_health",
                      lambda: 0.0 if scheduler.probe_degraded else 1.0)
    else:
        bus.add_gauge("probe_health", lambda: 1.0)
    bus.add_gauge("dp_slo_attainment_pct", lambda: attainment_pct(
        dp_within_running[0], probe_latency.count))

    startup_channel = bus.channel("vm_startup_ms")
    seen = set()
    startup_state = {"within": 0, "completed": 0}

    def collect_startups(now_ns):
        for run in runs:
            for vm in run.host.vms:
                if id(vm) in seen:
                    continue
                startup_ns = vm.startup_time_ns()
                if startup_ns is None:
                    continue
                seen.add(id(vm))
                startup_channel.observe(startup_ns / MILLISECONDS)
                startup_state["completed"] += 1
                if startup_ns <= slo_ns:
                    startup_state["within"] += 1

    bus.add_collector(collect_startups)

    def startup_attainment():
        overdue = sum(
            1 for run in runs for vm in run.host.vms
            if vm.startup_time_ns() is None
            and env.now - vm.request.t_issued > slo_ns)
        return attainment_pct(startup_state["within"],
                              startup_state["completed"] + overdue)

    bus.add_gauge("startup_slo_attainment_pct", startup_attainment)

    for run in runs:
        tid = run.tenant_id

        def tenant_dp_attainment(run=run):
            return attainment_pct(run.dp_within, run.probe_latency.count)

        def tenant_startup_attainment(run=run):
            within = completed = overdue = 0
            for vm in run.host.vms:
                startup_ns = vm.startup_time_ns()
                if startup_ns is None:
                    if env.now - vm.request.t_issued > slo_ns:
                        overdue += 1
                    continue
                completed += 1
                if startup_ns <= slo_ns:
                    within += 1
            return attainment_pct(within, completed + overdue)

        bus.add_gauge(f"tenant.{tid}.dp_slo_attainment_pct",
                      tenant_dp_attainment)
        bus.add_gauge(f"tenant.{tid}.startup_slo_attainment_pct",
                      tenant_startup_attainment)
        bus.add_gauge(f"tenant.{tid}.granted_ns",
                      lambda run=run: run.runtime.granted_ns)


def verify_tenant_summary(summary):
    """Cross-check a multi-tenant summary's books; returns problem strings.

    Checks (empty list = clean):

    * grant conservation — per-tenant ledgers sum to the board total;
    * sample accounting — within-SLO counts never exceed totals;
    * declared per-tenant DP SLOs hold at p99 when isolation is on.
    """
    problems = []
    tenants = summary.get("tenants")
    tenancy = summary.get("tenancy")
    if not tenants or tenancy is None:
        return ["summary carries no tenant blocks"]
    ledger_sum = sum(block["granted_ns"] for block in tenants.values())
    if ledger_sum != tenancy["total_granted_ns"]:
        problems.append(
            f"grant ledgers do not conserve: tenants sum to "
            f"{ledger_sum} ns but the board granted "
            f"{tenancy['total_granted_ns']} ns")
    for tid, block in tenants.items():
        if block["dp_within_slo"] > block["dp_slo_total"]:
            problems.append(
                f"tenant {tid!r}: dp_within_slo {block['dp_within_slo']} "
                f"exceeds dp_slo_total {block['dp_slo_total']}")
        if block["startup_within_slo"] > block["startup_slo_total"]:
            problems.append(
                f"tenant {tid!r}: startup_within_slo "
                f"{block['startup_within_slo']} exceeds startup_slo_total "
                f"{block['startup_slo_total']}")
        p99 = block["dp_latency_us"].get("p99")
        if (tenancy["isolation"] and block.get("dp_slo_declared")
                and p99 is not None and p99 > block["dp_slo_us"]):
            problems.append(
                f"tenant {tid!r}: dp rx-wait p99 {p99:.1f}us breaches its "
                f"declared SLO {block['dp_slo_us']:.1f}us despite "
                f"isolation")
    return problems
