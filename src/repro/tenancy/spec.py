"""Tenant specifications: the multi-tenant board as declarative data.

A hyperscale SmartNIC is shared: several tenants' DP services, CP task
streams and VM fleets ride one board.  A :class:`TenantSpec` declares one
tenant — its id, its weight (the share of the board's pCPU/vCPU/service
pool it is entitled to), optional per-tenant SLO targets, an optional
probe-threshold seed, and optional workload/traffic overrides.  A list of
them plugs into :class:`~repro.scenario.spec.Scenario` (``tenants=...``)
with the same JSON round-trip contract as every other scenario field.

Validation errors always *name the offending tenant* — a fleet spec can
carry hundreds of tenant entries, and "weight must be positive" without a
tenant id is useless at that scale.
"""

from dataclasses import dataclass
from math import isfinite

from repro.scenario.spec import TRAFFIC_PROFILES, WorkloadMix

#: Shares below this fraction of the total weight cannot be honored: the
#: partitioner hands out whole vCPUs and DP services, so a 0.1 % tenant
#: on an 8-CPU board would round to the same share as a 10 % one.
MIN_SHARE = 0.01

_FIELDS = ("tenant_id", "weight", "dp_slo_us", "probe_threshold",
           "traffic", "workload")


@dataclass
class TenantSpec:
    """One tenant's declarative slice of a board.

    ``weight`` is relative: a tenant's entitled share is its weight over
    the sum of all tenants' weights.  ``dp_slo_us`` (optional) is the
    tenant's own rx-wait SLO target; ``probe_threshold`` (optional) seeds
    the software workload probe's empty-poll threshold on the tenant's DP
    services; ``traffic``/``workload`` (optional) override the scenario's
    board-wide defaults for this tenant's background load, CP hum and
    VM-creation storms.
    """

    tenant_id: str
    weight: float = 1.0
    dp_slo_us: float = None
    probe_threshold: int = None
    traffic: str = None
    workload: WorkloadMix = None

    def __post_init__(self):
        if not isinstance(self.tenant_id, str) or not self.tenant_id:
            raise ValueError(
                f"tenant id must be a non-empty string, "
                f"got {self.tenant_id!r}")
        try:
            self.weight = float(self.weight)
        except (TypeError, ValueError):
            raise ValueError(
                f"tenant {self.tenant_id!r}: weight must be a number, "
                f"got {self.weight!r}") from None
        if not isfinite(self.weight) or self.weight <= 0:
            raise ValueError(
                f"tenant {self.tenant_id!r}: weight must be a positive "
                f"finite number, got {self.weight!r}")
        if self.dp_slo_us is not None:
            self.dp_slo_us = float(self.dp_slo_us)
            if not isfinite(self.dp_slo_us) or self.dp_slo_us <= 0:
                raise ValueError(
                    f"tenant {self.tenant_id!r}: dp_slo_us must be a "
                    f"positive number, got {self.dp_slo_us!r}")
        if self.probe_threshold is not None:
            self.probe_threshold = int(self.probe_threshold)
            if self.probe_threshold < 1:
                raise ValueError(
                    f"tenant {self.tenant_id!r}: probe_threshold must be "
                    f">= 1, got {self.probe_threshold}")
        if self.traffic is not None and self.traffic not in TRAFFIC_PROFILES:
            raise ValueError(
                f"tenant {self.tenant_id!r}: unknown traffic profile "
                f"{self.traffic!r}; choose from {sorted(TRAFFIC_PROFILES)}")
        if isinstance(self.workload, dict):
            try:
                self.workload = WorkloadMix(**self.workload)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"tenant {self.tenant_id!r}: invalid workload: "
                    f"{exc}") from None

    def to_dict(self):
        data = {"tenant_id": self.tenant_id, "weight": self.weight}
        if self.dp_slo_us is not None:
            data["dp_slo_us"] = self.dp_slo_us
        if self.probe_threshold is not None:
            data["probe_threshold"] = self.probe_threshold
        if self.traffic is not None:
            data["traffic"] = self.traffic
        if self.workload is not None:
            data["workload"] = self.workload.to_dict()
        return data

    @classmethod
    def from_dict(cls, data):
        if isinstance(data, TenantSpec):
            return data
        if not isinstance(data, dict):
            raise ValueError(
                f"tenant spec must be a dict or TenantSpec, "
                f"got {type(data).__name__}")
        tenant_id = data.get("tenant_id")
        unknown = sorted(set(data) - set(_FIELDS))
        if unknown:
            raise ValueError(
                f"tenant {tenant_id if tenant_id else '<unnamed>'!r} does "
                f"not accept field(s) {unknown}; accepted fields: "
                f"{sorted(_FIELDS)}")
        if not tenant_id:
            raise ValueError("tenant spec is missing 'tenant_id'")
        return cls(**data)


def normalize_tenants(tenants):
    """Validate a scenario's tenant list; returns ``[TenantSpec]`` in
    declaration order (the order every partition and merge preserves).

    Rejects duplicate ids and weights that do not sum sanely (a share
    below :data:`MIN_SHARE` of the total rounds to nothing on a board's
    whole-CPU partition).  Every error names the offending tenant.
    """
    if not isinstance(tenants, (list, tuple)):
        raise ValueError(
            f"tenants must be a list of tenant specs, "
            f"got {type(tenants).__name__}")
    specs = [TenantSpec.from_dict(tenant) for tenant in tenants]
    if not specs:
        raise ValueError("tenants must declare at least one tenant")
    seen = set()
    for spec in specs:
        if spec.tenant_id in seen:
            raise ValueError(
                f"duplicate tenant id {spec.tenant_id!r}: each tenant "
                f"must be declared exactly once")
        seen.add(spec.tenant_id)
    total = sum(spec.weight for spec in specs)
    for spec in specs:
        share = spec.weight / total
        if share < MIN_SHARE:
            raise ValueError(
                f"tenant {spec.tenant_id!r}: weight {spec.weight:g} is "
                f"{share * 100.0:.2f}% of the total {total:g} — shares "
                f"below {MIN_SHARE * 100.0:.0f}% cannot be honored by the "
                f"whole-CPU partition")
    return specs
