"""The central tracer: a gated, ring-buffered structured event sink.

Every :class:`~repro.sim.environment.Environment` owns exactly one
:class:`Tracer` (``env.tracer``); all subsystems — kernel executors,
IPI controller, softirq subsystem, the vCPU scheduler, the workload
probes, DP services — emit their events through it.  The tracer starts
*disabled*: instrumentation sites guard emission with a single attribute
check (``if tracer.enabled:``), so an untraced run pays one branch per
potential event and allocates nothing.

Event taxonomy (``docs/observability.md`` has the full reference):

===================  =======================================================
kind                 meaning
===================  =======================================================
``sched_in/out``     a thread started/stopped running on a CPU (slice pair)
``vmenter/vmexit``   a vCPU slice on a physical CPU (slice pair)
``enqueue``          a thread became runnable on a CPU's run queue
``rq_depth``         run-queue depth sample (counter track)
``softirq_raise``    a softirq vector was marked pending on a CPU
``softirq_run``      a softirq handler executed
``ipi_send``         an IPI left the send path (``routed`` = hook took it)
``ipi_deliver``      an IPI arrived at its destination CPU
``ipi_route``        the unified orchestrator's routing decision
``hwprobe_irq``      the hardware workload probe fired a preempt IRQ
``dp_idle_yield``    a DP service crossed its empty-poll threshold
``slice_adapt``      the adaptive time slice changed for a vCPU
``threshold_adapt``  a service's empty-poll threshold changed
``lock_safe_migrate``a descheduled lock-holder vCPU was re-dispatched
``cpu_online``       a CPU came online (hotplug/boot)
``thread_exit``      a thread exited
``span.begin``       a causal request span opened (``repro.obs.spans``)
``span.end``         a span closed (roots carry ``duration_ns`` + ``parts``)
===================  =======================================================
"""

from repro.metrics.timeline import Timeline


class Tracer(Timeline):
    """A :class:`~repro.metrics.timeline.Timeline` with an enable gate.

    Defaults to ring-buffer retention (keep the newest ``cap`` events) so
    long runs behave like a flight recorder rather than capturing only the
    boot transient.
    """

    def __init__(self, cap=1_000_000, ring=True, enabled=False):
        super().__init__(cap=cap, ring=ring)
        self.enabled = enabled
        # ``hook(event)`` callables invoked for every recorded event —
        # including ones the capacity policy drops — so inline consumers
        # (streaming invariant checkers) see the unabridged stream.
        self.hooks = []

    def enable(self):
        self.enabled = True
        return self

    def disable(self):
        self.enabled = False
        return self

    def add_hook(self, hook):
        """Subscribe ``hook(event)`` to every recorded event; enables the
        tracer (a hooked tracer that stays gated would observe nothing)."""
        self.hooks.append(hook)
        self.enabled = True
        return hook

    def remove_hook(self, hook):
        if hook in self.hooks:
            self.hooks.remove(hook)

    def record(self, ts_ns, cpu_id, kind, **detail):
        if not self.enabled:
            return
        event = super().record(ts_ns, cpu_id, kind, **detail)
        for hook in self.hooks:
            hook(event)

    def __repr__(self):
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} events={len(self.events)} dropped={self.dropped}>"
