"""Streaming telemetry: interval snapshots over the metrics spine.

PRs 1-2 made observability *post-hoc*: counters and raw sample arrays
are harvested once at end-of-run.  That shape collapses at fleet scale
(shipping every sample) and gives nothing for a control plane to
subscribe to.  This module is the streaming layer on top of the same
spine:

* a :class:`TelemetryBus` owns per-signal sketch *channels*
  (:class:`~repro.metrics.sketch.QuantileSketch`), gauge callbacks, and
  the counter baseline; a sim-time sampling process calls :meth:`tick`
  every interval;
* each tick produces one :class:`TelemetrySnapshot` — counter deltas,
  gauge readings, and *sketch deltas* (the interval's sketch, reset
  after emission) — and fans it out to subscribers in subscription
  order;
* subscribers are plain callables or objects with ``on_snapshot``:
  :class:`RingSeries` (bounded in-memory series),
  :class:`TelemetryJsonlWriter` (JSONL time-series with the
  ``trace_meta``-style drop-accounting head line), the OpenMetrics text
  exporter (:func:`openmetrics_text`), and
  :class:`~repro.obs.alerts.SLOMonitor`.

Every snapshot is O(1) in sample count: a node that served a million
requests in an interval ships the same few hundred bytes as a node that
served ten.  Cumulative channel sketches (``channel.cumulative``) are
what fleet summaries ship instead of raw sample arrays.

Determinism: ticks run on simulated time, counter/gauge reads never
invoke registry sources (no wall-clock), and sketch serialization is
byte-stable — a telemetry capture is a pure function of (scenario,
seed, interval).
"""

import json
import re
from collections import deque
from dataclasses import dataclass

from repro.metrics.sketch import (
    CounterSample,
    DEFAULT_ALPHA,
    GaugeSample,
    QuantileSketch,
)
from repro.sim.units import MILLISECONDS


@dataclass
class TelemetryConfig:
    """Driver-facing telemetry knobs (run_soak / fleet payloads).

    ``jsonl_path`` enables the JSONL series writer; ``ring_cap`` bounds
    the in-memory series; ``alerts`` (AlertRule list or dicts) arms an
    :class:`~repro.obs.alerts.SLOMonitor` on the bus.
    """

    interval_ms: float = 10.0
    ring_cap: int = 512
    jsonl_path: str = None
    jsonl_cap: int = 100_000
    alpha: float = DEFAULT_ALPHA
    node_id: str = "node"
    alerts: list = None

    def __post_init__(self):
        if self.interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if self.ring_cap <= 0 or self.jsonl_cap <= 0:
            raise ValueError("ring_cap/jsonl_cap must be positive")

    @property
    def interval_ns(self):
        return int(self.interval_ms * MILLISECONDS)


class TelemetrySnapshot:
    """One emitted interval: counter deltas, gauges, sketch deltas.

    ``alerts`` is filled in by an :class:`~repro.obs.alerts.SLOMonitor`
    subscriber (monitors subscribe before exporters), so exported series
    are self-describing about which alerts were active each interval.
    """

    __slots__ = ("node_id", "seq", "t_start_ns", "t_end_ns", "counters",
                 "gauges", "sketches", "alerts")

    def __init__(self, node_id, seq, t_start_ns, t_end_ns, counters,
                 gauges, sketches, alerts=None):
        self.node_id = node_id
        self.seq = seq
        self.t_start_ns = t_start_ns
        self.t_end_ns = t_end_ns
        self.counters = counters       # {name: CounterSample}
        self.gauges = gauges           # {name: GaugeSample}
        self.sketches = sketches       # {channel: QuantileSketch (delta)}
        self.alerts = list(alerts) if alerts else []

    def signals(self, qs=(50, 90, 99, 99.9)):
        """Flat ``{signal_name: value}`` namespace for alert rules.

        * gauges: verbatim (``probe_health``, ``rq_depth`` ...);
        * counters: ``<name>_delta`` and ``<name>_total``;
        * sketch channels: ``<channel>_p50`` / ``_p90`` / ``_p99`` /
          ``_p99.9`` plus ``<channel>_count`` and ``<channel>_mean``
          over the *interval* delta (percentile signals are absent for
          an interval with zero samples).
        """
        out = {}
        for name, sample in self.gauges.items():
            out[name] = sample.value
        for name, sample in self.counters.items():
            out[f"{name}_delta"] = sample.delta
            out[f"{name}_total"] = sample.total
        for name, sketch in self.sketches.items():
            out[f"{name}_count"] = sketch.count
            if sketch.count:
                out[f"{name}_mean"] = sketch.mean
                for q in qs:
                    out[f"{name}_p{q:g}"] = sketch.percentile(q)
        return out

    def to_dict(self):
        return {
            "kind": "telemetry",
            "stream": self.node_id,
            "seq": self.seq,
            "t_start_ns": self.t_start_ns,
            "t_end_ns": self.t_end_ns,
            "counters": {name: sample.to_dict()
                         for name, sample in sorted(self.counters.items())},
            "gauges": {name: sample.to_dict()
                       for name, sample in sorted(self.gauges.items())},
            "sketches": {name: sketch.to_dict()
                         for name, sketch in sorted(self.sketches.items())},
            "alerts": list(self.alerts),
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            node_id=data.get("stream", "node"),
            seq=int(data["seq"]),
            t_start_ns=int(data["t_start_ns"]),
            t_end_ns=int(data["t_end_ns"]),
            counters={name: CounterSample.from_dict(name, sample)
                      for name, sample in data.get("counters", {}).items()},
            gauges={name: GaugeSample.from_dict(name, value)
                    for name, value in data.get("gauges", {}).items()},
            sketches={name: QuantileSketch.from_dict(sketch)
                      for name, sketch in data.get("sketches", {}).items()},
            alerts=data.get("alerts", []),
        )

    def __repr__(self):
        return (f"<TelemetrySnapshot {self.node_id!r} seq={self.seq} "
                f"[{self.t_start_ns}..{self.t_end_ns}] ns>")


class SketchChannel:
    """One latency signal: an interval (delta) sketch plus a cumulative one.

    Producers call :meth:`observe` per sample; the bus drains the
    interval sketch into each snapshot.  ``cumulative`` is what run
    summaries ship in place of raw sample arrays — it accumulates
    identically whether or not the bus ever ticks.
    """

    __slots__ = ("name", "alpha", "cumulative", "interval")

    def __init__(self, name, alpha=DEFAULT_ALPHA):
        self.name = name
        self.alpha = alpha
        self.cumulative = QuantileSketch(alpha)
        self.interval = QuantileSketch(alpha)

    def observe(self, value):
        self.cumulative.add(value)
        self.interval.add(value)

    def drain(self):
        """The interval sketch since the last drain; resets the delta."""
        delta, self.interval = self.interval, QuantileSketch(self.alpha)
        return delta

    def __repr__(self):
        return f"<SketchChannel {self.name!r} n={self.cumulative.count}>"


class TelemetryBus:
    """Samples the metrics spine on sim-time intervals and fans out.

    Wire-up order matters only for subscribers: they run in subscription
    order, so monitors that annotate the snapshot (SLOMonitor) subscribe
    before exporters that serialize it.
    """

    def __init__(self, registry=None, interval_ns=10 * MILLISECONDS,
                 node_id="node", alpha=DEFAULT_ALPHA):
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self.registry = registry
        self.interval_ns = int(interval_ns)
        self.node_id = node_id
        self.alpha = alpha
        self.channels = {}
        self.subscribers = []
        self.collectors = []       # fn(now_ns) run at the top of each tick
        self.gauge_fns = {}        # name -> fn() sampled every tick
        self.snapshots_emitted = 0
        self._seq = 0
        self._last_tick_ns = 0
        self._counter_base = {}
        self._closed = False

    # -- Wiring --------------------------------------------------------------------

    def channel(self, name, alpha=None):
        """Get-or-create the sketch channel ``name``."""
        existing = self.channels.get(name)
        if existing is None:
            existing = SketchChannel(name, alpha=alpha or self.alpha)
            self.channels[name] = existing
        return existing

    def observe(self, channel_name, value):
        """Record one sample into ``channel_name`` (creates the channel)."""
        self.channel(channel_name).observe(value)

    def add_gauge(self, name, fn):
        """Register ``fn() -> number`` sampled at every tick."""
        self.gauge_fns[name] = fn
        return fn

    def add_collector(self, fn):
        """Register ``fn(now_ns)`` run before sampling at every tick —
        the hook for pull-style producers (e.g. scanning for newly
        completed VM startups) that have no push path."""
        self.collectors.append(fn)
        return fn

    def subscribe(self, subscriber):
        """Subscribe a callable or an object with ``on_snapshot``."""
        fn = getattr(subscriber, "on_snapshot", subscriber)
        if not callable(fn):
            raise TypeError(
                f"subscriber must be callable or have on_snapshot, got "
                f"{type(subscriber).__name__}")
        self.subscribers.append((subscriber, fn))
        return subscriber

    # -- Sampling ------------------------------------------------------------------

    def attach(self, env):
        """Spawn the sim-time sampling process on ``env``; returns it."""
        if self.registry is None:
            self.registry = env.metrics
        self._last_tick_ns = env.now

        def sampler():
            while True:
                yield env.timeout(self.interval_ns)
                self.tick(env.now)

        return env.process(sampler(), name=f"telemetry-{self.node_id}")

    def tick(self, now_ns):
        """Collect one interval snapshot and fan it out; returns it."""
        for collector in self.collectors:
            collector(now_ns)
        counters = {}
        gauges = {}
        if self.registry is not None:
            for name, value in self.registry.counter_values().items():
                base = self._counter_base.get(name, 0)
                counters[name] = CounterSample(name, value, value - base)
                self._counter_base[name] = value
            for name, value in self.registry.gauge_values().items():
                gauges[name] = GaugeSample(name, value)
        for name, fn in sorted(self.gauge_fns.items()):
            gauges[name] = GaugeSample(name, fn())
        sketches = {name: channel.drain()
                    for name, channel in sorted(self.channels.items())}
        snapshot = TelemetrySnapshot(
            node_id=self.node_id, seq=self._seq,
            t_start_ns=self._last_tick_ns, t_end_ns=int(now_ns),
            counters=counters, gauges=gauges, sketches=sketches)
        self._seq += 1
        self._last_tick_ns = int(now_ns)
        self.snapshots_emitted += 1
        for _, fn in self.subscribers:
            fn(snapshot)
        return snapshot

    def close(self, now_ns):
        """Emit a final partial interval (if time passed) and finish
        subscribers that care (e.g. the JSONL writer flushes)."""
        if self._closed:
            return
        self._closed = True
        if now_ns > self._last_tick_ns:
            self.tick(now_ns)
        for subscriber, _ in self.subscribers:
            finish = getattr(subscriber, "finish", None)
            if callable(finish):
                finish()

    def __repr__(self):
        return (f"<TelemetryBus {self.node_id!r} every {self.interval_ns} ns, "
                f"{len(self.channels)} channels, "
                f"{len(self.subscribers)} subscribers>")


# -- Subscribers -------------------------------------------------------------------


class RingSeries:
    """Bounded in-memory snapshot series (flight-recorder semantics)."""

    def __init__(self, cap=512):
        self.cap = int(cap)
        self.snapshots = deque(maxlen=self.cap)
        self.total = 0
        self.dropped = 0

    def on_snapshot(self, snapshot):
        if len(self.snapshots) >= self.cap:
            self.dropped += 1
        self.snapshots.append(snapshot)
        self.total += 1

    def last(self):
        return self.snapshots[-1] if self.snapshots else None

    def series(self, signal):
        """``[(t_end_ns, value)]`` of one signal across retained snapshots."""
        out = []
        for snapshot in self.snapshots:
            value = snapshot.signals().get(signal)
            if value is not None:
                out.append((snapshot.t_end_ns, value))
        return out

    def __len__(self):
        return len(self.snapshots)

    def __iter__(self):
        return iter(self.snapshots)


class TelemetryJsonlWriter:
    """JSONL time-series writer with the ``trace_meta`` head convention.

    Snapshots are retained in a ring until :meth:`finish` so the file can
    *start* with a ``telemetry_meta`` bookkeeping line (snapshot/drop
    counts, cap, mode) — the telemetry twin of the trace exporter's
    ``trace_meta``, letting ``taichi-experiments analyze`` flag a
    truncated capture instead of silently profiling a partial series.
    """

    def __init__(self, path, cap=100_000, node_id="node"):
        self.path = path
        self.cap = int(cap)
        self.node_id = node_id
        self.snapshots = deque(maxlen=self.cap)
        self.total = 0
        self.dropped = 0
        self._written = False

    def on_snapshot(self, snapshot):
        if len(self.snapshots) >= self.cap:
            self.dropped += 1
        self.snapshots.append(snapshot)
        self.total += 1

    def meta(self):
        return {
            "snapshots": len(self.snapshots),
            "dropped": self.dropped,
            "cap": self.cap,
            "mode": "ring",
            "stream_type": "telemetry",
        }

    def finish(self):
        """Write the capture; idempotent; returns the path."""
        if self._written:
            return self.path
        self._written = True
        with open(self.path, "w") as handle:
            handle.write(json.dumps({
                "pid": 0,
                "stream": self.node_id,
                "kind": "telemetry_meta",
                "args": self.meta(),
            }))
            handle.write("\n")
            for snapshot in self.snapshots:
                handle.write(json.dumps(snapshot.to_dict()))
                handle.write("\n")
        return self.path


def load_telemetry_jsonl(path):
    """Parse a :class:`TelemetryJsonlWriter` capture.

    Returns ``(node_id, snapshots, meta)`` — snapshots as
    :class:`TelemetrySnapshot`, ``meta`` the head line's bookkeeping
    (``{}`` when absent).
    """
    node_id = None
    snapshots = []
    meta = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.get("kind")
            if kind == "telemetry_meta":
                meta = obj.get("args", {})
                node_id = node_id or obj.get("stream")
            elif kind == "telemetry":
                snapshot = TelemetrySnapshot.from_dict(obj)
                node_id = node_id or snapshot.node_id
                snapshots.append(snapshot)
    return node_id or "node", snapshots, meta


# -- OpenMetrics / Prometheus text exposition --------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name):
    """Dotted spine names -> Prometheus-legal metric names."""
    out = _NAME_SANITIZE.sub("_", name.replace(".", "_"))
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _labels(labels):
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"'
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def openmetrics_text(counters=None, gauges=None, sketches=None, labels=None,
                     prefix="taichi", qs=(0.5, 0.9, 0.99)):
    """Render telemetry state as OpenMetrics/Prometheus text exposition.

    * counters (``{name: int}``) -> ``<prefix>_<name>_total`` counter;
    * gauges (``{name: number}``) -> ``<prefix>_<name>`` gauge;
    * sketches (``{name: QuantileSketch}``) -> a summary family:
      ``quantile``-labeled samples plus ``_count`` and ``_sum``.

    Ends with ``# EOF`` per the OpenMetrics spec.
    """
    lines = []
    for name, value in sorted((counters or {}).items()):
        metric = f"{prefix}_{_metric_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{_labels(labels)} {_fmt(value)}")
    for name, value in sorted((gauges or {}).items()):
        metric = f"{prefix}_{_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{_labels(labels)} {_fmt(value)}")
    for name, sketch in sorted((sketches or {}).items()):
        metric = f"{prefix}_{_metric_name(name)}"
        lines.append(f"# TYPE {metric} summary")
        for q in qs:
            value = sketch.percentile(q * 100.0)
            if value is None:
                continue
            q_labels = dict(labels or {})
            q_labels["quantile"] = f"{q:g}"
            lines.append(f"{metric}{_labels(q_labels)} {_fmt(value)}")
        lines.append(f"{metric}_count{_labels(labels)} {sketch.count}")
        lines.append(f"{metric}_sum{_labels(labels)} {_fmt(sketch.sum)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def snapshot_openmetrics(snapshot, prefix="taichi"):
    """Render one :class:`TelemetrySnapshot` (totals, not deltas)."""
    return openmetrics_text(
        counters={name: sample.total
                  for name, sample in snapshot.counters.items()},
        gauges={name: sample.value
                for name, sample in snapshot.gauges.items()},
        sketches=snapshot.sketches,
        labels={"node": snapshot.node_id},
        prefix=prefix,
    )


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$")
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def parse_openmetrics(text):
    """Strict-enough parser for the exposition format (tests and CI).

    Returns ``{metric_name: [(labels_dict, float_value)]}``; raises
    ``ValueError`` on a malformed sample line or a missing ``# EOF``
    terminator.
    """
    samples = {}
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        raise ValueError("OpenMetrics text must end with '# EOF'")
    for line in lines[:-1]:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed OpenMetrics sample line: {line!r}")
        labels = dict(_LABEL_PAIR.findall(match.group("labels") or ""))
        value = float(match.group("value"))
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples
