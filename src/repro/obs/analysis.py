"""Trace analysis: scheduling-latency profiles and switch-cost accounting.

This is the read side of the observability spine: it consumes
:class:`~repro.metrics.timeline.TimelineEvent` streams — live tracers, an
:class:`~repro.obs.session.ObservabilitySession`'s streams, or a JSONL
capture written by :func:`~repro.obs.export.write_jsonl` — and computes
the quantities behind the paper's Figures 4-6 and Table 2:

* per-thread wakeup (``enqueue``) to ``sched_in`` latency distributions;
* per-CPU busy occupancy and per-vCPU backed time;
* vmexit switch-cost accounting split by exit reason and premature flag
  (the ~2 us vCPU context switch the paper cites);
* IPI send-to-deliver latency;
* preprocessing-window hit/miss rates (probe-IRQ exits that arrived in
  time vs. premature revocations).

``taichi-experiments analyze <trace.jsonl>`` wires this into the CLI,
optionally running the :mod:`~repro.obs.invariants` catalog over the same
stream.
"""

import json
from collections import Counter, deque

from repro.metrics.stats import summarize
from repro.metrics.timeline import TimelineEvent
from repro.obs.invariants import check_events

_PROFILE_QS = (50, 90, 99)


def load_jsonl(path):
    """Parse a ``write_jsonl`` capture into ``[(label, events, meta)]``.

    ``meta`` is the stream's ``trace_meta`` bookkeeping (event/drop
    counts) when present, else ``{}``.  Events keep JSONL field types:
    ``cpu_id`` is whatever JSON preserved (stringified ids stay strings).
    """
    streams = {}
    order = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            key = (obj.get("pid", 0), obj.get("stream", "trace"))
            if key not in streams:
                streams[key] = {"events": [], "meta": {}}
                order.append(key)
            if obj.get("kind") in ("trace_meta", "telemetry_meta"):
                streams[key]["meta"] = obj.get("args", {})
                continue
            if obj.get("kind") == "telemetry":
                # Telemetry snapshot series interleave with trace captures
                # in the same dir; the event profiler skips them (use
                # repro.obs.telemetry.load_telemetry_jsonl to read them)
                # but their meta line still feeds the drop warnings.
                continue
            streams[key]["events"].append(TimelineEvent(
                int(obj["ts_ns"]), obj.get("cpu"), obj["kind"],
                obj.get("args", {}),
            ))
    return [(label, streams[key]["events"], streams[key]["meta"])
            for key in order for _, label in (key,)]


def analyze_events(events, dropped=0):
    """Single-pass scheduling profile of one event stream; returns a dict."""
    events = list(events)
    kinds = Counter()
    first_ts = events[0].ts_ns if events else 0
    last_ts = events[-1].ts_ns if events else 0

    pending_wake = {}          # thread -> enqueue ts
    wake_all = []
    wake_by_thread = {}        # thread -> [latency_ns]

    sched_open = {}            # cpu -> sched_in ts
    busy_ns = Counter()        # cpu -> occupied ns

    vm_open = {}               # cpu -> vmenter event
    vcpu_stats = {}            # vcpu -> {"slices", "backed_ns"}
    slice_durations = []
    switch_samples = []
    switch_by_reason = {}      # reason -> {"count","premature","total_ns"}
    window_hits = 0
    window_misses = 0

    ipi_pending = {}           # (dst, vector) -> deque of send ts
    ipi_latencies = []
    ipi_unmatched_delivers = 0
    ipi_drop_credit = Counter()  # fault drops traced before their send

    dp_yields = Counter()      # service -> yields

    alerts_raised = Counter()  # alert name -> raise count
    alerts_cleared = 0

    faults_by_kind = Counter()
    faults_cleared = 0
    handled_by_mechanism = Counter()
    ipi_fault_drops = 0
    ipi_offline_drops = 0
    probe_suppressed = 0
    probe_spurious = 0

    for event in events:
        kind = event.kind
        kinds[kind] += 1
        if event.ts_ns > last_ts:
            last_ts = event.ts_ns

        if kind == "enqueue":
            pending_wake[event.detail.get("thread")] = event.ts_ns
        elif kind == "sched_in":
            thread = event.detail.get("thread")
            woken = pending_wake.pop(thread, None)
            if woken is not None:
                latency = event.ts_ns - woken
                wake_all.append(latency)
                wake_by_thread.setdefault(thread, []).append(latency)
            sched_open[event.cpu_id] = event.ts_ns
        elif kind == "sched_out":
            start = sched_open.pop(event.cpu_id, None)
            if start is not None:
                busy_ns[event.cpu_id] += event.ts_ns - start
        elif kind == "vmenter":
            vm_open[event.cpu_id] = event
        elif kind == "vmexit":
            begin = vm_open.pop(event.cpu_id, None)
            if begin is not None:
                slice_durations.append(event.ts_ns - begin.ts_ns)
            vcpu = event.detail.get("vcpu")
            stats = vcpu_stats.setdefault(vcpu, {"slices": 0, "backed_ns": 0})
            stats["slices"] += 1
            if begin is not None:
                stats["backed_ns"] += event.ts_ns - begin.ts_ns
            cost = (event.detail.get("enter_cost_ns", 0)
                    + event.detail.get("exit_cost_ns", 0))
            switch_samples.append(cost)
            reason = event.detail.get("reason", "?")
            premature = bool(event.detail.get("premature"))
            bucket = switch_by_reason.setdefault(
                reason, {"count": 0, "premature": 0, "total_ns": 0})
            bucket["count"] += 1
            bucket["total_ns"] += cost
            if premature:
                bucket["premature"] += 1
            if reason == "hw_probe_irq":
                if premature:
                    window_misses += 1
                else:
                    window_hits += 1
        elif kind == "ipi_send":
            key = (event.detail.get("dst"), event.detail.get("vector"))
            if ipi_drop_credit[key] > 0:
                ipi_drop_credit[key] -= 1  # send dropped before being traced
            else:
                ipi_pending.setdefault(key, deque()).append(event.ts_ns)
        elif kind == "ipi_deliver":
            queue = ipi_pending.get((event.cpu_id, event.detail.get("vector")))
            if queue:
                ipi_latencies.append(event.ts_ns - queue.popleft())
            else:
                ipi_unmatched_delivers += 1
        elif kind in ("fault.ipi_drop", "ipi.dropped"):
            if kind == "fault.ipi_drop":
                ipi_fault_drops += 1
            else:
                ipi_offline_drops += 1
            key = (event.cpu_id, event.detail.get("vector"))
            queue = ipi_pending.get(key)
            if queue:
                queue.popleft()
            else:
                ipi_drop_credit[key] += 1
        elif kind == "dp_idle_yield":
            dp_yields[event.detail.get("service")] += 1
        elif kind == "alert.raised":
            alerts_raised[event.detail.get("alert", "?")] += 1
        elif kind == "alert.cleared":
            alerts_cleared += 1
        elif kind == "fault.injected":
            faults_by_kind[event.detail.get("fault_kind", "?")] += 1
        elif kind == "fault.cleared":
            faults_cleared += 1
        elif kind == "fault.handled":
            handled_by_mechanism[event.detail.get("mechanism", "?")] += 1
        elif kind == "fault.probe_suppress":
            probe_suppressed += 1
        elif kind == "fault.probe_spurious":
            probe_spurious += 1

    span_ns = max(last_ts - first_ts, 0)
    # Slices/stints still open at stream end occupy their CPU until then.
    for cpu, start in sched_open.items():
        busy_ns[cpu] += last_ts - start
    for cpu, begin in vm_open.items():
        vcpu = begin.detail.get("vcpu")
        stats = vcpu_stats.setdefault(vcpu, {"slices": 0, "backed_ns": 0})
        stats["backed_ns"] += last_ts - begin.ts_ns

    probe_exits = window_hits + window_misses
    return {
        "events": len(events),
        "dropped": int(dropped),
        "span_ns": span_ns,
        "kinds": dict(sorted(kinds.items())),
        "wakeup_to_sched_in_ns": summarize(wake_all, qs=_PROFILE_QS),
        "wakeup_to_sched_in_by_thread": {
            thread: summarize(samples, qs=_PROFILE_QS)
            for thread, samples in sorted(
                wake_by_thread.items(), key=lambda item: str(item[0]))
        },
        "cpu_occupancy": {
            cpu: {
                "busy_ns": busy,
                "busy_pct": round(100.0 * busy / span_ns, 3) if span_ns else 0.0,
            }
            for cpu, busy in sorted(busy_ns.items(), key=lambda i: str(i[0]))
        },
        "vcpu_occupancy": {
            vcpu: {
                **stats,
                "backed_pct": (round(100.0 * stats["backed_ns"] / span_ns, 3)
                               if span_ns else 0.0),
            }
            for vcpu, stats in sorted(
                vcpu_stats.items(), key=lambda i: str(i[0]))
        },
        "switch_cost_ns": summarize(switch_samples, qs=_PROFILE_QS),
        "switch_by_reason": {
            reason: {
                "count": bucket["count"],
                "premature": bucket["premature"],
                "total_cost_ns": bucket["total_ns"],
                "mean_cost_ns": round(bucket["total_ns"] / bucket["count"], 1),
            }
            for reason, bucket in sorted(switch_by_reason.items())
        },
        "slice_duration_ns": summarize(slice_durations, qs=_PROFILE_QS),
        "ipi_latency_ns": {
            **summarize(ipi_latencies, qs=_PROFILE_QS),
            "unmatched_sends": sum(
                len(queue) for queue in ipi_pending.values()),
            "unmatched_delivers": ipi_unmatched_delivers,
        },
        "preprocessing_window": {
            "probe_exits": probe_exits,
            "hits": window_hits,
            "misses": window_misses,
            "hit_rate": (round(window_hits / probe_exits, 4)
                         if probe_exits else None),
        },
        "dp_idle_yields": {
            "total": sum(dp_yields.values()),
            "by_service": dict(sorted(
                dp_yields.items(), key=lambda i: str(i[0]))),
        },
        "alerts": {
            "raised": sum(alerts_raised.values()),
            "cleared": alerts_cleared,
            "by_alert": dict(sorted(alerts_raised.items())),
        },
        "faults": {
            "injected": sum(faults_by_kind.values()),
            "cleared": faults_cleared,
            "by_kind": dict(sorted(faults_by_kind.items())),
            "handled": sum(handled_by_mechanism.values()),
            "handled_by_mechanism": dict(sorted(
                handled_by_mechanism.items())),
            "ipi_drops_injected": ipi_fault_drops,
            "ipi_drops_offline": ipi_offline_drops,
            "probe_irqs_suppressed": probe_suppressed,
            "probe_irqs_spurious": probe_spurious,
        },
    }


def _normalize(streams):
    """Accept session streams [(label, tracer)], [(label, events, meta)],
    a bare tracer, or a JSONL path."""
    if isinstance(streams, str):
        return load_jsonl(streams)
    if hasattr(streams, "record"):
        streams = [("trace", streams)]
    normalized = []
    for entry in streams:
        if len(entry) == 3:
            label, events, meta = entry
        else:
            label, tracer = entry
            summary_fn = getattr(tracer, "summary", None)
            meta = summary_fn() if callable(summary_fn) else {}
            events = list(tracer)
        normalized.append((label, list(events), dict(meta)))
    return normalized


def analyze_streams(streams, check_invariants=True, checkers=None):
    """Profile every stream (and optionally check invariants).

    ``streams`` may be an :class:`ObservabilitySession`'s ``.streams``,
    ``[(label, events, meta)]`` triples, a single tracer, or a path to a
    JSONL capture.  Returns ``{"streams", "warnings", "violations"}``
    where ``violations`` is ``[(stream_label, Violation)]``.
    """
    reports = {}
    warnings = []
    violations = []
    for label, events, meta in _normalize(streams):
        dropped = int(meta.get("dropped", 0) or 0)
        reports[label] = analyze_events(events, dropped=dropped)
        if dropped:
            mode = meta.get("mode", "ring")
            if meta.get("stream_type") == "telemetry" or "snapshots" in meta:
                warnings.append(
                    f"stream {label!r}: {dropped} telemetry snapshots "
                    f"dropped ({mode} mode) — the series is truncated and "
                    "interval-derived rates understate the full run")
            else:
                warnings.append(
                    f"stream {label!r}: {dropped} events dropped ({mode} "
                    "mode) — the profile covers a truncated stream and "
                    "pairing violations may be capture artifacts")
        if check_invariants:
            violations.extend(
                (label, violation)
                for violation in check_events(events, checkers=checkers))
    return {"streams": reports, "warnings": warnings,
            "violations": violations}


def analyze_capture(path, check_invariants=True, checkers=None):
    """Analyze a JSONL capture file (the ``analyze`` CLI entry point)."""
    return analyze_streams(load_jsonl(path), check_invariants=check_invariants,
                           checkers=checkers)


def critical_path_from_streams(streams, exemplar_k=None):
    """Span trees + per-channel critical-path report over any stream form.

    ``streams`` accepts everything :func:`analyze_streams` does.  Returns
    ``(trees, report)`` — see :func:`repro.obs.spans.build_span_trees`
    and :func:`repro.obs.spans.critical_path_report`.
    """
    from repro.obs import spans as spans_mod

    trees = {}
    for _label, events, _meta in _normalize(streams):
        trees.update(spans_mod.build_span_trees(events))
    kwargs = {} if exemplar_k is None else {"exemplar_k": exemplar_k}
    return trees, spans_mod.critical_path_report(trees, **kwargs)


def find_request_tree(streams, request_id):
    """The reconstructed span tree for one request id, or None."""
    trees, _report = critical_path_from_streams(streams)
    return trees.get(request_id)


# -- Report formatting ---------------------------------------------------------


def _us(ns):
    return f"{ns / 1000.0:.2f}us"


def _fmt_summary(summary):
    if summary.get("count", 0) == 0:
        return "(no samples)"
    parts = [f"n={summary['count']}"]
    for key in ("min", "p50", "p90", "p99", "max"):
        if key in summary:
            parts.append(f"{key}={_us(summary[key])}")
    if "mean" in summary:
        parts.insert(1, f"mean={_us(summary['mean'])}")
    return " ".join(parts)


def format_stream_report(label, report):
    """Render one stream's profile as indented text lines."""
    lines = [f"== stream {label!r}: {report['events']} events over "
             f"{_us(report['span_ns'])}"
             + (f" ({report['dropped']} dropped)" if report["dropped"] else "")]
    lines.append("  wakeup->sched_in latency: "
                 + _fmt_summary(report["wakeup_to_sched_in_ns"]))
    by_thread = report["wakeup_to_sched_in_by_thread"]
    for thread, summary in list(by_thread.items())[:12]:
        lines.append(f"    {thread}: {_fmt_summary(summary)}")
    if len(by_thread) > 12:
        lines.append(f"    ... {len(by_thread) - 12} more threads")

    occupancy = report["cpu_occupancy"]
    if occupancy:
        rendered = ", ".join(f"cpu {cpu}={data['busy_pct']:.1f}%"
                             for cpu, data in occupancy.items())
        lines.append(f"  cpu occupancy: {rendered}")
    vcpus = report["vcpu_occupancy"]
    if vcpus:
        rendered = ", ".join(
            f"{vcpu}={data['slices']} slices/{_us(data['backed_ns'])}"
            for vcpu, data in vcpus.items())
        lines.append(f"  vcpu backing: {rendered}")

    lines.append("  vmexit switch cost: "
                 + _fmt_summary(report["switch_cost_ns"]))
    for reason, bucket in report["switch_by_reason"].items():
        premature = (f", {bucket['premature']} premature"
                     if bucket["premature"] else "")
        lines.append(f"    {reason}: {bucket['count']} exits, mean "
                     f"{_us(bucket['mean_cost_ns'])}{premature}")
    lines.append("  vcpu slice duration: "
                 + _fmt_summary(report["slice_duration_ns"]))

    ipi = report["ipi_latency_ns"]
    extra = ""
    if ipi.get("unmatched_sends"):
        extra = f" ({ipi['unmatched_sends']} sends in flight at stream end)"
    lines.append("  ipi send->deliver: " + _fmt_summary(ipi) + extra)

    window = report["preprocessing_window"]
    if window["probe_exits"]:
        lines.append(
            f"  preprocessing window: {window['hits']}/{window['probe_exits']}"
            f" probe exits in time (hit rate {window['hit_rate']:.2%},"
            f" {window['misses']} premature)")
    dp = report["dp_idle_yields"]
    if dp["total"]:
        rendered = ", ".join(f"{service}={count}"
                             for service, count in dp["by_service"].items())
        lines.append(f"  dp idle yields: {dp['total']} ({rendered})")

    spans_begun = report["kinds"].get("span.begin", 0)
    if spans_begun:
        lines.append(f"  spans: {spans_begun} begun / "
                     f"{report['kinds'].get('span.end', 0)} ended "
                     "(use --critical-path for per-request attribution)")

    alerts = report.get("alerts", {})
    if alerts.get("raised"):
        rendered = ", ".join(f"{name}={count}"
                             for name, count in alerts["by_alert"].items())
        lines.append(f"  alerts: {alerts['raised']} raised / "
                     f"{alerts['cleared']} cleared ({rendered})")

    faults = report.get("faults", {})
    if faults.get("injected") or faults.get("handled"):
        rendered = ", ".join(f"{kind}={count}"
                             for kind, count in faults["by_kind"].items())
        lines.append(f"  faults: {faults['injected']} injected / "
                     f"{faults['cleared']} cleared ({rendered})")
        if faults["handled"]:
            rendered = ", ".join(
                f"{mechanism}={count}" for mechanism, count
                in faults["handled_by_mechanism"].items())
            lines.append(f"  degradation responses: {faults['handled']} "
                         f"({rendered})")
        drops = []
        if faults["ipi_drops_injected"]:
            drops.append(f"{faults['ipi_drops_injected']} injected")
        if faults["ipi_drops_offline"]:
            drops.append(f"{faults['ipi_drops_offline']} offline")
        if drops:
            lines.append(f"  ipi drops: {', '.join(drops)}")
        if faults["probe_irqs_suppressed"] or faults["probe_irqs_spurious"]:
            lines.append(
                f"  probe faults: {faults['probe_irqs_suppressed']} IRQs "
                f"suppressed, {faults['probe_irqs_spurious']} spurious")
    return "\n".join(lines)


def format_analysis(analysis, max_violations=20):
    """Render a full :func:`analyze_streams` result as text."""
    lines = []
    for warning in analysis["warnings"]:
        lines.append(f"WARNING: {warning}")
    for label, report in analysis["streams"].items():
        lines.append(format_stream_report(label, report))
    violations = analysis["violations"]
    if violations:
        lines.append(f"INVARIANT VIOLATIONS: {len(violations)}")
        for label, violation in violations[:max_violations]:
            lines.append(f"  stream {label!r}:")
            for row in str(violation).splitlines():
                lines.append(f"  {row}")
        if len(violations) > max_violations:
            lines.append(f"  ... {len(violations) - max_violations} more")
    else:
        lines.append("invariants: all checks passed (0 violations)")
    return "\n".join(lines)


def analysis_to_json(analysis):
    """JSON-safe version of an :func:`analyze_streams` result."""
    out = {
        "streams": analysis["streams"],
        "warnings": list(analysis["warnings"]),
        "violations": [
            {"stream": label, **violation.to_dict()}
            for label, violation in analysis["violations"]
        ],
    }
    if "critical_path" in analysis:
        # Attached by the CLI's --critical-path pass; plain data already.
        out["critical_path"] = analysis["critical_path"]
    return out


def write_analysis_json(path, analysis):
    """Serialize :func:`analysis_to_json` to ``path``; returns the path."""
    with open(path, "w") as handle:
        json.dump(analysis_to_json(analysis), handle, indent=2, default=str)
    return path
