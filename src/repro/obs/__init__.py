"""``repro.obs`` — the unified observability spine.

A central :class:`Tracer` (structured, named events with a near-zero-
overhead disable gate) plus a :class:`MetricsRegistry` (counters, gauges,
histograms, and lazily collected *sources*), threaded through
:class:`~repro.sim.environment.Environment` so every subsystem emits
through one spine.  Exporters turn captures into Chrome trace-event JSON
(Perfetto-loadable), JSONL streams, or text summaries.

Typical use from the experiments harness::

    from repro.obs import observe, write_chrome_trace, write_metrics_json

    with observe(trace=True) as session:
        result = run_experiment("fig4")
    write_chrome_trace("out.json", session.streams)
    write_metrics_json("metrics.json", session.metrics)

See ``docs/observability.md`` for the event taxonomy and formats.
"""

from repro.obs.alerts import (
    DEFAULT_ALERT_RULES,
    AlertRule,
    SLOMonitor,
    normalize_alert_rules,
)
from repro.obs.analysis import (
    analyze_capture,
    analyze_events,
    analyze_streams,
    format_analysis,
    load_jsonl,
    write_analysis_json,
)
from repro.obs.export import (
    chrome_trace,
    format_metrics,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.invariants import (
    InvariantEngine,
    Violation,
    check_events,
    default_checkers,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
)
from repro.obs.session import ObservabilitySession, current, observe
from repro.obs.spans import (
    ExemplarReservoir,
    SpanTracker,
    build_span_trees,
    critical_path_report,
    format_critical_path,
    format_waterfall,
)
from repro.obs.telemetry import (
    RingSeries,
    TelemetryBus,
    TelemetryConfig,
    TelemetryJsonlWriter,
    TelemetrySnapshot,
    load_telemetry_jsonl,
    openmetrics_text,
    parse_openmetrics,
    snapshot_openmetrics,
)
from repro.obs.tracer import Tracer

__all__ = [
    "AlertRule",
    "Counter",
    "DEFAULT_ALERT_RULES",
    "ExemplarReservoir",
    "Gauge",
    "HistogramMetric",
    "InvariantEngine",
    "MetricsRegistry",
    "ObservabilitySession",
    "RingSeries",
    "SLOMonitor",
    "SpanTracker",
    "TelemetryBus",
    "TelemetryConfig",
    "TelemetryJsonlWriter",
    "TelemetrySnapshot",
    "Tracer",
    "Violation",
    "analyze_capture",
    "analyze_events",
    "analyze_streams",
    "build_span_trees",
    "check_events",
    "chrome_trace",
    "critical_path_report",
    "current",
    "default_checkers",
    "format_analysis",
    "format_critical_path",
    "format_metrics",
    "format_waterfall",
    "load_jsonl",
    "load_telemetry_jsonl",
    "normalize_alert_rules",
    "observe",
    "openmetrics_text",
    "parse_openmetrics",
    "snapshot_openmetrics",
    "write_analysis_json",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_json",
]
