"""``repro.obs`` — the unified observability spine.

A central :class:`Tracer` (structured, named events with a near-zero-
overhead disable gate) plus a :class:`MetricsRegistry` (counters, gauges,
histograms, and lazily collected *sources*), threaded through
:class:`~repro.sim.environment.Environment` so every subsystem emits
through one spine.  Exporters turn captures into Chrome trace-event JSON
(Perfetto-loadable), JSONL streams, or text summaries.

Typical use from the experiments harness::

    from repro.obs import observe, write_chrome_trace, write_metrics_json

    with observe(trace=True) as session:
        result = run_experiment("fig4")
    write_chrome_trace("out.json", session.streams)
    write_metrics_json("metrics.json", session.metrics)

See ``docs/observability.md`` for the event taxonomy and formats.
"""

from repro.obs.export import (
    chrome_trace,
    format_metrics,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
)
from repro.obs.session import ObservabilitySession, current, observe
from repro.obs.tracer import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "ObservabilitySession",
    "Tracer",
    "chrome_trace",
    "current",
    "format_metrics",
    "observe",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_json",
]
