"""SLO alerting over the telemetry stream: rules-as-data with hysteresis.

An :class:`SLOMonitor` is a :class:`~repro.obs.telemetry.TelemetryBus`
subscriber that evaluates declarative :class:`AlertRule`\\ s against each
snapshot's flat signal namespace (:meth:`TelemetrySnapshot.signals`).
Rules live in scenario JSON (``"alerts": [...]``), so an experiment arm
declares its SLOs next to its workload, and a fault-injection run can
assert "the dp p99 alert raised during the storm and cleared after".

Hysteresis is the point: a rule fires only after ``hold`` consecutive
breaching intervals and clears only after ``clear_hold`` consecutive
healthy ones, so a single noisy interval neither pages nor flaps.  Every
transition is recorded as a paired ``alert.raised`` / ``alert.cleared``
trace event (board-level, cpu ``"-"``), which the invariant suite checks
for correct pairing (:class:`~repro.obs.invariants.AlertPairingChecker`).
"""

from dataclasses import dataclass, field

#: Comparison operators a rule may use; ``gt`` means "alert when the
#: signal is greater than the threshold".
_OPS = {
    "gt": lambda value, threshold: value > threshold,
    "ge": lambda value, threshold: value >= threshold,
    "lt": lambda value, threshold: value < threshold,
    "le": lambda value, threshold: value <= threshold,
}

_SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO rule evaluated per telemetry interval.

    ``signal`` names an entry in the snapshot's flat signal namespace
    (``dp_rx_wait_us_p99``, ``startup_slo_attainment_pct``,
    ``probe_health`` ...).  ``min_count`` suppresses evaluation of
    sketch-derived signals until the interval saw that many samples
    (guards percentile rules against one-sample intervals); it checks
    the matching ``<channel>_count`` signal when the rule's signal is a
    ``_pXX`` / ``_mean`` derivation.
    """

    name: str
    signal: str
    threshold: float
    op: str = "gt"
    hold: int = 2
    clear_hold: int = 2
    severity: str = "warning"
    min_count: int = 0

    def __post_init__(self):
        if not self.name:
            raise ValueError("alert rule needs a name")
        if not self.signal:
            raise ValueError(f"alert rule {self.name!r} needs a signal")
        if self.op not in _OPS:
            raise ValueError(
                f"alert rule {self.name!r}: op must be one of "
                f"{sorted(_OPS)}, got {self.op!r}")
        if self.hold < 1 or self.clear_hold < 1:
            raise ValueError(
                f"alert rule {self.name!r}: hold/clear_hold must be >= 1")
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"alert rule {self.name!r}: severity must be one of "
                f"{_SEVERITIES}, got {self.severity!r}")
        if self.min_count < 0:
            raise ValueError(
                f"alert rule {self.name!r}: min_count must be >= 0")

    def breaches(self, value):
        return _OPS[self.op](value, self.threshold)

    def count_signal(self):
        """The ``<channel>_count`` signal guarding this rule, if derivable."""
        for suffix in ("_mean",):
            if self.signal.endswith(suffix):
                return self.signal[:-len(suffix)] + "_count"
        head, sep, tail = self.signal.rpartition("_p")
        if sep and tail and tail.replace(".", "", 1).isdigit():
            return head + "_count"
        return None

    def to_dict(self):
        out = {"name": self.name, "signal": self.signal,
               "threshold": self.threshold}
        if self.op != "gt":
            out["op"] = self.op
        if self.hold != 2:
            out["hold"] = self.hold
        if self.clear_hold != 2:
            out["clear_hold"] = self.clear_hold
        if self.severity != "warning":
            out["severity"] = self.severity
        if self.min_count:
            out["min_count"] = self.min_count
        return out

    @classmethod
    def from_dict(cls, data):
        if isinstance(data, cls):
            return data
        known = {"name", "signal", "threshold", "op", "hold", "clear_hold",
                 "severity", "min_count"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"alert rule has unknown keys: {sorted(unknown)}")
        return cls(**data)


def normalize_alert_rules(rules):
    """Coerce a list of dicts/rules into AlertRules; reject duplicates."""
    out = [AlertRule.from_dict(rule) for rule in rules or ()]
    seen = set()
    for rule in out:
        if rule.name in seen:
            raise ValueError(f"duplicate alert rule name {rule.name!r}")
        seen.add(rule.name)
    return out


#: A sensible default rule set mirroring the paper's SLOs: dp rx-wait
#: tail, VM-startup attainment, and probe health.
DEFAULT_ALERT_RULES = (
    AlertRule(name="dp_rx_wait_p99_high", signal="dp_rx_wait_us_p99",
              threshold=300.0, op="gt", severity="critical", min_count=8),
    AlertRule(name="startup_slo_attainment_low",
              signal="startup_slo_attainment_pct", threshold=99.0, op="lt"),
    AlertRule(name="probe_degraded", signal="probe_health",
              threshold=1.0, op="lt", hold=1, severity="critical"),
)


def channel_for_signal(signal):
    """Map an alert signal name to its tail-exemplar span channel.

    ``dp_*`` signals (rx-wait sketches, attainment) trace back to DP
    packet spans; ``startup_*`` / ``vm_*`` signals to VM-startup spans.
    Signals with no per-request story (``probe_health``) map to None.
    """
    if signal.startswith("dp_"):
        return "dp"
    if signal.startswith(("startup_", "vm_")):
        return "vm"
    return None


@dataclass
class ActiveAlert:
    """Book-keeping for one currently-firing rule."""

    rule: AlertRule
    raised_ns: int
    value: float
    peak: float = field(default=0.0)

    def __post_init__(self):
        self.peak = self.value


class SLOMonitor:
    """Telemetry subscriber that raises/clears alerts with hysteresis.

    Subscribe it to a bus *before* exporters so emitted snapshots carry
    the interval's active alerts (the monitor appends rule names to
    ``snapshot.alerts``).  When a ``tracer`` is supplied, transitions
    are recorded as ``alert.raised`` / ``alert.cleared`` trace events.
    """

    def __init__(self, rules=None, tracer=None, node_id="node",
                 exemplar_provider=None):
        self.rules = normalize_alert_rules(
            rules if rules is not None else DEFAULT_ALERT_RULES)
        self.tracer = tracer
        self.node_id = node_id
        # When a span tracker (anything with ``worst_ids(channel)``) is
        # attached, raised alerts reference the worst live tail exemplars
        # of the signal's channel — the "which request" breadcrumb.
        self.exemplar_provider = exemplar_provider
        self.active = {}           # rule name -> ActiveAlert
        self.history = []          # closed alert dicts, in clear order
        self.raised_total = 0
        self.cleared_total = 0
        self.end_of_run_cleared = 0
        self._breach_streak = {rule.name: 0 for rule in self.rules}
        self._ok_streak = {rule.name: 0 for rule in self.rules}
        self._last_ts = 0
        self._finished = False

    # -- Evaluation --------------------------------------------------------------

    def on_snapshot(self, snapshot):
        signals = snapshot.signals()
        self._last_ts = snapshot.t_end_ns
        for rule in self.rules:
            self._evaluate(rule, signals, snapshot)
        for name in sorted(self.active):
            snapshot.alerts.append(name)

    def _evaluate(self, rule, signals, snapshot):
        value = signals.get(rule.signal)
        count_signal = rule.count_signal()
        if rule.min_count and count_signal is not None:
            if signals.get(count_signal, 0) < rule.min_count:
                value = None
        if value is None:
            # No data this interval: neither a breach nor evidence of
            # health — streaks freeze rather than reset or advance.
            return
        if rule.breaches(value):
            self._breach_streak[rule.name] += 1
            self._ok_streak[rule.name] = 0
            active = self.active.get(rule.name)
            if active is not None:
                worse = (value > active.peak if rule.op in ("gt", "ge")
                         else value < active.peak)
                if worse:
                    active.peak = value
            elif self._breach_streak[rule.name] >= rule.hold:
                self._raise(rule, value, snapshot)
        else:
            self._ok_streak[rule.name] += 1
            self._breach_streak[rule.name] = 0
            if (rule.name in self.active
                    and self._ok_streak[rule.name] >= rule.clear_hold):
                self._clear(rule, value, snapshot)

    def _raise(self, rule, value, snapshot):
        self.active[rule.name] = ActiveAlert(
            rule=rule, raised_ns=snapshot.t_end_ns, value=value)
        self.raised_total += 1
        if self.tracer is not None:
            detail = {
                "alert": rule.name, "signal": rule.signal, "value": value,
                "threshold": rule.threshold, "op": rule.op,
                "severity": rule.severity, "node": self.node_id,
            }
            exemplars = self._exemplars_for(rule.signal)
            if exemplars:
                detail["exemplars"] = exemplars
            self.tracer.record(snapshot.t_end_ns, "-", "alert.raised",
                               **detail)

    def _exemplars_for(self, signal):
        """Worst live exemplar request ids for the signal's channel."""
        if self.exemplar_provider is None:
            return []
        channel = channel_for_signal(signal)
        if channel is None:
            return []
        return list(self.exemplar_provider.worst_ids(channel))

    def _clear(self, rule, value, snapshot):
        active = self.active.pop(rule.name)
        duration_ns = snapshot.t_end_ns - active.raised_ns
        self.cleared_total += 1
        self.history.append({
            "alert": rule.name,
            "signal": rule.signal,
            "severity": rule.severity,
            "raised_ns": active.raised_ns,
            "cleared_ns": snapshot.t_end_ns,
            "duration_ns": duration_ns,
            "peak": active.peak,
        })
        if self.tracer is not None:
            self.tracer.record(
                snapshot.t_end_ns, "-", "alert.cleared",
                alert=rule.name, signal=rule.signal, value=value,
                threshold=rule.threshold, duration_ns=duration_ns,
                peak=active.peak, severity=rule.severity,
                node=self.node_id)

    # -- End of run --------------------------------------------------------------

    def finish(self, now_ns=None):
        """Emit synthetic ``alert.cleared`` events for still-active alerts.

        Called by :meth:`TelemetryBus.close` when the run ends: a soak
        that finishes mid-incident would otherwise leave its raise
        unpaired in the trace stream.  The synthetic clear is stamped
        ``end_of_run=True`` and does *not* touch :attr:`active` or the
        history — the summary still reports the incident as open; only
        the trace stream gets closure.  Idempotent.
        """
        if self._finished:
            return
        self._finished = True
        ts = self._last_ts if now_ns is None else max(now_ns, self._last_ts)
        for name in sorted(self.active):
            active = self.active[name]
            rule = active.rule
            self.end_of_run_cleared += 1
            if self.tracer is not None:
                self.tracer.record(
                    ts, "-", "alert.cleared",
                    alert=name, signal=rule.signal, value=None,
                    threshold=rule.threshold,
                    duration_ns=ts - active.raised_ns, peak=active.peak,
                    severity=rule.severity, node=self.node_id,
                    end_of_run=True)

    # -- Reporting ---------------------------------------------------------------

    def summary(self):
        """Plain-data rollup for run summaries and fleet shipping."""
        return {
            "rules": len(self.rules),
            "raised": self.raised_total,
            "cleared": self.cleared_total,
            "active": sorted(self.active),
            "history": list(self.history),
        }

    def __repr__(self):
        return (f"<SLOMonitor rules={len(self.rules)} "
                f"active={sorted(self.active)} raised={self.raised_total}>")
