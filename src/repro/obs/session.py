"""Observability sessions: one trace/metrics scope spanning many envs.

Experiments routinely build several simulation environments (baseline
vs. Tai Chi vs. ablation).  An :class:`ObservabilitySession` is the
umbrella over all of them: while a session is active (via the
:func:`observe` context manager), every newly constructed
:class:`~repro.sim.environment.Environment` gets its tracer from the
session (one *stream* per environment, which exporters render as one
Chrome ``pid`` each) and shares the session's single
:class:`~repro.obs.registry.MetricsRegistry`.

No session active → each environment gets a private disabled tracer and
private registry, and the instrumentation spine costs one attribute
check per would-be event.
"""

from contextlib import contextmanager

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer

_ACTIVE = None


class ObservabilitySession:
    """Collects trace streams and metrics across simulation environments."""

    def __init__(self, trace=False, trace_cap=1_000_000, ring=True):
        self.trace = trace
        self.trace_cap = trace_cap
        self.ring = ring
        self.metrics = MetricsRegistry()
        self.streams = []          # [(label, Tracer)]

    def adopt_environment(self, env, label=None):
        """Give ``env`` its tracer; called from Environment.__init__."""
        label = label or f"env{len(self.streams)}"
        tracer = Tracer(cap=self.trace_cap, ring=self.ring, enabled=self.trace)
        self.streams.append((label, tracer))
        return tracer

    def events(self, kind=None):
        """All captured events across streams (optionally one kind)."""
        out = []
        for _, tracer in self.streams:
            out.extend(tracer.filter(kind=kind) if kind else list(tracer))
        return out

    def dropped_events(self):
        return sum(tracer.dropped for _, tracer in self.streams)

    def __repr__(self):
        return (
            f"<ObservabilitySession trace={self.trace} "
            f"streams={len(self.streams)}>"
        )


def current():
    """The active session, or None."""
    return _ACTIVE


@contextmanager
def observe(trace=False, trace_cap=1_000_000, ring=True):
    """Activate a session for the duration of the block (re-entrant)."""
    global _ACTIVE
    session = ObservabilitySession(trace=trace, trace_cap=trace_cap, ring=ring)
    previous = _ACTIVE
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous
