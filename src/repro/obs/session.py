"""Observability sessions: one trace/metrics scope spanning many envs.

Experiments routinely build several simulation environments (baseline
vs. Tai Chi vs. ablation).  An :class:`ObservabilitySession` is the
umbrella over all of them: while a session is active (via the
:func:`observe` context manager), every newly constructed
:class:`~repro.sim.environment.Environment` gets its tracer from the
session (one *stream* per environment, which exporters render as one
Chrome ``pid`` each) and shares the session's single
:class:`~repro.obs.registry.MetricsRegistry`.

No session active → each environment gets a private disabled tracer and
private registry, and the instrumentation spine costs one attribute
check per would-be event.
"""

from contextlib import contextmanager

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer

_ACTIVE = None


class ObservabilitySession:
    """Collects trace streams and metrics across simulation environments.

    With ``check_invariants=True`` every adopted environment also gets a
    streaming :class:`~repro.obs.invariants.InvariantEngine` hooked into
    its tracer, verifying the causal invariants (IPI delivery, slice
    pairing, single-CPU-per-thread, ...) inline while the simulation
    runs; :meth:`violations` collects the findings.
    """

    def __init__(self, trace=False, trace_cap=1_000_000, ring=True,
                 check_invariants=False, spans=False, exemplar_k=None):
        self.trace = trace
        self.trace_cap = trace_cap
        self.ring = ring
        self.check_invariants = check_invariants
        # With ``spans=True`` every adopted environment's SpanTracker is
        # enabled at construction, so request roots opened anywhere in
        # the deployment carry correlation ids from the first event.
        self.spans = spans
        self.exemplar_k = exemplar_k
        self.metrics = MetricsRegistry()
        self.streams = []          # [(label, Tracer)]
        self.invariant_engines = []  # [(label, InvariantEngine)]

    def adopt_environment(self, env, label=None):
        """Give ``env`` its tracer; called from Environment.__init__."""
        label = label or f"env{len(self.streams)}"
        tracer = Tracer(cap=self.trace_cap, ring=self.ring, enabled=self.trace)
        if self.check_invariants:
            from repro.obs.invariants import InvariantEngine

            engine = InvariantEngine()
            tracer.add_hook(engine.observe)  # enables the tracer
            self.invariant_engines.append((label, engine))
        self.streams.append((label, tracer))
        return tracer

    def violations(self):
        """Finalize inline checkers; returns ``[(stream_label, Violation)]``."""
        out = []
        for label, engine in self.invariant_engines:
            out.extend((label, violation) for violation in engine.finish())
        return out

    def events(self, kind=None):
        """All captured events across streams (optionally one kind)."""
        out = []
        for _, tracer in self.streams:
            out.extend(tracer.filter(kind=kind) if kind else list(tracer))
        return out

    def dropped_events(self):
        return sum(tracer.dropped for _, tracer in self.streams)

    def __repr__(self):
        return (
            f"<ObservabilitySession trace={self.trace} "
            f"streams={len(self.streams)}>"
        )


def current():
    """The active session, or None."""
    return _ACTIVE


@contextmanager
def observe(trace=False, trace_cap=1_000_000, ring=True,
            check_invariants=False, spans=False, exemplar_k=None):
    """Activate a session for the duration of the block (re-entrant)."""
    global _ACTIVE
    session = ObservabilitySession(trace=trace, trace_cap=trace_cap, ring=ring,
                                   check_invariants=check_invariants,
                                   spans=spans, exemplar_k=exemplar_k)
    previous = _ACTIVE
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous
