"""The unified metrics registry: named counters, gauges, and histograms.

One :class:`MetricsRegistry` hangs off every
:class:`~repro.sim.environment.Environment` (``env.metrics``); when an
observability session is active (:mod:`repro.obs.session`) all
environments share the session's registry, so a whole experiment's
metrics land in one queryable snapshot.

Two usage styles coexist deliberately:

* **live instruments** — ``registry.counter("dp.idle_yields")`` returns a
  :class:`Counter` whose ``inc()`` is cheap enough for warm paths (cache
  the instrument object, don't re-look it up per event);
* **sources** — subsystems that already keep their own cheap local stats
  (``kernel.steals``, ``scheduler.exits_by_reason`` …) register a
  zero-overhead *source* callable; it is invoked only at
  :meth:`MetricsRegistry.snapshot` time.

The second style is what keeps the spine near-zero-overhead: hot paths
never touch the registry, they keep bumping the plain attributes they
always had, and collection happens once at the end of a run.

**Naming convention:** every instrument and source name is dotted
``subsystem.component`` — ``dp.idle_yields``, ``core.sw_probe``,
``kernel.smartnic-os``, ``sim.engine``.  The first segment is the owning
package under ``repro``; no bare (undotted) names.
"""

from repro.metrics.stats import LatencyRecorder


class Counter:
    """Monotonic named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def __repr__(self):
        return f"<Counter {self.name!r} {self.value}>"


class Gauge:
    """Last-write-wins named value, with a running-max convenience."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def set_max(self, value):
        if value > self.value:
            self.value = value

    def __repr__(self):
        return f"<Gauge {self.name!r} {self.value}>"


class HistogramMetric:
    """Named distribution: streaming moments plus reservoir percentiles."""

    __slots__ = ("name", "_recorder")

    def __init__(self, name, cap=65_536):
        self.name = name
        self._recorder = LatencyRecorder(name=name, cap=cap)

    def record(self, value):
        self._recorder.record(value)

    @property
    def count(self):
        return self._recorder.count

    def percentile(self, q):
        return self._recorder.percentile(q)

    def summary(self):
        return self._recorder.summary()

    def __repr__(self):
        return f"<HistogramMetric {self.name!r} n={self.count}>"


class MetricsRegistry:
    """Get-or-create registry of named instruments plus snapshot sources."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._kinds = {}
        self._sources = {}

    # -- Instruments -----------------------------------------------------------

    def counter(self, name):
        return self._instrument(name, "counter", self._counters, Counter)

    def gauge(self, name):
        return self._instrument(name, "gauge", self._gauges, Gauge)

    def histogram(self, name):
        return self._instrument(name, "histogram", self._histograms,
                                HistogramMetric)

    def _instrument(self, name, kind, table, factory):
        existing_kind = self._kinds.get(name)
        if existing_kind is None:
            self._kinds[name] = kind
            instrument = factory(name)
            table[name] = instrument
            return instrument
        if existing_kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {existing_kind}, "
                f"cannot re-register as a {kind}"
            )
        return table[name]

    # -- Sources ---------------------------------------------------------------

    def add_source(self, name, fn):
        """Register ``fn() -> dict`` collected lazily at snapshot time.

        Duplicate names get a ``#n`` suffix (several kernels/services of
        the same name may coexist across deployments in one session).
        Returns the name actually used.
        """
        unique = name
        n = 1
        while unique in self._sources:
            n += 1
            unique = f"{name}#{n}"
        self._sources[unique] = fn
        return unique

    # -- Collection --------------------------------------------------------------

    def counter_values(self):
        """``{name: value}`` for every counter — no sources invoked.

        The telemetry bus samples this every interval: unlike
        :meth:`snapshot` it never calls source functions (which may carry
        wall-clock fields), so it is cheap and fully deterministic.
        """
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauge_values(self):
        """``{name: value}`` for every gauge — no sources invoked."""
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def snapshot(self):
        """One nested dict with every instrument value and source dump."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in sorted(self._histograms.items())},
            "sources": {name: fn() for name, fn in sorted(self._sources.items())},
        }

    def to_text(self, source_prefixes=("sim.engine",)):
        """Compact text summary: instruments plus selected sources."""
        snap = self.snapshot()
        lines = ["-- metrics --"]
        for section in ("counters", "gauges"):
            for name, value in snap[section].items():
                lines.append(f"  {name}: {value}")
        for name, summary in snap["histograms"].items():
            lines.append(f"  {name}: {summary}")
        for name, data in snap["sources"].items():
            if not name.startswith(tuple(source_prefixes)):
                continue
            for key, value in sorted(data.items()):
                lines.append(f"  {name}.{key}: {value}")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)} "
            f"sources={len(self._sources)}>"
        )
