"""Causal request tracing: span trees, critical paths, tail exemplars.

The flat tracer answers "what happened on this CPU"; this module answers
"where did *this request's* latency go".  A :class:`SpanTracker` rides on
every :class:`~repro.sim.environment.Environment` (``env.spans``,
disabled by default) and threads correlation ids through the two request
paths the paper's SLOs are written against:

* **VM-startup workflows** (channel ``vm``) — request issue, CP queue
  wait, device-initialization execution (with preemptions by vCPU slices
  and IPI-delivery windows attributed from the flat event stream), and
  host-side QEMU instantiation;
* **DP packets** (channel ``dp``) — accelerator stall and preprocessing,
  then the rx-queue wait decomposed into vCPU occupancy, vmexit switch
  cost, in-flight IPI/probe-IRQ delivery, queued-behind service time and
  residual scheduling delay.

Spans are emitted as paired ``span.begin`` / ``span.end`` trace events
carrying ``request``/``parent`` ids, so a JSONL capture reconstructs into
per-request trees (:func:`build_span_trees`).  Each completed root span
carries a ``parts`` list — a *gapless, exact partition* of the request's
end-to-end window into named segments.  The partition is built by a
boundary sweep where the deepest overlapping activity wins, so segment
durations always sum to the measured total ns-exactly, by construction —
fault-injected IPI delay windows show up as wider ``ipi_deliver``
segments, never as unexplained gaps.

A bounded :class:`ExemplarReservoir` per channel retains the K worst
requests' full span trees (O(K) memory); alert events and run summaries
link to them by request id.  Everything here only *reads* simulation
state and records trace events — span tracking never schedules, so
spans-on runs produce byte-identical results to spans-off runs.
"""

from collections import deque

from repro.metrics.stats import summarize

#: Default tail-exemplar retention per channel.
DEFAULT_EXEMPLAR_K = 4

#: Exemplar records cap their stored ``parts`` timeline at this many
#: entries (the ``segments`` totals stay exact either way).
_EXEMPLAR_PARTS_CAP = 96

#: Attribution priority: when activities overlap, the *deepest* one wins
#: the instant (lower number = deeper).
_PRIORITY = {"switch": 0, "ipi": 1, "vcpu": 2, "dp": 3}
_SEGMENT_NAME = {
    "switch": "vmexit_switch",
    "ipi": "ipi_deliver",
    "vcpu": "vcpu_occupied",
    "dp": "queued_behind",
}

#: Flat-event kinds the tracker's hook actually consumes; everything
#: else early-returns (the hook runs on every trace event).
_HANDLED_KINDS = frozenset((
    "sched_in", "sched_out", "vmenter", "vmexit", "ipi_send",
    "ipi_deliver", "hwprobe_irq", "fault.ipi_drop", "ipi.dropped",
))

#: Per-CPU closed-interval retention floor; pruned against the oldest
#: open span so memory stays O(in-flight requests + recent activity).
_PRUNE_TRIGGER = 512


class Span:
    """One live span: a named window of a request's lifetime."""

    __slots__ = ("span_id", "request_id", "parent_id", "name", "channel",
                 "cpu_id", "t_begin", "t_end")

    def __init__(self, span_id, request_id, parent_id, name, channel,
                 cpu_id, t_begin):
        self.span_id = span_id
        self.request_id = request_id
        self.parent_id = parent_id
        self.name = name
        self.channel = channel
        self.cpu_id = cpu_id
        self.t_begin = t_begin
        self.t_end = None

    def to_dict(self):
        return {
            "span": self.span_id,
            "request": self.request_id,
            "parent": self.parent_id,
            "name": self.name,
            "begin_ns": self.t_begin,
            "end_ns": self.t_end,
        }

    def __repr__(self):
        return (f"<Span {self.span_id} {self.name!r} "
                f"[{self.t_begin}..{self.t_end}]>")


class ExemplarReservoir:
    """Bounded worst-K retention of completed request records.

    Ordering is deterministic: worst duration first, ties broken by
    request id, so reservoir contents are a pure function of the offered
    stream — fleet reports stay byte-identical at any ``--jobs`` level.
    """

    def __init__(self, k=DEFAULT_EXEMPLAR_K):
        self.k = max(int(k), 1)
        self.records = []      # sorted worst-first
        self.offered = 0

    def offer(self, record):
        self.offered += 1
        self.records.append(record)
        self.records.sort(key=lambda r: (-r["duration_ns"], r["request"]))
        del self.records[self.k:]

    def worst_ids(self):
        return [record["request"] for record in self.records]

    def __len__(self):
        return len(self.records)

    def __repr__(self):
        return f"<ExemplarReservoir k={self.k} kept={len(self.records)}>"


def merge_parts(parts):
    """Coalesce adjacent same-name parts; drops empty pieces."""
    out = []
    for name, lo, hi in parts:
        if hi <= lo:
            continue
        if out and out[-1][0] == name and out[-1][2] == lo:
            out[-1][2] = hi
        else:
            out.append([name, lo, hi])
    return out


def segment_totals(parts):
    """``{segment name: total ns}`` over a parts timeline."""
    totals = {}
    for name, lo, hi in parts:
        totals[name] = totals.get(name, 0) + (hi - lo)
    return dict(sorted(totals.items()))


def dominant_segment(segments):
    """``(name, share_pct)`` of the largest segment (deterministic ties)."""
    total = sum(segments.values())
    if not total:
        return None, 0.0
    name = max(sorted(segments), key=lambda n: segments[n])
    return name, round(100.0 * segments[name] / total, 1)


class SpanTracker:
    """Per-environment span state machine and exemplar store.

    Starts disabled; :meth:`enable` hooks :meth:`observe` into the env's
    tracer so the tracker sees the flat event stream (vCPU slices, IPI
    traffic, DP thread scheduling) it attributes wait windows from.
    Instrumentation sites gate on ``env.spans.enabled`` with a single
    attribute check, mirroring the tracer's own gate.
    """

    def __init__(self, env, exemplar_k=DEFAULT_EXEMPLAR_K):
        self.env = env
        self.enabled = False
        self.exemplar_k = exemplar_k
        self.reservoirs = {}       # channel -> ExemplarReservoir
        self.roots_completed = 0

        self._open = {}            # span_id -> Span
        self._tree = {}            # request_id -> [closed child Span]
        self._span_seq = {}        # request_id -> next child ordinal
        self._request_seq = 0      # auto request-id counter (dp packets)
        self._vm_state = {}        # request_id -> phase bookkeeping

        # Flat-stream attribution state.
        self._cpu_iv = {}          # cpu -> deque[(t0, t1, kind, extra)]
        self._open_vm = {}         # cpu -> vmenter ts
        self._open_dp = {}         # cpu -> dp-thread sched_in ts
        self._dp_threads = set()   # registered DP service thread names
        self._ipi_pending = {}     # (dst, vector) -> deque[send ts]
        self._watched = {}         # thread name -> wait/run bookkeeping

    # -- Lifecycle ----------------------------------------------------------------

    def enable(self, exemplar_k=None):
        if exemplar_k is not None:
            self.exemplar_k = int(exemplar_k)
        if not self.enabled:
            self.enabled = True
            self.env.tracer.add_hook(self.observe)
        return self

    def disable(self):
        if self.enabled:
            self.enabled = False
            self.env.tracer.remove_hook(self.observe)
        return self

    def register_dp_thread(self, name):
        """DP services register their poller thread so rx-queue waits can
        be attributed to queued-behind service time.  Cheap and
        unconditional: spans may be enabled after the service exists."""
        self._dp_threads.add(name)

    def watch_thread(self, name):
        """Track a request-owned thread's scheduling (CP workflows)."""
        self._watched[name] = {"cpu": None, "open": None, "iv": []}

    def unwatch_thread(self, name):
        self._watched.pop(name, None)

    # -- Flat-event consumption (tracer hook) --------------------------------------

    def observe(self, event):
        kind = event.kind
        if kind not in _HANDLED_KINDS:
            return
        detail = event.detail
        if kind == "sched_in":
            thread = detail.get("thread")
            if thread in self._dp_threads:
                self._open_dp[event.cpu_id] = event.ts_ns
            watched = self._watched.get(thread)
            if watched is not None:
                watched["cpu"] = event.cpu_id
                watched["open"] = event.ts_ns
        elif kind == "sched_out":
            thread = detail.get("thread")
            if thread in self._dp_threads:
                t0 = self._open_dp.pop(event.cpu_id, None)
                if t0 is not None:
                    self._add_interval(event.cpu_id, t0, event.ts_ns, "dp")
            watched = self._watched.get(thread)
            if watched is not None and watched["open"] is not None:
                watched["iv"].append((watched["open"], event.ts_ns))
                watched["open"] = None
        elif kind == "vmenter":
            self._open_vm[event.cpu_id] = event.ts_ns
        elif kind == "vmexit":
            t0 = self._open_vm.pop(event.cpu_id, None)
            if t0 is not None:
                self._add_interval(event.cpu_id, t0, event.ts_ns, "vcpu",
                                   detail.get("exit_cost_ns", 0))
        elif kind == "ipi_send":
            if not detail.get("routed"):
                key = (detail.get("dst"), detail.get("vector"))
                self._ipi_pending.setdefault(key, deque()).append(event.ts_ns)
        elif kind == "ipi_deliver":
            queue = self._ipi_pending.get(
                (event.cpu_id, detail.get("vector")))
            if queue:
                self._add_interval(event.cpu_id, queue.popleft(),
                                   event.ts_ns, "ipi")
        elif kind == "hwprobe_irq":
            # The preempt IRQ is traced at fire time with its delivery
            # latency, so the in-flight window is known up front.
            self._add_interval(event.cpu_id, event.ts_ns,
                               event.ts_ns + detail.get("latency_ns", 0),
                               "ipi")
        else:  # fault.ipi_drop / ipi.dropped: that send never delivers
            queue = self._ipi_pending.get(
                (event.cpu_id, detail.get("vector")))
            if queue:
                queue.popleft()

    def _add_interval(self, cpu_id, t0, t1, kind, extra=0):
        intervals = self._cpu_iv.get(cpu_id)
        if intervals is None:
            intervals = self._cpu_iv[cpu_id] = deque()
        intervals.append((t0, t1, kind, extra))
        if len(intervals) > _PRUNE_TRIGGER:
            floor = self._retention_floor()
            while intervals and intervals[0][1] < floor:
                intervals.popleft()

    def _retention_floor(self):
        if not self._open:
            return self.env.now
        return min(span.t_begin for span in self._open.values())

    # -- Span emission -------------------------------------------------------------

    def begin(self, name, channel=None, parent=None, request_id=None,
              cpu_id="-"):
        """Open a span at ``env.now``; returns its span id."""
        if request_id is None:
            if parent is not None:
                request_id = self._open[parent].request_id
            else:
                self._request_seq += 1
                request_id = f"pkt-{self._request_seq}"
        ordinal = self._span_seq.get(request_id, 0)
        self._span_seq[request_id] = ordinal + 1
        span_id = f"{request_id}#{ordinal}"
        span = Span(span_id, request_id, parent, name, channel, cpu_id,
                    self.env.now)
        self._open[span_id] = span
        tracer = self.env.tracer
        if tracer.enabled:
            detail = {"span": span_id, "request": request_id, "name": name}
            if parent is not None:
                detail["parent"] = parent
            if channel is not None:
                detail["channel"] = channel
            tracer.record(self.env.now, cpu_id, "span.begin", **detail)
        return span_id

    def end(self, span_id, **extra):
        """Close a non-root span at ``env.now``."""
        span = self._open.pop(span_id)
        span.t_end = self.env.now
        self._tree.setdefault(span.request_id, []).append(span)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.record(self.env.now, span.cpu_id, "span.end",
                          span=span_id, request=span.request_id,
                          name=span.name, **extra)
        return span

    def end_root(self, span_id, parts):
        """Close a root span with its exact-partition ``parts`` timeline.

        Records the ``span.end`` event carrying ``duration_ns`` and the
        parts, offers the completed tree to the channel's exemplar
        reservoir, and drops all per-request state.
        """
        span = self._open.pop(span_id)
        span.t_end = self.env.now
        parts = merge_parts(parts)
        duration = span.t_end - span.t_begin
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.record(self.env.now, span.cpu_id, "span.end",
                          span=span_id, request=span.request_id,
                          name=span.name, duration_ns=duration, parts=parts)
        children = self._tree.pop(span.request_id, [])
        self._span_seq.pop(span.request_id, None)
        self.roots_completed += 1

        segments = segment_totals(parts)
        dominant, share = dominant_segment(segments)
        record = {
            "request": span.request_id,
            "channel": span.channel,
            "name": span.name,
            "cpu": span.cpu_id,
            "begin_ns": span.t_begin,
            "end_ns": span.t_end,
            "duration_ns": duration,
            "segments": segments,
            "dominant": dominant,
            "dominant_pct": share,
            "parts": parts[:_EXEMPLAR_PARTS_CAP],
            "parts_truncated": len(parts) > _EXEMPLAR_PARTS_CAP,
            "spans": [child.to_dict() for child in children]
            + [span.to_dict()],
        }
        reservoir = self.reservoirs.get(span.channel)
        if reservoir is None:
            reservoir = self.reservoirs[span.channel] = ExemplarReservoir(
                self.exemplar_k)
        reservoir.offer(record)
        return record

    # -- Window attribution --------------------------------------------------------

    def attribute(self, cpu_id, t0, t1, residual):
        """Exact partition of ``[t0, t1)`` on one CPU into named parts.

        Overlapping recorded activity (vCPU slices with their switch-cost
        tails, in-flight IPIs/probe IRQs, DP-thread service time) claims
        instants by depth; anything unclaimed becomes ``residual``.  The
        returned parts are contiguous from ``t0`` to ``t1``, so their
        durations sum to ``t1 - t0`` exactly.
        """
        if t1 <= t0:
            return []
        segs = []
        for interval in self._cpu_iv.get(cpu_id, ()):
            a, b, kind, extra = interval
            if b <= t0 or a >= t1:
                continue
            if kind == "vcpu" and extra:
                cut = max(a, b - extra)
                if cut > a:
                    segs.append((a, cut, "vcpu"))
                segs.append((cut, b, "switch"))
            else:
                segs.append((a, b, kind))
        open_vm = self._open_vm.get(cpu_id)
        if open_vm is not None and open_vm < t1:
            segs.append((open_vm, t1, "vcpu"))
        open_dp = self._open_dp.get(cpu_id)
        if open_dp is not None and open_dp < t1:
            segs.append((open_dp, t1, "dp"))

        bounds = {t0, t1}
        for a, b, _kind in segs:
            if t0 < a < t1:
                bounds.add(a)
            if t0 < b < t1:
                bounds.add(b)
        marks = sorted(bounds)
        parts = []
        for lo, hi in zip(marks, marks[1:]):
            best = None
            for a, b, kind in segs:
                if a <= lo and b >= hi:
                    if best is None or _PRIORITY[kind] < _PRIORITY[best]:
                        best = kind
            parts.append([_SEGMENT_NAME[best] if best else residual, lo, hi])
        return merge_parts(parts)

    # -- DP packet channel ---------------------------------------------------------

    def begin_dp(self, request, dst_cpu_id):
        """Open a DP request root (accelerator submit time)."""
        request.span_id = self.begin("dp_request", channel="dp",
                                     cpu_id=dst_cpu_id)

    def end_dp(self, request, cpu_id):
        """Close a DP root at poll pickup with the full decomposition."""
        span = self._open.get(request.span_id)
        if span is None:
            request.span_id = None
            return None
        now = self.env.now
        parts = []
        accel_start = request.t_accel_start
        rx_ready = request.t_rx_ready
        if accel_start is not None and accel_start > span.t_begin:
            parts.append(["accel_stall", span.t_begin,
                          min(accel_start, now)])
        preprocess_from = max(span.t_begin, accel_start or span.t_begin)
        if rx_ready is not None and rx_ready > preprocess_from:
            parts.append(["accel_preprocess", preprocess_from,
                          min(rx_ready, now)])
        wait_from = max(span.t_begin, rx_ready or span.t_begin)
        parts.extend(self.attribute(cpu_id, wait_from, now, "sched_delay"))
        record = self.end_root(request.span_id, parts)
        request.span_id = None
        return record

    # -- VM-startup channel --------------------------------------------------------

    def vm_begin(self, request):
        """Open a VM-startup root + its CP queue-wait child at issue."""
        request_id = f"vm{request.vm_id}"
        root = self.begin("vm_startup", channel="vm", request_id=request_id)
        queue = self.begin("cp_queue_wait", parent=root)
        self._vm_state[request_id] = {
            "root": root, "child": queue, "thread": None, "parts": [],
            "t_phase": self.env.now,
        }
        request.span_id = root

    def vm_watch(self, request, thread_name):
        """Bind the provisioning thread to the request (at submit)."""
        state = self._vm_state.get(f"vm{request.vm_id}")
        if state is not None:
            state["thread"] = thread_name
            self.watch_thread(thread_name)

    def vm_cp_started(self, request):
        """CP task first ran: close queue wait, open execution."""
        state = self._vm_state.get(f"vm{request.vm_id}")
        if state is None:
            return
        now = self.env.now
        watched = self._watched.get(state["thread"]) or {}
        cpu_id = watched.get("cpu")
        if cpu_id is not None:
            state["parts"].extend(
                self.attribute(cpu_id, state["t_phase"], now, "queue_wait"))
        elif now > state["t_phase"]:
            state["parts"].append(["queue_wait", state["t_phase"], now])
        self.end(state["child"])
        state["child"] = self.begin("cp_execute", parent=state["root"],
                                    cpu_id=cpu_id if cpu_id is not None
                                    else "-")
        state["t_phase"] = now

    def vm_devices_ready(self, request):
        """Device init done: close execution, open QEMU instantiation."""
        state = self._vm_state.get(f"vm{request.vm_id}")
        if state is None:
            return
        now = self.env.now
        state["parts"].extend(self._cp_execute_parts(state, now))
        self.end(state["child"])
        state["child"] = self.begin("qemu_instantiate",
                                    parent=state["root"])
        state["t_phase"] = now

    def _cp_execute_parts(self, state, t1):
        """Partition the execution window: thread-running time is
        ``cp_execute``; gaps are attributed from the CPU's activity
        (vCPU slices, switch tails, IPI windows) else ``cp_preempted``."""
        t0 = state["t_phase"]
        watched = self._watched.get(state["thread"])
        if watched is None:
            return [["cp_execute", t0, t1]] if t1 > t0 else []
        run = [(max(a, t0), min(b, t1)) for a, b in watched["iv"]
               if b > t0 and a < t1]
        if watched["open"] is not None and watched["open"] < t1:
            run.append((max(watched["open"], t0), t1))
        run.sort()
        cpu_id = watched.get("cpu")
        parts = []
        cursor = t0
        for a, b in run:
            if a > cursor:
                parts.extend(self._gap_parts(cpu_id, cursor, a))
            if b > cursor:
                parts.append(["cp_execute", max(a, cursor), b])
                cursor = b
        if cursor < t1:
            parts.extend(self._gap_parts(cpu_id, cursor, t1))
        return parts

    def _gap_parts(self, cpu_id, t0, t1):
        if cpu_id is None:
            return [["cp_preempted", t0, t1]] if t1 > t0 else []
        return self.attribute(cpu_id, t0, t1, "cp_preempted")

    def vm_started(self, request):
        """QEMU came up: close the tree and offer it to the reservoir."""
        request_id = f"vm{request.vm_id}"
        state = self._vm_state.pop(request_id, None)
        if state is None:
            return None
        now = self.env.now
        if now > state["t_phase"]:
            state["parts"].append(["qemu_instantiate", state["t_phase"],
                                   now])
        self.end(state["child"])
        record = self.end_root(state["root"], state["parts"])
        if state["thread"]:
            self.unwatch_thread(state["thread"])
        request.span_id = None
        return record

    # -- Reporting -----------------------------------------------------------------

    def exemplars(self):
        """``{channel: [exemplar records worst-first]}`` (JSON-safe)."""
        return {channel: list(reservoir.records)
                for channel, reservoir in sorted(self.reservoirs.items())}

    def worst_ids(self, channel):
        """Worst live exemplar request ids for ``channel`` (worst-first)."""
        reservoir = self.reservoirs.get(channel)
        return reservoir.worst_ids() if reservoir is not None else []

    def open_spans(self):
        return len(self._open)

    def __repr__(self):
        state = "on" if self.enabled else "off"
        return (f"<SpanTracker {state} open={len(self._open)} "
                f"completed={self.roots_completed}>")


# -- Post-hoc reconstruction ---------------------------------------------------


def build_span_trees(events):
    """Reconstruct request trees from ``span.begin``/``span.end`` events.

    Returns ``{request_id: tree}`` where each tree is a dict with the
    root's channel/window, the span list (roots last, as recorded), the
    critical-path ``parts`` (from the root's ``span.end``), and
    ``complete`` (False when the capture ended mid-request).
    """
    trees = {}
    open_spans = {}
    for event in events:
        kind = event.kind
        if kind == "span.begin":
            detail = event.detail
            request_id = detail.get("request")
            tree = trees.setdefault(request_id, {
                "request": request_id, "channel": None, "spans": [],
                "parts": [], "begin_ns": None, "end_ns": None,
                "duration_ns": None, "complete": False,
            })
            span = {
                "span": detail.get("span"),
                "request": request_id,
                "parent": detail.get("parent"),
                "name": detail.get("name"),
                "begin_ns": event.ts_ns,
                "end_ns": None,
            }
            tree["spans"].append(span)
            open_spans[span["span"]] = (tree, span)
            if span["parent"] is None:
                tree["channel"] = detail.get("channel")
                tree["begin_ns"] = event.ts_ns
        elif kind == "span.end":
            detail = event.detail
            entry = open_spans.pop(detail.get("span"), None)
            if entry is None:
                continue
            tree, span = entry
            span["end_ns"] = event.ts_ns
            if span["parent"] is None:
                tree["end_ns"] = event.ts_ns
                tree["duration_ns"] = detail.get(
                    "duration_ns", event.ts_ns - span["begin_ns"])
                tree["parts"] = [list(part)
                                 for part in detail.get("parts", [])]
                tree["complete"] = True
    return trees


def critical_path_report(trees, exemplar_k=DEFAULT_EXEMPLAR_K):
    """Aggregate reconstructed trees into a per-channel latency budget.

    For each channel: request counts, duration summary, total segment
    shares, the worst-K exemplars, and the *tail-dominant* segment — the
    segment claiming the largest share of the worst-K requests' time
    (the "startup p99 dominated by ipi_deliver: 61%" headline).
    """
    channels = {}
    for tree in trees.values():
        channel = tree.get("channel") or "?"
        bucket = channels.setdefault(channel, {"trees": [], "open": 0})
        if tree["complete"]:
            bucket["trees"].append(tree)
        else:
            bucket["open"] += 1

    report = {}
    for channel in sorted(channels):
        bucket = channels[channel]
        complete = sorted(bucket["trees"],
                          key=lambda t: (-t["duration_ns"], t["request"]))
        durations = [tree["duration_ns"] for tree in complete]
        totals = {}
        for tree in complete:
            for name, ns in segment_totals(tree["parts"]).items():
                totals[name] = totals.get(name, 0) + ns
        totals = dict(sorted(totals.items()))
        grand = sum(totals.values())
        worst = complete[:exemplar_k]
        tail_totals = {}
        for tree in worst:
            for name, ns in segment_totals(tree["parts"]).items():
                tail_totals[name] = tail_totals.get(name, 0) + ns
        tail_dominant, tail_share = dominant_segment(tail_totals)
        report[channel] = {
            "requests": len(complete) + bucket["open"],
            "complete": len(complete),
            "open": bucket["open"],
            "duration_ns": summarize(durations, qs=(50, 90, 99)),
            "segments": {
                name: {
                    "total_ns": ns,
                    "share_pct": (round(100.0 * ns / grand, 1)
                                  if grand else 0.0),
                }
                for name, ns in totals.items()
            },
            "tail_dominant": tail_dominant,
            "tail_dominant_pct": tail_share,
            "exemplars": [
                {
                    "request": tree["request"],
                    "duration_ns": tree["duration_ns"],
                    "segments": segment_totals(tree["parts"]),
                    "dominant": dominant_segment(
                        segment_totals(tree["parts"]))[0],
                }
                for tree in worst
            ],
        }
    return report


def trees_from_streams(streams):
    """Merge :func:`build_span_trees` over ``[(label, events, meta)]``
    triples (or anything yielding events at index 1)."""
    merged = {}
    for entry in streams:
        events = entry[1] if isinstance(entry, tuple) or (
            isinstance(entry, (list,)) and len(entry) >= 2) else entry
        merged.update(build_span_trees(events))
    return merged


# -- Text rendering ------------------------------------------------------------


def _ms(ns):
    return f"{ns / 1e6:.3f}ms"


def format_critical_path(report):
    """Render a :func:`critical_path_report` as indented text."""
    if not report:
        return "no spans in capture (run with spans enabled)"
    lines = []
    for channel, block in report.items():
        duration = block["duration_ns"]
        head = (f"== channel {channel!r}: {block['complete']} requests"
                + (f" (+{block['open']} still open)" if block["open"]
                   else ""))
        lines.append(head)
        if duration.get("count"):
            lines.append(
                f"  end-to-end: p50 {_ms(duration['p50'])} "
                f"p99 {_ms(duration['p99'])} max {_ms(duration['max'])}")
        if block["tail_dominant"]:
            lines.append(
                f"  tail dominated by {block['tail_dominant']}: "
                f"{block['tail_dominant_pct']}% of worst-request time")
        for name, seg in block["segments"].items():
            lines.append(f"    {name}: {_ms(seg['total_ns'])} "
                         f"({seg['share_pct']}%)")
        for exemplar in block["exemplars"]:
            lines.append(
                f"  exemplar {exemplar['request']}: "
                f"{_ms(exemplar['duration_ns'])} "
                f"(dominant {exemplar['dominant']})")
    return "\n".join(lines)


def format_waterfall(tree, width=48):
    """Render one request's span tree as an ASCII waterfall."""
    begin = tree["begin_ns"]
    end = tree["end_ns"]
    if begin is None:
        return f"request {tree['request']!r}: no root span in capture"
    if end is None:
        end = max((span["end_ns"] or span["begin_ns"]
                   for span in tree["spans"]), default=begin)
    total = max(end - begin, 1)
    lines = [f"request {tree['request']!r} (channel "
             f"{tree.get('channel') or '?'}): "
             f"{_ms(end - begin)}"
             + ("" if tree["complete"] else " [incomplete capture]")]
    by_id = {span["span"]: span for span in tree["spans"]}

    def depth(span):
        n = 0
        while span.get("parent"):
            parent = by_id.get(span["parent"])
            if parent is None:
                break
            n += 1
            span = parent
        return n

    for span in sorted(tree["spans"],
                       key=lambda s: (s["begin_ns"], s["span"])):
        t0 = span["begin_ns"]
        t1 = span["end_ns"] if span["end_ns"] is not None else end
        lo = int(width * (t0 - begin) / total)
        hi = max(int(width * (t1 - begin) / total), lo + 1)
        bar = " " * lo + "#" * (hi - lo)
        pad = "  " * depth(span)
        open_note = "" if span["end_ns"] is not None else " (open)"
        lines.append(f"  [{bar:<{width}}] {pad}{span['name']} "
                     f"+{_ms(t0 - begin)} {_ms(t1 - t0)}{open_note}")
    if tree["parts"]:
        lines.append("  critical path:")
        for name, lo, hi in tree["parts"]:
            lines.append(f"    {name}: +{_ms(lo - begin)} "
                         f"for {_ms(hi - lo)}")
    return "\n".join(lines)
