"""Trace and metrics exporters.

Three formats:

* **Chrome trace-event JSON** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  ``sched_in/out``
  and ``vmenter/vmexit`` pairs become duration slices, ``rq_depth``
  becomes a counter track, everything else becomes instant events.
* **JSONL event stream** (:func:`write_jsonl`) — one JSON object per
  event, for ad-hoc ``jq``/pandas querying.
* **Text summary** (:meth:`MetricsRegistry.to_text` plus
  :func:`format_metrics` here) — for terminal reports.

Exporters accept a single tracer/timeline or a list of ``(label,
tracer)`` streams (an observability session produces one stream per
simulation environment; each stream becomes one Chrome ``pid``).
"""

import enum
import json

# Slice pairs: begin-kind -> (end-kind, category, name function).
_SLICE_BEGIN = {
    "sched_in": ("sched_out", "kernel",
                 lambda e: str(e.detail.get("thread", "?"))),
    "vmenter": ("vmexit", "virt",
                lambda e: f"vcpu {e.detail.get('vcpu', '?')}"),
}
_SLICE_END = {end: begin for begin, (end, _, _) in _SLICE_BEGIN.items()}

# Counter-track kinds: kind -> args key holding the sampled value.
_COUNTER_KINDS = {"rq_depth": "depth"}

_CATEGORIES = {
    "enqueue": "kernel", "cpu_online": "kernel", "thread_exit": "kernel",
    "softirq_raise": "kernel", "softirq_run": "kernel",
    "ipi_send": "ipi", "ipi_deliver": "ipi", "ipi_route": "ipi",
    "hwprobe_irq": "probe", "threshold_adapt": "probe",
    "dp_idle_yield": "dp",
    "slice_adapt": "core", "lock_safe_migrate": "core",
}


def _jsonable(value):
    if isinstance(value, enum.Enum):
        return value.value
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    return str(value)


def _args(event):
    return {key: _jsonable(val) for key, val in event.detail.items()}


def _normalize_streams(trace_source):
    """Accept a tracer, a timeline, or a list of (label, tracer) pairs."""
    if hasattr(trace_source, "record"):
        return [("trace", trace_source)]
    return list(trace_source)


def chrome_trace(trace_source):
    """Build a Chrome trace-event JSON object (dict) from trace streams.

    ``span.begin``/``span.end`` pairs become async events (``b``/``e``)
    keyed by request id, with completed roots additionally emitting their
    critical-path ``parts`` as nested async windows plus a flow arrow
    (``s``/``f``) linking the request's begin CPU to its pickup CPU.
    ``otherData.streams`` carries each stream's ``trace_meta``
    bookkeeping (event/drop counts, capacity, ring mode) so truncated
    ring-buffer captures are detectable from the Chrome view too.
    """
    trace_events = []
    dropped_total = 0
    streams_meta = []
    for pid, (label, tracer) in enumerate(_normalize_streams(trace_source)):
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
        dropped_total += getattr(tracer, "dropped", 0)
        summary_fn = getattr(tracer, "summary", None)
        meta = summary_fn() if callable(summary_fn) else {
            "events": sum(1 for _ in tracer),
            "dropped": getattr(tracer, "dropped", 0),
        }
        streams_meta.append(dict(
            {"pid": pid, "stream": label},
            **{key: _jsonable(val) for key, val in meta.items()}))
        tids = {}
        opens = {}
        span_opens = {}
        last_ts = 0

        def tid_for(cpu_id):
            tid = tids.get(cpu_id)
            if tid is None:
                tid = len(tids)
                tids[cpu_id] = tid
                trace_events.append({
                    "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": f"cpu {cpu_id}"},
                })
            return tid

        for event in tracer:
            ts_us = event.ts_ns / 1000.0
            last_ts = max(last_ts, event.ts_ns)
            kind = event.kind
            if kind in _SLICE_BEGIN:
                opens[(event.cpu_id, kind)] = event
                continue
            if kind in _SLICE_END:
                begin_kind = _SLICE_END[kind]
                begin = opens.pop((event.cpu_id, begin_kind), None)
                if begin is None:
                    # Unmatched end (begin fell out of the ring buffer):
                    # degrade to an instant so the event still shows up.
                    trace_events.append({
                        "ph": "i", "s": "t", "name": kind,
                        "cat": _SLICE_BEGIN[begin_kind][1],
                        "ts": ts_us, "pid": pid, "tid": tid_for(event.cpu_id),
                        "args": _args(event),
                    })
                    continue
                _, cat, name_fn = _SLICE_BEGIN[begin_kind]
                args = _args(begin)
                args.update(_args(event))
                trace_events.append({
                    "ph": "X", "name": name_fn(begin), "cat": cat,
                    "ts": begin.ts_ns / 1000.0,
                    "dur": (event.ts_ns - begin.ts_ns) / 1000.0,
                    "pid": pid, "tid": tid_for(event.cpu_id), "args": args,
                })
                continue
            if kind == "span.begin":
                args = _args(event)
                span_opens[args.get("span")] = event
                trace_events.append({
                    "ph": "b", "cat": "span", "id": args.get("request"),
                    "name": args.get("name", "span"), "ts": ts_us,
                    "pid": pid, "tid": tid_for(event.cpu_id), "args": args,
                })
                continue
            if kind == "span.end":
                args = _args(event)
                begin = span_opens.pop(args.get("span"), None)
                trace_events.append({
                    "ph": "e", "cat": "span", "id": args.get("request"),
                    "name": args.get("name", "span"), "ts": ts_us,
                    "pid": pid, "tid": tid_for(event.cpu_id),
                    "args": {key: val for key, val in args.items()
                             if key != "parts"},
                })
                for part in args.get("parts") or ():
                    name, lo, hi = part[0], part[1], part[2]
                    trace_events.append({
                        "ph": "b", "cat": "span", "id": args.get("request"),
                        "name": name, "ts": lo / 1000.0,
                        "pid": pid, "tid": tid_for(event.cpu_id), "args": {},
                    })
                    trace_events.append({
                        "ph": "e", "cat": "span", "id": args.get("request"),
                        "name": name, "ts": hi / 1000.0,
                        "pid": pid, "tid": tid_for(event.cpu_id), "args": {},
                    })
                if begin is not None and "parent" not in begin.detail:
                    flow_id = f"flow:{args.get('request')}"
                    trace_events.append({
                        "ph": "s", "cat": "span.flow", "id": flow_id,
                        "name": args.get("name", "span"),
                        "ts": begin.ts_ns / 1000.0, "pid": pid,
                        "tid": tid_for(begin.cpu_id),
                    })
                    trace_events.append({
                        "ph": "f", "cat": "span.flow", "id": flow_id,
                        "name": args.get("name", "span"), "bp": "e",
                        "ts": ts_us, "pid": pid,
                        "tid": tid_for(event.cpu_id),
                    })
                continue
            if kind in _COUNTER_KINDS:
                key = _COUNTER_KINDS[kind]
                value = event.detail.get(key, 0)
                trace_events.append({
                    "ph": "C", "name": f"{kind} cpu{event.cpu_id}",
                    "ts": ts_us, "pid": pid,
                    "args": {key: _jsonable(value)},
                })
                continue
            trace_events.append({
                "ph": "i", "s": "t", "name": kind,
                "cat": _CATEGORIES.get(kind, "misc"),
                "ts": ts_us, "pid": pid, "tid": tid_for(event.cpu_id),
                "args": _args(event),
            })

        # Close slices still open at trace end so they remain visible.
        for (cpu_id, begin_kind), begin in opens.items():
            _, cat, name_fn = _SLICE_BEGIN[begin_kind]
            trace_events.append({
                "ph": "X", "name": name_fn(begin), "cat": cat,
                "ts": begin.ts_ns / 1000.0,
                "dur": max((last_ts - begin.ts_ns) / 1000.0, 0.001),
                "pid": pid, "tid": tid_for(cpu_id),
                "args": dict(_args(begin), open_at_trace_end=True),
            })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"dropped_events": dropped_total,
                      "streams": streams_meta},
    }


def write_chrome_trace(path, trace_source):
    """Serialize :func:`chrome_trace` output to ``path``; returns the path."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(trace_source), handle)
    return path


def write_jsonl(path, trace_source):
    """Write one JSON object per trace event; returns the path.

    Each stream is prefixed with one ``"kind": "trace_meta"`` object
    carrying the capture bookkeeping (event/drop counts, capacity, ring
    mode) — the JSONL equivalent of the Chrome exporter's
    ``otherData.dropped_events``, so downstream analyzers can tell a
    truncated stream from a complete one.
    """
    with open(path, "w") as handle:
        for pid, (label, tracer) in enumerate(_normalize_streams(trace_source)):
            summary_fn = getattr(tracer, "summary", None)
            meta = summary_fn() if callable(summary_fn) else {
                "events": sum(1 for _ in tracer),
                "dropped": getattr(tracer, "dropped", 0),
            }
            handle.write(json.dumps({
                "pid": pid,
                "stream": label,
                "kind": "trace_meta",
                "args": {key: _jsonable(val) for key, val in meta.items()},
            }))
            handle.write("\n")
            for event in tracer:
                handle.write(json.dumps({
                    "pid": pid,
                    "stream": label,
                    "ts_ns": event.ts_ns,
                    "cpu": _jsonable(event.cpu_id),
                    "kind": event.kind,
                    "args": _args(event),
                }))
                handle.write("\n")
    return path


def write_metrics_json(path, registry):
    """Write a registry snapshot (instruments + sources) as JSON."""
    with open(path, "w") as handle:
        json.dump(registry.snapshot(), handle, indent=2, default=_jsonable)
    return path


def format_metrics(snapshot, source_prefixes=("sim.engine",)):
    """Render a snapshot's headline numbers as indented text lines."""
    lines = []
    for section in ("counters", "gauges"):
        for name, value in snapshot.get(section, {}).items():
            lines.append(f"  {name}: {value}")
    for name, summary in snapshot.get("histograms", {}).items():
        lines.append(f"  {name}: {summary}")
    for name, data in snapshot.get("sources", {}).items():
        if not name.startswith(tuple(source_prefixes)):
            continue
        for key, value in sorted(data.items()):
            lines.append(f"  {name}.{key}: {value}")
    return "\n".join(lines)
