"""Streaming causal-invariant checkers for trace streams.

The simulator's causal story — every IPI delivered, every ``vmenter``
paired with a ``vmexit``, no thread on two CPUs at once — is encoded here
as small pluggable checkers.  Each checker consumes one event at a time,
so the same objects run **inline** during a simulation (hooked into a
tracer via :meth:`~repro.sim.environment.Environment.add_trace_hook` or
``observe(check_invariants=True)``) or **post-hoc** over a capture
(:func:`check_events`, or ``taichi-experiments analyze``).

Violations fail loudly: each carries the checker name, a precise message,
the offending event, and the events that led up to it.

Caveat for post-hoc runs: a ring-buffer capture that dropped its oldest
events may have lost the *begin* half of slice pairs, so pairing checkers
can report artifacts on truncated streams.  The analyzer surfaces the
drop count next to any violations; inline checking never has this
problem because hooks see events before the capacity policy drops them.
"""

from collections import deque
from dataclasses import dataclass, field


@dataclass
class Violation:
    """One invariant breach with enough context to debug it."""

    checker: str
    message: str
    event: object = None       # the offending TimelineEvent, if any
    context: tuple = ()        # recent events preceding the offender

    def to_dict(self):
        return {
            "checker": self.checker,
            "message": self.message,
            "event": str(self.event) if self.event is not None else None,
            "context": [str(event) for event in self.context],
        }

    def __str__(self):
        lines = [f"[{self.checker}] {self.message}"]
        for event in self.context:
            lines.append(f"    ... {event}")
        if self.event is not None:
            lines.append(f"    >>> {self.event}")
        return "\n".join(lines)


class InvariantChecker:
    """Base class: feed events through :meth:`observe`, then :meth:`finish`.

    Both return an iterable of :class:`Violation`.  Checkers are cheap,
    single-pass, and keep O(open-state) memory so they can run inline on
    multi-million-event streams.
    """

    name = "invariant"

    def observe(self, event):
        return ()

    def finish(self, last_ts_ns):
        """Called once after the stream ends; ``last_ts_ns`` is the final
        timestamp seen (0 for an empty stream)."""
        return ()


class MonotonicTimestamps(InvariantChecker):
    """Events must be recorded in non-decreasing timestamp order."""

    name = "monotonic_timestamps"

    def __init__(self):
        self._last_ts = None

    def observe(self, event):
        out = []
        if self._last_ts is not None and event.ts_ns < self._last_ts:
            out.append(Violation(
                self.name,
                f"timestamp went backwards: {event.ts_ns} ns after "
                f"{self._last_ts} ns",
                event,
            ))
        self._last_ts = max(event.ts_ns, self._last_ts or event.ts_ns)
        return out


class IpiDeliveryBound(InvariantChecker):
    """Every ``ipi_send`` must produce a matching ``ipi_deliver`` in time.

    Sends and delivers are matched FIFO per (destination CPU, vector).
    A delivery later than ``bound_ns`` after its send — or a send never
    delivered at all by ``bound_ns`` before stream end — is a violation.
    Deliveries without a send are legal (``IPIController.deliver`` is also
    the device-IRQ path and bypasses the send hook).
    """

    name = "ipi_delivery_bound"

    _DROP_KINDS = ("fault.ipi_drop", "ipi.dropped")

    def __init__(self, bound_ns=1_000_000):
        self.bound_ns = int(bound_ns)
        self._pending = {}     # (dst, vector) -> deque of send events
        self._drop_credit = {}   # (dst, vector) -> drops seen before the send
        self._delay_grace = {}   # (dst, vector) -> injected extra latency, ns

    def observe(self, event):
        if event.kind == "ipi_send":
            key = (event.detail.get("dst"), event.detail.get("vector"))
            # A fault drop recorded just before this send (the orchestrator
            # hook runs — and may drop — before ``ipi_send`` is traced)
            # means this send will never be delivered, legitimately.
            if self._drop_credit.get(key, 0) > 0:
                self._drop_credit[key] -= 1
                return ()
            self._pending.setdefault(key, deque()).append(event)
            return ()
        if event.kind in self._DROP_KINDS:
            # Injected or offline drop: forgive the oldest in-flight send.
            key = (event.cpu_id, event.detail.get("vector"))
            queue = self._pending.get(key)
            if queue:
                queue.popleft()
            else:
                self._drop_credit[key] = self._drop_credit.get(key, 0) + 1
            return ()
        if event.kind == "fault.ipi_delay":
            key = (event.cpu_id, event.detail.get("vector"))
            self._delay_grace[key] = (
                self._delay_grace.get(key, 0)
                + int(event.detail.get("extra_ns", 0)))
            return ()
        if event.kind != "ipi_deliver":
            return ()
        key = (event.cpu_id, event.detail.get("vector"))
        queue = self._pending.get(key)
        if not queue:
            return ()
        send = queue.popleft()
        dt = event.ts_ns - send.ts_ns
        if dt > self.bound_ns:
            # Injected delivery delays extend the bound; consume the grace.
            grace = self._delay_grace.get(key, 0)
            if grace > 0:
                used = min(grace, dt - self.bound_ns)
                self._delay_grace[key] = grace - used
                dt -= used
        if dt > self.bound_ns:
            return [Violation(
                self.name,
                f"IPI {key[1]!r} to cpu {key[0]!r} delivered {dt} ns after "
                f"send (bound {self.bound_ns} ns)",
                event,
                context=(send,),
            )]
        return ()

    def finish(self, last_ts_ns):
        out = []
        for (dst, vector), queue in sorted(
                self._pending.items(), key=lambda item: str(item[0])):
            grace = self._delay_grace.get((dst, vector), 0)
            for send in queue:
                overdue = last_ts_ns - send.ts_ns
                if overdue > self.bound_ns + grace:
                    out.append(Violation(
                        self.name,
                        f"IPI {vector!r} to cpu {dst!r} sent at "
                        f"{send.ts_ns} ns was never delivered "
                        f"({overdue} ns elapsed, bound {self.bound_ns} ns)",
                        send,
                    ))
        return out


class SlicePairNesting(InvariantChecker):
    """``sched_in/out`` and ``vmenter/vmexit`` must pair up per CPU.

    A begin while the same kind is already open on that CPU, an end with
    no open begin, or an end naming a different thread/vCPU than its
    begin are all violations.  Slices still open at stream end are legal
    (the run simply stopped mid-slice).
    """

    name = "slice_pair_nesting"

    _PAIRS = {"sched_in": ("sched_out", "thread"),
              "vmenter": ("vmexit", "vcpu")}
    _ENDS = {end: (begin, ident) for begin, (end, ident) in _PAIRS.items()}

    def __init__(self):
        self._open = {}        # (cpu, begin_kind) -> begin event

    def observe(self, event):
        kind = event.kind
        if kind in self._PAIRS:
            key = (event.cpu_id, kind)
            stale = self._open.get(key)
            self._open[key] = event
            if stale is not None:
                return [Violation(
                    self.name,
                    f"nested {kind} on cpu {event.cpu_id!r}: previous "
                    f"{kind} at {stale.ts_ns} ns never closed",
                    event,
                    context=(stale,),
                )]
            return ()
        if kind in self._ENDS:
            begin_kind, ident = self._ENDS[kind]
            begin = self._open.pop((event.cpu_id, begin_kind), None)
            if begin is None:
                return [Violation(
                    self.name,
                    f"unpaired {kind} on cpu {event.cpu_id!r}: no open "
                    f"{begin_kind}",
                    event,
                )]
            if begin.detail.get(ident) != event.detail.get(ident):
                return [Violation(
                    self.name,
                    f"{kind} on cpu {event.cpu_id!r} closes "
                    f"{ident}={event.detail.get(ident)!r} but the open "
                    f"{begin_kind} was {ident}={begin.detail.get(ident)!r}",
                    event,
                    context=(begin,),
                )]
        return ()


class SingleCpuPerThread(InvariantChecker):
    """A thread may be running (``sched_in`` .. ``sched_out``) on at most
    one CPU at a time."""

    name = "single_cpu_per_thread"

    def __init__(self):
        self._running = {}     # thread -> sched_in event

    def observe(self, event):
        if event.kind == "sched_in":
            thread = event.detail.get("thread")
            active = self._running.get(thread)
            self._running[thread] = event
            if active is not None and active.cpu_id != event.cpu_id:
                return [Violation(
                    self.name,
                    f"thread {thread!r} sched_in on cpu {event.cpu_id!r} "
                    f"while still running on cpu {active.cpu_id!r}",
                    event,
                    context=(active,),
                )]
        elif event.kind == "sched_out":
            thread = event.detail.get("thread")
            active = self._running.get(thread)
            if active is not None and active.cpu_id == event.cpu_id:
                del self._running[thread]
        return ()


class IdleYieldThreshold(InvariantChecker):
    """``dp_idle_yield`` only after the empty-poll threshold was crossed.

    A service yields after waiting ``threshold * poll_ns`` with no
    traffic, so the yield must come at least that long after the CPU's
    previous slice end (``vmexit``) or previous yield.  A yield inside
    that budget means the threshold crossing was fabricated.
    """

    name = "idle_yield_threshold"

    def __init__(self, poll_ns=200):
        self.poll_ns = int(poll_ns)
        self._floor = {}       # cpu -> last vmexit/dp_idle_yield event

    def observe(self, event):
        if event.kind == "vmexit":
            self._floor[event.cpu_id] = event
            return ()
        if event.kind != "dp_idle_yield":
            return ()
        floor = self._floor.get(event.cpu_id)
        self._floor[event.cpu_id] = event
        threshold = event.detail.get("threshold")
        if floor is None or not isinstance(threshold, int):
            return ()
        budget_ns = max(threshold, 1) * self.poll_ns
        gap = event.ts_ns - floor.ts_ns
        if gap < budget_ns:
            return [Violation(
                self.name,
                f"dp_idle_yield on cpu {event.cpu_id!r} only {gap} ns "
                f"after {floor.kind} — threshold {threshold} needs "
                f"{budget_ns} ns of empty polling",
                event,
                context=(floor,),
            )]
        return ()


class RunQueueDepthConsistency(InvariantChecker):
    """``rq_depth`` samples must be plausible run-queue depths.

    Depths are non-negative integers, and the sample emitted right after
    an ``enqueue`` on the same CPU at the same instant must report at
    least the thread just queued.
    """

    name = "runqueue_depth"

    def __init__(self):
        self._prev = None      # immediately preceding event in the stream

    def observe(self, event):
        prev, self._prev = self._prev, event
        if event.kind != "rq_depth":
            return ()
        depth = event.detail.get("depth")
        if not isinstance(depth, int) or depth < 0:
            return [Violation(
                self.name,
                f"rq_depth on cpu {event.cpu_id!r} reports invalid depth "
                f"{depth!r}",
                event,
            )]
        if (prev is not None and prev.kind == "enqueue"
                and prev.cpu_id == event.cpu_id
                and prev.ts_ns == event.ts_ns and depth < 1):
            return [Violation(
                self.name,
                f"rq_depth 0 on cpu {event.cpu_id!r} immediately after an "
                f"enqueue at the same instant",
                event,
                context=(prev,),
            )]
        return ()


class FaultRecoveryChecker(InvariantChecker):
    """Every injected fault must be cleared, and clears must have causes.

    The fault injector brackets each fault occurrence with
    ``fault.injected`` / ``fault.cleared`` events sharing a ``fault`` id.
    A clear with no matching injection is a corrupt stream; an injection
    never cleared by stream end means the injector (or the simulation it
    wedged) lost the revert path.
    """

    name = "fault_recovery"

    def __init__(self):
        self._open = {}        # fault id -> fault.injected event

    def observe(self, event):
        if event.kind == "fault.injected":
            fault_id = event.detail.get("fault")
            stale = self._open.get(fault_id)
            self._open[fault_id] = event
            if stale is not None:
                return [Violation(
                    self.name,
                    f"fault {fault_id!r} injected twice without an "
                    f"intervening clear",
                    event,
                    context=(stale,),
                )]
            return ()
        if event.kind != "fault.cleared":
            return ()
        fault_id = event.detail.get("fault")
        if self._open.pop(fault_id, None) is None:
            return [Violation(
                self.name,
                f"fault {fault_id!r} cleared but never injected",
                event,
            )]
        return ()

    def finish(self, last_ts_ns):
        out = []
        for fault_id, event in sorted(self._open.items()):
            until_ns = event.detail.get("until_ns")
            if isinstance(until_ns, int) and last_ts_ns < until_ns:
                continue  # the capture simply ended inside the window
            out.append(Violation(
                self.name,
                f"fault {fault_id!r} injected at {event.ts_ns} ns was "
                f"never cleared",
                event,
            ))
        return out


class AlertPairingChecker(InvariantChecker):
    """``alert.raised`` / ``alert.cleared`` must pair per alert name.

    The SLO monitor's hysteresis state machine guarantees one active
    firing per rule: a second raise without an intervening clear means
    the monitor's bookkeeping broke, and a clear with no open raise is a
    corrupt stream.  Alerts still active at stream end are legal (the
    run ended mid-incident), mirroring :class:`FaultRecoveryChecker`.
    """

    name = "alert_pairing"

    def __init__(self):
        self._open = {}        # (node, alert name) -> alert.raised event

    @staticmethod
    def _key(event):
        return (event.detail.get("node"), event.detail.get("alert"))

    def observe(self, event):
        if event.kind == "alert.raised":
            key = self._key(event)
            stale = self._open.get(key)
            self._open[key] = event
            if stale is not None:
                return [Violation(
                    self.name,
                    f"alert {key[1]!r} raised twice without an "
                    f"intervening clear",
                    event,
                    context=(stale,),
                )]
            return ()
        if event.kind != "alert.cleared":
            return ()
        key = self._key(event)
        if self._open.pop(key, None) is None:
            return [Violation(
                self.name,
                f"alert {key[1]!r} cleared but never raised",
                event,
            )]
        return ()


class SpanPairingChecker(InvariantChecker):
    """``span.begin`` / ``span.end`` must pair, and children must nest.

    Each span id may begin once and end once; a child's begin must fall
    inside an open parent carrying the same request id, and a parent must
    not end while any of its children are still open.  Spans still open
    at stream end are legal (the run ended mid-request — startups past
    the drain horizon, packets still queued), mirroring
    :class:`AlertPairingChecker`.
    """

    name = "span_pairing"

    def __init__(self):
        self._open = {}           # span id -> span.begin event
        self._open_children = {}  # parent span id -> open child count

    def observe(self, event):
        if event.kind == "span.begin":
            detail = event.detail
            span_id = detail.get("span")
            stale = self._open.get(span_id)
            self._open[span_id] = event
            if stale is not None:
                return [Violation(
                    self.name,
                    f"span {span_id!r} begun twice without an end",
                    event,
                    context=(stale,),
                )]
            parent = detail.get("parent")
            if parent is not None:
                parent_begin = self._open.get(parent)
                if parent_begin is None:
                    return [Violation(
                        self.name,
                        f"span {span_id!r} begun under parent {parent!r} "
                        f"which is not open",
                        event,
                    )]
                if (parent_begin.detail.get("request")
                        != detail.get("request")):
                    return [Violation(
                        self.name,
                        f"span {span_id!r} (request "
                        f"{detail.get('request')!r}) nests under parent "
                        f"{parent!r} of request "
                        f"{parent_begin.detail.get('request')!r}",
                        event,
                        context=(parent_begin,),
                    )]
                self._open_children[parent] = (
                    self._open_children.get(parent, 0) + 1)
            return ()
        if event.kind != "span.end":
            return ()
        span_id = event.detail.get("span")
        begin = self._open.pop(span_id, None)
        if begin is None:
            return [Violation(
                self.name,
                f"span {span_id!r} ended but never begun",
                event,
            )]
        parent = begin.detail.get("parent")
        if parent is not None and self._open_children.get(parent):
            self._open_children[parent] -= 1
        if self._open_children.pop(span_id, 0):
            return [Violation(
                self.name,
                f"span {span_id!r} ended while a child span is still open",
                event,
                context=(begin,),
            )]
        return ()


class TenantFairShareChecker(InvariantChecker):
    """A tenant is never chosen over a cheaper backlogged tenant.

    The weighted-fair vCPU pick (``tenant.pick`` events) must select the
    eligible tenant with the lowest weight-normalized granted time.  Each
    event carries the chosen tenant's normalized usage plus every
    backlogged (eligible-but-not-chosen) tenant's — picking a tenant whose
    usage exceeds a backlogged one's by more than ``slack_ns`` means a
    tenant ran ahead of its weighted share while another waited.  Silent
    on single-tenant streams.
    """

    name = "tenant_fair_share"

    def __init__(self, slack_ns=1_000):
        self.slack_ns = int(slack_ns)

    def observe(self, event):
        if event.kind != "tenant.pick":
            return ()
        chosen = event.detail.get("tenant")
        usage_ns = event.detail.get("usage_ns", 0)
        out = []
        for other, other_usage in (event.detail.get("backlogged")
                                   or {}).items():
            if usage_ns > other_usage + self.slack_ns:
                out.append(Violation(
                    self.name,
                    f"tenant {chosen!r} (normalized usage {usage_ns} ns) "
                    f"was backed while backlogged tenant {other!r} had "
                    f"only {other_usage} ns — exceeds its weighted share",
                    event,
                ))
        return out


class TenantGrantConservation(InvariantChecker):
    """Grant ledgers conserve: every donated slice lands in exactly one
    tenant's ledger and the board total.

    ``tenant.grant`` events carry the slice, the tenant's running total
    and the board's running total; re-accumulating them must reproduce
    both.  A mismatch means accounting lost or double-counted a slice.
    Silent on single-tenant streams.
    """

    name = "tenant_grant_conservation"

    def __init__(self):
        self._per_tenant = {}
        self._total = 0

    def observe(self, event):
        if event.kind != "tenant.grant":
            return ()
        tenant = event.detail.get("tenant")
        slice_ns = event.detail.get("ns", 0)
        expected_tenant = self._per_tenant.get(tenant, 0) + slice_ns
        expected_total = self._total + slice_ns
        self._per_tenant[tenant] = expected_tenant
        self._total = expected_total
        out = []
        if event.detail.get("tenant_total_ns") != expected_tenant:
            out.append(Violation(
                self.name,
                f"tenant {tenant!r} ledger reads "
                f"{event.detail.get('tenant_total_ns')} ns but its grants "
                f"sum to {expected_tenant} ns",
                event,
            ))
        if event.detail.get("total_ns") < expected_total:
            # The board total also counts slices of untagged vCPUs, so it
            # may run ahead of the tenant ledgers — never behind them.
            out.append(Violation(
                self.name,
                f"board grant total {event.detail.get('total_ns')} ns is "
                f"behind the sum of tenant grants ({expected_total} ns) — "
                f"a slice was double-attributed",
                event,
            ))
        return out


DEFAULT_CHECKERS = (
    MonotonicTimestamps,
    IpiDeliveryBound,
    SlicePairNesting,
    SingleCpuPerThread,
    IdleYieldThreshold,
    RunQueueDepthConsistency,
    FaultRecoveryChecker,
    AlertPairingChecker,
    SpanPairingChecker,
    TenantFairShareChecker,
    TenantGrantConservation,
)


def default_checkers():
    """Fresh instances of the full checker catalog."""
    return [checker() for checker in DEFAULT_CHECKERS]


@dataclass
class InvariantEngine:
    """Runs a set of checkers over one event stream.

    Feed events through :meth:`observe` (usable directly as a tracer
    hook), then call :meth:`finish` once for end-of-stream checks.  Keeps
    a short ring of recent events and attaches it to each violation as
    context.
    """

    checkers: list = None
    context_events: int = 4
    max_violations: int = 1_000

    violations: list = field(default_factory=list, init=False)
    overflowed: int = field(default=0, init=False)

    def __post_init__(self):
        if self.checkers is None:
            self.checkers = default_checkers()
        self._recent = deque(maxlen=self.context_events)
        self._last_ts = 0
        self._finished = False

    def observe(self, event):
        for checker in self.checkers:
            for violation in checker.observe(event):
                if not violation.context:
                    violation.context = tuple(self._recent)
                self._add(violation)
        self._recent.append(event)
        if event.ts_ns > self._last_ts:
            self._last_ts = event.ts_ns

    def finish(self):
        """End-of-stream checks; idempotent.  Returns all violations."""
        if not self._finished:
            self._finished = True
            for checker in self.checkers:
                for violation in checker.finish(self._last_ts):
                    self._add(violation)
        return self.violations

    def _add(self, violation):
        if len(self.violations) >= self.max_violations:
            self.overflowed += 1
            return
        self.violations.append(violation)


def check_events(events, checkers=None):
    """Post-hoc convenience: run checkers over ``events``, return violations."""
    engine = InvariantEngine(checkers=checkers)
    for event in events:
        engine.observe(event)
    return engine.finish()
