"""The host compute node: VMs whose devices live on the SmartNIC.

Ties the control plane to the data plane the way Figure 1c describes: a
VM-creation request drives the device-management CP workflow, and each
device-initialization step *materializes a real eNIC* attached to a DP
service — so the VM's subsequent traffic flows through queues that exist
only because the CP task ran.  VM startup time therefore directly depends
on CP scheduling, which is the paper's central SLO story.
"""

from dataclasses import dataclass, field
from itertools import count

from repro.cp.device_mgmt import DeviceManager, VMCreateRequest
from repro.hw.enic import ENic

_vm_seq = count(1)


@dataclass
class VMSpec:
    """Shape of a guest (Table 4's default: 1 vNIC + 4 virtio-blk)."""

    n_vnics: int = 1
    n_vblks: int = 4
    vcpus: int = 2

    @property
    def n_devices(self):
        return self.n_vnics + self.n_vblks


@dataclass
class VirtualMachine:
    """A guest instance and its SmartNIC-side devices."""

    spec: VMSpec
    vm_id: int = field(default_factory=lambda: next(_vm_seq))
    devices: list = field(default_factory=list)
    request: VMCreateRequest = None

    @property
    def running(self):
        return (self.request is not None
                and self.request.t_vm_started is not None)

    @property
    def vnics(self):
        return [device for device in self.devices if device.kind == "net"]

    @property
    def vblks(self):
        return [device for device in self.devices if device.kind == "blk"]

    def startup_time_ns(self):
        return self.request.startup_time_ns if self.request else None


class HostNode:
    """A host whose VM lifecycle runs through the SmartNIC control plane."""

    def __init__(self, deployment, manager=None, services=None,
                 tenant_id=None):
        self.deployment = deployment
        self.board = deployment.board
        self.env = deployment.env
        self.manager = manager or DeviceManager(
            self.board, deployment.cp_affinity
        )
        # Multi-tenant boards scope a host to its tenant's DP services;
        # default is the whole board (single-tenant behavior).
        self.services = list(services) if services is not None else None
        self.tenant_id = tenant_id
        self.vms = []
        self._rr = 0

    def create_vm(self, spec=None):
        """Issue a VM-creation request; devices materialize as CP work runs.

        Returns the :class:`VirtualMachine`; its ``request.done`` event
        fires when QEMU instantiation completes.
        """
        spec = spec or VMSpec()
        vm = VirtualMachine(spec=spec)
        kinds = ["net"] * spec.n_vnics + ["blk"] * spec.n_vblks
        request = VMCreateRequest(self.env, spec.n_devices)
        request.tenant = self.tenant_id
        vm.request = request
        self.vms.append(vm)

        def _materialize(req, device_index):
            kind = kinds[device_index]
            device = ENic(self.board, vm.vm_id, kind=kind,
                          n_queues=2 if kind == "net" else 1)
            device.attach(self._pick_service())
            vm.devices.append(device)

        self.manager.submit(request, on_device_initialized=_materialize)
        return vm

    def destroy_vm(self, vm):
        """Detach the VM's devices (deinitialization)."""
        for device in vm.devices:
            device.detach()
        self.vms.remove(vm)

    def _pick_service(self):
        services = (self.services if self.services
                    else self.deployment.services)
        self._rr = (self._rr + 1) % len(services)
        return services[self._rr]

    def running_vms(self):
        return [vm for vm in self.vms if vm.running]

    def __repr__(self):
        return f"<HostNode vms={len(self.vms)} running={len(self.running_vms())}>"
