"""SmartNIC hardware substrate.

Models the pieces of a production SmartNIC that Tai Chi's co-design relies
on (Table 4 / Figure 6 of the paper):

* the programmable I/O accelerator with its 2.7 us preprocessing and
  0.5 us transfer stages — the window used to hide vCPU switch latency;
* the hardware workload probe: a per-CPU P-state/V-state table consulted
  before preprocessing, raising a preempt IRQ for V-state destinations;
* eNIC receive queues shared with poll-mode DP services;
* PCIe and NIC-port links with latency plus serialization;
* the board itself (:class:`~repro.hw.board.SmartNIC`), which assembles a
  kernel, CPUs, the accelerator and the links into one device.
"""

from repro.hw.accelerator import Accelerator, AcceleratorParams
from repro.hw.board import BoardConfig, SmartNIC
from repro.hw.enic import DeviceState, ENic
from repro.hw.host import HostNode, VirtualMachine, VMSpec
from repro.hw.packet import IORequest, PacketKind
from repro.hw.port import Link
from repro.hw.probe import CpuIoState, HardwareWorkloadProbe

__all__ = [
    "Accelerator",
    "AcceleratorParams",
    "BoardConfig",
    "CpuIoState",
    "DeviceState",
    "ENic",
    "HardwareWorkloadProbe",
    "HostNode",
    "IORequest",
    "Link",
    "PacketKind",
    "SmartNIC",
    "VMSpec",
    "VirtualMachine",
]
