"""The hardware workload probe (Section 4.3, Figure 10).

The probe lives in the programmable I/O accelerator.  It keeps one state
byte per data-plane CPU — P-state ("a physical-CPU context is running;
interrupts masked") or V-state ("a vCPU context is running") — updated by
the vCPU scheduler.  Before a packet is preprocessed, the probe inspects
the destination CPU's state; for V-state it fires an asynchronous preempt
IRQ so the vCPU can be descheduled *while* the 3.2 us preprocessing window
elapses, hiding the ~2 us switch latency.

This is the ~30-line hardware change the paper describes; accordingly the
model is small.
"""

import enum


class CpuIoState(enum.Enum):
    P_STATE = "P"  # physical context running (DP service); mask the IRQ
    V_STATE = "V"  # vCPU context running; preempt on packet arrival


class HardwareWorkloadProbe:
    """Per-CPU state table plus the preempt-IRQ trigger."""

    def __init__(self, env, irq_latency_ns=300, enabled=True):
        self.env = env
        self.irq_latency_ns = int(irq_latency_ns)
        self.enabled = enabled
        self._states = {}
        self._irq_handler = None
        self.packets_inspected = 0
        self.irqs_fired = 0
        self.spurious_irqs = 0
        self.suppressed_irqs = 0
        # Fault-injection veto: ``veto(cpu_id) -> bool``; True swallows a
        # real V-state IRQ (a false-negative misprediction).
        self.veto = None

    def set_irq_handler(self, handler):
        """``handler(cpu_id)`` invoked when the probe fires a preempt IRQ."""
        self._irq_handler = handler

    def set_state(self, cpu_id, state):
        """vCPU scheduler updates: V-state on VM-enter, P-state on exit."""
        self._states[cpu_id] = state

    def get_state(self, cpu_id):
        return self._states.get(cpu_id, CpuIoState.P_STATE)

    def v_state_cpus(self):
        """CPU ids currently marked V-state (a vCPU context is running)."""
        return [cpu_id for cpu_id, state in self._states.items()
                if state is CpuIoState.V_STATE]

    def on_packet(self, dst_cpu_id):
        """Inspect destination CPU state; fire the IRQ for V-state targets."""
        self.packets_inspected += 1
        if not self.enabled or self._irq_handler is None:
            return False
        if self._states.get(dst_cpu_id) is not CpuIoState.V_STATE:
            return False
        if self.veto is not None and self.veto(dst_cpu_id):
            self.suppressed_irqs += 1
            return False
        self._fire(dst_cpu_id)
        return True

    def fire_spurious(self, cpu_id):
        """Fire a preempt IRQ with no packet behind it (false positive).

        Fault injection uses this to model a misreading probe; the IRQ is
        only meaningful — and only fired — while the CPU is in V-state.
        """
        if not self.enabled or self._irq_handler is None:
            return False
        if self._states.get(cpu_id) is not CpuIoState.V_STATE:
            return False
        self.spurious_irqs += 1
        self._fire(cpu_id, spurious=True)
        return True

    def _fire(self, dst_cpu_id, spurious=False):
        self.irqs_fired += 1
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.record(self.env.now, dst_cpu_id, "hwprobe_irq",
                          latency_ns=self.irq_latency_ns, spurious=spurious)
        handler = self._irq_handler

        def _deliver(_event):
            handler(dst_cpu_id)

        self.env.timeout(self.irq_latency_ns).callbacks.append(_deliver)
