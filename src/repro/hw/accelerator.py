"""The programmable I/O accelerator with its preprocessing pipeline.

Figure 6's timing breakdown is reproduced literally: a submitted I/O
request is preprocessed for ``preprocess_ns`` (2.7 us — payload moved into
the internal buffer and processed) and then transferred for
``transfer_ns`` (0.5 us) into the rx queue shared with the destination DP
service.  Before preprocessing begins, the hardware workload probe
inspects the destination CPU's state (Section 4.3) — this ordering is what
creates the 3.2 us window that hides vCPU switch latency.
"""

from dataclasses import dataclass

from repro.sim.units import MICROSECONDS


@dataclass
class AcceleratorParams:
    preprocess_ns: int = 2_700       # stage 2 in Figure 6
    transfer_ns: int = 500           # stage 3 in Figure 6
    # Concurrent preprocessing engines: the ASIC pipelines deeply enough to
    # keep preprocessing off the throughput-critical path (per-packet
    # latency stays 2.7 us; aggregate rate stays above what 8 DP cores can
    # consume in software).
    pipelines: int = 64


class Accelerator:
    """Routes I/O requests into per-CPU rx queues after preprocessing."""

    def __init__(self, env, params=None, probe=None):
        self.env = env
        self.params = params or AcceleratorParams()
        self.probe = probe
        self._queues = {}             # queue_id -> (Store, dst_cpu_id)
        self._pipeline_free_ns = [0] * self.params.pipelines
        self._inflight = {}           # queue_id -> packets inside the pipeline
        self.packets_processed = 0
        self.stage_samples = []       # (preprocess_ns, transfer_ns) pairs
        # Fault injection: no preprocessing engine may start before this
        # horizon (a wedged pipeline); already-started work is unaffected.
        self.stall_until_ns = 0

    def attach_queue(self, queue_id, store, dst_cpu_id):
        """Register a shared-memory rx queue owned by a DP service CPU."""
        self._queues[queue_id] = (store, dst_cpu_id)

    def retarget_queue(self, queue_id, dst_cpu_id):
        """Repoint a queue at a different DP CPU (repartitioning support)."""
        store, _ = self._queues[queue_id]
        self._queues[queue_id] = (store, dst_cpu_id)

    def queue_owner(self, queue_id):
        return self._queues[queue_id][1]

    def queue_store(self, queue_id):
        return self._queues[queue_id][0]

    @property
    def queue_ids(self):
        return list(self._queues)

    def submit(self, request):
        """Accept a request from the driver side (stage 1 of Figure 6)."""
        if request.queue_id not in self._queues:
            raise KeyError(f"unknown queue {request.queue_id!r}")
        store, dst_cpu_id = self._queues[request.queue_id]
        now = self.env.now
        request.t_submit = now if request.t_submit is None else request.t_submit
        spans = self.env.spans
        if spans.enabled and request.span_id is None:
            spans.begin_dp(request, dst_cpu_id)

        # The probe inspects the destination CPU *before* preprocessing.
        if self.probe is not None:
            self.probe.on_packet(dst_cpu_id)

        # Claim the earliest-free pipeline engine.
        engine = min(range(len(self._pipeline_free_ns)),
                     key=self._pipeline_free_ns.__getitem__)
        start = max(now, self._pipeline_free_ns[engine], self.stall_until_ns)
        self._pipeline_free_ns[engine] = start + self.params.preprocess_ns
        request.t_accel_start = start
        ready_at = start + self.params.preprocess_ns + self.params.transfer_ns

        self._inflight[request.queue_id] = (
            self._inflight.get(request.queue_id, 0) + 1
        )

        def _deposit(_event):
            self._inflight[request.queue_id] -= 1
            request.t_rx_ready = self.env.now
            store.put(request)
            # The probe re-inspects at queue-write time: a vCPU that entered
            # during preprocessing would otherwise strand this packet for a
            # whole time slice.
            if self.probe is not None:
                self.probe.on_packet(dst_cpu_id)

        self.env.timeout(ready_at - now).callbacks.append(_deposit)
        self.packets_processed += 1
        if len(self.stage_samples) < 10_000:
            self.stage_samples.append(
                (self.params.preprocess_ns, self.params.transfer_ns)
            )
        return ready_at

    def queue_inflight(self, queue_id):
        """Packets currently inside the preprocessing pipeline for a queue.

        Exposed as pipeline metadata for the Section 9 "multi-dimensional
        idle assessment": traffic that is already being preprocessed means
        the destination CPU is about to be busy, whatever its empty-poll
        counter says.
        """
        return self._inflight.get(queue_id, 0)

    @property
    def window_ns(self):
        """The preprocessing window available for hiding scheduling latency."""
        return self.params.preprocess_ns + self.params.transfer_ns

    def __repr__(self):
        return (
            f"<Accelerator queues={len(self._queues)} "
            f"window={self.window_ns / MICROSECONDS:.1f}us>"
        )
