"""I/O requests flowing through the SmartNIC data plane."""

import enum
from itertools import count

_packet_ids = count(1)


class PacketKind(enum.Enum):
    NET_RX = "net_rx"        # packet arriving from the wire toward the VM
    NET_TX = "net_tx"        # packet leaving the VM toward the wire
    STORAGE_SUBMIT = "storage_submit"      # block-IO submission
    STORAGE_COMPLETE = "storage_complete"  # block-IO device completion


class IORequest:
    """One unit of data-plane work with per-stage timestamps.

    The timestamps mirror Figure 6's breakdown: driver doorbell, accelerator
    preprocessing start, deposit into the shared rx queue, DP software
    pickup, and completion.  Latency metrics are derived from these.
    """

    __slots__ = (
        "packet_id",
        "kind",
        "size_bytes",
        "queue_id",
        "flow",
        "payload",
        "service_ns",
        "t_submit",
        "t_accel_start",
        "t_rx_ready",
        "t_dp_start",
        "t_done",
        "done",
        "span_id",
        "tenant",
    )

    def __init__(self, kind, size_bytes, queue_id, service_ns, flow=None,
                 payload=None, done=None, tenant=None):
        self.packet_id = next(_packet_ids)
        self.kind = kind
        self.size_bytes = int(size_bytes)
        self.queue_id = queue_id
        self.flow = flow
        self.payload = payload
        self.service_ns = int(service_ns)
        self.t_submit = None
        self.t_accel_start = None
        self.t_rx_ready = None
        self.t_dp_start = None
        self.t_done = None
        self.done = done
        # Causal-tracing correlation id (set while a span is open on this
        # request; see repro.obs.spans).
        self.span_id = None
        # Owning tenant id on multi-tenant boards (None elsewhere).
        self.tenant = tenant

    @property
    def total_latency_ns(self):
        if self.t_done is None or self.t_submit is None:
            return None
        return self.t_done - self.t_submit

    @property
    def queue_wait_ns(self):
        """Time spent sitting in the rx queue waiting for DP software."""
        if self.t_dp_start is None or self.t_rx_ready is None:
            return None
        return self.t_dp_start - self.t_rx_ready

    def complete(self, now_ns):
        self.t_done = now_ns
        if self.done is not None and not self.done.triggered:
            self.done.succeed(self)

    def __repr__(self):
        return (
            f"<IORequest #{self.packet_id} {self.kind.value} q={self.queue_id} "
            f"{self.size_bytes}B>"
        )
