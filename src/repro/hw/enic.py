"""Emulated NIC/block devices (eNICs) exposed to host VMs (Figure 1c).

The programmable accelerator emulates multiple devices which are attached
to the host over PCIe and passed through to VMs.  In this model an
:class:`ENic` owns a set of accelerator rx queues; *attaching* it to a DP
service materializes the data path the paper's control-plane tasks
initialize during VM creation — after which the VM's traffic flows through
exactly those queues.
"""

import enum
from itertools import count

from repro.hw.packet import IORequest, PacketKind

_device_ids = count(1)


class DeviceState(enum.Enum):
    UNINITIALIZED = "uninitialized"
    READY = "ready"
    REMOVED = "removed"


class ENic:
    """One emulated device: a virtio-net or virtio-blk endpoint."""

    def __init__(self, board, vm_id, kind="net", n_queues=1):
        if kind not in ("net", "blk"):
            raise ValueError(f"unsupported device kind {kind!r}")
        self.board = board
        self.vm_id = vm_id
        self.kind = kind
        self.device_id = next(_device_ids)
        self.n_queues = int(n_queues)
        self.state = DeviceState.UNINITIALIZED
        self.queue_ids = []
        self.service = None
        self.packets_submitted = 0

    def attach(self, service):
        """Create this device's queues on ``service``'s CPU (device init)."""
        if self.state is not DeviceState.UNINITIALIZED:
            raise RuntimeError(f"{self!r} already {self.state.value}")
        for queue_index in range(self.n_queues):
            queue_id = ("enic", self.vm_id, self.device_id, queue_index)
            self.board.make_rx_queue(queue_id, service.cpu_id)
            service.adopt_queue(queue_id)
            self.queue_ids.append(queue_id)
        self.service = service
        self.state = DeviceState.READY
        return self.queue_ids

    def detach(self):
        """Tear the device down (VM destruction)."""
        self.state = DeviceState.REMOVED

    def submit(self, size_bytes, service_ns, kind=None, done=None, flow=None):
        """Send one I/O request from the VM's driver through this device."""
        if self.state is not DeviceState.READY:
            raise RuntimeError(f"{self!r} is not ready ({self.state.value})")
        if kind is None:
            kind = (PacketKind.NET_TX if self.kind == "net"
                    else PacketKind.STORAGE_SUBMIT)
        queue_id = self.queue_ids[self.packets_submitted % len(self.queue_ids)]
        request = IORequest(kind, size_bytes, queue_id,
                            service_ns=service_ns, done=done, flow=flow)
        self.packets_submitted += 1
        self.board.accelerator.submit(request)
        return request

    def __repr__(self):
        return (
            f"<ENic #{self.device_id} vm={self.vm_id} {self.kind} "
            f"{self.state.value} queues={len(self.queue_ids)}>"
        )
