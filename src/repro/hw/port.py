"""Latency + bandwidth links: PCIe lanes and the physical NIC port."""


class Link:
    """A serializing link with propagation latency.

    Transfers occupy the link back-to-back (``size / bandwidth``) and then
    propagate for ``latency_ns``.  ``transfer`` returns the delivery time;
    the caller schedules whatever happens at the far end.
    """

    def __init__(self, env, name, bandwidth_gbps, latency_ns, jitter_rng=None,
                 jitter_ns=0):
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.name = name
        self.bandwidth_gbps = float(bandwidth_gbps)
        self.latency_ns = int(latency_ns)
        self.jitter_ns = int(jitter_ns)
        self._jitter_rng = jitter_rng
        self._next_free_ns = 0
        self.transfers = 0
        self.bytes_moved = 0

    def serialization_ns(self, size_bytes):
        return int(size_bytes * 8 / self.bandwidth_gbps)

    def transfer(self, size_bytes, on_delivered=None):
        """Schedule a transfer; returns the absolute delivery time (ns)."""
        now = self.env.now
        start = max(now, self._next_free_ns)
        ser = self.serialization_ns(size_bytes)
        self._next_free_ns = start + ser
        jitter = 0
        if self._jitter_rng is not None and self.jitter_ns > 0:
            jitter = int(self._jitter_rng.exponential(self.jitter_ns))
        deliver_at = start + ser + self.latency_ns + jitter
        self.transfers += 1
        self.bytes_moved += size_bytes
        if on_delivered is not None:
            def _fire(_event):
                on_delivered()

            self.env.timeout(deliver_at - now).callbacks.append(_fire)
        return deliver_at

    def utilization(self, window_ns):
        """Fraction of ``window_ns`` the link spent serializing data."""
        if window_ns <= 0:
            return 0.0
        busy = self.bytes_moved * 8 / self.bandwidth_gbps
        return min(busy / window_ns, 1.0)

    def __repr__(self):
        return f"<Link {self.name!r} {self.bandwidth_gbps}Gbps lat={self.latency_ns}ns>"
