"""The SmartNIC board: CPUs, accelerator, probe, and links in one device.

Defaults follow Table 4 of the paper: 12 CPUs (8 reserved for data-plane
services, 4 for control-plane tasks in the static-partition baseline),
PCIe Gen3 x8 toward the host, and a 200 Gb/s physical network port.
"""

from dataclasses import dataclass, field

from repro.hw.accelerator import Accelerator, AcceleratorParams
from repro.hw.port import Link
from repro.hw.probe import HardwareWorkloadProbe
from repro.kernel import Kernel, KernelParams
from repro.sim import RandomStreams
from repro.sim.store import Store


@dataclass
class BoardConfig:
    total_cpus: int = 12
    dp_cpus: int = 8
    cp_cpus: int = 4
    pcie_bandwidth_gbps: float = 63.0     # Gen3 x8 effective
    pcie_latency_ns: int = 900
    nic_bandwidth_gbps: float = 200.0
    wire_latency_ns: int = 8_000          # one-way to the benchmark peer
    wire_jitter_ns: int = 600
    accelerator: AcceleratorParams = field(default_factory=AcceleratorParams)
    kernel: KernelParams = field(default_factory=KernelParams)

    def __post_init__(self):
        if self.dp_cpus + self.cp_cpus != self.total_cpus:
            raise ValueError(
                f"dp_cpus ({self.dp_cpus}) + cp_cpus ({self.cp_cpus}) "
                f"must equal total_cpus ({self.total_cpus})"
            )


class SmartNIC:
    """A complete SmartNIC device model.

    CPU ids 0..dp_cpus-1 are the data-plane partition; the remainder are
    the control-plane partition (in the static baseline).  The hardware
    workload probe exists on every board — a ~30-line accelerator feature —
    but stays inert until a scheduler installs an IRQ handler.
    """

    def __init__(self, env, config=None, rng=None, name="smartnic"):
        self.env = env
        self.config = config or BoardConfig()
        self.rng = rng or RandomStreams(seed=0)
        self.name = name

        self.kernel = Kernel(env, params=self.config.kernel, name=f"{name}-os")
        for cpu_id in range(self.config.total_cpus):
            self.kernel.add_cpu(cpu_id)

        self.hw_probe = HardwareWorkloadProbe(env)
        self.accelerator = Accelerator(env, params=self.config.accelerator,
                                       probe=self.hw_probe)
        env.metrics.add_source(f"board.{name}", self.metrics_snapshot)
        self.pcie = Link(env, f"{name}-pcie", self.config.pcie_bandwidth_gbps,
                         self.config.pcie_latency_ns)
        self.nic_port = Link(
            env, f"{name}-port", self.config.nic_bandwidth_gbps,
            self.config.wire_latency_ns,
            jitter_rng=self.rng.stream("wire-jitter"),
            jitter_ns=self.config.wire_jitter_ns,
        )

    @property
    def dp_cpu_ids(self):
        return list(range(self.config.dp_cpus))

    @property
    def cp_cpu_ids(self):
        return list(range(self.config.dp_cpus, self.config.total_cpus))

    def dp_cpu(self, index):
        return self.kernel.cpus[self.dp_cpu_ids[index]]

    def make_rx_queue(self, queue_id, dst_cpu_id, capacity=4096):
        """Create a shared rx queue and register it with the accelerator."""
        store = Store(self.env, capacity=capacity, name=f"rxq-{queue_id}")
        self.accelerator.attach_queue(queue_id, store, dst_cpu_id)
        return store

    def metrics_snapshot(self):
        """Board-level hardware stats for the metrics registry."""
        return {
            "probe_packets_inspected": self.hw_probe.packets_inspected,
            "probe_irqs_fired": self.hw_probe.irqs_fired,
            "accelerator_packets": self.accelerator.packets_processed,
        }

    def dp_utilization(self, window_ns, processing_ns_by_cpu):
        """Effective DP utilization: packet-processing time over the window."""
        if window_ns <= 0:
            return 0.0
        total = sum(processing_ns_by_cpu.values())
        return total / (window_ns * max(len(processing_ns_by_cpu), 1))

    def __repr__(self):
        return (
            f"<SmartNIC {self.name!r} cpus={self.config.total_cpus} "
            f"(dp={self.config.dp_cpus} cp={self.config.cp_cpus})>"
        )
