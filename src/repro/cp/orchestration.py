"""CSP orchestration: the cluster-manager-side request source.

Instance density (Section 2.1) scales both how many VMs a startup storm
creates and how many devices the control plane must manage.  Density 1.0
is the "normal" deployment (dedicated CPU resources); density 4.0 is the
high-density over-provisioned deployment where the paper observes the
8x CP degradation and 3.1x SLO breach of Figure 2.
"""

from repro.cp.device_mgmt import VMCreateRequest


class Orchestrator:
    """Issues VM-creation requests against a :class:`DeviceManager`."""

    def __init__(self, device_manager, density=1.0, base_storm_size=8):
        self.device_manager = device_manager
        self.env = device_manager.env
        self.density = float(density)
        self.base_storm_size = int(base_storm_size)
        self.requests = []

    @property
    def storm_size(self):
        """VMs per startup storm: proportional to instance density."""
        return max(int(round(self.base_storm_size * self.density)), 1)

    def launch_storm(self, size=None):
        """Issue a burst of VM-creation requests; returns the requests."""
        size = size if size is not None else self.storm_size
        batch = []
        for _ in range(size):
            request = VMCreateRequest(
                self.env, self.device_manager.params.devices_per_vm
            )
            self.device_manager.submit(request)
            batch.append(request)
        self.requests.extend(batch)
        return batch

    def launch_poisson(self, rate_per_s, duration_ns, rng):
        """Spawn a process issuing requests at ``rate_per_s`` on average."""
        env = self.env

        def _source():
            deadline = env.now + duration_ns
            while env.now < deadline:
                gap = rng.exponential(1e9 / rate_per_s)
                yield env.timeout(max(int(gap), 1))
                request = VMCreateRequest(
                    env, self.device_manager.params.devices_per_vm
                )
                self.device_manager.submit(request)
                self.requests.append(request)

        return env.process(_source(), name="orchestrator")

    def startup_times_ns(self):
        return [r.startup_time_ns for r in self.requests
                if r.startup_time_ns is not None]

    def cp_execution_times_ns(self):
        return [r.cp_execution_ns for r in self.requests
                if r.cp_execution_ns is not None]
