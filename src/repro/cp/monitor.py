"""Performance-monitoring CP tasks: periodic collection plus log writes."""

from repro.kernel import Compute, Sleep, Syscall
from repro.sim.units import MICROSECONDS, MILLISECONDS


class MonitorTask:
    """Collects SmartNIC metrics on a period and persists logs.

    Each cycle: read counters (user compute), write a log record (syscall
    with a short non-preemptible span).  A fleet of these provides the
    steady background CP load present in every production node.
    """

    def __init__(self, board, name, affinity, period_ns=10 * MILLISECONDS,
                 collect_ns=300 * MICROSECONDS, log_ns=150 * MICROSECONDS,
                 rng=None):
        self.board = board
        self.env = board.env
        self.name = name
        self.period_ns = int(period_ns)
        self.collect_ns = int(collect_ns)
        self.log_ns = int(log_ns)
        self.rng = rng or board.rng.stream(f"monitor-{name}")
        self.cycles = 0
        self.thread = board.kernel.spawn(name, self._body(),
                                         affinity=set(affinity))

    def _body(self):
        while True:
            jitter = self.rng.uniform(0.7, 1.3)
            yield Compute(int(self.collect_ns * jitter))
            yield Syscall(int(self.log_ns * jitter), name="log-write")
            self.cycles += 1
            yield Sleep(int(self.period_ns * self.rng.uniform(0.9, 1.1)))
