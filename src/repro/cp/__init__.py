"""Control-plane tasks.

CP tasks (Section 2.3) fall into three families, all modeled here:

* **device management** (:mod:`repro.cp.device_mgmt`) — the VM-creation
  workflow whose latency defines the VM-startup SLO: parse the request,
  initialize emulated devices under driver spinlocks (ms-scale
  non-preemptible routines), then notify QEMU;
* **performance monitoring** (:mod:`repro.cp.monitor`) — periodic metric
  collection and log writes, a steady source of syscalls;
* **CSP orchestration** (:mod:`repro.cp.orchestration`) — the request
  source issuing VM-create storms at a given instance density.

:mod:`repro.cp.task` provides the synthetic CP task generator (the paper's
``synth_cp`` benchmark) and the non-preemptible-routine duration sampler
calibrated to Figure 5.
"""

from repro.cp.device_mgmt import DeviceManager, DeviceMgmtParams, VMCreateRequest
from repro.cp.monitor import MonitorTask
from repro.cp.orchestration import Orchestrator
from repro.cp.task import (
    CPTaskParams,
    sample_nonpreemptible_ns,
    spawn_synth_cp,
    synthetic_cp_body,
)

__all__ = [
    "CPTaskParams",
    "DeviceManager",
    "DeviceMgmtParams",
    "MonitorTask",
    "Orchestrator",
    "VMCreateRequest",
    "sample_nonpreemptible_ns",
    "spawn_synth_cp",
    "synthetic_cp_body",
]
