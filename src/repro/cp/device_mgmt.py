"""Device-management CP tasks: the VM-creation workflow (Figure 1c).

A :class:`VMCreateRequest` walks the red-arrow path of the paper: the
cluster manager issues the request, a CP task parses it and initializes
each emulated device (vNIC + virtio-blk) under driver spinlocks, and QEMU
is then notified to instantiate the VM.  The measured *VM startup time* is
request-issue to instantiation-complete; the *CP task execution time* is
the device-initialization span.  Both are the Figure 2 / Figure 17
metrics.
"""

from dataclasses import dataclass
from itertools import count

from repro.kernel import Compute, KernelSection, LockAcquire, LockRelease, Syscall
from repro.sim.units import MICROSECONDS, MILLISECONDS

_vm_ids = count(1)


@dataclass
class DeviceMgmtParams:
    """Per-VM provisioning costs.

    Defaults model the Table 4 VM shape: one dual-queue virtio-net device
    and four virtio-blk devices, each needing user-space preparation plus a
    spinlock-protected driver initialization (a non-preemptible routine).
    """

    devices_per_vm: int = 5
    parse_ns: int = 1 * MILLISECONDS
    device_user_ns: int = 1_500 * MICROSECONDS
    device_lock_ns: int = 400 * MICROSECONDS       # register window, under a
                                                   # shared driver lock
    device_section_ns: int = 1_200 * MICROSECONDS  # per-VM non-preemptible
                                                   # kernel work (no shared lock)
    device_syscall_ns: int = 500 * MICROSECONDS
    qemu_instantiate_ns: int = 30 * MILLISECONDS   # host-side, off-SmartNIC
    startup_slo_ns: int = 250 * MILLISECONDS
    driver_lock_shards: int = 4                    # driver lock granularity


class VMCreateRequest:
    """One VM-creation request with its lifecycle timestamps."""

    def __init__(self, env, n_devices, issued_ns=None):
        self.vm_id = next(_vm_ids)
        self.env = env
        self.n_devices = n_devices
        self.t_issued = env.now if issued_ns is None else issued_ns
        self.t_cp_started = None
        self.t_devices_ready = None
        self.t_vm_started = None
        self.done = env.event()
        # Owning tenant id on multi-tenant boards (None elsewhere).
        self.tenant = None
        # Causal tracing: the vm-startup root span opens at issue time.
        self.span_id = None
        if env.spans.enabled:
            env.spans.vm_begin(self)

    @property
    def startup_time_ns(self):
        if self.t_vm_started is None:
            return None
        return self.t_vm_started - self.t_issued

    @property
    def cp_execution_ns(self):
        """Device-management CP execution span (queueing included)."""
        if self.t_devices_ready is None:
            return None
        return self.t_devices_ready - self.t_issued

    def __repr__(self):
        return f"<VMCreateRequest vm={self.vm_id} devices={self.n_devices}>"


class DeviceManager:
    """Runs device-initialization CP tasks for VM-creation requests."""

    def __init__(self, board, affinity, params=None, rng=None):
        self.board = board
        self.env = board.env
        self.affinity = set(affinity)
        self.params = params or DeviceMgmtParams()
        self.rng = rng or board.rng.stream("device-mgmt")
        # Driver locks shared across all requests (sharded per device class
        # and instance group, as real drivers do) — the contention point
        # that degrades CP execution superlinearly with instance density.
        self.driver_locks = [
            board.kernel.spinlock(name=f"drv-{shard}")
            for shard in range(self.params.driver_lock_shards)
        ]
        self.completed = []

    def submit(self, request, on_device_initialized=None):
        """Spawn the CP task that provisions ``request``'s devices.

        ``on_device_initialized(request, device_index)`` is invoked as each
        device finishes initialization — the host/eNIC layer uses it to
        materialize the actual data path (see :mod:`repro.hw.host`).
        """
        spans = self.env.spans
        if spans.enabled and request.span_id is not None:
            # Watch the provisioning thread *before* it is spawned so the
            # span tracker sees its very first sched_in.
            spans.vm_watch(request, f"devmgmt-vm{request.vm_id}")
        self.board.kernel.spawn(
            f"devmgmt-vm{request.vm_id}",
            self._provision_body(request, on_device_initialized),
            affinity=self.affinity,
        )
        return request

    def create_vm(self, n_devices=None):
        """Convenience: build and submit a request; returns it."""
        n_devices = n_devices or self.params.devices_per_vm
        return self.submit(VMCreateRequest(self.env, n_devices))

    def _provision_body(self, request, on_device_initialized=None):
        env = self.env
        params = self.params
        request.t_cp_started = env.now
        if env.spans.enabled and request.span_id is not None:
            env.spans.vm_cp_started(request)
        yield Compute(params.parse_ns)
        for device_index in range(request.n_devices):
            yield Compute(self._jitter(params.device_user_ns))
            # Short register-programming window under the shared driver
            # lock; the shard depends on the device instance, so concurrent
            # VM creations touch the shards in staggered order.
            shard = (request.vm_id + device_index) % len(self.driver_locks)
            lock = self.driver_locks[shard]
            yield LockAcquire(lock)
            yield KernelSection(self._jitter(params.device_lock_ns),
                                reason="device-init-lock")
            yield LockRelease(lock)
            # Longer per-VM initialization: non-preemptible but not shared.
            yield KernelSection(self._jitter(params.device_section_ns),
                                reason="device-init")
            yield Syscall(self._jitter(params.device_syscall_ns), name="dev-cfg")
            if on_device_initialized is not None:
                on_device_initialized(request, device_index)
        request.t_devices_ready = env.now
        if env.spans.enabled and request.span_id is not None:
            env.spans.vm_devices_ready(request)

        # Notify QEMU: instantiation happens host-side and consumes no
        # SmartNIC CPU; model it as a fixed latency before the VM is up.
        def _started(_event):
            request.t_vm_started = env.now
            if env.spans.enabled and request.span_id is not None:
                env.spans.vm_started(request)
            self.completed.append(request)
            if not request.done.triggered:
                request.done.succeed(request)

        env.timeout(params.qemu_instantiate_ns).callbacks.append(_started)

    def _jitter(self, base_ns, spread=0.2):
        low = base_ns * (1.0 - spread)
        high = base_ns * (1.0 + spread)
        return int(self.rng.uniform(low, high))
