"""Synthetic CP task bodies (the paper's ``synth_cp`` benchmark).

Each task interleaves preemptible user-space computation with syscalls
whose kernel halves are non-preemptible, matching the production census of
Section 3.2: when co-scheduled naively with DP services these are exactly
the routines that produce ms-scale latency spikes.
"""

from dataclasses import dataclass

from repro.kernel import Compute, KernelSection, LockAcquire, LockRelease, Sleep, Syscall
from repro.sim.units import MICROSECONDS, MILLISECONDS


@dataclass
class CPTaskParams:
    """Shape of one synthetic CP task.

    ``total_ns`` is the task's unloaded execution time (the paper tunes
    synth_cp to 50 ms).  ``sleep_fraction`` is the share of that spent
    blocked on device/command responses rather than on-CPU — CP tasks are
    I/O- and syscall-heavy, so a meaningful fraction of their wall time
    holds no CPU.
    """

    total_ns: int = 50 * MILLISECONDS     # paper: 50 ms per synth_cp task
    kernel_fraction: float = 0.35         # share of time inside the kernel
    sleep_fraction: float = 0.35          # share blocked on device waits
    user_chunk_ns: int = 800 * MICROSECONDS
    syscall_overhead_ns: int = 600


def sample_nonpreemptible_ns(rng, long_tail=True):
    """Sample a non-preemptible routine duration.

    Calibrated to Figure 5: among routines exceeding 1 ms, 94.5 % last
    1-5 ms, the remainder stretches to a 67 ms maximum.  Routines below
    1 ms (the common case, not shown in the figure) dominate by count.
    """
    if rng.random() < 0.82 or not long_tail:
        # Sub-millisecond kernel work: the overwhelmingly common case.
        return int(rng.uniform(20 * MICROSECONDS, 1 * MILLISECONDS))
    if rng.random() < 0.945:
        return int(rng.uniform(1 * MILLISECONDS, 5 * MILLISECONDS))
    # Heavy tail, hard-capped at the 67 ms production maximum.
    tail = rng.lognormal(mean=2.0, sigma=0.9) * MILLISECONDS
    return int(min(max(tail, 5 * MILLISECONDS), 67 * MILLISECONDS))


def synthetic_cp_body(rng, params=None, lock=None, on_done=None):
    """Generator body for one synthetic CP task.

    ``lock``, when given, wraps each kernel section in a driver spinlock so
    concurrent tasks contend realistically.  ``on_done`` is invoked with no
    arguments right before the body returns (used for latency accounting).
    """
    params = params or CPTaskParams()
    remaining = params.total_ns
    sleep_budget = int(params.total_ns * params.sleep_fraction)
    remaining -= sleep_budget
    phases = max(remaining // max(params.user_chunk_ns, 1), 1)
    sleep_chunk_ns = sleep_budget // phases if phases else 0
    while remaining > 0:
        user_ns = min(int(rng.exponential(params.user_chunk_ns)) + 1, remaining)
        yield Compute(user_ns)
        remaining -= user_ns
        if remaining <= 0:
            break
        section_ns = min(sample_nonpreemptible_ns(rng), remaining)
        if lock is not None:
            yield LockAcquire(lock)
            yield KernelSection(section_ns, reason="driver")
            yield LockRelease(lock)
        else:
            yield Syscall(section_ns, name="cp-op",
                          entry_ns=params.syscall_overhead_ns,
                          exit_ns=params.syscall_overhead_ns)
        remaining -= section_ns
        if sleep_chunk_ns > 0:
            # Waiting on a device/command response; holds no CPU.
            yield Sleep(int(rng.uniform(0.5, 1.5) * sleep_chunk_ns))
    if on_done is not None:
        on_done()


def spawn_synth_cp(kernel, env, rng, n_tasks, affinity, params=None,
                   locks=None, recorder=None):
    """Spawn ``n_tasks`` concurrent synth_cp tasks; returns their threads.

    ``recorder`` (a callable taking the task's execution time in ns) is
    invoked as each task completes — this feeds the Figure 11 metric.
    """
    params = params or CPTaskParams()
    threads = []
    for index in range(n_tasks):
        start_ns = env.now
        lock = None
        if locks:
            lock = locks[index % len(locks)]

        def make_on_done(started=start_ns):
            if recorder is None:
                return None

            def _record():
                recorder(env.now - started)

            return _record

        body = synthetic_cp_body(rng, params=params, lock=lock,
                                 on_done=make_on_done())
        threads.append(
            kernel.spawn(f"synth-cp-{index}", body, affinity=set(affinity))
        )
    return threads
