"""On-demand instruction-level auditing (Section 8).

Hybrid virtualization makes vCPU contexts available for more than
co-scheduling: migrating a target application onto an *audit vCPU* (plain
CPU-affinity change, no application cooperation) puts every instruction it
issues under the hypervisor's eye.  When auditing ends, the application is
transparently migrated back to physical CPUs — no persistent overhead.

The model records one :class:`AuditRecord` per issued instruction with its
timestamp, kind, and duration; privileged instructions (kernel sections,
syscalls, lock operations) are flagged, matching the paper's
"monitor, log, and intercept privileged instructions" use case.
"""

from dataclasses import dataclass, field

from repro.kernel.instructions import (
    KernelSection,
    LockAcquire,
    LockRelease,
    Syscall,
)

PRIVILEGED_KINDS = (KernelSection, Syscall, LockAcquire, LockRelease)


@dataclass(frozen=True)
class AuditRecord:
    """One instruction observed inside the audit domain."""

    ts_ns: int
    thread_name: str
    kind: str
    duration_ns: int
    privileged: bool


@dataclass
class AuditSession:
    """A live or finished audit of one thread."""

    thread: object
    original_affinity: object
    vcpu_id: object
    started_ns: int
    ended_ns: int = None
    records: list = field(default_factory=list)
    intercepted: list = field(default_factory=list)

    @property
    def active(self):
        return self.ended_ns is None

    def privileged_records(self):
        return [record for record in self.records if record.privileged]

    def summary(self):
        return {
            "instructions": len(self.records),
            "privileged": len(self.privileged_records()),
            "intercepted": len(self.intercepted),
            "duration_ns": (self.ended_ns or 0) - self.started_ns,
        }


class InstructionAuditor:
    """Runs audit sessions on a Tai Chi deployment's vCPUs."""

    def __init__(self, taichi, interceptor=None):
        """``interceptor(thread, instruction) -> bool`` may veto privileged
        instructions; vetoed ones are recorded but still executed (the
        model audits, it does not fault-inject)."""
        self.taichi = taichi
        self.kernel = taichi.board.kernel
        self.env = taichi.env
        self.interceptor = interceptor
        self._sessions = {}
        self._seen = {}

    def begin(self, thread, vcpu_index=0):
        """Migrate ``thread`` into the audit domain; returns the session."""
        if thread.tid in self._sessions:
            raise ValueError(f"{thread.name!r} is already being audited")
        vcpu = self.taichi.vcpus[vcpu_index]
        session = AuditSession(
            thread=thread,
            original_affinity=(set(thread.affinity)
                               if thread.affinity is not None else None),
            vcpu_id=vcpu.cpu_id,
            started_ns=self.env.now,
        )
        self._sessions[thread.tid] = session
        self._seen[thread.tid] = None
        if vcpu.instruction_hook is None:
            vcpu.instruction_hook = self._observe
        self.kernel.set_affinity(thread, {vcpu.cpu_id})
        return session

    def end(self, thread):
        """Leave the audit domain: restore affinity, close the session."""
        session = self._sessions.pop(thread.tid, None)
        if session is None:
            raise KeyError(f"{thread.name!r} is not being audited")
        self._seen.pop(thread.tid, None)
        session.ended_ns = self.env.now
        restored = session.original_affinity
        self.kernel.set_affinity(
            thread,
            restored if restored is not None else set(self.kernel.cpus),
        )
        return session

    def session_for(self, thread):
        return self._sessions.get(thread.tid)

    def _observe(self, thread, instruction):
        session = self._sessions.get(thread.tid)
        if session is None:
            return
        # A preempted instruction is re-issued on resume; record it once.
        if self._seen.get(thread.tid) is instruction:
            return
        self._seen[thread.tid] = instruction
        privileged = isinstance(instruction, PRIVILEGED_KINDS)
        record = AuditRecord(
            ts_ns=self.env.now,
            thread_name=thread.name,
            kind=type(instruction).__name__,
            duration_ns=int(getattr(instruction, "ns", 0)),
            privileged=privileged,
        )
        session.records.append(record)
        if privileged and self.interceptor is not None:
            if self.interceptor(thread, instruction):
                session.intercepted.append(record)
