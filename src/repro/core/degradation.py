"""Graceful degradation: keep both SLOs alive when the substrate misbehaves.

Production SmartNICs lose IPIs, run probes that misfire, and take CPUs
offline under foot; the scheduler must degrade, not deadlock.  Four
mechanisms, each cheap enough to run always-on, each leaving a traced
``fault.handled`` event (the recovery half that fault-aware invariant
checking looks for):

* **Grant watchdog** — ages out dispatch *reservations* stranded by a CPU
  that died between ``raise_softirq`` and the handler running, and
  force-revokes backing grants that outlive any legal slice.
* **Probe-health monitor** — detects a dark or lying hardware workload
  probe (no IRQs while slices expire under traffic, or a sustained
  false-positive exit rate) and demotes the scheduler to software-only
  probing with a tightened slice cap; recovers after a cooldown.
* **IPI retry** — bounded retry/backoff for cross-boundary IPIs the
  orchestrator's delivery path reports dropped (the difference between a
  CP pCPU that reboots and one that stays down forever).
* **SLO guard** — tracks per-service rx-queue waits; under a sustained
  tail breach it shields the breaching DP CPUs from donation for a hold
  period (revoking any active grant), and can escalate to a
  ``repartition`` callback when the breach is fleet-wide.
"""

from dataclasses import dataclass

from repro.metrics.stats import percentile
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.virt.vmexit import VMExitReason


@dataclass
class DegradationConfig:
    """Tunables for all four degradation mechanisms."""

    # Grant watchdog.
    watchdog_interval_ns: int = 250 * MICROSECONDS
    reserve_timeout_ns: int = 200 * MICROSECONDS
    grant_timeout_ns: int = 2_600 * MICROSECONDS  # > 2x max slice + slack

    # Probe-health monitor.
    probe_interval_ns: int = 20 * MILLISECONDS
    probe_min_exits: int = 4
    probe_fp_rate: float = 0.5            # premature / probe exits to demote
    probe_cooldown_ns: int = 100 * MILLISECONDS
    degraded_max_slice_ns: int = 100 * MICROSECONDS

    # IPI retry.
    ipi_retry_limit: int = 5
    ipi_retry_backoff_ns: int = 20 * MICROSECONDS

    # SLO guard.
    slo_interval_ns: int = 20 * MILLISECONDS
    dp_tail_slo_ns: int = 150 * MICROSECONDS
    slo_min_samples: int = 16
    slo_sustain: int = 2                  # consecutive breaching intervals
    slo_hold_ns: int = 50 * MILLISECONDS
    slo_escalate_fraction: float = 0.5    # breaching-service share to repartition


class DegradationManager:
    """Installs the degradation mechanisms on one Tai Chi instance."""

    def __init__(self, taichi, config=None, repartition=None):
        self.taichi = taichi
        self.config = config or DegradationConfig()
        self.env = taichi.env
        self.kernel = taichi.board.kernel
        self.scheduler = taichi.scheduler
        self.repartition = repartition

        self.installed = False
        self.watchdog_requeues = 0
        self.watchdog_revokes = 0
        self.probe_demotions = 0
        self.probe_promotions = 0
        self.ipi_retries = 0
        self.ipi_retry_delivered = 0
        self.ipi_retry_exhausted = 0
        self.slo_interventions = 0
        self.repartitions = 0

    def install(self):
        if self.installed:
            raise RuntimeError("degradation manager already installed")
        self.installed = True
        env = self.env
        env.process(self._watchdog_loop(), name="degradation-watchdog")
        if self.scheduler.hw_probe is not None:
            env.process(self._probe_monitor_loop(),
                        name="degradation-probe-monitor")
        env.process(self._slo_guard_loop(), name="degradation-slo-guard")
        self.kernel.ipi.add_drop_listener(self._on_ipi_drop)
        env.metrics.add_source("core.degradation", self.stats)
        return self

    # -- Trace plumbing ----------------------------------------------------------

    def _handled(self, cpu_id, mechanism, **detail):
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.record(self.env.now, cpu_id, "fault.handled",
                          mechanism=mechanism, **detail)

    # -- Grant watchdog ----------------------------------------------------------

    def _watchdog_loop(self):
        cfg = self.config
        while True:
            yield self.env.timeout(cfg.watchdog_interval_ns)
            now = self.env.now
            for vcpu, since_ns in list(self.scheduler.reserved_since().items()):
                if now - since_ns <= cfg.reserve_timeout_ns:
                    continue
                if self.scheduler.requeue_reservation(vcpu):
                    self.watchdog_requeues += 1
                    self._handled(vcpu.cpu_id, "watchdog_requeue",
                                  age_ns=now - since_ns)
            for cpu_id, grant in list(self.scheduler.active.items()):
                if not grant.active:
                    continue
                if now - grant.granted_at_ns <= cfg.grant_timeout_ns:
                    continue
                grant.request_revoke(VMExitReason.EXTERNAL)
                self.watchdog_revokes += 1
                self._handled(cpu_id, "watchdog_revoke",
                              vcpu=grant.vcpu.cpu_id,
                              age_ns=now - grant.granted_at_ns)

    # -- Probe-health monitor -----------------------------------------------------

    def _probe_monitor_loop(self):
        cfg = self.config
        scheduler = self.scheduler
        probe = scheduler.hw_probe

        def snapshot():
            return (probe.irqs_fired, probe.packets_inspected,
                    scheduler.exits_by_reason[VMExitReason.TIMESLICE_EXPIRED],
                    scheduler.exits_by_reason[VMExitReason.HW_PROBE_IRQ],
                    scheduler.premature_exits)

        last = snapshot()
        while True:
            yield self.env.timeout(cfg.probe_interval_ns)
            current = snapshot()
            d_irqs, d_packets, d_expired, d_probe_exits, d_premature = (
                current[i] - last[i] for i in range(5))
            last = current
            dark = (d_irqs == 0 and d_packets > 0
                    and d_expired >= cfg.probe_min_exits)
            lying = (d_probe_exits >= cfg.probe_min_exits
                     and d_premature / max(d_probe_exits, 1)
                     >= cfg.probe_fp_rate)
            if not (dark or lying):
                continue
            scheduler.degraded_max_slice_ns = cfg.degraded_max_slice_ns
            scheduler.set_probe_degraded(True)
            self.probe_demotions += 1
            self._handled("-", "probe_demote",
                          cause="dark" if dark else "false_positives",
                          irqs=d_irqs, expired=d_expired,
                          premature=d_premature)
            yield self.env.timeout(cfg.probe_cooldown_ns)
            scheduler.set_probe_degraded(False)
            self.probe_promotions += 1
            self._handled("-", "probe_promote")
            last = snapshot()

    # -- IPI retry ----------------------------------------------------------------

    def _on_ipi_drop(self, dst_cpu, vector, payload, latency_ns):
        self.env.process(
            self._retry_chain(dst_cpu, vector, payload, latency_ns),
            name=f"ipi-retry-{dst_cpu.cpu_id}")

    def _retry_chain(self, dst_cpu, vector, payload, latency_ns):
        cfg = self.config
        for attempt in range(1, cfg.ipi_retry_limit + 1):
            yield self.env.timeout(cfg.ipi_retry_backoff_ns * attempt)
            self.ipi_retries += 1
            delivered = self.kernel.ipi.deliver(
                dst_cpu, vector, payload, latency_ns=latency_ns,
                notify_drop=False)
            if delivered:
                self.ipi_retry_delivered += 1
                self._handled(dst_cpu.cpu_id, "ipi_retry",
                              vector=vector.value, attempt=attempt)
                return
        self.ipi_retry_exhausted += 1
        self._handled(dst_cpu.cpu_id, "ipi_retry_exhausted",
                      vector=vector.value, attempts=cfg.ipi_retry_limit)

    # -- SLO guard ------------------------------------------------------------------

    def _services(self):
        return list(self.scheduler._services_by_cpu.values())

    def _slo_guard_loop(self):
        cfg = self.config
        breaching_streak = {}          # cpu_id -> consecutive intervals
        escalated = False
        while True:
            yield self.env.timeout(cfg.slo_interval_ns)
            services = self._services()
            breaching_now = 0
            for service in services:
                waits = service.recent_queue_wait_ns()
                if len(waits) < cfg.slo_min_samples:
                    breaching_streak[service.cpu_id] = 0
                    continue
                p99 = percentile(waits, 99)
                if p99 <= cfg.dp_tail_slo_ns:
                    breaching_streak[service.cpu_id] = 0
                    continue
                breaching_now += 1
                streak = breaching_streak.get(service.cpu_id, 0) + 1
                breaching_streak[service.cpu_id] = streak
                if streak < cfg.slo_sustain:
                    continue
                breaching_streak[service.cpu_id] = 0
                self._protect(service, p99)
            if (not escalated and self.repartition is not None and services
                    and breaching_now / len(services)
                    >= cfg.slo_escalate_fraction):
                escalated = True
                self.repartitions += 1
                self._handled("-", "repartition",
                              breaching=breaching_now,
                              services=len(services))
                self.repartition()

    def _protect(self, service, p99_ns):
        cfg = self.config
        cpu_id = service.cpu_id
        self.scheduler.block_donation(cpu_id, self.env.now + cfg.slo_hold_ns)
        grant = self.scheduler.active.get(cpu_id)
        if grant is not None and grant.active:
            grant.request_revoke(VMExitReason.EXTERNAL)
        service.reset_queue_wait_window()
        self.slo_interventions += 1
        self._handled(cpu_id, "slo_guard", p99_ns=int(p99_ns),
                      hold_ns=cfg.slo_hold_ns)

    # -- Reporting --------------------------------------------------------------------

    def stats(self):
        return {
            "watchdog_requeues": self.watchdog_requeues,
            "watchdog_revokes": self.watchdog_revokes,
            "probe_demotions": self.probe_demotions,
            "probe_promotions": self.probe_promotions,
            "ipi_retries": self.ipi_retries,
            "ipi_retry_delivered": self.ipi_retry_delivered,
            "ipi_retry_exhausted": self.ipi_retry_exhausted,
            "slo_interventions": self.slo_interventions,
            "repartitions": self.repartitions,
            "probe_degraded": self.scheduler.probe_degraded,
        }

    def __repr__(self):
        state = "installed" if self.installed else "pending"
        return f"<DegradationManager {state}>"
