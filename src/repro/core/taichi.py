"""The Tai Chi deployment object: wires the framework onto a SmartNIC."""

from repro.core.config import TaiChiConfig
from repro.core.ipi_orchestrator import UnifiedIPIOrchestrator
from repro.core.sw_probe import SoftwareWorkloadProbe
from repro.core.vcpu_scheduler import VCPUScheduler


class TaiChi:
    """Hybrid-virtualization scheduler for one SmartNIC board.

    Usage mirrors the production deployment recipe of Section 5: install
    the framework (creates/boots vCPUs, hooks IPIs, registers the softirq
    handler and the hardware-probe IRQ handler), attach each DP service
    (the <10-line ``notify_idle_DP_CPU_cycles`` integration), then bind CP
    tasks to :meth:`cp_affinity` — standard affinity, zero CP code change.
    """

    def __init__(self, board, config=None):
        self.board = board
        self.env = board.env
        self.config = config or TaiChiConfig()

        self.scheduler = VCPUScheduler(board, self.config)
        self.sw_probe = SoftwareWorkloadProbe(self.config, self.scheduler)
        self.scheduler.sw_probe = self.sw_probe
        self.orchestrator = UnifiedIPIOrchestrator(
            board.kernel, self.scheduler, self.config.costs,
            posted_interrupts=self.config.posted_interrupts,
        )
        self.vcpus = []
        self.installed = False
        self.degradation = None
        self.tenancy = None

    def install(self, n_vcpus=None):
        """Deploy the framework; returns the created vCPUs."""
        if self.installed:
            raise RuntimeError("Tai Chi is already installed on this board")
        self.scheduler.install()
        self.orchestrator.install()
        self.env.metrics.add_source("core.sw_probe", self.sw_probe.stats)
        count = n_vcpus if n_vcpus is not None else self.config.n_vcpus
        self.vcpus = self.orchestrator.register_vcpus(count)
        self.installed = True
        return self.vcpus

    def enable_degradation(self, config=None, repartition=None):
        """Install the graceful-degradation layer (after :meth:`install`)."""
        if not self.installed:
            raise RuntimeError("install Tai Chi before enabling degradation")
        if self.degradation is not None:
            raise RuntimeError("degradation layer already enabled")
        from repro.core.degradation import DegradationManager
        self.degradation = DegradationManager(
            self, config=config, repartition=repartition).install()
        return self.degradation

    def attach_tenancy(self, tenancy):
        """Make the scheduler tenant-aware (called by TenancyManager)."""
        self.tenancy = tenancy
        self.scheduler.tenancy = tenancy

    def attach_dp_service(self, service):
        """Hook a DP service's idle notifications into the framework."""
        service.attach_idle_notifier(self.sw_probe)
        service.probe_fusion = self.config.probe_fusion
        self.scheduler.register_service(service)

    def cp_affinity(self):
        """CPU set for CP tasks: all vCPUs plus the dedicated CP pCPUs."""
        return {vcpu.cpu_id for vcpu in self.vcpus} | set(self.board.cp_cpu_ids)

    def vcpu_ids(self):
        return [vcpu.cpu_id for vcpu in self.vcpus]

    def stats(self):
        """Aggregate framework statistics for experiment reports."""
        stats = {
            "scheduler": self.scheduler.stats(),
            "sw_probe": self.sw_probe.stats(),
            "ipi": self.orchestrator.stats(),
            "vcpus": {
                vcpu.cpu_id: {
                    "busy_ns": vcpu.busy_ns,
                    "backed_ns": vcpu.backed_ns,
                    "frozen_ns": vcpu.frozen_ns,
                    "revocations": vcpu.revocations,
                }
                for vcpu in self.vcpus
            },
        }
        if self.degradation is not None:
            stats["degradation"] = self.degradation.stats()
        if self.tenancy is not None:
            stats["tenants"] = self.tenancy.stats()
        return stats

    def __repr__(self):
        state = "installed" if self.installed else "pending"
        return f"<TaiChi {state} vcpus={len(self.vcpus)}>"
