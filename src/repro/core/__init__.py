"""Tai Chi: the paper's primary contribution.

The framework co-schedules control-plane tasks and data-plane services on
SmartNIC CPUs through hybrid virtualization (Section 4):

* :class:`~repro.core.vcpu_scheduler.VCPUScheduler` — softirq-based
  pCPU/vCPU context switching with an adaptive time slice and lock-safe
  CP-to-DP preemption;
* :class:`~repro.core.sw_probe.SoftwareWorkloadProbe` — the adaptive
  empty-poll-threshold yielding algorithm hooked into DP poll loops;
* :class:`~repro.core.ipi_orchestrator.UnifiedIPIOrchestrator` — IPI
  interception/routing that lets vCPUs live in the OS as native CPUs;
* :class:`~repro.core.taichi.TaiChi` — the deployment object wiring all of
  the above onto a :class:`~repro.hw.board.SmartNIC`.

Typical use::

    board = SmartNIC(env)
    taichi = TaiChi(board)
    taichi.install()
    for service in deploy_dp_services(board, "net"):
        taichi.attach_dp_service(service)
    # CP tasks now simply bind to taichi.cp_affinity()
"""

from repro.core.audit import AuditRecord, AuditSession, InstructionAuditor
from repro.core.config import TaiChiConfig
from repro.core.degradation import DegradationConfig, DegradationManager
from repro.core.ipi_orchestrator import UnifiedIPIOrchestrator
from repro.core.preemptible_context import PreemptibleKernelContext
from repro.core.repartition import DynamicRepartitioner
from repro.core.sw_probe import SoftwareWorkloadProbe
from repro.core.taichi import TaiChi
from repro.core.vcpu_scheduler import VCPUScheduler

__all__ = [
    "AuditRecord",
    "AuditSession",
    "DegradationConfig",
    "DegradationManager",
    "DynamicRepartitioner",
    "InstructionAuditor",
    "PreemptibleKernelContext",
    "SoftwareWorkloadProbe",
    "TaiChi",
    "TaiChiConfig",
    "UnifiedIPIOrchestrator",
    "VCPUScheduler",
]
