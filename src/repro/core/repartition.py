"""Dynamic CP/DP repartitioning (Section 8, "Enhanced data-plane performance").

In low-density deployments the control plane needs fewer dedicated CPUs;
Tai Chi can reassign CP pCPUs to the data plane at runtime and let CP work
ride on harvested idle DP cycles instead.  The paper's proof of concept
reallocates 50 % of the CP partition and gains 39 % peak IOPS / 43 % CPS
with CP performance held at baseline.

The repartitioner keeps its own view of which physical CPUs belong to each
plane (it mutates the live system, not the immutable board config), spawns
or retires DP services, and keeps the vCPU scheduler's CP-fallback list in
sync.
"""

from repro.dp.service import DPService


class DynamicRepartitioner:
    """Moves physical CPUs between the CP and DP partitions at runtime."""

    def __init__(self, deployment):
        if deployment.taichi is None:
            raise ValueError("dynamic repartitioning requires a Tai Chi deployment")
        self.deployment = deployment
        self.board = deployment.board
        self.taichi = deployment.taichi
        self.cp_cpus = list(deployment.board.cp_cpu_ids)
        self.dp_cpus = [service.cpu_id for service in deployment.services]
        self.moves = []

    def cp_to_dp(self, count=1, queues_per_cpu=1):
        """Reassign ``count`` CP pCPUs to the data plane.

        Each moved CPU gets a fresh DP service (with its own accelerator
        queues) wired into the Tai Chi probes.  Returns the new services.
        """
        if count >= len(self.cp_cpus):
            raise ValueError(
                f"cannot move {count} CPUs: the CP partition must keep at "
                f"least one dedicated pCPU (has {len(self.cp_cpus)})"
            )
        new_services = []
        for _ in range(count):
            cpu_id = self.cp_cpus.pop()  # take from the partition's tail
            index = len(self.dp_cpus)
            queue_ids = []
            for qidx in range(queues_per_cpu):
                queue_id = (self.deployment.dp_kind, index, qidx)
                self.board.make_rx_queue(queue_id, cpu_id)
                queue_ids.append(queue_id)
            service = DPService(
                self.board, f"dp-{self.deployment.dp_kind}{index}", cpu_id,
                queue_ids, params=self.deployment.dp_params,
                kind=self.deployment.dp_kind,
            )
            self.taichi.attach_dp_service(service)
            self.deployment.services.append(service)
            if self.taichi.tenancy is not None:
                self.taichi.tenancy.adopt_service(service)
            self.dp_cpus.append(cpu_id)
            self.moves.append(("cp->dp", cpu_id))
            new_services.append(service)
        self._sync()
        return new_services

    def dp_to_cp(self, count=1):
        """Return ``count`` data-plane CPUs to the CP partition.

        Retired services' queues are adopted by the remaining DP services
        so no traffic is stranded.  Returns the freed CPU ids.
        """
        if count >= len(self.dp_cpus):
            raise ValueError("the DP partition must keep at least one CPU")
        freed = []
        for _ in range(count):
            service = self.deployment.services.pop()
            cpu_id = self.dp_cpus.pop()
            assert service.cpu_id == cpu_id
            survivor = self.deployment.services[0]
            for queue_id in list(service.queue_ids):
                survivor.adopt_queue(queue_id)
            service.shutdown()
            self.taichi.scheduler.unregister_service(service)
            if self.taichi.tenancy is not None:
                self.taichi.tenancy.release_service(service)
            self.cp_cpus.append(cpu_id)
            self.moves.append(("dp->cp", cpu_id))
            freed.append(cpu_id)
        self._sync()
        return freed

    def _sync(self):
        """Propagate the new partition to the scheduler and CP affinity."""
        self.taichi.scheduler.set_cp_pcpus(self.cp_cpus)
        affinity = set(self.taichi.vcpu_ids()) | set(self.cp_cpus)
        self.deployment.cp_affinity = affinity

    def __repr__(self):
        return (
            f"<DynamicRepartitioner dp={len(self.dp_cpus)} "
            f"cp={len(self.cp_cpus)} moves={len(self.moves)}>"
        )
