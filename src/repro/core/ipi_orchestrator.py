"""The unified IPI orchestrator (Section 4.2, Figure 8).

Hooks the kernel's IPI send path (the ``x2apic_send_IPI`` analogue) and
routes every IPI according to the source and destination CPU kinds:

* **source vCPU** — a VM-exit is charged before the IPI is reissued;
* **destination pCPU** — delivered through the ordinary MSR-write path;
* **destination running vCPU** — injected directly (posted interrupts);
* **destination sleeping vCPU** — the vCPU is woken (marked runnable with
  the scheduler) and the interrupt delivered once it is backed.

It also owns vCPU registration: vCPUs are created as *offline* native
CPUs, then onlined through INIT/STARTUP boot IPIs that this orchestrator
routes to them — after which standard affinity binds CP tasks to them
with zero code modifications (Figure 8a).
"""

from repro.kernel.ipi import IPIVector
from repro.virt.vcpu import VirtualCPU


class UnifiedIPIOrchestrator:
    """Intercepts and routes IPIs across the pCPU/vCPU boundary."""

    def __init__(self, kernel, scheduler, costs, posted_interrupts=True):
        self.kernel = kernel
        self.scheduler = scheduler
        self.costs = costs
        self.posted_interrupts = posted_interrupts

        self.routed_to_vcpu = 0
        self.routed_to_pcpu = 0
        self.source_exits = 0
        self.vcpu_wakeups = 0

    def install(self):
        self.kernel.ipi.set_send_hook(self.route)
        self.kernel.env.metrics.add_source("core.ipi_orchestrator", self.stats)

    def uninstall(self):
        self.kernel.ipi.clear_send_hook()

    # -- vCPU registration (Figure 8a) -------------------------------------------------

    def register_vcpus(self, count, work_tax=1.0, id_prefix="v"):
        """Create ``count`` vCPUs as offline native CPUs and boot them.

        Returns the new :class:`VirtualCPU` objects once their boot IPIs
        are in flight (they come online after the boot delay).
        """
        vcpus = []
        for index in range(count):
            vcpu = VirtualCPU(
                self.kernel, f"{id_prefix}{index}", online=False,
                lapic_id=f"lapic-{id_prefix}{index}", work_tax=work_tax,
            )
            self.kernel.register_cpu(vcpu)
            self.scheduler.add_vcpu(vcpu)
            vcpus.append(vcpu)
        for vcpu in vcpus:
            self.kernel.boot_cpu(vcpu.cpu_id)
        return vcpus

    # -- IPI routing (Figure 8b) ----------------------------------------------------------

    def route(self, src_cpu, dst_cpu, vector, payload):
        """The send hook; returns True when the IPI was handled here."""
        extra_latency = 0
        source_exit = isinstance(src_cpu, VirtualCPU) and src_cpu.is_backed
        if source_exit:
            # Source phase: a guest-initiated IPI VM-exits, the scheduler
            # reissues it, and the vCPU re-enters — modeled as added latency.
            self.source_exits += 1
            extra_latency += self.costs.ipi_source_exit_ns

        if not isinstance(dst_cpu, VirtualCPU):
            self.routed_to_pcpu += 1
            self._trace_route(src_cpu, dst_cpu, vector, "pcpu", source_exit)
            if extra_latency == 0:
                return False  # plain pCPU->pCPU: default MSR-write path
            self.kernel.ipi.deliver(
                dst_cpu, vector, payload,
                latency_ns=self.kernel.ipi.latency_ns + extra_latency,
            )
            return True

        # Destination phase: vCPU target.
        self.routed_to_vcpu += 1
        if vector in (IPIVector.INIT, IPIVector.STARTUP):
            self._trace_route(src_cpu, dst_cpu, vector, "boot", source_exit)
            self.kernel.ipi.deliver(
                dst_cpu, vector, payload,
                latency_ns=self.kernel.ipi.latency_ns + extra_latency,
            )
            return True

        if dst_cpu.is_backed and self.posted_interrupts:
            # Running vCPU: inject without a VM-exit.
            latency = self.costs.posted_interrupt_inject_ns + extra_latency
            self._trace_route(src_cpu, dst_cpu, vector, "posted", source_exit)
        else:
            latency = self.kernel.ipi.latency_ns + extra_latency
            if dst_cpu.online and not dst_cpu.is_backed:
                # Sleeping vCPU: wake it so the interrupt can be handled.
                self.vcpu_wakeups += 1
                self._trace_route(src_cpu, dst_cpu, vector, "wake",
                                  source_exit)
                self.scheduler._on_vcpu_work(dst_cpu)
            else:
                self._trace_route(src_cpu, dst_cpu, vector, "inject",
                                  source_exit)
        self.kernel.ipi.deliver(dst_cpu, vector, payload, latency_ns=latency)
        return True

    def _trace_route(self, src_cpu, dst_cpu, vector, decision, source_exit):
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.record(self.kernel.env.now,
                          getattr(src_cpu, "cpu_id", "-"), "ipi_route",
                          dst=dst_cpu.cpu_id, vector=vector.value,
                          decision=decision, source_exit=source_exit)

    def stats(self):
        return {
            "routed_to_vcpu": self.routed_to_vcpu,
            "routed_to_pcpu": self.routed_to_pcpu,
            "source_exits": self.source_exits,
            "vcpu_wakeups": self.vcpu_wakeups,
        }
