"""The vCPU scheduler: softirq-based context switching (Section 4.1).

When the software workload probe reports an idle DP CPU, the scheduler
picks a runnable vCPU round-robin and raises the dedicated
``TAICHI_VCPU`` softirq on that CPU.  The softirq handler — running on the
idle CPU's own executor — performs VM-enter, lends the physical CPU to the
vCPU for one adaptive time slice, and takes it back on whichever happens
first: slice expiry, a hardware-probe preempt IRQ, or the vCPU halting.

Exit reasons drive two feedback loops: the per-vCPU adaptive time slice
(double on expiry, reset on probe IRQ) and — through the software probe —
the per-service empty-poll threshold.  Lock-safe CP-to-DP preemption
(immediately re-backing a preempted lock-holder elsewhere) guarantees
forward progress for spinlock owners.
"""

from collections import deque

from repro.hw.probe import CpuIoState
from repro.kernel.softirq import SoftirqVector
from repro.virt.grant import BackingGrant
from repro.virt.vmexit import VMExitReason


class VCPUScheduler:
    """Maps runnable vCPUs onto idle physical CPUs."""

    def __init__(self, board, config):
        self.board = board
        self.env = board.env
        self.config = config
        self.kernel = board.kernel
        self.hw_probe = board.hw_probe if config.hw_probe_enabled else None

        self.vcpus = []
        self._runnable = deque()          # round-robin queue of vCPUs with work
        self._runnable_set = set()
        # vCPUs handed to an in-flight softirq dispatch but not yet backed;
        # they must not be re-dispatched from another CPU in the meantime.
        # Maps vcpu -> reservation timestamp so the grant watchdog can age
        # out reservations stranded by a CPU that died mid-dispatch.
        self._reserved = {}
        self.active = {}                  # pcpu_id -> BackingGrant
        self._slice_ns = {}               # vcpu -> adaptive slice
        self._services_by_cpu = {}        # pcpu_id -> DPService
        self._cp_pcpus = list(board.cp_cpu_ids)
        self._cp_pcpu_rr = 0              # round-robin index for lock-safe fallback
        self.sw_probe = None              # wired by TaiChi
        self.tenancy = None               # wired by TenancyManager (multi-tenant)

        # Graceful degradation (driven by repro.core.degradation).
        # probe_degraded: operate as if hw_probe_enabled were off — slices
        # end on expiry only — with an optional tighter slice cap so DP
        # packets are not stranded behind full adaptive slices.
        self.probe_degraded = False
        self.degraded_max_slice_ns = None
        self._donation_blocked_until = {}  # pcpu_id -> ns horizon
        self.donation_blocks = 0

        # Statistics.
        self.slices_run = 0
        self.exits_by_reason = {reason: 0 for reason in VMExitReason}
        self.lock_safe_migrations = 0
        self.switch_overhead_ns = 0
        # Slices revoked by the hardware probe almost immediately after
        # entering: pure waste, the false-positive yields Section 4.3 (and
        # the Section 9 probe-fusion optimization) are about.
        self.premature_exits = 0
        self.premature_exit_window_ns = 10_000

    # -- Wiring ---------------------------------------------------------------------

    def install(self):
        """Register the softirq handler and the hardware-probe IRQ handler."""
        self.kernel.softirq.register(SoftirqVector.TAICHI_VCPU, self._slice_handler)
        self.kernel.idle_callbacks.append(self._on_pcpu_idle)
        for cpu in self.kernel.physical_cpus():
            cpu.work_callback = self._on_pcpu_pressure
        if self.hw_probe is not None:
            self.hw_probe.set_irq_handler(self._on_probe_irq)
        self.env.metrics.add_source("core.vcpu_scheduler", self.stats)

    def add_vcpu(self, vcpu):
        self.vcpus.append(vcpu)
        self._slice_ns[vcpu] = self.config.initial_slice_ns
        vcpu.work_callback = self._on_vcpu_work

    def register_service(self, service):
        """Associate a DP service with its CPU (pollution + idle queries)."""
        self._services_by_cpu[service.cpu_id] = service

    def unregister_service(self, service):
        """Detach a retired DP service (dynamic repartitioning)."""
        if self._services_by_cpu.get(service.cpu_id) is service:
            del self._services_by_cpu[service.cpu_id]

    def set_cp_pcpus(self, cpu_ids):
        """Replace the dedicated CP pCPU list (dynamic repartitioning)."""
        self._cp_pcpus = list(cpu_ids)
        self._cp_pcpu_rr = 0

    # -- Entry points ------------------------------------------------------------------

    def on_dp_idle(self, cpu_id):
        """Software probe callback: ``cpu_id`` has idle cycles to donate."""
        self._try_dispatch(cpu_id)

    def _on_vcpu_work(self, vcpu):
        """A vCPU gained runnable threads; try to find it an idle DP CPU."""
        if vcpu.is_backed:
            return
        self._mark_runnable(vcpu)
        self._dispatch_to_any_idle()

    def _cpu_is_donatable(self, cpu_id):
        """Can ``cpu_id`` host a vCPU slice right now?

        Requires an idle-blocked DP service, no active grant, and no
        realtime (DP) thread already waiting for or holding the CPU.
        """
        service = self._services_by_cpu.get(cpu_id)
        if service is None or not service.is_idle_blocked:
            return False
        if cpu_id in self.active:
            return False
        if self._donation_blocked_until.get(cpu_id, 0) > self.env.now:
            return False  # SLO guard: this CPU is protected for a while
        pcpu = self.kernel.cpus[cpu_id]
        if pcpu.runqueue.has_realtime:
            return False
        from repro.kernel.thread import ThreadState

        # The DP thread may still be registered as `current` right after it
        # blocked (softirqs run in its context) — that is donatable.  A
        # current thread that is READY or RUNNING (e.g. mid context-switch
        # charge) is about to use the CPU: hands off.
        current = pcpu.current
        return current is None or current.state in (
            ThreadState.BLOCKED, ThreadState.EXITED)

    def _dispatch_to_any_idle(self):
        """Donate any currently idle DP CPU to the runnable queue's head."""
        for cpu_id in self._services_by_cpu:
            if self._cpu_is_donatable(cpu_id):
                if self._try_dispatch(cpu_id):
                    return True
        return False

    def _on_pcpu_idle(self, pcpu):
        """An idle dedicated CP pCPU can back a starving runnable vCPU.

        This is the forward-progress guarantee: even when the data plane
        never yields, vCPUs carrying frozen CP tasks eventually execute on
        the CP partition.
        """
        if pcpu.is_virtual or pcpu.cpu_id in self._services_by_cpu:
            return False
        if pcpu.cpu_id in self.active:
            return False
        return self._try_dispatch(pcpu.cpu_id)

    def _on_pcpu_pressure(self, pcpu):
        """Native work arrived on a dedicated CP pCPU hosting a slice.

        CP pCPUs exist for CP threads; a donated slice yields to them
        immediately.  DP CPUs are exempt — there, resumption is governed by
        the hardware probe (or slice expiry in its absence), as in the real
        system where the poll loop is simply not running.
        """
        if pcpu.cpu_id in self._services_by_cpu:
            return
        grant = self.active.get(pcpu.cpu_id)
        if grant is not None and grant.active:
            grant.request_revoke(VMExitReason.EXTERNAL)

    def _on_probe_irq(self, cpu_id):
        """Hardware probe preempt IRQ: traffic is heading to ``cpu_id``."""
        grant = self.active.get(cpu_id)
        if grant is not None and grant.active:
            grant.request_revoke(VMExitReason.HW_PROBE_IRQ)

    # -- Runnable-queue maintenance -------------------------------------------------------

    def _mark_runnable(self, vcpu):
        if vcpu in self._runnable_set or vcpu.is_backed or vcpu in self._reserved:
            return
        if vcpu.runqueue.is_empty and vcpu.current is None:
            return
        self._runnable.append(vcpu)
        self._runnable_set.add(vcpu)

    def reserved_since(self):
        """Snapshot of in-flight dispatch reservations (watchdog input)."""
        return dict(self._reserved)

    def requeue_reservation(self, vcpu):
        """Rescue a vCPU whose dispatch softirq will never run.

        A reservation normally clears within one softirq latency; one that
        ages means the donor CPU went offline (or its softirq was lost).
        Returns True if the vCPU was re-queued for dispatch.
        """
        if self._reserved.pop(vcpu, None) is None:
            return False
        self._mark_runnable(vcpu)
        self._dispatch_to_any_idle()
        return True

    def block_donation(self, cpu_id, until_ns):
        """Keep ``cpu_id`` out of the donation pool until ``until_ns``."""
        self._donation_blocked_until[cpu_id] = max(
            self._donation_blocked_until.get(cpu_id, 0), int(until_ns))
        self.donation_blocks += 1

    def set_probe_degraded(self, degraded):
        """Demote to software-probe-only operation (or recover from it)."""
        self.probe_degraded = bool(degraded)

    def _next_runnable(self, cpu_id=None):
        """Pick the next vCPU with pending work for ``cpu_id``.

        Tenancy-blind (the default, and isolation-off tenancy): plain
        round-robin.  With tenant isolation installed, the pick is
        weighted-fair instead — the first runnable vCPU of each tenant
        allowed on ``cpu_id`` is a candidate, and the tenant with the
        lowest weight-normalized granted time wins.
        """
        tenancy = self.tenancy
        if tenancy is None or not tenancy.isolation:
            while self._runnable:
                vcpu = self._runnable.popleft()
                self._runnable_set.discard(vcpu)
                if vcpu.is_backed or vcpu in self._reserved:
                    continue
                if vcpu.runqueue.is_empty and vcpu.current is None:
                    continue
                return vcpu
            return None
        heads = {}                  # TenantRuntime (or None) -> FIFO head
        stale = []
        limit = len(tenancy.runtimes)
        for vcpu in self._runnable:
            if vcpu.is_backed or vcpu in self._reserved or (
                    vcpu.runqueue.is_empty and vcpu.current is None):
                stale.append(vcpu)
                continue
            if cpu_id is not None and not tenancy.may_back(cpu_id, vcpu):
                continue
            runtime = tenancy.tenant_of_vcpu(vcpu)
            if runtime is None:
                # Untagged vCPUs outrank every ledger: stop looking.
                heads = {None: vcpu}
                break
            if runtime not in heads:
                heads[runtime] = vcpu
                if len(heads) == limit:
                    break           # one head per tenant: the scan is done
        for vcpu in stale:
            self._runnable.remove(vcpu)
            self._runnable_set.discard(vcpu)
        if not heads:
            return None
        chosen = tenancy.choose(heads, cpu_id)
        self._runnable.remove(chosen)
        self._runnable_set.discard(chosen)
        return chosen

    def _try_dispatch(self, cpu_id, vcpu=None):
        if cpu_id in self.active:
            return False
        pcpu = self.kernel.cpus[cpu_id]
        if not pcpu.online or pcpu.offline_pending:
            return False  # hotplug: never raise a dispatch on a dead CPU
        if vcpu is not None and (vcpu.is_backed or vcpu in self._reserved):
            return False
        if vcpu is not None and self.tenancy is not None and \
                not self.tenancy.may_back(cpu_id, vcpu):
            return False
        candidate = vcpu if vcpu is not None else self._next_runnable(cpu_id)
        if candidate is None:
            return False
        self._reserved[candidate] = self.env.now
        self.kernel.softirq.raise_softirq(
            pcpu, SoftirqVector.TAICHI_VCPU, candidate
        )
        return True

    # -- The softirq handler (runs on the donor CPU's executor) ---------------------------

    def _slice_handler(self, pcpu, vcpu):
        costs = self.config.costs
        if vcpu is None:
            return
        if not vcpu.online or vcpu.is_backed or (
                vcpu.runqueue.is_empty and vcpu.current is None):
            self._reserved.pop(vcpu, None)
            return
        service = self._services_by_cpu.get(pcpu.cpu_id)
        if service is not None:
            can_lend = self._cpu_is_donatable(pcpu.cpu_id)
        else:
            # Dedicated CP pCPU (lock-safe fallback target): always usable.
            can_lend = pcpu.cpu_id not in self.active
        if not can_lend:
            # Don't strand the candidate: put it back and look elsewhere.
            self._reserved.pop(vcpu, None)
            self._mark_runnable(vcpu)
            self._dispatch_to_any_idle()
            return

        # Capture the probe once per slice: a mid-slice demotion must not
        # leave the V-state set on exit (enter/exit stay paired).
        hw_probe = None if self.probe_degraded else self.hw_probe
        slice_ns = self._slice_ns.get(vcpu, self.config.initial_slice_ns)
        if self.probe_degraded and self.degraded_max_slice_ns:
            # Without preempt IRQs a full adaptive slice strands packets;
            # cap it so the poll loop gets the CPU back soon.
            slice_ns = min(slice_ns, self.degraded_max_slice_ns)
        grant = BackingGrant(self.env, pcpu, vcpu, slice_ns)
        self.active[pcpu.cpu_id] = grant
        if hw_probe is not None:
            hw_probe.set_state(pcpu.cpu_id, CpuIoState.V_STATE)

        self.slices_run += 1
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.record(self.env.now, pcpu.cpu_id, "vmenter",
                          vcpu=vcpu.cpu_id, slice_ns=slice_ns)
        yield from pcpu.consume(costs.vmenter_ns)
        vcpu.set_backing(grant)
        self._reserved.pop(vcpu, None)  # is_backed now guards re-dispatch

        ended = self.env.any_of([grant.expired, grant.revoke_request, grant.halted])
        yield from pcpu.await_event(ended, busy=False)

        reason = grant.resolve_end_reason()
        vcpu.revoke(reason)
        if self.tenancy is not None:
            self.tenancy.note_grant(
                vcpu, self.env.now - grant.granted_at_ns, pcpu.cpu_id)
        if hw_probe is not None:
            hw_probe.set_state(pcpu.cpu_id, CpuIoState.P_STATE)
        self.active.pop(pcpu.cpu_id, None)
        exit_cost = costs.vmexit_ns
        if self.config.cache_isolation:
            # CAT-style way partitioning: no pollution of DP working sets,
            # paid for with a small per-switch reconfiguration cost.
            exit_cost += self.config.isolation_overhead_ns
        yield from pcpu.consume(exit_cost)
        self.switch_overhead_ns += costs.vmenter_ns + exit_cost
        self.exits_by_reason[reason] += 1
        premature = (
            reason is VMExitReason.HW_PROBE_IRQ
            and self.env.now - grant.granted_at_ns
            <= self.premature_exit_window_ns
        )
        if premature:
            self.premature_exits += 1
        if tracer.enabled:
            tracer.record(self.env.now, pcpu.cpu_id, "vmexit",
                          vcpu=vcpu.cpu_id, reason=reason.value,
                          enter_cost_ns=costs.vmenter_ns,
                          exit_cost_ns=exit_cost, premature=premature)

        if service is not None and not self.config.cache_isolation:
            service.note_vcpu_ran()
        self._adapt_slice(vcpu, reason)
        if self.sw_probe is not None and service is not None:
            self.sw_probe.adapt(service, reason)
        self._post_slice(pcpu, vcpu, reason, service)
        if service is not None:
            # Hand the CPU back to the poll loop; re-crossing the (small,
            # adapted) empty-poll threshold re-donates it.
            service.resume_polling()

    # -- Post-slice policy ------------------------------------------------------------------

    def _post_slice(self, pcpu, vcpu, reason, service):
        has_work = not (vcpu.runqueue.is_empty and vcpu.current is None)
        if not has_work:
            return

        if vcpu.holds_any_lock:
            # Safe CP-to-DP scheduling in lock context (Section 4.1): the
            # descheduled vCPU holds a spinlock others may spin on; waiting
            # in the runnable queue would let the whole convoy burn CPUs
            # while the holder dribbles forward.  Re-back it immediately —
            # on another idle DP pCPU if one exists, else on a dedicated CP
            # pCPU round-robin — whatever ended the slice.
            self.lock_safe_migrations += 1
            tracer = self.kernel.tracer
            if tracer.enabled:
                tracer.record(self.env.now, pcpu.cpu_id, "lock_safe_migrate",
                              vcpu=vcpu.cpu_id, reason=reason.value)
            target = self._find_idle_dp_cpu(exclude=pcpu.cpu_id, vcpu=vcpu)
            if target is not None and self._try_dispatch(target, vcpu=vcpu):
                return
            for _ in range(len(self._cp_pcpus)):
                if self._try_dispatch(self._next_cp_pcpu(), vcpu=vcpu):
                    return
            # Every fallback target is occupied right now; queue the vCPU
            # at the front so the next free CPU resumes the lock holder.
            self._runnable.appendleft(vcpu)
            self._runnable_set.add(vcpu)
            return

        self._mark_runnable(vcpu)

    def _find_idle_dp_cpu(self, exclude=None, vcpu=None):
        for cpu_id in self._services_by_cpu:
            if cpu_id == exclude or not self._cpu_is_donatable(cpu_id):
                continue
            if vcpu is not None and self.tenancy is not None and \
                    not self.tenancy.may_back(cpu_id, vcpu):
                continue
            return cpu_id
        return None

    def _next_cp_pcpu(self):
        cp_ids = self._cp_pcpus
        self._cp_pcpu_rr = (self._cp_pcpu_rr + 1) % len(cp_ids)
        return cp_ids[self._cp_pcpu_rr]

    # -- Adaptive time slice -------------------------------------------------------------------

    def _adapt_slice(self, vcpu, reason):
        if not self.config.adaptive_slice:
            return
        current = self._slice_ns.get(vcpu, self.config.initial_slice_ns)
        if reason is VMExitReason.TIMESLICE_EXPIRED:
            self._slice_ns[vcpu] = min(current * 2, self.config.max_slice_ns)
        elif reason is VMExitReason.HW_PROBE_IRQ:
            self._slice_ns[vcpu] = self.config.initial_slice_ns
        updated = self._slice_ns[vcpu]
        if updated != current:
            tracer = self.kernel.tracer
            if tracer.enabled:
                tracer.record(self.env.now, vcpu.cpu_id, "slice_adapt",
                              old_ns=current, new_ns=updated,
                              reason=reason.value)

    def slice_for(self, vcpu):
        return self._slice_ns.get(vcpu, self.config.initial_slice_ns)

    def stats(self):
        # Preprocessing-window accounting: probe-IRQ exits that arrived
        # comfortably before traffic landed were "hits" (the window bought
        # enough headroom); premature ones wasted the whole switch.
        probe_exits = self.exits_by_reason[VMExitReason.HW_PROBE_IRQ]
        return {
            "slices_run": self.slices_run,
            "exits": {r.value: c for r, c in self.exits_by_reason.items() if c},
            "lock_safe_migrations": self.lock_safe_migrations,
            "switch_overhead_ns": self.switch_overhead_ns,
            "premature_exits": self.premature_exits,
            "window_hits": probe_exits - self.premature_exits,
            "window_misses": self.premature_exits,
            "probe_degraded": self.probe_degraded,
            "donation_blocks": self.donation_blocks,
        }
