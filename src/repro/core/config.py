"""Tai Chi configuration knobs."""

from dataclasses import dataclass, field

from repro.sim.units import MICROSECONDS
from repro.virt.costs import VirtCosts


@dataclass
class TaiChiConfig:
    """All tunables of the framework, with the paper's defaults.

    ``initial_slice_ns`` is the 50 us starting vCPU time slice of
    Section 4.1, doubled on timeslice-expiry VM-exits (sustained DP
    idleness) up to ``max_slice_ns`` and reset by hardware-probe exits.
    The empty-poll threshold moves the opposite way (Section 4.3):
    halved when slices expire unused, doubled on false-positive yields.
    """

    n_vcpus: int = 8

    # Adaptive vCPU time slice (Section 4.1).  ``adaptive_slice=False``
    # pins slices at ``initial_slice_ns`` (the ablated "fixed" design the
    # paper argues against).
    initial_slice_ns: int = 50 * MICROSECONDS
    max_slice_ns: int = 800 * MICROSECONDS
    adaptive_slice: bool = True

    # Adaptive empty-poll threshold (Section 4.3).  ``adaptive_threshold=
    # False`` pins the threshold at ``initial_threshold`` (the "naive
    # approach uses a fixed threshold N" strawman).
    initial_threshold: int = 64
    min_threshold: int = 8
    max_threshold: int = 4096
    adaptive_threshold: bool = True

    # Hardware co-design.
    hw_probe_enabled: bool = True
    posted_interrupts: bool = True

    # Section 9 (future work) features, off by default to match the paper's
    # evaluated configuration.
    # probe_fusion: the software probe also consults the accelerator's
    # in-flight packet counts before yielding — a "multi-dimensional
    # assessment of DP CPU idle status" that avoids false-positive yields
    # for traffic already inside the preprocessing pipeline.
    probe_fusion: bool = False
    # cache_isolation: partition cache/TLB between vCPU slices and DP
    # (CAT-style), removing pollution at the cost of a small per-switch
    # reconfiguration overhead.
    cache_isolation: bool = False
    isolation_overhead_ns: int = 300

    costs: VirtCosts = field(default_factory=VirtCosts)

    def __post_init__(self):
        if self.initial_slice_ns <= 0:
            raise ValueError("initial_slice_ns must be positive")
        if self.max_slice_ns < self.initial_slice_ns:
            raise ValueError("max_slice_ns must be >= initial_slice_ns")
        if not (0 < self.min_threshold <= self.initial_threshold
                <= self.max_threshold):
            raise ValueError("thresholds must satisfy min <= initial <= max")
