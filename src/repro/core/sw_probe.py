"""The software workload probe: adaptive DP-to-CP yielding (Section 4.3).

DP services count consecutive empty polls; crossing a threshold ``N``
means the CPU is idle enough to donate.  ``N`` adapts per service based on
VM-exit reasons observed on that CPU: timeslice-expiry exits mean the
idleness was real (lower ``N``, yield sooner); hardware-probe exits mean
the yield was a false positive (raise ``N``, be more conservative).
"""


class SoftwareWorkloadProbe:
    """Per-service adaptive empty-poll thresholds plus the notify hook."""

    __slots__ = ("config", "scheduler", "_thresholds", "notifications",
                 "increases", "decreases")

    def __init__(self, config, scheduler):
        self.config = config
        self.scheduler = scheduler
        self._thresholds = {}
        self.notifications = 0
        self.increases = 0
        self.decreases = 0

    def threshold_for(self, service):
        """Current empty-poll threshold for ``service``.

        Runs once per idle window on every DP service, so it avoids the
        ``setdefault`` default-construction on the hit path.
        """
        threshold = self._thresholds.get(service)
        if threshold is None:
            threshold = self.config.initial_threshold
            self._thresholds[service] = threshold
        return threshold

    def seed_threshold(self, service, threshold):
        """Start ``service`` from a per-tenant threshold instead of the
        config default; adaptation proceeds from there unchanged."""
        self._thresholds[service] = int(threshold)

    def notify_idle(self, service):
        """``notify_idle_DP_CPU_cycles``: the DP service crossed its threshold."""
        self.notifications += 1
        self.scheduler.on_dp_idle(service.cpu_id)

    def adapt(self, service, exit_reason):
        """Adjust the service's threshold from the slice's VM-exit reason."""
        from repro.virt.vmexit import VMExitReason

        if not self.config.adaptive_threshold:
            return
        current = self.threshold_for(service)
        if exit_reason is VMExitReason.TIMESLICE_EXPIRED:
            updated = max(current // 2, self.config.min_threshold)
            if updated != current:
                self.decreases += 1
        elif exit_reason is VMExitReason.HW_PROBE_IRQ:
            updated = min(current * 2, self.config.max_threshold)
            if updated != current:
                self.increases += 1
        else:
            return
        self._thresholds[service] = updated
        # Unit tests drive this with bare fake schedulers; only trace when
        # wired to a real kernel.
        kernel = getattr(self.scheduler, "kernel", None)
        if updated != current and kernel is not None and kernel.tracer.enabled:
            kernel.tracer.record(self.scheduler.env.now, service.cpu_id,
                                 "threshold_adapt", service=service.name,
                                 old=current, new=updated,
                                 reason=exit_reason.value)

    def stats(self):
        return {
            "notifications": self.notifications,
            "threshold_increases": self.increases,
            "threshold_decreases": self.decreases,
            "thresholds": {
                service.name: threshold
                for service, threshold in self._thresholds.items()
            },
        }
