"""Always-preemptible kernel-space contexts (Section 8).

The classic priority-inversion problem: a high-priority realtime task
cannot preempt a low-priority task that is executing a non-preemptible
kernel routine.  Tai Chi's hybrid virtualization gives Linux an
always-preemptible execution context for free: wrap the low-priority task
in a vCPU, and VM-exit cuts through any kernel routine at microsecond
granularity while the routine's remaining work is frozen in place.

:class:`PreemptibleKernelContext` packages that pattern as an API: submit
a kernel-heavy task, and it runs in vCPU context; realtime work on the
same physical CPUs observes microsecond wakeup latency regardless of what
the wrapped task is doing in the kernel.
"""


class PreemptibleKernelContext:
    """Runs kernel-heavy low-priority tasks in always-preemptible contexts."""

    def __init__(self, taichi):
        self.taichi = taichi
        self.kernel = taichi.board.kernel
        self.submitted = []

    def submit(self, name, body, nice_weight=1.0):
        """Spawn ``body`` confined to vCPU contexts.

        The thread's non-preemptible kernel routines can still execute —
        but only while a vCPU is backed, and the backing can be revoked at
        any instant, so no physical CPU is ever held hostage by them.
        """
        thread = self.kernel.spawn(
            name, body,
            affinity={vcpu.cpu_id for vcpu in self.taichi.vcpus},
            nice_weight=nice_weight,
        )
        self.submitted.append(thread)
        return thread

    def wrap_affinity(self, thread):
        """Retarget an existing thread into the preemptible domain."""
        self.kernel.set_affinity(
            thread, {vcpu.cpu_id for vcpu in self.taichi.vcpus}
        )
        self.submitted.append(thread)
        return thread
