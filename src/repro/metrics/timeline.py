"""Timeline capture for scheduling traces.

The :class:`Timeline` is the storage layer of the observability spine
(:mod:`repro.obs` wraps it with an enable gate and exporters).  Two
bounded-memory policies are supported:

* ``ring=False`` (historical default) — append until ``cap`` is reached,
  then drop *new* events, counting them in :attr:`Timeline.dropped`;
* ``ring=True`` — keep the most recent ``cap`` events, dropping the
  *oldest* (the usual flight-recorder behaviour for long soaks).

Either way :attr:`Timeline.dropped` says how many events were lost, and
renderers/exporters are expected to surface it rather than silently
presenting a truncated trace.
"""

from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TimelineEvent:
    """One scheduling event: what happened on which CPU at what time."""

    ts_ns: int
    cpu_id: object
    kind: str
    detail: dict = field(default_factory=dict)

    def __str__(self):
        extras = " ".join(f"{key}={value}" for key, value in sorted(self.detail.items()))
        return f"[{self.ts_ns:>12} ns] cpu={self.cpu_id} {self.kind} {extras}".rstrip()


class Timeline:
    """A bounded log of :class:`TimelineEvent` records."""

    # Plain timelines are always-on; Tracer overrides this with a gate so
    # instrumentation sites can use a uniform ``tracer.enabled`` check.
    enabled = True

    def __init__(self, cap=100_000, ring=False):
        self.cap = cap
        self.ring = ring
        self.events = deque(maxlen=cap) if ring else []
        self.dropped = 0

    def record(self, ts_ns, cpu_id, kind, **detail):
        """Record one event; returns it even when storage dropped it.

        Returning the event lets subscribers (inline invariant checkers)
        observe the full stream regardless of the capacity policy.
        """
        event = TimelineEvent(ts_ns, cpu_id, kind, detail)
        if len(self.events) >= self.cap:
            self.dropped += 1
            if not self.ring:
                return event
        self.events.append(event)
        return event

    def filter(self, kind=None, cpu_id=None):
        out = list(self.events)
        if kind is not None:
            out = [event for event in out if event.kind == kind]
        if cpu_id is not None:
            out = [event for event in out if event.cpu_id == cpu_id]
        return out

    def spans(self, start_kind, end_kind, cpu_id=None):
        """Pair start/end events into (start_ts, end_ts) spans per CPU."""
        spans = []
        open_starts = {}
        for event in self.events:
            if cpu_id is not None and event.cpu_id != cpu_id:
                continue
            if event.kind == start_kind:
                open_starts[event.cpu_id] = event.ts_ns
            elif event.kind == end_kind and event.cpu_id in open_starts:
                spans.append((open_starts.pop(event.cpu_id), event.ts_ns))
        return spans

    def summary(self):
        """Bookkeeping summary for exports and reports."""
        return {
            "events": len(self.events),
            "dropped": self.dropped,
            "cap": self.cap,
            "mode": "ring" if self.ring else "drop-new",
        }

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
