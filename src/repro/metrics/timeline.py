"""Timeline capture for scheduling traces.

The :class:`Timeline` is the storage layer of the observability spine
(:mod:`repro.obs` wraps it with an enable gate and exporters).  Two
bounded-memory policies are supported:

* ``ring=False`` (historical default) — append until ``cap`` is reached,
  then drop *new* events, counting them in :attr:`Timeline.dropped`;
* ``ring=True`` — keep the most recent ``cap`` events, dropping the
  *oldest* (the usual flight-recorder behaviour for long soaks).

Either way :attr:`Timeline.dropped` says how many events were lost, and
renderers/exporters are expected to surface it rather than silently
presenting a truncated trace.

In ring mode the record evicted by a full buffer is *recycled in place*
for the incoming event rather than freed — a traced soak allocates
``cap`` records total instead of one per event.  Consumers must treat a
record as immutable only while it stays in the ring: hooks (inline
invariant checkers) consume events synchronously, and exporters read the
live buffer, so neither observes recycling; holding a reference across
``cap`` further records does not.
"""

from collections import deque


class TimelineEvent:
    """One scheduling event: what happened on which CPU at what time."""

    __slots__ = ("ts_ns", "cpu_id", "kind", "detail")

    def __init__(self, ts_ns, cpu_id, kind, detail=None):
        self.ts_ns = ts_ns
        self.cpu_id = cpu_id
        self.kind = kind
        self.detail = {} if detail is None else detail

    def __eq__(self, other):
        if isinstance(other, TimelineEvent):
            return (self.ts_ns == other.ts_ns
                    and self.cpu_id == other.cpu_id
                    and self.kind == other.kind
                    and self.detail == other.detail)
        return NotImplemented

    def __str__(self):
        extras = " ".join(f"{key}={value}" for key, value in sorted(self.detail.items()))
        return f"[{self.ts_ns:>12} ns] cpu={self.cpu_id} {self.kind} {extras}".rstrip()

    def __repr__(self):
        return (f"TimelineEvent(ts_ns={self.ts_ns!r}, cpu_id={self.cpu_id!r}, "
                f"kind={self.kind!r}, detail={self.detail!r})")


class Timeline:
    """A bounded log of :class:`TimelineEvent` records."""

    # Plain timelines are always-on; Tracer overrides this with a gate so
    # instrumentation sites can use a uniform ``tracer.enabled`` check.
    enabled = True

    def __init__(self, cap=100_000, ring=False):
        self.cap = cap
        self.ring = ring
        self.events = deque(maxlen=cap) if ring else []
        self.dropped = 0

    def record(self, ts_ns, cpu_id, kind, **detail):
        """Record one event; returns it even when storage dropped it.

        Returning the event lets subscribers (inline invariant checkers)
        observe the full stream regardless of the capacity policy.
        """
        events = self.events
        if len(events) >= self.cap:
            self.dropped += 1
            if not self.ring:
                return TimelineEvent(ts_ns, cpu_id, kind, detail)
            # Recycle the evicted record: a full flight recorder stops
            # allocating entirely.
            event = events.popleft()
            event.ts_ns = ts_ns
            event.cpu_id = cpu_id
            event.kind = kind
            event.detail = detail
        else:
            event = TimelineEvent(ts_ns, cpu_id, kind, detail)
        events.append(event)
        return event

    def filter(self, kind=None, cpu_id=None):
        out = list(self.events)
        if kind is not None:
            out = [event for event in out if event.kind == kind]
        if cpu_id is not None:
            out = [event for event in out if event.cpu_id == cpu_id]
        return out

    def spans(self, start_kind, end_kind, cpu_id=None):
        """Pair start/end events into (start_ts, end_ts) spans per CPU."""
        spans = []
        open_starts = {}
        for event in self.events:
            if cpu_id is not None and event.cpu_id != cpu_id:
                continue
            if event.kind == start_kind:
                open_starts[event.cpu_id] = event.ts_ns
            elif event.kind == end_kind and event.cpu_id in open_starts:
                spans.append((open_starts.pop(event.cpu_id), event.ts_ns))
        return spans

    def summary(self):
        """Bookkeeping summary for exports and reports."""
        return {
            "events": len(self.events),
            "dropped": self.dropped,
            "cap": self.cap,
            "mode": "ring" if self.ring else "drop-new",
        }

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
