"""Mergeable quantile sketches and O(1) telemetry snapshot types.

The fleet's streaming-aggregation story (ROADMAP item 4) needs per-node
telemetry whose size does not grow with sample count.  A
:class:`QuantileSketch` is a DDSketch-style relative-error quantile
summary: values land in logarithmic buckets with a fixed layout derived
from the accuracy parameter ``alpha``, so two sketches built with the
same ``alpha`` merge by adding bucket counts — exactly associative and
commutative on the counts, which is what lets a 1k-node fleet pool
latency distributions without shipping raw sample arrays.

**Accuracy contract.** For a stream of non-negative values,
:meth:`QuantileSketch.percentile` returns an estimate within relative
error ``alpha`` of the *lower order statistic* at that rank — the value
``sorted(values)[floor(q / 100 * (n - 1))]``:

    ``|estimate - x_rank| <= alpha * x_rank``

(Linear-interpolating summaries like :func:`repro.metrics.stats.percentile`
may report a value between two order statistics; on gappy distributions
the interpolated value can sit between the statistic the sketch tracks
and its upper neighbor, so comparisons against interpolated percentiles
must bracket with the neighboring order statistics.)

**Determinism contract.**  The bucket layout is a pure function of
``alpha``; adding the same values in the same order produces the same
``sum`` float, and :meth:`to_json` serializes buckets in sorted index
order with sorted keys — so a sketch's JSON is byte-stable across
processes and round-trips losslessly (:meth:`from_dict` of
:meth:`to_dict` compares equal and re-serializes identically).  Fleet
aggregation relies on this: sketches merged in spec order yield
byte-identical reports at any ``--jobs`` level.

:class:`CounterSample` and :class:`GaugeSample` are the matching O(1)
snapshot types for the other two instrument families; one telemetry
interval is a bag of these plus sketch deltas.
"""

import json
import math
from dataclasses import dataclass

#: Default relative-error bound; 1% keeps a microsecond-scale latency
#: distribution in a few hundred sparse buckets.
DEFAULT_ALPHA = 0.01

#: Values at or below this are exact zeros (they get their own bucket —
#: log-buckets cannot represent 0).
_MIN_TRACKABLE = 1e-9


class QuantileSketch:
    """A mergeable, relative-error-bounded quantile sketch.

    Pure python, no numpy: the hot path is one ``math.log``, one
    ``ceil`` and one dict increment per sample.  Buckets are sparse
    (only indices that saw samples exist), so memory is proportional to
    the distribution's dynamic range in ``log(gamma)`` steps, not to the
    sample count.
    """

    __slots__ = ("alpha", "_gamma", "_log_gamma", "count", "zero_count",
                 "sum", "min", "max", "buckets")

    def __init__(self, alpha=DEFAULT_ALPHA):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = float(alpha)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        self.zero_count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.buckets = {}          # bucket index -> sample count

    # -- Recording ---------------------------------------------------------------

    def add(self, value, count=1):
        """Record ``value`` (non-negative) ``count`` times."""
        value = float(value)
        if value < 0.0:
            raise ValueError(
                f"QuantileSketch tracks non-negative values, got {value}")
        count = int(count)
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.count += count
        self.sum += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= _MIN_TRACKABLE:
            self.zero_count += count
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self.buckets[index] = self.buckets.get(index, 0) + count

    def extend(self, values):
        for value in values:
            self.add(value)
        return self

    # -- Merging -----------------------------------------------------------------

    def merge(self, other):
        """Fold ``other`` into this sketch (same ``alpha`` required).

        Bucket counts add, so merging is associative and commutative on
        everything except the float ``sum`` (addition order); callers
        that need byte-identical results merge in a canonical order (the
        fleet aggregator uses spec order).
        """
        if not isinstance(other, QuantileSketch):
            raise TypeError(f"cannot merge {type(other).__name__}")
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with different alpha "
                f"({self.alpha} vs {other.alpha})")
        if other.count == 0:
            return self
        self.count += other.count
        self.zero_count += other.zero_count
        self.sum += other.sum
        if self.min is None or (other.min is not None and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None and other.max > self.max):
            self.max = other.max
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        return self

    @classmethod
    def merged(cls, sketches, alpha=None):
        """A fresh sketch folding ``sketches`` in iteration order."""
        sketches = list(sketches)
        if alpha is None:
            alpha = sketches[0].alpha if sketches else DEFAULT_ALPHA
        out = cls(alpha=alpha)
        for sketch in sketches:
            out.merge(sketch)
        return out

    # -- Queries -----------------------------------------------------------------

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def _bucket_value(self, index):
        """Midpoint estimate for bucket ``index`` — guarantees the
        relative-error bound ``alpha`` for any value the bucket covers."""
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def percentile(self, q):
        """Estimate percentile ``q`` (0-100); ``None`` on an empty sketch."""
        if self.count == 0:
            return None
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        rank = q / 100.0 * (self.count - 1)
        cum = self.zero_count
        if cum > rank:
            return 0.0
        value = self.max
        for index in sorted(self.buckets):
            cum += self.buckets[index]
            if cum > rank:
                value = self._bucket_value(index)
                break
        # min/max are tracked exactly; never report outside them.
        return min(max(value, self.min), self.max)

    def percentiles(self, qs=(50, 90, 99)):
        """Labeled percentile dict (``{"p50": ..., ...}``); empty -> Nones."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    def summary(self, qs=(50, 90, 99)):
        """``summarize``-shaped block: count/min/mean/max + percentiles.

        Empty sketches yield ``{"count": 0}`` so report renderers can
        emit sections unconditionally (no empty-sequence footguns).
        """
        if self.count == 0:
            return {"count": 0}
        block = {
            "count": self.count,
            "min": self.min,
            "mean": self.mean,
            "max": self.max,
        }
        block.update(self.percentiles(qs))
        return block

    # -- JSON round-trip ----------------------------------------------------------

    def to_dict(self):
        """Plain-data form; bucket list sorted by index for byte stability."""
        return {
            "type": "ddsketch",
            "alpha": self.alpha,
            "count": self.count,
            "zero_count": self.zero_count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": [[index, self.buckets[index]]
                        for index in sorted(self.buckets)],
        }

    @classmethod
    def from_dict(cls, data):
        if data.get("type") != "ddsketch":
            raise ValueError(
                f"not a serialized QuantileSketch: type={data.get('type')!r}")
        sketch = cls(alpha=data["alpha"])
        sketch.count = int(data["count"])
        sketch.zero_count = int(data["zero_count"])
        sketch.sum = float(data["sum"])
        sketch.min = None if data["min"] is None else float(data["min"])
        sketch.max = None if data["max"] is None else float(data["max"])
        sketch.buckets = {int(index): int(count)
                          for index, count in data["buckets"]}
        return sketch

    def to_json(self):
        """Canonical JSON text (sorted keys); byte-stable across processes."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def __eq__(self, other):
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self):
        return (f"<QuantileSketch alpha={self.alpha} n={self.count} "
                f"buckets={len(self.buckets)}>")


def is_sketch_dict(data):
    """True if ``data`` looks like a serialized :class:`QuantileSketch`."""
    return isinstance(data, dict) and data.get("type") == "ddsketch"


def merge_sketch_dicts(dicts, alpha=None):
    """Merge serialized sketches in iteration order; returns a sketch.

    The fleet aggregator's entry point: per-node summaries carry sketch
    dicts, and merging them in spec order preserves the byte-identical
    determinism contract.
    """
    return QuantileSketch.merged(
        (QuantileSketch.from_dict(data) for data in dicts), alpha=alpha)


# -- Interval snapshot types ------------------------------------------------------


@dataclass(frozen=True)
class CounterSample:
    """One counter at one telemetry interval: running total + delta."""

    name: str
    total: int
    delta: int

    def to_dict(self):
        return {"total": self.total, "delta": self.delta}

    @classmethod
    def from_dict(cls, name, data):
        return cls(name=name, total=int(data["total"]),
                   delta=int(data["delta"]))


@dataclass(frozen=True)
class GaugeSample:
    """One gauge reading at one telemetry interval (last-write-wins)."""

    name: str
    value: float

    def to_dict(self):
        return self.value

    @classmethod
    def from_dict(cls, name, value):
        return cls(name=name, value=value)
