"""Streaming statistics and distribution summaries."""

import math

import numpy as np


#: Sentinel distinguishing "no default supplied" from ``default=None``.
_RAISE = object()


def percentile(values, q, default=_RAISE):
    """Percentile ``q`` (0-100) of ``values`` using linear interpolation.

    An empty sequence raises ``ValueError`` unless ``default`` is given,
    in which case it is returned instead — aggregation paths that may
    legitimately see zero samples (e.g. a fleet class with no startups
    in a window) pass ``default=None`` and render a null rather than
    crash.
    """
    if len(values) == 0:
        if default is _RAISE:
            raise ValueError("percentile of empty sequence")
        return default
    return float(np.percentile(np.asarray(values, dtype=float), q))


def percentiles(values, qs=(50, 90, 99), default=_RAISE):
    """Several percentiles in one sort: ``{"p50": ..., "p90": ..., ...}``.

    ``qs`` entries are 0-100 percentile ranks; fractional ranks render
    without a trailing zero (99.9 -> ``"p99.9"``).  An empty sequence
    raises unless ``default`` is given, in which case every label maps
    to it (``percentiles([], default=None) -> {"p50": None, ...}``).
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        if default is _RAISE:
            raise ValueError("percentiles of empty sequence")
        return {f"p{q:g}": default for q in qs}
    results = np.percentile(data, list(qs))
    return {f"p{q:g}": float(value) for q, value in zip(qs, results)}


def summarize(values, qs=(50, 90, 99)):
    """Distribution summary of raw samples: count/min/mean/max + percentiles.

    The one-stop helper for analyzers and reports; an empty sequence
    yields ``{"count": 0}`` rather than raising, so callers can render
    sections unconditionally.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return {"count": 0}
    summary = {
        "count": int(data.size),
        "min": float(data.min()),
        "mean": float(data.mean()),
        "max": float(data.max()),
    }
    summary.update(percentiles(data, qs))
    return summary


def ratio(numerator, denominator):
    """Safe ratio for derived metrics."""
    if not denominator:
        return float("inf") if numerator else 0.0
    return numerator / denominator


def overhead_pct(system_value, baseline_value):
    """Percent throughput loss of ``system_value`` vs ``baseline_value``."""
    if not baseline_value:
        return 0.0
    return (1.0 - system_value / baseline_value) * 100.0


def attainment_pct(within, total):
    """SLO attainment with the vacuous case pinned at 100 (no samples =
    no violations), so short smoke runs don't read as fleet-wide outages."""
    if total <= 0:
        return 100.0
    return 100.0 * within / total


class WelfordStats:
    """Single-pass mean/variance/min/max accumulator."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value):
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self):
        return self._mean if self.count else 0.0

    @property
    def variance(self):
        return self._m2 / self.count if self.count else 0.0

    @property
    def stdev(self):
        return math.sqrt(self.variance)

    @property
    def mean_deviation_proxy(self):
        """Stand-in for ping's ``mdev`` when only moments are kept."""
        return self.stdev

    def merge(self, other):
        """Combine another accumulator into this one (parallel Welford)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def __repr__(self):
        return (
            f"<WelfordStats n={self.count} mean={self.mean:.3f} "
            f"min={self.min:.3f} max={self.max:.3f}>"
        )


class LatencyRecorder:
    """Keeps every sample (bounded) plus streaming moments.

    Ping-style summaries (min/avg/max/mdev) and arbitrary percentiles both
    come from here.  ``cap`` bounds memory; once exceeded, uniform
    reservoir sampling keeps percentiles honest.
    """

    def __init__(self, name="latency", cap=200_000, rng=None):
        self.name = name
        self.cap = cap
        self.samples = []
        self.stats = WelfordStats()
        self._abs_dev_sum = 0.0
        self._rng = rng or np.random.default_rng(12345)

    def record(self, value):
        value = float(value)
        self.stats.add(value)
        self._abs_dev_sum += abs(value - self.stats.mean)
        if len(self.samples) < self.cap:
            self.samples.append(value)
        else:
            # Reservoir sampling keeps a uniform subset.
            index = int(self._rng.integers(0, self.stats.count))
            if index < self.cap:
                self.samples[index] = value

    @property
    def count(self):
        return self.stats.count

    @property
    def mean(self):
        return self.stats.mean

    @property
    def min(self):
        return self.stats.min if self.stats.count else 0.0

    @property
    def max(self):
        return self.stats.max if self.stats.count else 0.0

    @property
    def mdev(self):
        """Mean absolute deviation, as reported by ping."""
        if self.stats.count == 0:
            return 0.0
        return self._abs_dev_sum / self.stats.count

    def percentile(self, q, default=_RAISE):
        return percentile(self.samples, q, default=default)

    def p50(self):
        return self.percentile(50)

    def p99(self):
        return self.percentile(99)

    def p999(self):
        return self.percentile(99.9)

    def summary(self):
        """Dict summary convenient for experiment tables."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "min": self.min,
            "mean": self.mean,
            "max": self.max,
            "mdev": self.mdev,
            "p50": self.p50(),
            "p99": self.p99(),
            "p999": self.p999(),
        }

    def __repr__(self):
        return f"<LatencyRecorder {self.name!r} n={self.count}>"


class Histogram:
    """Fixed-bucket histogram over ``edges`` (len(edges)+1 buckets)."""

    def __init__(self, edges, name="histogram"):
        self.name = name
        self.edges = sorted(float(edge) for edge in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0

    def add(self, value, weight=1):
        index = 0
        for index, edge in enumerate(self.edges):
            if value < edge:
                break
        else:
            index = len(self.edges)
        self.counts[index] += weight
        self.total += weight

    def bucket_labels(self):
        labels = [f"<{self.edges[0]:g}"]
        for low, high in zip(self.edges, self.edges[1:]):
            labels.append(f"{low:g}-{high:g}")
        labels.append(f">={self.edges[-1]:g}")
        return labels

    def as_rows(self):
        return list(zip(self.bucket_labels(), self.counts))

    def __repr__(self):
        return f"<Histogram {self.name!r} total={self.total}>"


class Cdf:
    """Empirical CDF over recorded samples."""

    def __init__(self, samples=()):
        self.samples = list(samples)

    def add(self, value):
        self.samples.append(float(value))

    def fraction_below(self, threshold):
        """P(X <= threshold)."""
        if not self.samples:
            return 0.0
        data = np.asarray(self.samples)
        return float(np.mean(data <= threshold))

    def quantile(self, q):
        """Value at cumulative fraction ``q`` in [0, 1]."""
        return percentile(self.samples, q * 100.0)

    def points(self, n=100):
        """(x, cumulative fraction) pairs for plotting/reporting."""
        if not self.samples:
            return []
        data = np.sort(np.asarray(self.samples))
        qs = np.linspace(0.0, 1.0, n)
        xs = np.quantile(data, qs)
        return list(zip(xs.tolist(), qs.tolist()))


class RateMeter:
    """Counts events over a simulated interval to report rates."""

    def __init__(self, name="rate"):
        self.name = name
        self.count = 0
        self.bytes = 0
        self.started_ns = None
        self.ended_ns = None

    def start(self, now_ns):
        self.started_ns = now_ns

    def add(self, now_ns, nbytes=0):
        if self.started_ns is None:
            self.started_ns = now_ns
        self.count += 1
        self.bytes += nbytes
        self.ended_ns = now_ns

    def per_second(self, duration_ns=None):
        duration = duration_ns
        if duration is None:
            if self.started_ns is None or self.ended_ns is None:
                return 0.0
            duration = self.ended_ns - self.started_ns
        if duration <= 0:
            return 0.0
        return self.count * 1e9 / duration

    def bytes_per_second(self, duration_ns=None):
        duration = duration_ns
        if duration is None:
            if self.started_ns is None or self.ended_ns is None:
                return 0.0
            duration = self.ended_ns - self.started_ns
        if duration <= 0:
            return 0.0
        return self.bytes * 1e9 / duration

    def __repr__(self):
        return f"<RateMeter {self.name!r} count={self.count}>"
