"""ASCII scheduling-trace rendering.

Turns a :class:`~repro.metrics.timeline.Timeline` of ``sched_in`` /
``sched_out`` / ``vmenter`` / ``vmexit`` events into a per-CPU gantt chart
readable in a terminal — the textual equivalent of Figure 4's timing
diagram.  Each CPU is one row; each column is a time bucket filled with
the initial of the thread that occupied it ('v' for donated vCPU slices,
'.' for idle).
"""


def render_gantt(timeline, start_ns, end_ns, cpu_ids=None, width=100,
                 label_width=8):
    """Render the ``[start_ns, end_ns)`` window as an ASCII gantt chart."""
    if end_ns <= start_ns:
        raise ValueError("end_ns must exceed start_ns")
    spans = occupancy_spans(timeline, start_ns, end_ns)
    if cpu_ids is None:
        cpu_ids = sorted(spans, key=str)
    bucket_ns = (end_ns - start_ns) / width

    lines = []
    header = " " * label_width + f"|{start_ns / 1e6:.3f} ms".ljust(width - 1)
    header += f"{end_ns / 1e6:.3f} ms|"
    lines.append(header)
    for cpu_id in cpu_ids:
        row = ["."] * width
        for span_start, span_end, label in spans.get(cpu_id, []):
            first = int(max(span_start - start_ns, 0) // bucket_ns)
            last = int(min(span_end - start_ns, end_ns - start_ns - 1)
                       // bucket_ns)
            for bucket in range(first, min(last + 1, width)):
                row[bucket] = label
        lines.append(f"cpu {str(cpu_id):<4}".ljust(label_width) + "".join(row))
    lines.append(" " * label_width + f"('.'=idle, 'v'=vCPU slice, "
                 f"letter=thread initial)")
    dropped = getattr(timeline, "dropped", 0)
    if dropped:
        lines.append(" " * label_width
                     + f"(!) {dropped} events dropped by the capture buffer; "
                     "spans may be incomplete")
    return "\n".join(lines)


_OPEN_KINDS = ("sched_in", "vmenter")
_CLOSE_KINDS = ("sched_out", "vmexit")


def occupancy_spans(timeline, start_ns=None, end_ns=None):
    """Extract per-CPU (start, end, glyph) occupancy spans from a timeline.

    Spans still open when the window ends are closed at the horizon:
    ``end_ns`` when given, otherwise the timestamp of the last event seen —
    so an open occupancy is always reported rather than silently vanishing.
    Opens that straddle ``start_ns`` are clamped to the window start.
    """
    spans = {}
    open_spans = {}
    last_ts = None
    for event in timeline:
        if end_ns is not None and event.ts_ns > end_ns:
            break
        last_ts = event.ts_ns
        if start_ns is not None and event.ts_ns < start_ns:
            # Track opens that straddle the window start.
            if event.kind in _OPEN_KINDS:
                open_spans[event.cpu_id] = (start_ns, _glyph(event))
            elif event.kind in _CLOSE_KINDS:
                open_spans.pop(event.cpu_id, None)
            continue
        if event.kind in _OPEN_KINDS:
            open_spans[event.cpu_id] = (event.ts_ns, _glyph(event))
        elif event.kind in _CLOSE_KINDS:
            opened = open_spans.pop(event.cpu_id, None)
            if opened is not None:
                opened_ts, glyph = opened
                spans.setdefault(event.cpu_id, []).append(
                    (opened_ts, event.ts_ns, glyph))
    horizon = end_ns if end_ns is not None else last_ts
    if horizon is not None:
        for cpu_id, (opened_ts, glyph) in open_spans.items():
            spans.setdefault(cpu_id, []).append((opened_ts, horizon, glyph))
    return spans


def _glyph(event):
    if event.kind == "vmenter":
        return "v"
    name = str(event.detail.get("thread", "?"))
    return name[0] if name else "?"
