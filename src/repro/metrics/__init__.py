"""Measurement utilities: streaming stats, percentiles, histograms, CDFs."""

from repro.metrics.stats import (
    Cdf,
    Histogram,
    LatencyRecorder,
    RateMeter,
    WelfordStats,
    percentile,
    percentiles,
    summarize,
)
from repro.metrics.schedviz import occupancy_spans, render_gantt
from repro.metrics.timeline import Timeline, TimelineEvent

__all__ = [
    "occupancy_spans",
    "render_gantt",
    "Cdf",
    "Histogram",
    "LatencyRecorder",
    "RateMeter",
    "Timeline",
    "TimelineEvent",
    "WelfordStats",
    "percentile",
    "percentiles",
    "summarize",
]
