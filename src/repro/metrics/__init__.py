"""Measurement utilities: streaming stats, percentiles, histograms, CDFs."""

from repro.metrics.stats import (
    Cdf,
    Histogram,
    LatencyRecorder,
    RateMeter,
    WelfordStats,
    attainment_pct,
    overhead_pct,
    percentile,
    percentiles,
    ratio,
    summarize,
)
from repro.metrics.schedviz import occupancy_spans, render_gantt
from repro.metrics.sketch import (
    CounterSample,
    GaugeSample,
    QuantileSketch,
    is_sketch_dict,
    merge_sketch_dicts,
)
from repro.metrics.timeline import Timeline, TimelineEvent

__all__ = [
    "occupancy_spans",
    "render_gantt",
    "Cdf",
    "CounterSample",
    "GaugeSample",
    "QuantileSketch",
    "is_sketch_dict",
    "merge_sketch_dicts",
    "Histogram",
    "LatencyRecorder",
    "RateMeter",
    "Timeline",
    "TimelineEvent",
    "WelfordStats",
    "attainment_pct",
    "overhead_pct",
    "percentile",
    "percentiles",
    "ratio",
    "summarize",
]
