"""Figure 11: synth_cp execution time vs control-plane concurrency.

Baseline (static partition) and Tai Chi under 1..32 concurrent 50 ms CP
tasks with the data plane held at the production-p99 30 % utilization and
the standing CP background running, as on a production node.
"""

from repro.experiments.common import ratio, scaled_count
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.scenario import arms_under_test, build
from repro.workloads import run_synth_cp
from repro.workloads.background import start_cp_background

CONCURRENCIES = (1, 4, 8, 16, 32)

#: Reference arm first; ``run --arm`` swaps in any registry arms.
DEFAULT_ARMS = ("baseline", "taichi")


def run_point(arm, concurrency, rounds, seed):
    deployment = build(arm, seed=seed)
    start_cp_background(deployment, n_monitors=4, rolling_tasks=4)
    result = run_synth_cp(deployment, concurrency, rounds=rounds,
                          dp_utilization=0.30)
    return result["avg_exec_ms"]


@register("fig11", "CP execution time vs concurrency", "Figure 11")
def run(scale=1.0, seed=0):
    arms = arms_under_test(DEFAULT_ARMS)
    rounds = scaled_count(3, scale, floor=1)
    rows = []
    for concurrency in CONCURRENCIES:
        row = {"concurrency": concurrency}
        for arm in arms:
            row[f"{arm}_avg_ms"] = run_point(arm, concurrency, rounds, seed)
        # Speedup of the last arm over the reference (first) arm.
        row["speedup"] = ratio(row[f"{arms[0]}_avg_ms"],
                               row[f"{arms[-1]}_avg_ms"])
        rows.append(row)
    return ExperimentResult(
        exp_id="fig11",
        title="synth_cp average execution time vs concurrency",
        paper_ref="Figure 11",
        rows=rows,
        derived={"speedup_at_32": rows[-1]["speedup"]},
        paper={
            "speedup_at_32": 4.0,
            "note": (
                "Our baseline is an ideal queueing system without the "
                "production interference the paper's baseline carries; the "
                "structural ceiling in this 12-CPU configuration is "
                "(4 + 8*idle)/4 ~ 2.4-3x, which the reproduction reaches."
            ),
        },
    )
