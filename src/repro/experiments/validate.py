"""Validation harness: run every experiment and check the paper's shape.

Each expectation is a *shape band*, not an absolute number — the substrate
is a simulator, so the reproduction targets who-wins / by-what-factor /
where-crossovers-fall.  ``write_experiments_md`` turns a validation run
into the repository's EXPERIMENTS.md.
"""

import time

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.fleet.pool import pool_imap
from repro.obs import observe


class Expectation:
    """One checkable claim about an experiment's derived metrics."""

    def __init__(self, description, check):
        self.description = description
        self.check = check

    def evaluate(self, result):
        try:
            return bool(self.check(result.derived))
        except (KeyError, TypeError, ZeroDivisionError):
            return False


EXPECTATIONS = {
    "fig2": [
        Expectation("CP execution degrades >2.5x at density x4 (paper: 8x; "
                    ">4.5x at full scale, less at reduced storm sizes)",
                    lambda d: d["cp_exec_degradation_at_x4"] > 2.5),
        Expectation("VM startup breaches its SLO at density x4 (paper: 3.1x)",
                    lambda d: d["startup_vs_slo_at_x4"] > 1.0),
    ],
    "fig3": [
        Expectation("~99.7% of DP utilization samples below 32.5%",
                    lambda d: 0.99 <= d["fraction_below_32.5pct"] <= 1.0),
    ],
    "fig4": [
        Expectation("non-preemptible spike is orders of magnitude above "
                    "the clean wakeup path",
                    lambda d: d["spike_vs_clean"] > 100),
    ],
    "fig5": [
        Expectation("94.5% of >1ms routines fall in 1-5ms",
                    lambda d: 0.93 < d["fraction_1_to_5ms"] < 0.96),
        Expectation("maximum duration capped at 67 ms",
                    lambda d: d["max_duration_ms"] <= 67),
    ],
    "fig6": [
        Expectation("3.2us preprocessing window exceeds the 2us switch",
                    lambda d: d["window_hides_switch"]),
    ],
    "fig11": [
        Expectation("Tai Chi speedup at 32-way concurrency >1.8x (paper: 4x;"
                    " structural cap ~3x in this configuration)",
                    lambda d: d["speedup_at_32"] > 1.8),
    ],
    "fig12": [
        Expectation("Tai Chi tcp_crr overhead <2% (paper: 0.2%)",
                    lambda d: abs(d["taichi"]) < 2.0),
        Expectation("Tai Chi-vDP overhead 4-12% (paper: ~8%)",
                    lambda d: 4.0 < d["taichi-vdp"] < 12.0),
        Expectation("type-2 overhead 15-30% (paper: ~26%)",
                    lambda d: 15.0 < d["type2"] < 30.0),
    ],
    "fig13": [
        Expectation("Tai Chi IOPS overhead <2% (paper: 0.06%)",
                    lambda d: abs(d["taichi"]) < 2.0),
        Expectation("Tai Chi-vDP overhead 4-12% (paper: ~6%)",
                    lambda d: 4.0 < d["taichi-vdp"] < 12.0),
        Expectation("type-2 overhead 15-30% (paper: ~25.7%)",
                    lambda d: 15.0 < d["type2"] < 30.0),
    ],
    "fig14": [
        Expectation("average DP overhead <3% (paper: 0.6%)",
                    lambda d: abs(d["avg_overhead_pct"]) < 3.0),
    ],
    "fig15": [
        Expectation("average MySQL overhead <4% (paper: 1.56%)",
                    lambda d: abs(d["avg_overhead_pct"]) < 4.0),
    ],
    "fig16": [
        Expectation("average Nginx overhead <4% (paper: 0.51%)",
                    lambda d: abs(d["avg_overhead_pct"]) < 4.0),
    ],
    "fig17": [
        Expectation("Tai Chi reduces startup >2x at density x4 (paper: 3.1x)",
                    lambda d: d["startup_reduction_at_x4"] > 2.0),
    ],
    "table1": [
        Expectation("kernel co-scheduling preemption is ms-scale",
                    lambda d: d["kernel_preemption_ms"] > 0.5),
        Expectation("Tai Chi preemption is us-scale",
                    lambda d: d["taichi_preemption_us_p50"] < 100),
    ],
    "table2": [],
    "table5": [
        Expectation("Tai Chi RTT within 5% of baseline",
                    lambda d: d["taichi_avg_vs_baseline"] < 1.05),
        Expectation("w/o HW probe max RTT >2x baseline (paper: 3x)",
                    lambda d: d["noprobe_max_vs_baseline"] > 2.0),
        Expectation("w/o HW probe mdev >1.8x baseline (paper: 1.8x)",
                    lambda d: d["noprobe_mdev_vs_baseline"] > 1.8),
    ],
    "ext_dp_boost": [
        Expectation("IOPS gain >12% (paper: 39%; tracks our +25% CPU)",
                    lambda d: d["iops_gain_pct"] > 12),
        Expectation("CPS gain >12% (paper: 43%)",
                    lambda d: d["cps_gain_pct"] > 12),
    ],
    "ablation_threshold": [
        Expectation("adaptive harvests more than a fixed large threshold",
                    lambda d: d["adaptive_harvested_ms"]
                    > d["large_harvested_ms"]),
    ],
    "ablation_slice": [
        Expectation("adaptive slices cut switch overhead vs fixed",
                    lambda d: d["adaptive_switch_overhead_pct"]
                    < d["fixed_switch_overhead_pct"]),
    ],
    "ext_preemptible_kernel": [
        Expectation("vCPU wrapping improves worst-case RT latency >2x",
                    lambda d: d["max_latency_improvement"] > 2.0),
    ],
    "ext_audit": [
        Expectation("audit records captured with privileged flags",
                    lambda d: d["records"] > 5),
    ],
    "ext_probe_fusion": [
        Expectation("fusion lowers premature-exit rate",
                    lambda d: d["premature_rate_fused"]
                    <= d["premature_rate_plain"]),
    ],
    "ext_cache_isolation": [
        Expectation("pollution overhead is measurable and removed",
                    lambda d: d["pollution_overhead_pct"] > 0),
    ],
    "ext_window_sweep": [
        Expectation("windows covering the switch cost add <0.5us queue wait",
                    lambda d: d["worst_added_qwait_covered_us"] < 0.5),
        Expectation("windows below the switch cost leak latency",
                    lambda d: d["worst_added_qwait_uncovered_us"]
                    > d["worst_added_qwait_covered_us"]),
    ],
    "ext_fault_resilience": [
        Expectation("degradation improves DP p99 under the fault storm",
                    lambda d: d["dp_p99_improvement"] > 1.0),
        Expectation("degradation holds startup compliance at or above bare",
                    lambda d: d["startup_compliance_gain_pct"] >= 0),
        Expectation("faults were injected and the layer responded",
                    lambda d: d["faults_injected"] > 0
                    and d["degradation_responses"] > 0),
    ],
    "ext_fleet_scale": [
        Expectation("Tai Chi beats static on fleet-wide DP p99",
                    lambda d: d["fleet_dp_p99_improvement"] > 1.0),
        Expectation("Tai Chi beats static on fleet DP SLO attainment",
                    lambda d: d["taichi_dp_slo_pct"]
                    > d["static_dp_slo_pct"]),
        Expectation("Tai Chi beats static on VM-startup SLO attainment",
                    lambda d: d["taichi_startup_slo_pct"]
                    > d["static_startup_slo_pct"]),
    ],
    "ext_fleet_durability": [
        Expectation("fleet completes degraded with partial coverage",
                    lambda d: d["degraded"]
                    and 0.0 < d["coverage_fraction"] < 1.0),
        Expectation("only the permanent failer lands in failed_nodes",
                    lambda d: d["failed_nodes"] == 1
                    and d["permanent_contained"]),
        Expectation("the transient node recovers via retry",
                    lambda d: d["transient_recovered"]
                    and d["transient_attempts"] == 2),
        Expectation("a retried success is byte-identical to first-try",
                    lambda d: d["retry_summary_identical"]),
        Expectation("resume reproduces the uninterrupted report exactly",
                    lambda d: d["resume_identical"]
                    and d["resumed_nodes"] > 0),
    ],
    "ext_multitenant": [
        Expectation("isolation-on holds the victim's declared DP p99 SLO "
                    "under the neighbor storm",
                    lambda d: d["victim_dp_p99_on_us"] <= 300.0),
        Expectation("isolation-off demonstrably breaches the same bound",
                    lambda d: d["victim_dp_p99_off_us"] > 300.0),
        Expectation("cross-tenant interference >1.5x on victim DP p99",
                    lambda d: d["interference_ratio"] > 1.5),
        Expectation("victim DP SLO attainment >=98% with isolation on",
                    lambda d: d["victim_dp_slo_on_pct"] >= 98.0),
        Expectation("isolation-off costs the victim >=2pp DP attainment",
                    lambda d: d["victim_dp_slo_off_pct"]
                    <= d["victim_dp_slo_on_pct"] - 2.0),
        Expectation("victim startup SLO attainment >=90% with isolation on",
                    lambda d: d["victim_startup_on_pct"] >= 90.0),
        Expectation("isolation invariants verify clean under the storm",
                    lambda d: d["isolation_invariant_violations"] == 0),
        Expectation("harvesting starts neighbor VMs the static partition "
                    "cannot",
                    lambda d: d["noisy_vms_on"] > d["noisy_vms_static"]),
    ],
    "ext_production_soak": [
        Expectation("Tai Chi adds no DP tail latency (p999 within 10% of "
                    "the static baseline)",
                    lambda d: d["dp_p999_vs_baseline"] < 1.10),
        Expectation("Tai Chi startup compliance at or above the baseline",
                    lambda d: d["taichi_startup_compliance_pct"]
                    >= d["static_startup_compliance_pct"]),
        Expectation("startups are faster under Tai Chi",
                    lambda d: d["startup_speedup"] > 1.0),
    ],
}


def _validate_one(payload):
    """Pool worker: run one experiment and score its expectations.

    Expectations are evaluated in-worker (the check lambdas don't pickle,
    so the parent can't ship ``Expectation`` objects — only the resulting
    ``(description, ok)`` pairs cross the process boundary).
    """
    exp_id, scale, seed = payload
    started = time.time()
    with observe() as session:
        result = run_experiment(exp_id, scale=scale, seed=seed)
        engine = _aggregate_engine_profile(session.metrics)
    elapsed = time.time() - started
    if engine is not None:
        result.metrics.update({
            "engine_environments": engine["environments"],
            "engine_events": engine["events_processed"],
            "engine_events_skipped": engine["events_skipped"],
            "engine_fast_forward_windows": engine["fast_forward_windows"],
            "engine_heap_peak": engine["heap_peak"],
            "engine_events_per_wall_s": engine["events_per_wall_s"],
        })
    checks = [
        (expectation.description, expectation.evaluate(result))
        for expectation in EXPECTATIONS.get(exp_id, [])
    ]
    return {
        "id": exp_id,
        "result": result,
        "checks": checks,
        "elapsed_s": elapsed,
        "engine": engine,
    }


def run_validation(scale=1.0, seed=0, exp_ids=None, progress=None, jobs=1):
    """Run experiments and evaluate expectations.

    Returns a list of dicts: {id, result, checks: [(description, ok)],
    elapsed_s}.  ``jobs > 1`` fans experiments across a process pool;
    results (and progress lines) always stream in ``exp_ids`` order, and
    ``jobs=1`` is the exact serial path.
    """
    exp_ids = sorted(EXPERIMENTS) if exp_ids is None else list(exp_ids)
    payloads = [(exp_id, scale, seed) for exp_id in exp_ids]
    outcomes = []
    for outcome in pool_imap(_validate_one, payloads, jobs=jobs,
                             label=lambda payload: payload[0]):
        outcomes.append(outcome)
        if progress is not None:
            status = "OK " if all(ok for _, ok in outcome["checks"]) else "FAIL"
            progress(f"[{status}] {outcome['id']} "
                     f"({outcome['elapsed_s']:.1f}s)")
    return outcomes


def _aggregate_engine_profile(registry):
    """Sum DES self-profiling across every environment an experiment built."""
    sources = registry.snapshot()["sources"]
    profiles = [value for name, value in sources.items()
                if name.split("#")[0] == "sim.engine"]
    if not profiles:
        return None
    events = sum(p["events_processed"] for p in profiles)
    skipped = sum(p.get("events_skipped", 0) for p in profiles)
    wall_s = sum(p["wall_time_s"] for p in profiles)
    return {
        "environments": len(profiles),
        "events_processed": events,
        "events_skipped": skipped,
        "fast_forward_windows": sum(p.get("fast_forward_windows", 0)
                                    for p in profiles),
        "heap_peak": max(p["heap_peak"] for p in profiles),
        "wall_time_s": wall_s,
        "events_per_wall_s": events / wall_s if wall_s > 0 else 0.0,
    }


def profile_scheduling(exp_id="fig4", scale=1.0, seed=0):
    """Trace one experiment and profile its scheduling behaviour.

    Reruns ``exp_id`` under a tracing session with inline invariant
    checking, then feeds the captured streams through the trace analyzer.
    Returns ``{"exp_id", "analysis", "violations"}`` — the data behind
    EXPERIMENTS.md's scheduling-latency profile section.
    """
    from repro.obs.analysis import analyze_streams

    with observe(trace=True, check_invariants=True) as session:
        run_experiment(exp_id, scale=scale, seed=seed)
        analysis = analyze_streams(session.streams, check_invariants=False)
        violations = session.violations()
    return {"exp_id": exp_id, "analysis": analysis, "violations": violations}


def _profile_md_lines(profile):
    """Render a ``profile_scheduling`` result as EXPERIMENTS.md lines."""
    from repro.obs.analysis import format_stream_report

    analysis = profile["analysis"]
    violations = profile["violations"]
    lines = [
        f"## Scheduling-latency profile ({profile['exp_id']})",
        "",
        "One traced run, profiled by `repro.obs.analysis` (the same engine",
        "behind `taichi-experiments analyze`): wakeup latency, switch-cost",
        "accounting by exit reason, IPI latency, and preprocessing-window",
        "hit rates, with the causal-invariant catalog checked inline.",
        "",
        "```",
    ]
    for warning in analysis["warnings"]:
        lines.append(f"WARNING: {warning}")
    for label, report in analysis["streams"].items():
        if not report["events"]:
            continue
        lines.append(format_stream_report(label, report))
    lines.append("```")
    lines.append("")
    if violations:
        lines.append(f"**{len(violations)} invariant violation(s) detected:**")
        lines.append("")
        for label, violation in violations[:10]:
            lines.append(f"- `{label}`: {violation.checker}: "
                         f"{violation.message}")
    else:
        checker_count = _checker_count()
        lines.append(f"**Invariants: all {checker_count} checkers passed "
                     "(0 violations).**")
    lines.append("")
    return lines


def _resilience_md_lines(outcome):
    """Render the fault-resilience outcome as an EXPERIMENTS.md section."""
    result = outcome["result"]
    derived = result.derived
    rows = {row["system"]: row for row in result.rows}
    bare = rows.get("Tai Chi, degradation off", {})
    hardened = rows.get("Tai Chi, degradation on", {})
    dp_ok = derived.get("dp_p99_improvement", 0) > 1.0
    slo_ok = derived.get("startup_compliance_gain_pct", -1) >= 0
    verdict = ("**both SLOs held**" if dp_ok and slo_ok
               else "**SLO regression under faults**")
    lines = [
        "## Resilience under fault injection",
        "",
        "The `ext_fault_resilience` experiment replays the default `storm`",
        "fault preset (lossy IPIs, a dark-then-lying hardware probe, CPU",
        "hotplug flaps, pipeline and poll-loop stalls) against the same",
        "production-style workload twice — with the graceful-degradation",
        "layer installed and bare.",
        "",
        f"- DP tail latency: p99 {bare.get('dp_p99_us', 0):.1f} us bare vs "
        f"{hardened.get('dp_p99_us', 0):.1f} us hardened "
        f"({derived.get('dp_p99_improvement', 0):.2f}x better with "
        "degradation on)",
        f"- VM-startup SLO compliance: "
        f"{derived.get('bare_startup_compliance_pct', 0):.1f}% bare vs "
        f"{derived.get('hardened_startup_compliance_pct', 0):.1f}% hardened "
        f"({derived.get('startup_compliance_gain_pct', 0):+.1f} points)",
        f"- {derived.get('faults_injected', 0)} faults injected, "
        f"{derived.get('degradation_responses', 0)} degradation responses "
        "(watchdog requeues, probe demotions, IPI retries, SLO-guard "
        "interventions)",
        f"- Verdict: {verdict}",
        "",
    ]
    return lines


def _multitenant_md_lines(outcome):
    """Render the multi-tenant outcome as an EXPERIMENTS.md section."""
    derived = outcome["result"].derived
    held = (derived.get("victim_dp_p99_on_us", 1e9) <= 300.0
            and derived.get("isolation_invariant_violations", 1) == 0)
    breached = derived.get("victim_dp_p99_off_us", 0) > 300.0
    verdict = ("**isolation holds the victim's SLO that sharing breaches**"
               if held and breached else "**isolation contrast not shown**")
    lines = [
        "## Multi-tenant isolation",
        "",
        "The `ext_multitenant` experiment pools one board among a weight-4",
        "victim tenant (declared 300 us DP SLO) and three weight-1 noisy",
        "neighbors (spiky incast, heavy CP hum, dense VM storms) while the",
        "hardware probe is dark — the regime where a squatting neighbor",
        "vCPU strands rx traffic for a whole adaptive slice.",
        "",
        f"- Victim DP rx-wait p99: "
        f"{derived.get('victim_dp_p99_on_us', 0):.1f} us isolated vs "
        f"{derived.get('victim_dp_p99_off_us', 0):.1f} us shared "
        f"({derived.get('interference_ratio', 0):.2f}x interference)",
        f"- Victim DP SLO attainment: "
        f"{derived.get('victim_dp_slo_on_pct', 0):.1f}% isolated vs "
        f"{derived.get('victim_dp_slo_off_pct', 0):.1f}% shared",
        f"- Victim startup SLO attainment: "
        f"{derived.get('victim_startup_on_pct', 0):.1f}% isolated "
        f"({derived.get('victim_startup_static_pct', 0):.1f}% on the "
        "static partition)",
        f"- Neighbor VMs started: {derived.get('noisy_vms_on', 0)} under "
        f"Tai Chi vs {derived.get('noisy_vms_static', 0)} on the static "
        "partition",
        f"- Isolation invariant violations: "
        f"{derived.get('isolation_invariant_violations', 0)}",
        f"- Verdict: {verdict}",
        "",
    ]
    return lines


def _checker_count():
    from repro.obs.invariants import DEFAULT_CHECKERS

    return len(DEFAULT_CHECKERS)


def write_experiments_md(path, outcomes, scale, seed, profile=None):
    """Render a validation run as the repository's EXPERIMENTS.md."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `python -m repro.experiments validate "
        f"--scale {scale} --seed {seed} --out {path}`.",
        "",
        "Every table and figure of the paper's evaluation (plus the",
        "motivation figures, the Section 8/9 extensions, and two design",
        "ablations) is regenerated by the live simulation.  Absolute",
        "numbers differ from the paper — the substrate is a",
        "discrete-event simulator, not Alibaba's production fleet — so",
        "each experiment is judged on *shape*: who wins, by roughly what",
        "factor, and where the crossovers fall.",
        "",
    ]
    passed = sum(1 for outcome in outcomes
                 if all(ok for _, ok in outcome["checks"]))
    lines.append(f"**Shape checks: {passed}/{len(outcomes)} experiments "
                 "pass all their bands.**")
    lines.append("")
    for outcome in outcomes:
        result = outcome["result"]
        lines.append(f"## {outcome['id']} — {result.title}")
        lines.append("")
        lines.append(f"*Paper reference: {result.paper_ref}; "
                     f"runtime {outcome['elapsed_s']:.1f}s at scale {scale}.*")
        lines.append("")
        lines.append("```")
        lines.append(result.to_text())
        lines.append("```")
        lines.append("")
        if outcome["checks"]:
            lines.append("Shape checks:")
            lines.append("")
            for description, ok in outcome["checks"]:
                marker = "x" if ok else " "
                lines.append(f"- [{marker}] {description}")
            lines.append("")
    for outcome in outcomes:
        if outcome["id"] == "ext_fault_resilience":
            lines.extend(_resilience_md_lines(outcome))
            break
    for outcome in outcomes:
        if outcome["id"] == "ext_multitenant":
            lines.extend(_multitenant_md_lines(outcome))
            break
    if profile is not None:
        lines.extend(_profile_md_lines(profile))
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    return path
