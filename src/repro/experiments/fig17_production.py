"""Figure 17: VM startup time vs instance density, with and without Tai Chi.

The production result: a 3.1x reduction in average VM startup latency in
high-density deployments.
"""

from repro.experiments.common import ratio, scaled_count
from repro.experiments.fig2_motivation import DENSITIES, run_density_point
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.scenario import arms_under_test
from repro.sim.units import MILLISECONDS

#: Reference arm first, measured arm second (``run --arm`` overrides).
DEFAULT_ARMS = ("baseline", "taichi")


@register("fig17", "VM startup vs density, with/without Tai Chi", "Figure 17")
def run(scale=1.0, seed=0):
    arms = arms_under_test(DEFAULT_ARMS)
    storm_size = scaled_count(16, scale, floor=8)
    rows = []
    for density in DENSITIES:
        base_startup, _, slo_ns = run_density_point(
            arms[0], density, storm_size, seed
        )
        taichi_startup, _, _ = run_density_point(
            arms[-1], density, storm_size, seed
        )
        rows.append({
            "density": density,
            "baseline_startup_ms": base_startup / MILLISECONDS,
            "taichi_startup_ms": taichi_startup / MILLISECONDS,
            "baseline_vs_slo": ratio(base_startup, slo_ns),
            "taichi_vs_slo": ratio(taichi_startup, slo_ns),
            "reduction": ratio(base_startup, taichi_startup),
        })
    return ExperimentResult(
        exp_id="fig17",
        title="Average VM startup time across instance densities",
        paper_ref="Figure 17",
        rows=rows,
        derived={"startup_reduction_at_x4": rows[-1]["reduction"]},
        paper={"startup_reduction_at_x4": 3.1},
    )
