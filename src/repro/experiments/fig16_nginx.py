"""Figure 16: Nginx requests/s at 10k connections, HTTP and HTTPS.

The paper reports 0.51 % average overhead for Tai Chi, up to ~1 % in
short-connection (HTTPS) scenarios.
"""

from repro.experiments.common import overhead_pct, scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.scenario import arms_under_test, build
from repro.sim.units import MILLISECONDS
from repro.workloads import run_nginx
from repro.workloads.background import start_cp_background

#: Reference arm first, measured arm second (``run --arm`` overrides).
DEFAULT_ARMS = ("baseline", "taichi")


def _measure(arm, duration, protocol, seed):
    deployment = build(arm, seed=seed)
    start_cp_background(deployment, n_monitors=4, rolling_tasks=3)
    deployment.warmup()
    return run_nginx(deployment, duration, protocol=protocol)


@register("fig16", "Nginx requests/s (HTTP and HTTPS)", "Figure 16")
def run(scale=1.0, seed=0):
    arms = arms_under_test(DEFAULT_ARMS)
    duration = scaled_duration(50 * MILLISECONDS, scale)
    rows = []
    for protocol in ("http", "https"):
        baseline = _measure(arms[0], duration, protocol, seed)
        taichi = _measure(arms[-1], duration, protocol, seed)
        rows.append({
            "protocol": protocol,
            "baseline_rps": baseline["requests_per_s"],
            "taichi_rps": taichi["requests_per_s"],
            "overhead_pct": overhead_pct(
                taichi["requests_per_s"], baseline["requests_per_s"]
            ),
        })
    overheads = [row["overhead_pct"] for row in rows]
    return ExperimentResult(
        exp_id="fig16",
        title="Nginx web-serving throughput",
        paper_ref="Figure 16",
        rows=rows,
        derived={
            "avg_overhead_pct": sum(overheads) / len(overheads),
            "max_overhead_pct": max(overheads),
        },
        paper={"avg_overhead_pct": 0.51, "max_overhead_pct": 1.0},
    )
