"""Table 5: ping RTT across baseline / Tai Chi / Tai Chi w/o HW probe.

Moderate CP pressure keeps vCPU slices active on the pinged CPU.  With the
hardware workload probe, the 3.2 us preprocessing window hides the vCPU
switch and RTT matches the baseline; without it, DP resumption waits for
slice expiry and max RTT / mdev inflate severely (the paper: +203 % max,
+80 % mdev).
"""

from repro.core.config import TaiChiConfig
from repro.experiments.common import ratio, scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.scenario import arms_under_test, build, get_arm
from repro.sim.units import MICROSECONDS, MILLISECONDS, SECONDS
from repro.workloads import run_ping
from repro.workloads.background import start_cp_background

#: Reference arm, Tai Chi, and the probe ablation (``run --arm`` overrides;
#: the derived ratios always compare the last arms against the first).
DEFAULT_ARMS = ("baseline", "taichi", "taichi-no-hw-probe")

_LABELS = {"taichi-no-hw-probe": "taichi w/o HW probe"}


@register("table5", "RTT across three mechanisms", "Table 5")
def run(scale=1.0, seed=0):
    arms = arms_under_test(DEFAULT_ARMS)
    duration = scaled_duration(2 * SECONDS, scale, floor_ns=300 * MILLISECONDS)
    rows = []
    for arm in arms:
        kwargs = {}
        if get_arm(arm).taichi_family:
            kwargs["taichi_config"] = TaiChiConfig(
                max_slice_ns=100 * MICROSECONDS)
        deployment = build(arm, seed=seed, **kwargs)
        start_cp_background(deployment, n_monitors=4, rolling_tasks=3)
        deployment.warmup()
        result = run_ping(deployment, duration)
        rows.append({
            "mechanism": _LABELS.get(arm, arm),
            "min_us": result["min_ns"] / MICROSECONDS,
            "avg_us": result["avg_ns"] / MICROSECONDS,
            "max_us": result["max_ns"] / MICROSECONDS,
            "mdev_us": result["mdev_ns"] / MICROSECONDS,
        })
    base = rows[0]
    if arms == DEFAULT_ARMS:
        taichi, noprobe = rows[1], rows[2]
        derived = {
            "taichi_avg_vs_baseline": ratio(taichi["avg_us"], base["avg_us"]),
            "noprobe_avg_vs_baseline": ratio(noprobe["avg_us"], base["avg_us"]),
            "noprobe_max_vs_baseline": ratio(noprobe["max_us"], base["max_us"]),
            "noprobe_mdev_vs_baseline": ratio(noprobe["mdev_us"], base["mdev_us"]),
        }
    else:
        derived = {
            f"{arm}_avg_vs_{arms[0]}": ratio(row["avg_us"], base["avg_us"])
            for arm, row in zip(arms[1:], rows[1:])
        }
    return ExperimentResult(
        exp_id="table5",
        title="Ping RTT: the hardware probe hides scheduling latency",
        paper_ref="Table 5",
        rows=rows,
        derived=derived,
        paper={
            "baseline_us": {"min": 26, "avg": 30, "max": 38, "mdev": 5},
            "taichi_us": {"min": 27, "avg": 30, "max": 38, "mdev": 5},
            "noprobe_us": {"min": 32, "avg": 37, "max": 115, "mdev": 9},
        },
    )
