"""Sensitivity sweep: preprocessing window vs. vCPU switch cost.

Observation 4 of the paper rests on one inequality: the accelerator's
I/O preprocessing window (3.2 us on their hardware) exceeds the vCPU
context-switch cost (~2 us), so preemption started at packet detection
completes before the packet reaches the rx queue.  This sweep varies the
window across and beyond the switch cost and measures the added ping RTT
under CP pressure — the crossover should sit where window ~= switch cost,
and the added latency should shrink to ~zero above it.

This is the kind of figure a port to a different SmartNIC (slower
accelerator, faster cores) would need before deployment.
"""

from repro.core import TaiChiConfig
from repro.experiments.common import scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.hw import AcceleratorParams, BoardConfig
from repro.scenario import arms_under_test, build, get_arm
from repro.sim.units import MICROSECONDS, MILLISECONDS, SECONDS
from repro.workloads import run_ping
from repro.workloads.background import start_cp_background

# Preprocessing-stage durations to sweep (transfer stays at 0.5 us).
PREPROCESS_NS = (500, 1_000, 1_500, 2_700, 4_000)
TRANSFER_NS = 500

#: Reference arm and the swept arm (``run --arm`` overrides).
DEFAULT_ARMS = ("baseline", "taichi")


def _measure(arm, preprocess_ns, duration_ns, seed, config=None):
    board_config = BoardConfig(
        accelerator=AcceleratorParams(preprocess_ns=preprocess_ns,
                                      transfer_ns=TRANSFER_NS),
    )
    kwargs = {}
    if get_arm(arm).taichi_family and config is not None:
        kwargs["taichi_config"] = config
    deployment = build(arm, seed=seed, board_config=board_config,
                       **kwargs)
    # Saturating CP pressure keeps the pinged CPU in a vCPU slice whenever
    # a probe arrives, so every ping exercises the revoke path.
    start_cp_background(deployment, n_monitors=4, rolling_tasks=10)
    deployment.warmup()
    return run_ping(deployment, duration_ns)


@register("ext_window_sweep",
          "Latency hiding vs preprocessing-window size",
          "Observation 4 (sensitivity analysis)")
def run(scale=1.0, seed=0):
    duration = scaled_duration(1 * SECONDS, scale,
                               floor_ns=200 * MILLISECONDS)
    # A fixed empty-poll threshold keeps yield timing identical across the
    # sweep; the adaptive loop would otherwise trade yields away exactly in
    # the configurations we want to measure.
    config = TaiChiConfig(adaptive_threshold=False)
    switch_us = config.costs.switch_total_ns / MICROSECONDS
    arms = arms_under_test(DEFAULT_ARMS)
    rows = []
    for preprocess_ns in PREPROCESS_NS:
        window_ns = preprocess_ns + TRANSFER_NS
        baseline = _measure(arms[0], preprocess_ns, duration, seed)
        taichi = _measure(arms[-1], preprocess_ns, duration, seed,
                          config=config)
        rows.append({
            "window_us": window_ns / MICROSECONDS,
            "window_covers_switch": window_ns >= config.costs.switch_total_ns,
            "baseline_qwait_us": baseline["queue_wait_avg_ns"] / MICROSECONDS,
            "taichi_qwait_us": taichi["queue_wait_avg_ns"] / MICROSECONDS,
            "added_qwait_us":
                (taichi["queue_wait_avg_ns"] - baseline["queue_wait_avg_ns"])
                / MICROSECONDS,
            "added_rtt_avg_us": (taichi["avg_ns"] - baseline["avg_ns"])
            / MICROSECONDS,
        })
    covered = [row for row in rows if row["window_covers_switch"]]
    uncovered = [row for row in rows if not row["window_covers_switch"]]
    return ExperimentResult(
        exp_id="ext_window_sweep",
        title="Added DP latency vs accelerator preprocessing window",
        paper_ref="Observation 4",
        rows=rows,
        derived={
            "switch_cost_us": switch_us,
            "worst_added_qwait_covered_us":
                max(row["added_qwait_us"] for row in covered),
            "worst_added_qwait_uncovered_us":
                max(row["added_qwait_us"] for row in uncovered)
                if uncovered else 0.0,
        },
        paper={
            "claim": (
                "the 3.2us window hides the 2us switch; below the switch "
                "cost, part of the switch leaks into packet latency"
            ),
        },
    )
