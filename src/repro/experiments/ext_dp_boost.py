"""Section 8 extension: inverse adaptation for data-plane throughput.

In low-density scenarios Tai Chi's dynamic partitioning reallocates 50 %
of the CP partition's physical CPUs to DP services (here 4 -> 2 CP CPUs,
8 -> 10 DP CPUs).  The paper reports +39 % peak IOPS and +43 % CPS while
CP performance stays at baseline by harvesting idle DP cycles.
"""

from repro.baselines import StaticPartitionDeployment, TaiChiDeployment
from repro.core import DynamicRepartitioner
from repro.experiments.common import ratio, scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.sim.units import MILLISECONDS
from repro.workloads import run_fio, run_sockperf_tcp, run_synth_cp


def _boosted_deployment(seed, dp_kind="net"):
    """A Tai Chi deployment after live cp->dp repartitioning (50% of CP)."""
    deployment = TaiChiDeployment(seed=seed, dp_kind=dp_kind)
    deployment.warmup()
    DynamicRepartitioner(deployment).cp_to_dp(2)
    return deployment


@register("ext_dp_boost", "Reallocating CP CPUs to DP (Section 8)",
          "Section 8, 'Enhanced data-plane performance'")
def run(scale=1.0, seed=0):
    duration = scaled_duration(50 * MILLISECONDS, scale)

    base_storage = StaticPartitionDeployment(seed=seed, dp_kind="storage")
    base_storage.warmup()
    base_iops = run_fio(base_storage, duration)["iops"]
    boost_iops = run_fio(_boosted_deployment(seed, "storage"), duration)["iops"]

    base_net = StaticPartitionDeployment(seed=seed)
    base_net.warmup()
    base_cps = run_sockperf_tcp(base_net, duration)["cps"]
    boost_cps = run_sockperf_tcp(_boosted_deployment(seed), duration)["cps"]

    # CP sanity: with only 2 dedicated CP CPUs plus harvested DP cycles,
    # CP execution should stay near the 4-CPU static baseline.
    cp_base = run_synth_cp(StaticPartitionDeployment(seed=seed), 8, rounds=1)
    cp_boost = run_synth_cp(_boosted_deployment(seed), 8, rounds=1)

    rows = [
        {"metric": "fio peak IOPS", "baseline_8dp": base_iops,
         "boosted_10dp": boost_iops, "gain_pct": (ratio(boost_iops, base_iops) - 1) * 100},
        {"metric": "sockperf CPS", "baseline_8dp": base_cps,
         "boosted_10dp": boost_cps, "gain_pct": (ratio(boost_cps, base_cps) - 1) * 100},
        {"metric": "synth_cp avg ms (8 tasks)", "baseline_8dp": cp_base["avg_exec_ms"],
         "boosted_10dp": cp_boost["avg_exec_ms"],
         "gain_pct": (1 - ratio(cp_boost["avg_exec_ms"], cp_base["avg_exec_ms"])) * 100},
    ]
    return ExperimentResult(
        exp_id="ext_dp_boost",
        title="Dynamic repartitioning boosts DP throughput without hurting CP",
        paper_ref="Section 8",
        rows=rows,
        derived={
            "iops_gain_pct": rows[0]["gain_pct"],
            "cps_gain_pct": rows[1]["gain_pct"],
        },
        paper={
            "iops_gain_pct": 39.0,
            "cps_gain_pct": 43.0,
            "note": (
                "Paper gains exceed the +25% CPU increase because their DP "
                "was partially port/queue-bound at 8 CPUs; our model is "
                "CPU-bound so gains track the CPU ratio."
            ),
        },
    )
