"""Section 8 extension: inverse adaptation for data-plane throughput.

In low-density scenarios Tai Chi's dynamic partitioning reallocates 50 %
of the CP partition's physical CPUs to DP services (here 4 -> 2 CP CPUs,
8 -> 10 DP CPUs).  The paper reports +39 % peak IOPS and +43 % CPS while
CP performance stays at baseline by harvesting idle DP cycles.
"""

from repro.experiments.common import ratio, scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.scenario import arms_under_test, build
from repro.sim.units import MILLISECONDS
from repro.workloads import run_fio, run_sockperf_tcp, run_synth_cp

#: Reference arm first; the measured arm gets the Section 8 dp_boost=2
#: repartition (``run --arm`` overrides; the boost needs a Tai Chi arm).
DEFAULT_ARMS = ("baseline", "taichi")


def _baseline(arm, seed, dp_kind="net"):
    deployment = build(arm, seed=seed, dp_kind=dp_kind)
    deployment.warmup()
    return deployment


def _boosted(arm, seed, dp_kind="net"):
    """The measured arm after live cp->dp repartitioning (50% of CP)."""
    return build(arm, seed=seed, dp_kind=dp_kind, dp_boost=2)


@register("ext_dp_boost", "Reallocating CP CPUs to DP (Section 8)",
          "Section 8, 'Enhanced data-plane performance'")
def run(scale=1.0, seed=0):
    arms = arms_under_test(DEFAULT_ARMS)
    ref, boosted = arms[0], arms[-1]
    duration = scaled_duration(50 * MILLISECONDS, scale)

    base_iops = run_fio(_baseline(ref, seed, "storage"), duration)["iops"]
    boost_iops = run_fio(_boosted(boosted, seed, "storage"), duration)["iops"]

    base_cps = run_sockperf_tcp(_baseline(ref, seed), duration)["cps"]
    boost_cps = run_sockperf_tcp(_boosted(boosted, seed), duration)["cps"]

    # CP sanity: with only 2 dedicated CP CPUs plus harvested DP cycles,
    # CP execution should stay near the 4-CPU static baseline.
    cp_base = run_synth_cp(build(ref, seed=seed), 8, rounds=1)
    cp_boost = run_synth_cp(_boosted(boosted, seed), 8, rounds=1)

    rows = [
        {"metric": "fio peak IOPS", "baseline_8dp": base_iops,
         "boosted_10dp": boost_iops, "gain_pct": (ratio(boost_iops, base_iops) - 1) * 100},
        {"metric": "sockperf CPS", "baseline_8dp": base_cps,
         "boosted_10dp": boost_cps, "gain_pct": (ratio(boost_cps, base_cps) - 1) * 100},
        {"metric": "synth_cp avg ms (8 tasks)", "baseline_8dp": cp_base["avg_exec_ms"],
         "boosted_10dp": cp_boost["avg_exec_ms"],
         "gain_pct": (1 - ratio(cp_boost["avg_exec_ms"], cp_base["avg_exec_ms"])) * 100},
    ]
    return ExperimentResult(
        exp_id="ext_dp_boost",
        title="Dynamic repartitioning boosts DP throughput without hurting CP",
        paper_ref="Section 8",
        rows=rows,
        derived={
            "iops_gain_pct": rows[0]["gain_pct"],
            "cps_gain_pct": rows[1]["gain_pct"],
        },
        paper={
            "iops_gain_pct": 39.0,
            "cps_gain_pct": 43.0,
            "note": (
                "Paper gains exceed the +25% CPU increase because their DP "
                "was partially port/queue-bound at 8 CPUs; our model is "
                "CPU-bound so gains track the CPU ratio."
            ),
        },
    )
