"""Experiment registry and runner."""

EXPERIMENTS = {}


def register(exp_id, title, paper_ref):
    """Decorator registering ``run(scale=1.0, seed=0) -> ExperimentResult``."""

    def _wrap(func):
        if exp_id in EXPERIMENTS:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        EXPERIMENTS[exp_id] = {
            "id": exp_id,
            "title": title,
            "paper_ref": paper_ref,
            "run": func,
        }
        return func

    return _wrap


def get_experiment(exp_id):
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(exp_id, scale=1.0, seed=0):
    """Run one experiment at the given scale factor; returns its result.

    ``scale`` shrinks durations/round counts for quick runs (benchmarks use
    small scales; 1.0 is the full published configuration of this repo).
    """
    entry = get_experiment(exp_id)
    return entry["run"](scale=scale, seed=seed)
