"""Experiment harness: one module per paper table/figure.

Each experiment registers itself with :mod:`repro.experiments.registry`
under its paper id (``fig11``, ``table5``, ...) and returns an
:class:`~repro.experiments.report.ExperimentResult` containing the rows it
reproduces plus the paper's reference values for side-by-side comparison.

Run from the command line::

    python -m repro.experiments list
    python -m repro.experiments run fig11 --scale 0.5
    python -m repro.experiments run all
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, register, run_experiment
from repro.experiments.report import ExperimentResult, format_table

# Importing the modules registers the experiments.
from repro.experiments import (  # noqa: F401  (import-for-side-effect)
    ablation_adaptive,
    ext_fault_resilience,
    ext_features,
    ext_fleet_durability,
    ext_fleet_scale,
    ext_multitenant,
    ext_production_soak,
    ext_window_sweep,
    fig2_motivation,
    fig3_cpu_util_cdf,
    fig4_spike_demo,
    fig5_nonpreemptible,
    fig6_breakdown,
    fig11_cp_performance,
    fig12_network_virt,
    fig13_storage_virt,
    fig14_dp_performance,
    fig15_mysql,
    fig16_nginx,
    fig17_production,
    table1_comparison,
    table2_virtualization,
    table5_rtt,
    ext_dp_boost,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "format_table",
    "get_experiment",
    "register",
    "run_experiment",
]
