"""Figure 5: census of non-preemptible routine durations.

Production trace substitute calibrated to the published statistics:
>456k routines exceeding 1 ms over 12 hours of tracing, 94.5 % of them in
the 1-5 ms band, maximum 67 ms.
"""

from repro.experiments.common import scaled_count
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.sim.units import MILLISECONDS
from repro.workloads.traces import generate_nonpreemptible_census


@register("fig5", "Non-preemptible routine duration census", "Figure 5")
def run(scale=1.0, seed=0):
    n_routines = scaled_count(2_500_000, scale, floor=50_000)
    histogram, long_tail = generate_nonpreemptible_census(
        n_routines=n_routines, seed=seed
    )
    in_band = sum(1 for value in long_tail
                  if 1 * MILLISECONDS <= value < 5 * MILLISECONDS)
    return ExperimentResult(
        exp_id="fig5",
        title="Distribution of non-preemptible routine durations",
        paper_ref="Figure 5",
        rows=[
            {
                "band": label,
                "count": count,
            }
            for label, count in zip(_band_labels(), histogram.counts)
        ],
        derived={
            "routines_over_1ms": len(long_tail),
            "fraction_1_to_5ms": in_band / max(len(long_tail), 1),
            "max_duration_ms": max(long_tail) / MILLISECONDS if long_tail else 0,
        },
        paper={
            "routines_over_1ms": ">456,000 (12h fleet trace)",
            "fraction_1_to_5ms": 0.945,
            "max_duration_ms": 67,
        },
        notes="Synthetic census (documented substitution for the fleet trace).",
    )


def _band_labels():
    return ["<1ms", "1-5ms", "5-10ms", "10-20ms", "20-40ms", "40-67ms", ">=67ms"]
