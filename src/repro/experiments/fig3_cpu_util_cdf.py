"""Figure 3: CDF of data-plane CPU utilization.

Production trace substitute: a synthetic per-second utilization sample set
calibrated so 99.68 % of samples fall below 32.5 % utilization (67.5 %
idle cycles) — the paper's headline waste statistic.
"""

from repro.experiments.common import scaled_count
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.workloads.traces import generate_dp_utilization_trace


@register("fig3", "CDF of data-plane CPU utilization", "Figure 3")
def run(scale=1.0, seed=0):
    n_samples = scaled_count(1_200_000, scale, floor=20_000)
    cdf = generate_dp_utilization_trace(n_samples=n_samples, seed=seed)
    thresholds = [0.10, 0.20, 0.325, 0.50, 0.75, 1.00]
    rows = [
        {
            "util_threshold_pct": threshold * 100,
            "fraction_below": cdf.fraction_below(threshold),
        }
        for threshold in thresholds
    ]
    return ExperimentResult(
        exp_id="fig3",
        title="CDF of data-plane CPU utilization",
        paper_ref="Figure 3",
        rows=rows,
        derived={
            "samples": n_samples,
            "fraction_below_32.5pct": cdf.fraction_below(0.325),
            "p99_util": cdf.quantile(0.99),
        },
        paper={
            "fraction_below_32.5pct": 0.9968,
            "idle_cycles_at_p99.68": 0.675,
        },
        notes=(
            "Synthetic trace (documented substitution): the production "
            "samples are Alibaba-internal; only the published distribution "
            "statistics are reproduced."
        ),
    )
