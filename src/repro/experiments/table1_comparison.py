"""Table 1: scheduling granularity / overhead / transparency comparison.

The prior systems (Shenango, Caladan, Concord, Skyloft, Vessel) are not
reimplemented; their rows carry the paper's published characteristics.
What *is* measured on the live models: the kernel-scheduler route's
preemption granularity (the naive co-scheduling deployment, whose wakeup
latency is gated by non-preemptible routines — the ms-scale failure mode
all five prior systems share on SmartNICs) and Tai Chi's VM-exit-based
preemption granularity.
"""

from repro.experiments.fig4_spike_demo import _measure_spike
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.hw.packet import IORequest, PacketKind
from repro.scenario import build
from repro.sim.units import MICROSECONDS, MILLISECONDS, SECONDS
from repro.workloads.background import start_cp_background

PRIOR_WORK = (
    ("Shenango [36]", "ms-scale", "High (dedicated IOKernel core)", "Partial"),
    ("Caladan [17]", "ms-scale", "High (dedicated sched core)", "Partial"),
    ("Concord [21]", "ms-scale", "Low", "Partial"),
    ("Skyloft [23]", "ms-scale", "Low", "Partial"),
    ("Vessel [29]", "ms-scale", "Low", "Partial"),
)


def _measure_taichi_preemption(seed):
    """DP reclaim latency under Tai Chi while a CP vCPU runs a kernel section."""
    deployment = build("taichi", seed=seed)
    start_cp_background(deployment, n_monitors=2, rolling_tasks=4)
    deployment.warmup(5 * MILLISECONDS)
    env = deployment.env
    board = deployment.board
    samples = []

    def driver():
        queue_id = deployment.services[0].queue_ids[0]
        for _ in range(200):
            yield env.timeout(500 * MICROSECONDS)
            done = env.event()
            request = IORequest(PacketKind.NET_TX, 64, queue_id,
                                service_ns=1_500, done=done)
            board.accelerator.submit(request)
            result = yield done
            # Reclaim latency: rx-ready to DP pickup.
            samples.append(result.t_dp_start - result.t_rx_ready)

    proc = env.process(driver(), name="table1-driver")
    env.run(until=env.any_of([proc, env.timeout(2 * SECONDS)]))
    samples.sort()
    return samples[len(samples) // 2], samples[-1]


@register("table1", "Prior-work comparison for DP/CP co-scheduling", "Table 1")
def run(scale=1.0, seed=0):
    spike, _ = _measure_spike("nonpreemptible", seed=seed)
    kernel_granularity_ms = (spike["t3"] - spike["t2"]) / MILLISECONDS
    taichi_p50, taichi_max = _measure_taichi_preemption(seed)
    rows = [
        {
            "system": name,
            "granularity": granularity,
            "overhead": overhead,
            "cp_transparency": transparency,
            "measured": "paper-reported",
        }
        for name, granularity, overhead, transparency in PRIOR_WORK
    ]
    rows.append({
        "system": "kernel co-scheduling (measured)",
        "granularity": f"{kernel_granularity_ms:.1f} ms",
        "overhead": "Low",
        "cp_transparency": "Full",
        "measured": "this model",
    })
    rows.append({
        "system": "Tai Chi (measured)",
        "granularity": f"{taichi_p50 / MICROSECONDS:.1f} us (p50)",
        "overhead": "Low",
        "cp_transparency": "Full",
        "measured": "this model",
    })
    return ExperimentResult(
        exp_id="table1",
        title="Coordination mechanisms for DP services and CP tasks",
        paper_ref="Table 1",
        rows=rows,
        derived={
            "kernel_preemption_ms": kernel_granularity_ms,
            "taichi_preemption_us_p50": taichi_p50 / MICROSECONDS,
            "taichi_preemption_us_max": taichi_max / MICROSECONDS,
        },
        paper={
            "taichi_granularity": "us-scale",
            "prior_granularity": "ms-scale",
        },
    )
