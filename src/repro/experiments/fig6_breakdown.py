"""Figure 6: timing breakdown of SmartNIC I/O packet processing.

Measures each stage of the accelerator pipeline on the live model and
checks the scheduling-latency-hiding arithmetic of Observation 4: the
~3.2 us preprocessing window exceeds the ~2 us vCPU switch cost.
"""

from repro.core.config import TaiChiConfig
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.hw.packet import IORequest, PacketKind
from repro.scenario import build
from repro.sim.units import MICROSECONDS, MILLISECONDS


@register("fig6", "I/O preprocessing breakdown", "Figure 6")
def run(scale=1.0, seed=0):
    deployment = build("baseline", seed=seed)
    env = deployment.env
    board = deployment.board
    samples = []

    def driver():
        queue_id = deployment.services[0].queue_ids[0]
        for _ in range(max(int(50 * scale), 10)):
            done = env.event()
            request = IORequest(PacketKind.NET_TX, 1500, queue_id,
                                service_ns=1_500, done=done)
            board.accelerator.submit(request)
            result = yield done
            samples.append(result)
            yield env.timeout(200 * MICROSECONDS)

    proc = env.process(driver(), name="fig6-driver")
    env.run(until=env.any_of([proc, env.timeout(500 * MILLISECONDS)]))

    preprocess = [r.t_rx_ready - r.t_accel_start - board.accelerator.params.transfer_ns
                  for r in samples]
    transfer = [board.accelerator.params.transfer_ns] * len(samples)
    pickup = [r.t_dp_start - r.t_rx_ready for r in samples]
    costs = TaiChiConfig().costs
    window_us = board.accelerator.window_ns / MICROSECONDS
    switch_us = costs.switch_total_ns / MICROSECONDS
    rows = [
        {"stage": "(2) accelerator preprocessing",
         "mean_us": _mean(preprocess) / MICROSECONDS},
        {"stage": "(3) transfer to shared memory",
         "mean_us": _mean(transfer) / MICROSECONDS},
        {"stage": "(4) DP software pickup wait",
         "mean_us": _mean(pickup) / MICROSECONDS},
    ]
    return ExperimentResult(
        exp_id="fig6",
        title="Breakdown of processing I/O packets in DP services",
        paper_ref="Figure 6 / Observation 4",
        rows=rows,
        derived={
            "preprocessing_window_us": window_us,
            "vcpu_switch_cost_us": switch_us,
            "window_hides_switch": window_us > switch_us,
        },
        paper={
            "preprocessing_window_us": 3.2,
            "vcpu_switch_cost_us": 2.0,
            "window_hides_switch": True,
        },
    )


def _mean(values):
    return sum(values) / len(values) if values else 0.0
