"""Fault-storm resilience: graceful degradation on vs. off (extension).

The paper's production story (Section 6.6) assumes a healthy substrate;
hyperscale reality includes lost IPIs, dark probes, hotplug churn and
wedged pollers.  This experiment runs the production-soak workload under
the default ``storm`` fault preset twice — once with the graceful
degradation layer installed and once bare — and scores both SLOs:

* DP SLO: tenant probe p99 latency (the probe-health monitor's degraded
  slice cap is what keeps packets from being stranded behind 800 us
  slices while the hardware probe is dark);
* CP SLO: VM-startup compliance (bounded IPI retry is what brings a
  hotplugged CP pCPU back through a lossy-IPI window).

Both arms see the *identical* fault schedule: same plan, same seeds,
same draw streams.
"""

from repro.experiments.common import scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.faults import FaultPlan, active_fault_plan
from repro.hw.host import HostNode, VMSpec
from repro.hw.packet import IORequest, PacketKind
from repro.metrics import LatencyRecorder
from repro.scenario import build
from repro.sim.units import MICROSECONDS, MILLISECONDS, SECONDS
from repro.workloads.background import start_cp_background, start_dp_background

_BASE_DURATION_NS = 900 * MILLISECONDS
# The storm preset is laid out over a ~1.2 s horizon; compress it to the
# actual run window so every fault (and its recovery) lands inside.
_STORM_SPAN_NS = 1_200 * MILLISECONDS


def _resilient_run(duration_ns, seed, plan, degradation_on):
    with active_fault_plan(plan):
        deployment = build("taichi", seed=seed)
    if degradation_on:
        deployment.taichi.enable_degradation()
    start_dp_background(deployment, utilization=0.25)
    start_cp_background(deployment, n_monitors=6, rolling_tasks=3)
    deployment.warmup()
    env = deployment.env
    board = deployment.board
    host = HostNode(deployment)

    probe_latency = LatencyRecorder(name="tenant-probe")

    def latency_probe():
        rng = deployment.rng.stream("resilience-probe")
        while True:
            queue = int(rng.integers(0, 8))
            done = env.event()
            done.callbacks.append(
                lambda event: probe_latency.record(
                    event.value.total_latency_ns))
            board.accelerator.submit(IORequest(
                PacketKind.NET_TX, 64, ("net", queue, 0),
                service_ns=1_500, done=done))
            yield env.timeout(int(rng.exponential(400 * MICROSECONDS)))

    env.process(latency_probe(), name="latency-probe")

    def storm_source():
        rng = deployment.rng.stream("resilience-storms")
        while True:
            yield env.timeout(int(rng.exponential(75 * MILLISECONDS)))
            # Storage-heavy guests: enough device-management work per VM
            # that losing a CP pCPU to an unrecovered hotplug actually
            # shows up in the startup tail.
            for _ in range(int(rng.integers(7, 12))):
                host.create_vm(VMSpec(n_vblks=8))

    env.process(storm_source(), name="storm-source")
    deployment.run(env.now + duration_ns)
    # Drain: give in-flight startups a grace window.
    deployment.run(env.now + 500 * MILLISECONDS)

    startups = [vm.startup_time_ns() for vm in host.vms
                if vm.startup_time_ns() is not None]
    slo_ns = host.manager.params.startup_slo_ns
    within = sum(1 for value in startups if value <= slo_ns)
    injector = deployment.fault_injector
    degradation = deployment.taichi.degradation
    return {
        "dp_p99_us": probe_latency.p99() / MICROSECONDS,
        "dp_p999_us": probe_latency.p999() / MICROSECONDS,
        "vms_started": len(startups),
        "startup_slo_compliance_pct":
            100.0 * within / max(len(startups), 1),
        "faults_injected": injector.injected,
        "faults_cleared": injector.cleared,
        "responses": (sum(
            count for key, count in degradation.stats().items()
            if isinstance(count, int) and not isinstance(count, bool))
            if degradation is not None else 0),
    }


@register("ext_fault_resilience",
          "Fault storm: graceful degradation on vs. off", "extension")
def run(scale=1.0, seed=0):
    duration = scaled_duration(_BASE_DURATION_NS, scale,
                               floor_ns=300 * MILLISECONDS)
    plan = FaultPlan.preset("storm").scaled(duration / _STORM_SPAN_NS)
    bare = _resilient_run(duration, seed, plan, degradation_on=False)
    hardened = _resilient_run(duration, seed, plan, degradation_on=True)
    rows = [
        {"system": "Tai Chi, degradation off", **bare},
        {"system": "Tai Chi, degradation on", **hardened},
    ]
    return ExperimentResult(
        exp_id="ext_fault_resilience",
        title="Fault-storm resilience: degradation layer on vs. off",
        paper_ref="extension",
        rows=rows,
        derived={
            "dp_p99_improvement":
                bare["dp_p99_us"] / max(hardened["dp_p99_us"], 1e-9),
            "hardened_startup_compliance_pct":
                hardened["startup_slo_compliance_pct"],
            "bare_startup_compliance_pct":
                bare["startup_slo_compliance_pct"],
            "startup_compliance_gain_pct":
                hardened["startup_slo_compliance_pct"]
                - bare["startup_slo_compliance_pct"],
            "faults_injected": hardened["faults_injected"],
            "degradation_responses": hardened["responses"],
        },
        paper={
            "claim": (
                "extension: under an identical fault storm the degradation "
                "layer must hold both SLOs above the bare framework"
            ),
        },
    )
