"""Shared helpers for experiment modules."""

from repro.sim.units import MILLISECONDS


def scaled_duration(base_ns, scale, floor_ns=5 * MILLISECONDS):
    """Scale a measurement window, never below a meaningful floor."""
    return max(int(base_ns * scale), floor_ns)


def scaled_count(base, scale, floor=1):
    """Scale an iteration/client count, never below ``floor``."""
    return max(int(round(base * scale)), floor)


def ratio(numerator, denominator):
    """Safe ratio for derived metrics."""
    if not denominator:
        return float("inf") if numerator else 0.0
    return numerator / denominator


def overhead_pct(system_value, baseline_value):
    """Percent throughput loss of ``system_value`` vs ``baseline_value``."""
    if not baseline_value:
        return 0.0
    return (1.0 - system_value / baseline_value) * 100.0
