"""Shared helpers for experiment modules."""

# Canonical implementations live in repro.metrics.stats; re-exported here
# because every experiment module historically imports them from common.
from repro.metrics.stats import overhead_pct, ratio  # noqa: F401
from repro.sim.units import MILLISECONDS


def scaled_duration(base_ns, scale, floor_ns=5 * MILLISECONDS):
    """Scale a measurement window, never below a meaningful floor."""
    return max(int(base_ns * scale), floor_ns)


def scaled_count(base, scale, floor=1):
    """Scale an iteration/client count, never below ``floor``."""
    return max(int(round(base * scale)), floor)
