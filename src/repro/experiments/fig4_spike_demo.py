"""Figure 4: a latency spike from a non-preemptible CP routine.

One DP service and one CP task naively co-scheduled on the same CPU.  The
CP task enters a spinlock-protected kernel section at T1 while the DP
service is idle; a packet arrives at T2; the DP service cannot run until
the section ends at T3.  The spike is T3 - T2, compared against the clean
wakeup latency when the CP task is purely preemptible — and against Tai
Chi, where the same non-preemptible routine runs inside a vCPU that the
hardware workload probe revokes the moment traffic appears.
"""

from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.hw.packet import IORequest, PacketKind
from repro.kernel import Compute, KernelSection, LockAcquire, LockRelease
from repro.scenario import build
from repro.sim.units import MICROSECONDS, MILLISECONDS, SECONDS


def _measure_spike(mode, seed, section_ns=4 * MILLISECONDS):
    """Run one spike scenario; returns the T1/T2/T3 timeline + deployment.

    ``mode`` selects the CP-side setup: ``"nonpreemptible"`` (spinlocked
    kernel section on the DP CPU), ``"preemptible"`` (plain compute on the
    DP CPU), or ``"taichi"`` (the same non-preemptible routine, but frozen
    inside a vCPU the scheduler revokes on packet arrival).
    """
    # Affinity deliberately excludes the dedicated CP pCPUs in taichi mode:
    # the point is to observe the routine inside a vCPU on the DP partition
    # (resolved after vCPU boot, below).
    arm = "taichi" if mode == "taichi" else "naive"
    deployment = build(arm, seed=seed, dp_kind="net")
    env = deployment.env
    deployment.env.tracer.enable()
    board = deployment.board
    lock = board.kernel.spinlock("drv")
    target_cpu = deployment.services[0].cpu_id
    queue_id = deployment.services[0].queue_ids[0]
    nonpreemptible = mode != "preemptible"
    timeline = {}

    def cp_task():
        while True:
            yield Compute(200 * MICROSECONDS)
            if nonpreemptible:
                yield LockAcquire(lock)
                timeline.setdefault("t1", env.now)
                yield KernelSection(section_ns, reason="device-init")
                yield LockRelease(lock)
            else:
                timeline.setdefault("t1", env.now)
                yield Compute(section_ns)

    def driver():
        yield env.timeout(2 * MILLISECONDS)
        if mode == "taichi":
            affinity = set(deployment.taichi.vcpu_ids())
        else:
            affinity = {target_cpu}
        board.kernel.spawn("cp", cp_task(), affinity=affinity)
        # Wait until the CP task is known to be inside its long routine,
        # then inject the DP packet (the T2 moment of Figure 4).
        while "t1" not in timeline or env.now < timeline["t1"] + section_ns // 4:
            yield env.timeout(50 * MICROSECONDS)
        done = env.event()
        request = IORequest(PacketKind.NET_TX, 64, queue_id,
                            service_ns=1_500, done=done)
        timeline["t2"] = env.now
        board.accelerator.submit(request)
        result = yield done
        timeline["t3"] = result.t_dp_start
        timeline["latency"] = result.total_latency_ns

    proc = env.process(driver(), name="fig4-driver")
    env.run(until=env.any_of([proc, env.timeout(1 * SECONDS)]))
    return timeline, deployment


@register("fig4", "Latency spike from a non-preemptible CP routine", "Figure 4")
def run(scale=1.0, seed=0):
    from repro.metrics import render_gantt

    spike, spike_dep = _measure_spike("nonpreemptible", seed=seed)
    clean, _ = _measure_spike("preemptible", seed=seed)
    taichi, _ = _measure_spike("taichi", seed=seed)
    rows = [
        {
            "cp_routine": "non-preemptible (spinlock)",
            "t2_to_t3_us": (spike["t3"] - spike["t2"]) / MICROSECONDS,
            "packet_latency_us": spike["latency"] / MICROSECONDS,
        },
        {
            "cp_routine": "preemptible (user compute)",
            "t2_to_t3_us": (clean["t3"] - clean["t2"]) / MICROSECONDS,
            "packet_latency_us": clean["latency"] / MICROSECONDS,
        },
        {
            "cp_routine": "non-preemptible under Tai Chi (vCPU)",
            "t2_to_t3_us": (taichi["t3"] - taichi["t2"]) / MICROSECONDS,
            "packet_latency_us": taichi["latency"] / MICROSECONDS,
        },
    ]
    return ExperimentResult(
        exp_id="fig4",
        title="Non-preemptible routines induce ms-scale DP latency spikes",
        paper_ref="Figure 4",
        rows=rows,
        derived={
            "spike_vs_clean": rows[0]["t2_to_t3_us"] / max(rows[1]["t2_to_t3_us"], 1e-9),
            "spike_vs_taichi": rows[0]["t2_to_t3_us"] / max(rows[2]["t2_to_t3_us"], 1e-9),
        },
        paper={
            "spike_scale": "ms-scale (up to the routine length)",
            "clean_scale": "us-scale",
        },
        notes="Timeline around the spike (T2 = packet arrival):\n"
        + render_gantt(
            spike_dep.env.tracer,
            max(spike["t2"] - 1 * MILLISECONDS, 0),
            spike["t3"] + 1 * MILLISECONDS,
            cpu_ids=[0],
            width=78,
        ),
    )
